#!/usr/bin/env python
"""GCN forward propagation on the sparse kernels (§2.2's other workload).

Builds a power-law graph, encodes its normalised adjacency in CVSE via
BFS node clustering, and runs one GCN layer ``Â X W`` as
SpMM (Â sparse) + dense GEMM — comparing the octet kernel against the
FPU baseline and the dense path across vector lengths.

Run:  python examples/gcn_layer.py
"""

import numpy as np

from repro.datasets.graphs import gcn_layer_matrices
from repro.kernels import DenseGemmKernel, FpuSpmmKernel, OctetSpmmKernel

NODES, FEATURES, HIDDEN = 4096, 128, 64
rng = np.random.default_rng(0)

print(f"graph: {NODES} nodes (Barabasi-Albert), features {FEATURES} -> {HIDDEN}\n")
print(f"{'V':>2} | {'sparsity':>8} | {'explicit zeros':>14} | {'octet':>8} | {'fpu':>8} | {'dense':>8}")
print("-" * 66)

w = rng.uniform(-0.1, 0.1, (FEATURES, HIDDEN)).astype(np.float16)
dense_k = DenseGemmKernel()

for v in (2, 4, 8):
    a_cvse, x, adj, perm = gcn_layer_matrices(NODES, FEATURES, vector_length=v, seed=1)
    # one layer: H = relu( (Â X) W )
    octet = OctetSpmmKernel()
    fpu = FpuSpmmKernel()
    ax = octet.run(a_cvse, x)
    t_octet = ax.time_us
    t_fpu = fpu._model.estimate(fpu.stats_for(a_cvse, FEATURES)).time_us
    t_dense = dense_k._model.estimate(
        dense_k.stats_for_shape(a_cvse.shape[0], NODES, FEATURES)
    ).time_us
    # numeric check against the CSR reference (in the permuted order)
    inv = np.argsort(perm)
    x_orig = x.astype(np.float32)[inv]
    ref = (adj.to_scipy().astype(np.float32) @ x_orig)[perm]
    got = ax.output.astype(np.float32)[: NODES]
    err = np.abs(got - ref).max()
    assert err < 0.05, err
    overhead = a_cvse.nnz / adj.nnz  # explicit zeros stored by the V-grouping
    print(
        f"{v:2d} | {a_cvse.sparsity:8.1%} | {overhead:13.2f}x | "
        f"{t_octet:6.1f}us | {t_fpu:6.1f}us | {t_dense:6.1f}us"
    )

h = np.maximum(ax.output.astype(np.float32)[:NODES] @ w.astype(np.float32), 0)
print(f"\nlayer output: {h.shape}, activation sparsity {np.mean(h == 0):.1%} (ReLU)")
print("note: the V-grouping stores explicit zeros for neighbourhood unions —")
print("the grain-size/storage trade-off §4 discusses; BFS ordering keeps it low.")
