#!/usr/bin/env python
"""Sparse transformer inference (§7.4) end to end.

Trains a small byte-classification transformer with a fixed band+random
attention mask (8x1 vector constraint), then runs inference in the
three Table-4 modes — dense float, dense half, sparse half (through the
SDDMM -> sparse-softmax -> SpMM pipeline) — reporting accuracy, the
modelled per-layer latency breakdown (Figure 20) and peak attention
memory.

Run:  python examples/sparse_transformer_inference.py
"""

import numpy as np

from repro.transformer import (
    ByteTaskConfig,
    DenseAttention,
    SparseAttention,
    TrainConfig,
    TransformerClassifier,
    TransformerConfig,
    band_random_mask,
    dense_attention_peak,
    evaluate,
    make_dataset,
    mask_to_cvse,
    sparse_attention_peak,
    train,
)

SEQ = 128
rng = np.random.default_rng(0)

# --- data + mask -----------------------------------------------------------
task = ByteTaskConfig(seq_len=SEQ, markers=9, label_noise=0.3, seed=7)
tok_tr, lab_tr = make_dataset(256, task, rng)
tok_te, lab_te = make_dataset(128, task, np.random.default_rng(99))
mask = band_random_mask(SEQ, vector_length=8, band=16, sparsity=0.9,
                        rng=np.random.default_rng(3))
print(f"attention mask: {SEQ}x{SEQ}, density {mask.mean():.1%}, 8x1 vector constraint")

# --- train (dense fp32, mask applied additively) ----------------------------
model = TransformerClassifier(
    TransformerConfig(seq_len=SEQ, d_model=32, n_heads=2, n_layers=2, d_ff=64),
    np.random.default_rng(11),
)
losses = train(model, tok_tr, lab_tr, mask=mask, cfg=TrainConfig(epochs=5, lr=2e-3))
print(f"training loss: {losses[0]:.3f} -> {losses[-1]:.3f}")

# --- evaluate in the three Table-4 modes -------------------------------------
sa = SparseAttention(mask_to_cvse(mask, 8))
acc = {
    "Dense(float)": evaluate(model, tok_te, lab_te, mask=mask, mode="dense-float"),
    "Dense(half)": evaluate(model, tok_te, lab_te, mask=mask, mode="dense-half"),
    "Sparse(half)": evaluate(model, tok_te[:64], lab_te[:64],
                             mode="sparse-half", sparse_attention=sa),
}
print("\naccuracy:")
for mode, a in acc.items():
    print(f"  {mode:13s}: {a:.1%}")

# --- modelled latency breakdown at the paper's full scale -------------------
L, D, HEADS, BATCH = 4000, 64, 4, 8
big_mask = mask_to_cvse(
    band_random_mask(L, 8, 256, 0.9, np.random.default_rng(4)), 8
)
t_sparse = SparseAttention(big_mask).estimate_batched(L, D, HEADS * BATCH)
t_dense = DenseAttention(precision="half").estimate_batched(L, D, HEADS * BATCH)
print(f"\nper-layer attention at l={L} (heads x batch = {HEADS * BATCH}, modelled):")
print(f"  {'stage':10s} {'dense(half)':>12s} {'sparse(half)':>13s}")
for stage in ("qk", "softmax", "av", "others"):
    print(f"  {stage:10s} {getattr(t_dense, stage):10.0f}us {getattr(t_sparse, stage):11.0f}us")
print(f"  {'total':10s} {t_dense.total:10.0f}us {t_sparse.total:11.0f}us"
      f"   -> {t_dense.total / t_sparse.total:.2f}x")

# --- peak attention memory ----------------------------------------------------
m_dense = dense_attention_peak(L, HEADS * D, HEADS, 1024, BATCH, "half")
m_sparse = sparse_attention_peak(big_mask, HEADS * D, HEADS, 1024, BATCH)
print(f"\npeak memory: dense(half) {m_dense.total_gb:.2f} GB vs "
      f"sparse(half) {m_sparse.total_mb:.0f} MB "
      f"({m_dense.total / m_sparse.total:.1f}x reduction; paper: 13.4x)")
