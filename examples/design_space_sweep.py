#!/usr/bin/env python
"""Design-space sweep: when should you prune at which grain size?

For a model designer the operative question the paper answers is:
*given a target sparsity, which vector length V gives practical
speedup?*  This script sweeps V x sparsity on a ResNet-50-shaped layer,
prints the crossover map, and renders the Figure-17-style panel as an
ASCII chart.

Run:  python examples/design_space_sweep.py
"""

import numpy as np

from repro.datasets import SPARSITIES, generate_topology
from repro.experiments.charts import line_chart
from repro.formats import cvse_from_csr_topology
from repro.kernels import DenseGemmKernel, OctetSpmmKernel

M, K, N = 2048, 1024, 256
rng = np.random.default_rng(0)

hgemm = DenseGemmKernel()
t_dense = hgemm._model.estimate(hgemm.stats_for_shape(M, K, N)).time_us
octet = OctetSpmmKernel()

series = {}
crossover = {}
for v in (2, 4, 8):
    pts = []
    for s in SPARSITIES:
        topo = generate_topology((M // v, K), s, rng)
        a = cvse_from_csr_topology(topo, v, rng)
        sp = t_dense / octet._model.estimate(octet.stats_for(a, N)).time_us
        pts.append((s, sp))
        if v not in crossover and sp >= 1.0:
            crossover[v] = s
    series[f"V={v}"] = pts

print(line_chart(series, title=f"octet SpMM speedup over cublasHgemm ({M}x{K}x{N})"))
print()
print("practical-speedup region (speedup >= 1.0):")
for v in (2, 4, 8):
    s = crossover.get(v)
    paper = {2: ">80%", 4: ">70%", 8: ">50%"}[v]
    print(f"  V={v}: prune to {s:>5.0%} sparsity or beyond   (paper: {paper})"
          if s else f"  V={v}: no crossover in the sweep")

print("""
reading the map:
  - larger V crosses earlier (more reuse per index) but constrains the
    pruning pattern more (§4's accuracy trade-off);
  - below the crossover, stay dense: the kernel cannot beat the tensor
    cores' dense throughput at that density;
  - the 4x1 grain is the paper's headline balance: practical speedup
    from ~70% sparsity at negligible accuracy cost.""")
