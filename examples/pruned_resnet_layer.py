#!/usr/bin/env python
"""Pruned ResNet-50 layer: when does sparse inference pay off?

The paper's motivating workload — a magnitude-pruned convolution layer
run as SpMM.  This script prunes a 2048x1024 weight GEMM (the §7.2.2
profiling shape) at the paper's sparsity grid, encodes it as 2x1 / 4x1
/ 8x1 column vectors, and reports the speedup over cublasHgemm plus the
crossover sparsity per grain size — the Figure 17 story on one layer.

Run:  python examples/pruned_resnet_layer.py
"""

import numpy as np

from repro import blocked_ell_matching, cvse_from_csr_topology
from repro.datasets import SPARSITIES, generate_topology
from repro.kernels import BlockedEllSpmmKernel, DenseGemmKernel, FpuSpmmKernel, OctetSpmmKernel

N = 256  # im2col batch-column dimension
rng = np.random.default_rng(1)

hgemm = DenseGemmKernel()
octet = OctetSpmmKernel()
fpu = FpuSpmmKernel()
bell = BlockedEllSpmmKernel()

print(f"layer: 2048x1024 weight GEMM, N={N}, V in {{2,4,8}}")
print(f"{'sparsity':>8} | {'V':>2} | {'mma':>6} | {'fpu':>6} | {'blocked-ELL':>11}")
print("-" * 48)

crossover = {}
for v in (2, 4, 8):
    for s in SPARSITIES:
        topo = generate_topology((2048 // v, 1024), s, rng)
        a = cvse_from_csr_topology(topo, v, rng)
        ell = blocked_ell_matching(a, rng)
        t_d = hgemm._model.estimate(hgemm.stats_for_shape(2048, 1024, N)).time_us
        sp = {
            "mma": t_d / octet._model.estimate(octet.stats_for(a, N)).time_us,
            "fpu": t_d / fpu._model.estimate(fpu.stats_for(a, N)).time_us,
            "bell": t_d / bell._model.estimate(bell.stats_for(ell, N)).time_us,
        }
        print(f"{s:8.2f} | {v:2d} | {sp['mma']:6.2f} | {sp['fpu']:6.2f} | {sp['bell']:11.2f}")
        if v not in crossover and sp["mma"] >= 1.0:
            crossover[v] = s
    print("-" * 48)

print("\ncrossover sparsity (first grid point with mma >= 1.0x):")
for v, s in sorted(crossover.items()):
    paper = {2: ">80%", 4: ">70%", 8: ">50%"}[v]
    print(f"  V={v}: {s:.0%}   (paper: {paper})")
