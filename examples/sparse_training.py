#!/usr/bin/env python
"""Sparse training with square-block CVSE weights (§8 Case 1).

Trains a tiny two-layer MLP whose weight matrices live *entirely* in
column-vector sparse encoding: forward is an octet SpMM on W, the input
gradient an octet SpMM on W^T (the transposed encoding the square-block
constraint makes possible), and the weight gradient an octet SDDMM
sampled at W's topology — no dense weight tensor is ever materialised.

Run:  python examples/sparse_training.py
"""

import numpy as np

from repro.autograd import SparseLinear

rng = np.random.default_rng(0)

# --- a toy regression task ----------------------------------------------
IN, HID, OUT, BATCH = 64, 128, 16, 256
teacher = rng.normal(size=(OUT, IN)).astype(np.float32) / np.sqrt(IN)
x = rng.uniform(-1, 1, (IN, BATCH)).astype(np.float16)          # feature-major
target = teacher @ x.astype(np.float32)

layer1 = SparseLinear(HID, IN, block_size=4, sparsity=0.7, rng=rng)
layer2 = SparseLinear(OUT, HID, block_size=4, sparsity=0.7, rng=rng)
print(f"layer1: {layer1.shape} @ {layer1.sparsity:.0%} block-4 sparsity "
      f"({layer1.weight.nnz_vectors} vectors)")
print(f"layer2: {layer2.shape} @ {layer2.sparsity:.0%}")

lr = 0.02
for step in range(30):
    # forward: two SpMMs + ReLU
    h_pre = layer1.forward(x).output.astype(np.float32)
    h = np.maximum(h_pre, 0.0)
    y = layer2.forward(h.astype(np.float16)).output.astype(np.float32)

    err = y - target
    loss = float((err**2).mean())

    # backward: SpMM on W^T for dX, SDDMM at W's topology for dW
    dy = (2.0 / err.size * err).astype(np.float16)
    dw2 = layer2.backward_weight(dy, h.astype(np.float16))
    dh = layer2.backward_input(dy).output.astype(np.float32)
    dh_pre = (dh * (h_pre > 0)).astype(np.float16)
    dw1 = layer1.backward_weight(dh_pre, x)

    layer2.apply_grad(dw2.output, lr * BATCH)
    layer1.apply_grad(dw1.output, lr * BATCH)
    if step % 5 == 0:
        print(f"step {step:3d}: loss = {loss:.5f}")

print(f"final loss: {loss:.5f}")

# --- modelled cost of one training step -----------------------------------
total1, parts1 = layer1.training_step_cost_us(BATCH)
total2, _ = layer2.training_step_cost_us(BATCH)
print(f"\nmodelled step cost: layer1 {total1:.1f} us, layer2 {total2:.1f} us")
for name, t in parts1.items():
    print(f"  layer1 {name}: {t:.1f} us")
