#!/usr/bin/env python
"""Quickstart: column-vector sparse encoding + the octet kernels.

Builds a 4x1-vector-sparse matrix, runs SpMM / SDDMM / sparse softmax
through the TCU-based 1-D Octet Tiling kernels on the simulated V100,
and compares against the dense cublasHgemm analog.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ColumnVectorSparseMatrix, dense_gemm, sddmm, sparse_softmax, spmm

rng = np.random.default_rng(0)

# --- build a vector-sparse matrix (V = 4) --------------------------------
M, K, N, V = 1024, 512, 256, 4
keep = rng.random((M // V, K)) < 0.1          # 90% sparse at 4x1 grain
dense = (rng.uniform(-1, 1, (M // V, V, K)) * keep[:, None, :]).reshape(M, K)
a = ColumnVectorSparseMatrix.from_dense(dense.astype(np.float16), vector_length=V)
print(f"A: {a}")

# --- SpMM: C = A @ B -------------------------------------------------------
b = rng.uniform(-1, 1, (K, N)).astype(np.float16)
res = spmm(a, b)                               # kernel="octet" by default
ref = dense_gemm(dense.astype(np.float16), b)
print(f"\nSpMM  (octet):  {res.time_us:8.1f} us   limiter={res.latency.limiter}")
print(f"GEMM  (dense):  {ref.time_us:8.1f} us   -> speedup {res.speedup_over(ref):.2f}x")
err = np.abs(res.output.astype(np.float32) - ref.output.astype(np.float32)).max()
print(f"max |sparse - dense| = {err:.4f} (fp16 accumulation noise)")

# --- compare the kernel designs of §5 --------------------------------------
for name in ("octet", "fpu", "wmma"):
    r = spmm(a, b, kernel=name)
    print(f"  spmm[{name:5s}]: {r.time_us:8.1f} us")

# --- SDDMM + sparse softmax: one attention step ----------------------------
L, D = 512, 64
q = rng.uniform(-1, 1, (L, D)).astype(np.float16)
k = rng.uniform(-1, 1, (L, D)).astype(np.float16)
mask_rows = rng.random((L // 8, L)) < 0.1
mask = ColumnVectorSparseMatrix.mask_from_dense(np.repeat(mask_rows, 8, axis=0), 8)

scores = sddmm(q, k.T.copy(), mask, variant="arch")   # the Fig-15 TCU extension
att = sparse_softmax(scores.output, scale=1.0 / np.sqrt(D))
print(f"\nSDDMM (octet/arch): {scores.time_us:6.1f} us")
print(f"softmax (CVSE):     {att.time_us:6.1f} us")
print(f"attention rows sum to {att.output.to_dense(np.float32).sum(axis=1)[:3]}")
