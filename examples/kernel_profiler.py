#!/usr/bin/env python
"""Profile kernels against the paper's five guidelines (§3.2).

Builds the §7.2.2 reference benchmarks and prints Table-2/Table-3-style
guideline profiles for every SpMM and SDDMM implementation, plus the
stall-reason breakdowns that explain each design's behaviour.

Run:  python examples/kernel_profiler.py
"""

import numpy as np

from repro import cvse_from_csr_topology
from repro.datasets import generate_topology
from repro.formats import ColumnVectorSparseMatrix, blocked_ell_matching
from repro.kernels import (
    BlockedEllSpmmKernel,
    FpuSddmmKernel,
    FpuSpmmKernel,
    OctetSddmmKernel,
    OctetSpmmKernel,
    WmmaSddmmKernel,
    WmmaSpmmKernel,
)
from repro.perfmodel import format_table, guidelines_table, profile_kernel

rng = np.random.default_rng(0)
V, N, K = 4, 256, 256

# --- SpMM: A[2048x1024] x B[1024x256], 90% sparsity --------------------------
topo = generate_topology((2048 // V, 1024), 0.9, rng)
a = cvse_from_csr_topology(topo, V, rng)
ell = blocked_ell_matching(a, rng)

reports = []
for name, kern, mat in (
    ("MMA (octet)", OctetSpmmKernel(), a),
    ("WMMA (warp)", WmmaSpmmKernel(), a),
    ("CUDA (fpu)", FpuSpmmKernel(), a),
):
    rep = profile_kernel(kern.stats_for(mat, N), kern._model)
    rep.name = name
    reports.append(rep)
rep = profile_kernel(BlockedEllSpmmKernel().stats_for(ell, N), BlockedEllSpmmKernel()._model)
rep.name = "Blocked-ELL"
reports.append(rep)

print(f"SpMM guideline profile (V={V}, 2048x1024x{N} @ 90% — Table 2 layout)\n")
print(format_table(guidelines_table(reports)))
print("\nper-kernel detail:")
for rep in reports:
    print(
        f"  {rep.name:12s}: {rep.time_us:7.1f} us  limiter={rep.limiter:14s} "
        f"occupancy={rep.occupancy:.0%}  regs/thread={rep.registers_per_thread}"
    )

# --- SDDMM: A[2048x256] x B[256x1024] ∘ C, 90% sparsity ----------------------
topo = generate_topology((2048 // V, 1024), 0.9, rng)
cv = cvse_from_csr_topology(topo, V, rng)
mask = ColumnVectorSparseMatrix(cv.shape, V, cv.row_ptr, cv.col_idx, None)

reports = []
for name, kern in (
    ("MMA (reg)", OctetSddmmKernel(variant="reg")),
    ("MMA (shfl)", OctetSddmmKernel(variant="shfl")),
    ("MMA (arch)", OctetSddmmKernel(variant="arch")),
    ("WMMA", WmmaSddmmKernel()),
    ("CUDA (fpu)", FpuSddmmKernel()),
):
    rep = profile_kernel(kern.stats_for(mask, K), kern._model)
    rep.name = name
    reports.append(rep)

print(f"\n\nSDDMM guideline profile (V={V}, 2048x{K}x1024 @ 90% — Table 3 layout)\n")
print(format_table(guidelines_table(reports)))
print("\nper-kernel detail:")
for rep in reports:
    print(
        f"  {rep.name:12s}: {rep.time_us:7.1f} us  limiter={rep.limiter:14s} "
        f"occupancy={rep.occupancy:.0%}  regs/thread={rep.registers_per_thread}"
    )
