"""``repro-bench``: benchmark the kernels on a user-supplied matrix.

Reads a DLMC ``.smtx`` topology (or generates a synthetic one), builds
the §7.1.1 benchmarks at the requested vector length, and prints a
comparison table of every applicable kernel against the dense cuBLAS
analog — the per-matrix version of Figures 17/19.

Examples
--------
::

    repro-bench --smtx path/to/matrix.smtx --op spmm -V 4 -N 256
    repro-bench --rows 512 --cols 1024 --sparsity 0.9 --op sddmm -V 8 -K 256
    repro-bench --rows 512 --cols 1024 --sparsity 0.9 --op spmm -V 4 --profile
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

import numpy as np

from .datasets.dlmc import generate_topology
from .formats.conversions import blocked_ell_matching, cvse_from_csr_topology
from .formats.cvse import ColumnVectorSparseMatrix
from .formats.io import read_smtx
from .kernels.cusparse import BlockedEllSpmmKernel
from .kernels.gemm import DenseGemmKernel
from .kernels.sddmm_fpu import FpuSddmmKernel
from .kernels.sddmm_octet import OctetSddmmKernel
from .kernels.sddmm_wmma import WmmaSddmmKernel
from .kernels.spmm_fpu import FpuSpmmKernel
from .kernels.spmm_octet import OctetSpmmKernel
from .kernels.spmm_wmma import WmmaSpmmKernel
from .perfmodel.profiler import format_table, guidelines_table, profile_kernel

__all__ = ["main", "build_parser", "bench_spmm", "bench_sddmm"]


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench``."""
    ap = argparse.ArgumentParser(
        prog="repro-bench",
        description="Compare the paper's kernels on one sparse matrix (simulated V100)",
    )
    src = ap.add_argument_group("matrix source")
    src.add_argument("--smtx", type=str, default="", help="DLMC .smtx topology file")
    src.add_argument("--rows", type=int, default=512, help="synthetic topology rows")
    src.add_argument("--cols", type=int, default=1024, help="synthetic topology cols")
    src.add_argument("--sparsity", type=float, default=0.9, help="synthetic sparsity")
    src.add_argument("--seed", type=int, default=0)

    ap.add_argument("--op", choices=("spmm", "sddmm"), default="spmm")
    ap.add_argument("-V", "--vector-length", type=int, default=4, choices=(1, 2, 4, 8))
    ap.add_argument("-N", type=int, default=256, help="dense columns (SpMM)")
    ap.add_argument("-K", type=int, default=256, help="inner dimension (SDDMM)")
    ap.add_argument("--profile", action="store_true",
                    help="also print the five-guideline profile table")
    return ap


def _topology(args):
    if args.smtx:
        return read_smtx(args.smtx)
    rng = np.random.default_rng(args.seed)
    return generate_topology((args.rows, args.cols), args.sparsity, rng)


def bench_spmm(csr, v: int, n: int, profile: bool = False) -> List[Dict[str, object]]:
    """SpMM comparison rows + guideline reports for one topology."""
    rng = np.random.default_rng(1)
    a = cvse_from_csr_topology(csr, v, rng)
    ell = blocked_ell_matching(a, rng)
    m, k = a.shape
    dense = DenseGemmKernel()
    t_dense = dense._model.estimate(dense.stats_for_shape(m, k, n)).time_us

    kernels = [("mma (octet)", OctetSpmmKernel()), ("wmma", WmmaSpmmKernel())] if v >= 2 else []
    kernels.append(("fpu (sputnik)", FpuSpmmKernel()))
    rows = [{"kernel": "cublasHgemm", "time_us": round(t_dense, 2), "speedup": 1.0}]
    reports = []
    for name, kern in kernels:
        st = kern.stats_for(a, n)
        est = kern._model.estimate(st)
        rows.append({"kernel": name, "time_us": round(est.time_us, 2),
                     "speedup": round(t_dense / est.time_us, 3)})
        rep = profile_kernel(st, kern._model)
        rep.name = name
        reports.append(rep)
    bk = BlockedEllSpmmKernel()
    st = bk.stats_for(ell, n)
    est = bk._model.estimate(st)
    rows.append({"kernel": "blocked-ELL", "time_us": round(est.time_us, 2),
                 "speedup": round(t_dense / est.time_us, 3)})
    rep = profile_kernel(st, bk._model)
    rep.name = "blocked-ELL"
    reports.append(rep)
    if profile:
        rows.append({"kernel": "", "time_us": "", "speedup": ""})
    return rows, reports


def bench_sddmm(csr, v: int, k: int, profile: bool = False):
    """SDDMM comparison rows + guideline reports for one topology."""
    rng = np.random.default_rng(1)
    cv = cvse_from_csr_topology(csr, v, rng)
    mask = ColumnVectorSparseMatrix(cv.shape, v, cv.row_ptr, cv.col_idx, None)
    m, n = mask.shape
    dense = DenseGemmKernel()
    t_dense = dense._model.estimate(dense.stats_for_shape(m, k, n)).time_us

    rows = [{"kernel": "cublasHgemm", "time_us": round(t_dense, 2), "speedup": 1.0}]
    reports = []
    for name, kern in (
        ("mma (reg)", OctetSddmmKernel(variant="reg")),
        ("mma (shfl)", OctetSddmmKernel(variant="shfl")),
        ("mma (arch)", OctetSddmmKernel(variant="arch")),
        ("wmma", WmmaSddmmKernel()),
        ("fpu (sputnik)", FpuSddmmKernel()),
    ):
        st = kern.stats_for(mask, k)
        est = kern._model.estimate(st)
        rows.append({"kernel": name, "time_us": round(est.time_us, 2),
                     "speedup": round(t_dense / est.time_us, 3)})
        rep = profile_kernel(st, kern._model)
        rep.name = name
        reports.append(rep)
    return rows, reports


def main(argv=None) -> int:
    """``repro-bench`` entry point."""
    args = build_parser().parse_args(argv)
    try:
        csr = _topology(args)
    except (OSError, ValueError) as exc:
        print(f"error reading matrix: {exc}", file=sys.stderr)
        return 2
    v = args.vector_length
    if csr.shape[0] * v % v:
        print("rows must divide by V", file=sys.stderr)
        return 2
    print(
        f"matrix: {csr.shape[0]}x{csr.shape[1]} topology, sparsity {csr.sparsity:.1%}, "
        f"V={v} -> logical {csr.shape[0] * v}x{csr.shape[1]}"
    )
    if args.op == "spmm":
        rows, reports = bench_spmm(csr, v, args.N, args.profile)
        print(f"\nSpMM, N={args.N} (times on the simulated V100):\n")
    else:
        rows, reports = bench_sddmm(csr, v, args.K, args.profile)
        print(f"\nSDDMM, K={args.K} (times on the simulated V100):\n")
    print(format_table([r for r in rows if r["kernel"]]))
    if args.profile:
        print("\nfive-guideline profile (Table 2/3 layout):\n")
        print(format_table(guidelines_table(reports)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
