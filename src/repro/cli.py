"""``repro-bench``: benchmark the kernels on a user-supplied matrix.

Reads a DLMC ``.smtx`` topology (or generates a synthetic one), builds
the §7.1.1 benchmarks at the requested vector length, and prints a
comparison table of every applicable kernel against the dense cuBLAS
analog — the per-matrix version of Figures 17/19.

The ``sanitize`` subcommand instead runs the kernel sanitizer
(:mod:`repro.sanitizer`) over any kernel case x problem suite, the
``faults`` subcommand runs a seeded SDC fault-injection campaign
(:mod:`repro.faults`) measuring the sanitizer's detection coverage,
and the ``plans`` subcommand compiles, validates, and parity-checks
the execution plans (:mod:`repro.plans`) of every simulated kernel on
a seeded problem.  The ``memo`` subcommand inspects (and verifies or
compacts) the shared cross-process memo store
(:mod:`repro.perfmodel.sharedmemo`), ``merge`` combines ``--shard``
sweep outputs into one verified result
(:mod:`repro.experiments.sharding`), and ``serve`` runs the
multi-tenant serving simulator (:mod:`repro.serving`) over a named
scenario with admission control, hedged retries and graceful
degradation, and ``profile`` runs the Nsight-Compute-analog kernel
profiler (:mod:`repro.profiler`): roofline classification, ranked
bottleneck attribution, the append-only run-history store and the
checked-in perf-regression baseline.

Examples
--------
::

    repro-bench --smtx path/to/matrix.smtx --op spmm -V 4 -N 256
    repro-bench --rows 512 --cols 1024 --sparsity 0.9 --op sddmm -V 8 -K 256
    repro-bench --rows 512 --cols 1024 --sparsity 0.9 --op spmm -V 4 --profile
    repro-bench --op spmm --kernel octet --kernel fpu
    python -m repro.cli sanitize --all
    python -m repro.cli sanitize --smoke
    python -m repro.cli sanitize --kernel spmm-octet --suite full
    python -m repro.cli faults --smoke
    python -m repro.cli faults --campaign default --seed 7 -v
    python -m repro.cli obs --only fig17 --trace-out t.json
    python -m repro.cli obs --smoke
    python -m repro.cli plans --parity
    python -m repro.cli plans -V 8 --rows 128 --cols 256 -N 128 -K 128
    python -m repro.cli memo --dir .repro-memo --verify
    python -m repro.cli memo --compact
    python -m repro.cli merge out-shard0 out-shard1 --out out-merged
    python -m repro.cli serve --scenario overload --requests 8000 -v
    python -m repro.cli serve --scenario steady --sweep
    python -m repro.cli serve --smoke
    python -m repro.cli profile
    python -m repro.cli profile --config fig20-k256 -v
    python -m repro.cli profile --diff spmm-octet dense-gemm
    python -m repro.cli profile --smoke --check
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

import numpy as np

from .datasets.dlmc import generate_topology
from .formats.conversions import blocked_ell_matching, cvse_from_csr_topology
from .formats.cvse import ColumnVectorSparseMatrix
from .formats.io import read_smtx
from .kernels.cusparse import BlockedEllSpmmKernel
from .kernels.gemm import DenseGemmKernel
from .kernels.sddmm_fpu import FpuSddmmKernel
from .kernels.sddmm_octet import OctetSddmmKernel
from .kernels.sddmm_wmma import WmmaSddmmKernel
from .kernels.spmm_fpu import FpuSpmmKernel
from .kernels.spmm_octet import OctetSpmmKernel
from .kernels.spmm_wmma import WmmaSpmmKernel
from .perfmodel.profiler import format_table, guidelines_table, profile_kernel

__all__ = ["main", "build_parser", "build_sanitize_parser", "build_faults_parser",
           "build_obs_parser", "build_plans_parser", "build_memo_parser",
           "build_merge_parser", "build_analyze_parser", "build_serve_parser",
           "build_profile_parser", "bench_spmm", "bench_sddmm", "EXIT_CLEAN",
           "EXIT_FINDINGS", "EXIT_USAGE"]

#: bench-table kernel names accepted by ``--kernel`` (per op)
SPMM_BENCH_KERNELS = ("octet", "wmma", "fpu", "blocked-ell")
SDDMM_BENCH_KERNELS = ("reg", "shfl", "arch", "wmma", "fpu")

#: shared exit-code convention for every checking subcommand
#: (sanitize / faults / analyze): clean, findings, bad invocation
EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE = 0, 1, 2


def _usage_error(exc: object) -> int:
    """The one bad-invocation path every subcommand shares: ``error: ...``
    on stderr (unknown names list the valid choices), exit 2."""
    print(f"error: {exc}", file=sys.stderr)
    return EXIT_USAGE


def _validate_names(names, valid, what: str) -> None:
    """Reject unknown names listing the valid choices (the ``run_all
    --only`` convention)."""
    unknown = sorted(set(names) - set(valid))
    if unknown:
        raise ValueError(f"unknown {what}: {unknown}; valid choices: {sorted(valid)}")


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench``."""
    ap = argparse.ArgumentParser(
        prog="repro-bench",
        description="Compare the paper's kernels on one sparse matrix (simulated V100)",
    )
    src = ap.add_argument_group("matrix source")
    src.add_argument("--smtx", type=str, default="", help="DLMC .smtx topology file")
    src.add_argument("--rows", type=int, default=512, help="synthetic topology rows")
    src.add_argument("--cols", type=int, default=1024, help="synthetic topology cols")
    src.add_argument("--sparsity", type=float, default=0.9, help="synthetic sparsity")
    src.add_argument("--seed", type=int, default=0)

    ap.add_argument("--op", choices=("spmm", "sddmm"), default="spmm")
    ap.add_argument("-V", "--vector-length", type=int, default=4, choices=(1, 2, 4, 8))
    ap.add_argument("-N", type=int, default=256, help="dense columns (SpMM)")
    ap.add_argument("-K", type=int, default=256, help="inner dimension (SDDMM)")
    ap.add_argument("--profile", action="store_true",
                    help="also print the five-guideline profile table")
    ap.add_argument("--kernel", action="append", default=None, metavar="NAME",
                    help="restrict the comparison to these kernels (repeatable); "
                         f"spmm: {SPMM_BENCH_KERNELS}, sddmm: {SDDMM_BENCH_KERNELS}")
    return ap


def build_sanitize_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench sanitize``."""
    from .sanitizer import KERNEL_CASES, SUITES

    ap = argparse.ArgumentParser(
        prog="repro-bench sanitize",
        description="Run the kernel sanitizer (memcheck/racecheck/synccheck/"
                    "ownership/statcheck) over kernel cases x problem suites",
    )
    ap.add_argument("--kernel", action="append", default=None, metavar="NAME",
                    help="kernel case(s) to sanitize (repeatable); "
                         f"choices: {sorted(KERNEL_CASES)}")
    ap.add_argument("--suite", default="default",
                    help=f"problem suite; choices: {sorted(SUITES)}")
    ap.add_argument("--all", action="store_true",
                    help="every kernel case on the 'full' suite")
    ap.add_argument("--smoke", action="store_true",
                    help="every kernel case on the 'smoke' suite (CI)")
    ap.add_argument("--verbose", action="store_true",
                    help="print per-checker work counters")
    return ap


def _sanitize_main(argv) -> int:
    """``sanitize`` subcommand: exit 0 on a clean sweep, 1 on findings."""
    from .sanitizer import format_reports, sanitize

    args = build_sanitize_parser().parse_args(argv)
    suite = args.suite
    if args.all:
        suite = "full"
    elif args.smoke:
        suite = "smoke"
    try:
        reports = sanitize(args.kernel, suite=suite)
    except ValueError as exc:
        return _usage_error(exc)
    print(format_reports(reports, verbose=args.verbose))
    return EXIT_CLEAN if all(r.ok for r in reports) else EXIT_FINDINGS


def build_faults_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench faults``."""
    from .faults.campaign import CAMPAIGNS

    ap = argparse.ArgumentParser(
        prog="repro-bench faults",
        description="Run a seeded SDC fault-injection campaign and score the "
                    "sanitizer's detection coverage against the documented floors",
    )
    ap.add_argument("--campaign", default="default",
                    help=f"campaign to run; choices: {sorted(CAMPAIGNS)}")
    ap.add_argument("--smoke", action="store_true",
                    help="the guaranteed-detection campaign (CI; floor 100%%)")
    ap.add_argument("--seed", type=int, default=1234,
                    help="campaign seed (same seed => identical findings)")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="print every injection record")
    return ap


def _faults_main(argv) -> int:
    """``faults`` subcommand: exit 0 when every checker meets its
    coverage floor, 1 otherwise, 2 on unknown campaign names."""
    from .faults.campaign import run_campaign

    args = build_faults_parser().parse_args(argv)
    name = "smoke" if args.smoke else args.campaign
    try:
        result = run_campaign(name, seed=args.seed)
    except ValueError as exc:
        return _usage_error(exc)
    print(result.to_text(verbose=args.verbose))
    return EXIT_CLEAN if result.passed else EXIT_FINDINGS


def build_obs_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench obs``."""
    from .experiments.runner import EXPERIMENTS

    ap = argparse.ArgumentParser(
        prog="repro-bench obs",
        description="Run experiments under the observability layer: structured "
                    "spans, a metrics snapshot, and a Chrome trace-event "
                    "timeline (see docs/OBSERVABILITY.md)",
    )
    ap.add_argument("--only", type=str, default="",
                    help=f"comma-separated experiment names; choices: {sorted(EXPERIMENTS)}")
    ap.add_argument("--full", action="store_true", help="use the full DLMC-style suite")
    ap.add_argument("--jobs", type=int, default=1,
                    help="fan the experiments out over N worker processes "
                         "(worker spans are stitched into one timeline)")
    ap.add_argument("--trace-out", type=str, default="",
                    help="write the Chrome trace-event JSON here (a sibling "
                         "<stem>.metrics.json carries the metrics snapshot)")
    ap.add_argument("--top", type=int, default=10,
                    help="rows in the slowest-spans table (0 disables it)")
    ap.add_argument("--tree", action="store_true",
                    help="print the nested span tree after the run")
    ap.add_argument("--smoke", action="store_true",
                    help="CI gate: one fast experiment, then validate the Chrome "
                         "trace schema and require >=95%% span coverage of the "
                         "measured wall-clock")
    return ap


def _obs_main(argv) -> int:
    """``obs`` subcommand: exit 0 on success, 1 when the smoke gates
    fail or the sweep degrades, 2 on bad arguments."""
    import time as _time
    from pathlib import Path

    from .experiments.runner import SweepFailure, run_all
    from .obs import metrics as obs_metrics
    from .obs import tracing as obs_tracing

    args = build_obs_parser().parse_args(argv)
    only = [s.strip() for s in args.only.split(",") if s.strip()] or None
    if args.smoke and only is None:
        only = ["table1"]  # fastest registered experiment

    obs_tracing.reset()
    obs_metrics.reset()
    obs_tracing.enable()
    degraded = False
    t0 = _time.perf_counter()
    try:
        run_all(quick=not args.full, only=only, jobs=args.jobs)
    except ValueError as exc:
        return _usage_error(exc)
    except SweepFailure:
        degraded = True
    wall = _time.perf_counter() - t0

    spans = obs_tracing.completed_spans()
    doc = {"traceEvents": obs_tracing.chrome_trace_events(spans),
           "displayTimeUnit": "ms"}
    # coverage: the root run_all span's share of the measured wall-clock
    root_ns = max((s["dur_ns"] for s in spans if s["name"] == "run_all"), default=0)
    coverage = root_ns / (wall * 1e9) if wall > 0 else 0.0

    if args.tree:
        print("== span tree ==")
        print(obs_tracing.render_tree(spans))
        print()
    if args.top > 0:
        rows = obs_tracing.slowest_table(args.top, spans)
        if rows:
            print(f"== slowest {len(rows)} spans ==")
            print(format_table(rows))
            print()
    snap = obs_metrics.snapshot()
    # one row per (region, tier): the local process caches always, the
    # shared cross-process tier whenever it is on or saw traffic
    from .perfmodel import sharedmemo as _sharedmemo

    show_shared = _sharedmemo.enabled() or any(
        row["shared_hits"] or row["shared_misses"]
        for row in snap["memo"].values())
    memo_rows = []
    for r, row in sorted(snap["memo"].items()):
        memo_rows.append({"Region": r, "Tier": "local", "Hits": row["hits"],
                          "Misses": row["misses"],
                          "Hit_Rate": row["hit_rate"]})
        if show_shared:
            memo_rows.append({"Region": r, "Tier": "shared",
                              "Hits": row["shared_hits"],
                              "Misses": row["shared_misses"],
                              "Hit_Rate": row["shared_hit_rate"]})
    print("== memo hit rates ==")
    print(format_table(memo_rows))
    if show_shared:
        print(f"memo.shared.hit_rate: {snap['derived']['memo.shared.hit_rate']}")
    print(f"\nspans: {len(spans)}  wall: {wall:.2f}s  "
          f"timeline coverage: {100.0 * coverage:.1f}%")

    if args.trace_out:
        trace_path = Path(args.trace_out)
        obs_tracing.export_chrome_trace(trace_path, spans)
        metrics_path = trace_path.with_name(trace_path.stem + ".metrics.json")
        obs_metrics.write_json(metrics_path)
        print(f"trace written to {trace_path} (load in Perfetto / chrome://tracing); "
              f"metrics in {metrics_path}")

    if args.smoke:
        problems = obs_tracing.validate_chrome_trace(doc)
        if problems:
            print("chrome trace schema FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        if coverage < 0.95:
            print(f"span coverage gate FAILED: {100.0 * coverage:.1f}% < 95% "
                  f"of measured wall-clock", file=sys.stderr)
            return 1
        if not snap["memo"] or not snap["cache"]:
            print("metrics snapshot gate FAILED: memo/cache tables missing",
                  file=sys.stderr)
            return 1
        print("obs smoke: chrome schema OK, coverage OK, metrics tables OK")
    return 1 if degraded else 0


def build_plans_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench plans``."""
    ap = argparse.ArgumentParser(
        prog="repro-bench plans",
        description="Compile the execution plans (repro.plans) of every "
                    "simulated kernel on a seeded problem, run the ownership "
                    "validation over them, and report the plan-cache traffic",
    )
    ap.add_argument("--rows", type=int, default=64, help="sparse operand rows")
    ap.add_argument("--cols", type=int, default=128, help="sparse operand cols")
    ap.add_argument("--sparsity", type=float, default=0.7, help="vector-level sparsity")
    ap.add_argument("-V", "--vector-length", type=int, default=4, choices=(2, 4, 8))
    ap.add_argument("-N", type=int, default=64, help="dense columns (SpMM)")
    ap.add_argument("-K", type=int, default=64, help="inner dimension (SDDMM)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--parity", action="store_true",
                    help="also execute each plan and require bit-identity "
                         "against the interpreted *_reference twin")
    return ap


def _plans_main(argv) -> int:
    """``plans`` subcommand: exit 0 when every plan validates (and, with
    ``--parity``, matches its reference bit for bit), 1 otherwise."""
    from . import plans
    from .perfmodel import memo

    args = build_plans_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)
    v = args.vector_length
    csr = generate_topology((args.rows, args.cols), args.sparsity, rng)
    a = cvse_from_csr_topology(csr, v, rng)
    mask = ColumnVectorSparseMatrix(a.shape, v, a.row_ptr, a.col_idx, None)
    b_spmm = rng.uniform(-1, 1, (a.shape[1], args.N)).astype(np.float16)
    a_dense = rng.uniform(-1, 1, (a.shape[0], args.K)).astype(np.float16)
    b_sddmm = rng.uniform(-1, 1, (args.K, a.shape[1])).astype(np.float16)

    def _bits_equal(x, y) -> bool:
        xv = np.asarray(x.values if hasattr(x, "values") else x)
        yv = np.asarray(y.values if hasattr(y, "values") else y)
        return np.array_equal(xv.view(np.uint16), yv.view(np.uint16))

    cases = [
        ("spmm-octet", OctetSpmmKernel(simulate=True),
         lambda k: plans.spmm_octet_plan(k, a), a, None,
         lambda k: (k._execute_simulated(a, b_spmm),
                    k._execute_simulated_reference(a, b_spmm))),
        ("spmm-wmma", WmmaSpmmKernel(simulate=True),
         lambda k: plans.spmm_wmma_plan(k, a), a, None,
         lambda k: (k._execute_simulated(a, b_spmm),
                    k._execute_simulated_reference(a, b_spmm))),
    ]
    for variant in ("reg", "shfl", "arch"):
        cases.append(
            (f"sddmm-octet-{variant}", OctetSddmmKernel(variant=variant, simulate=True),
             lambda k: plans.sddmm_octet_plan(k, mask, args.K), mask, args.K,
             lambda k: (k._execute_simulated(a_dense, b_sddmm, mask),
                        k._execute_simulated_reference(a_dense, b_sddmm, mask))))
    cases.append(
        ("sddmm-wmma", WmmaSddmmKernel(simulate=True),
         lambda k: plans.sddmm_wmma_plan(k, mask, args.K), mask, args.K,
         lambda k: (k._execute_simulated(a_dense, b_sddmm, mask),
                    k._execute_simulated_reference(a_dense, b_sddmm, mask))))

    before = memo.counters()
    rows, failed = [], False
    for name, kern, compile_plan, structure, k, run_pair in cases:
        plan = compile_plan(kern)
        findings = plans.validate_plan(plan, structure, k=k)
        row = {"kernel": name, "plan": type(plan).__name__,
               "groups": int(plan.layout.num_groups), "findings": len(findings)}
        if args.parity:
            got, ref = run_pair(kern)
            row["parity"] = "ok" if _bits_equal(got, ref) else "FAIL"
            failed |= row["parity"] == "FAIL"
        failed |= bool(findings)
        rows.append(row)
        for msg in findings:
            print(f"  {name}: {msg}", file=sys.stderr)
    after = memo.counters()
    print(format_table(rows))
    h0, m0 = before.get("plan", (0, 0))
    h1, m1 = after.get("plan", (0, 0))
    hits, misses = h1 - h0, m1 - m0
    print(f"\nplan cache: {hits} hit(s), {misses} miss(es) "
          f"(enabled={plans.enabled()}, memo={memo.enabled()})")
    return 1 if failed else 0


def build_memo_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench memo``."""
    ap = argparse.ArgumentParser(
        prog="repro-bench memo",
        description="Inspect, verify, or compact the shared cross-process "
                    "memo store (repro.perfmodel.sharedmemo)",
    )
    ap.add_argument("--dir", type=str, default="",
                    help="store directory (default: REPRO_MEMO_SHARED_DIR "
                         "or .repro-memo)")
    ap.add_argument("--verify", action="store_true",
                    help="re-read and re-hash every live entry; exit 1 when "
                         "any is corrupt")
    ap.add_argument("--compact", action="store_true",
                    help="rewrite the live, checksum-valid entries into one "
                         "fresh segment and delete the superseded files (the "
                         "only reclamation path — run while no sweep writes "
                         "the store)")
    return ap


def _memo_main(argv) -> int:
    """``memo`` subcommand: exit 0, or 1 when ``--verify`` finds
    corruption."""
    from .perfmodel import sharedmemo

    args = build_memo_parser().parse_args(argv)
    if args.dir:
        sharedmemo.set_dir(args.dir)
    rc = 0
    if args.verify:
        ok, corrupt = sharedmemo.verify_store()
        print(f"verify: {ok} entr{'y' if ok == 1 else 'ies'} ok, "
              f"{corrupt} corrupt")
        rc = 1 if corrupt else 0
    if args.compact:
        summary = sharedmemo.compact()
        print(f"compact: kept {summary['kept']}, dropped "
              f"{summary['dropped_corrupt']} corrupt, removed "
              f"{summary['removed_segments']} superseded segment(s)")
    st = sharedmemo.stats()
    print(f"shared memo store: {st['dir']}")
    print(f"  segments: {st['segments']} ({st['segment_bytes']} bytes on disk)"
          f"  writers: {st['writers']}  live entries: {st['live_entries']} "
          f"({st['live_bytes']} bytes)")
    rows = [{"region": r, "entries": row["entries"], "bytes": row["bytes"]}
            for r, row in st["regions"].items()]
    print(format_table(rows) if rows else "  (no live entries)")
    return rc


def build_merge_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench merge``."""
    ap = argparse.ArgumentParser(
        prog="repro-bench merge",
        description="Combine N --shard sweep output directories into one "
                    "verified full-sweep result (exit 2 on mismatched shard "
                    "configurations)",
    )
    ap.add_argument("shards", nargs="+", metavar="SHARD_DIR",
                    help="output directories written by --shard I/N runs")
    ap.add_argument("--out", type=str, required=True,
                    help="directory for the merged sweep result")
    return ap


def _merge_main(argv) -> int:
    """``merge`` subcommand: delegates to the runner's merge driver
    (0 merged+verified, 1 verification bug, 2 unmergeable inputs)."""
    from pathlib import Path

    from .experiments.runner import _merge_main as _runner_merge

    args = build_merge_parser().parse_args(argv)
    return _runner_merge(args.shards, Path(args.out))


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench serve``."""
    from .serving import SCENARIOS

    ap = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Run the deterministic multi-tenant serving simulator "
                    "(admission control, hedged retries, graceful "
                    "degradation) over a named scenario; see docs/SERVING.md",
    )
    ap.add_argument("--scenario", default="",
                    help="scenario to simulate (default: steady, or overload "
                         f"under --smoke); choices: {sorted(SCENARIOS)}")
    ap.add_argument("--requests", type=int, default=8000,
                    help="requests to generate (default 8000)")
    ap.add_argument("--seed", type=int, default=0,
                    help="workload/fault seed (same seed => bit-identical "
                         "ledger digest)")
    ap.add_argument("--workers", type=int, default=0,
                    help="override the scenario's worker count (0 keeps it)")
    ap.add_argument("--load", type=float, default=0.0,
                    help="override the scenario's offered-load multiple "
                         "(0 keeps it)")
    ap.add_argument("--trace-out", type=str, default="",
                    help="write a Chrome trace-event timeline here (worker "
                         "lanes = batch executions, tenant lanes = request "
                         "lifecycles)")
    ap.add_argument("--sweep", action="store_true",
                    help="also print the goodput-vs-offered-load table "
                         "(re-simulates the scenario at each load multiple)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI gate on the overload scenario: bit-identical "
                         "digest across a re-run, zero corrupt-served, "
                         "admitted p99 within every tenant SLO, and complete "
                         "typed outcome accounting")
    ap.add_argument("--profile", action="store_true",
                    help="append a per-tenant SLO-attainment + "
                         "degradation-ladder occupancy record to the "
                         "profiler's run-history store")
    ap.add_argument("--history", type=str,
                    default="results/profile_history.jsonl",
                    help="history store --profile appends to (default "
                         "results/profile_history.jsonl)")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="also print the full JSON report document")
    return ap


def _serve_main(argv) -> int:
    """``serve`` subcommand: exit 0 on a clean run, 1 when the smoke
    gates fail, 2 on unknown scenarios / bad arguments."""
    import dataclasses
    import json as _json
    from pathlib import Path

    from .obs import tracing as obs_tracing
    from .serving import (
        format_report,
        format_sweep,
        get_scenario,
        load_sweep,
        report,
        simulate,
        timeline_spans,
    )

    args = build_serve_parser().parse_args(argv)
    name = args.scenario or ("overload" if args.smoke else "steady")
    try:
        scenario = get_scenario(name)
        if args.workers:
            if args.workers < 0:
                raise ValueError(f"--workers must be positive, got {args.workers}")
            scenario = dataclasses.replace(scenario, workers=args.workers)
        if args.load:
            if args.load < 0:
                raise ValueError(f"--load must be positive, got {args.load}")
            scenario = scenario.with_load(args.load)
        if args.requests <= 0:
            raise ValueError(f"--requests must be positive, got {args.requests}")
        result = simulate(scenario, args.requests, args.seed)
    except ValueError as exc:
        return _usage_error(exc)

    doc = report(result)
    print(format_report(result))
    if args.verbose:
        print()
        print(_json.dumps(doc, indent=2))
    if args.sweep:
        print("\ngoodput vs offered load (same seed, load is the only "
              "variable):\n")
        print(format_sweep(load_sweep(scenario, args.requests, args.seed)))

    if args.trace_out:
        spans = timeline_spans(result)
        trace_path = Path(args.trace_out)
        obs_tracing.export_chrome_trace(trace_path, spans)
        print(f"\ntrace written to {trace_path} "
              f"({len(spans)} events; load in Perfetto / chrome://tracing)")

    if args.profile:
        from . import profiler
        from .serving import profile_summary
        record = profiler.make_record(
            "serving",
            {"scenario": scenario.name, "requests": args.requests,
             "seed": args.seed, "load": scenario.load,
             "workers": scenario.workers},
            profile_summary(result))
        profiler.append_record(Path(args.history), record)
        print(f"\nhistory: appended serving record {record['digest'][:12]} "
              f"to {args.history}")

    if args.smoke:
        failures = []
        rerun = simulate(scenario, args.requests, args.seed)
        if rerun.ledger_digest() != result.ledger_digest():
            failures.append("determinism: same-seed rerun produced a "
                            "different ledger digest")
        if doc["outcomes"]["corrupt-served"]:
            failures.append(f"corruption containment: "
                            f"{doc['outcomes']['corrupt-served']} corrupted "
                            f"result(s) served to tenants")
        worst = max((row["p99_slo_ratio"] for row in doc["per_tenant"]
                     if row["completed"]), default=0.0)
        if worst > 1.0:
            failures.append(f"SLO: admitted p99 reached {worst:.2f}x the "
                            f"tenant SLO (gate 1.0x)")
        accounted = sum(doc["outcomes"].values())
        if accounted != args.requests or doc["outcomes"]["pending"]:
            failures.append(f"accounting: {accounted}/{args.requests} "
                            f"requests typed, "
                            f"{doc['outcomes']['pending']} pending")
        if failures:
            print("\nserve smoke FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return EXIT_FINDINGS
        print(f"\nserve smoke: determinism OK, corruption containment OK, "
              f"SLO OK (worst p99 {worst:.2f}x), accounting OK")
    return EXIT_CLEAN


def build_profile_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench profile``."""
    from .profiler import CONFIGS, DEFAULT_CONFIG, KERNEL_NAMES

    ap = argparse.ArgumentParser(
        prog="repro-bench profile",
        description="Nsight-Compute-analog profiler: derive per-kernel "
                    "counters, roofline classification and ranked bottleneck "
                    "attribution for the registered kernels; see "
                    "docs/PROFILER.md",
    )
    ap.add_argument("--config", default=DEFAULT_CONFIG,
                    help=f"named profile config (default {DEFAULT_CONFIG}); "
                         f"choices: {sorted(CONFIGS)}")
    ap.add_argument("--kernel", action="append", default=None,
                    help="restrict to this kernel (repeatable); choices: "
                         f"{sorted(KERNEL_NAMES)}")
    ap.add_argument("--top", type=int, default=3,
                    help="bottlenecks to attribute per kernel (default 3)")
    ap.add_argument("--json", type=str, default="",
                    help="also write the full profile + roofline document "
                         "here as JSON")
    ap.add_argument("--history", type=str,
                    default="results/profile_history.jsonl",
                    help="append-only run-history store (default "
                         "results/profile_history.jsonl)")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append this run to the history store")
    ap.add_argument("--baseline", type=str,
                    default="tools/profile_baseline.json",
                    help="gated-counter baseline (default "
                         "tools/profile_baseline.json)")
    ap.add_argument("--check", action="store_true",
                    help="fail (exit 1) when any kernel regresses past the "
                         "baseline tolerance on a gated counter")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run's counters")
    ap.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                    help="diff two kernels of this config side by side")
    ap.add_argument("--diff-runs", nargs=2, type=int, metavar=("I", "J"),
                    default=None,
                    help="diff two kernel-profile history records by index "
                         "(negative indexes count from the latest)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI gate: all kernels classified, roofline "
                         "agreement on the gated configs, bit-stable "
                         "history digests, baseline check when present")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="also print ranked bottleneck attribution per kernel")
    return ap


def _profile_main(argv) -> int:
    """``profile`` subcommand: exit 0 clean, 1 on failed gates or
    regressions, 2 on unknown configs/kernels."""
    import json as _json
    from pathlib import Path

    from . import profiler
    from .profiler import CONFIGS, roofline_agreement, roofline_doc
    from .profiler.report import bottleneck_lines, roofline_summary

    args = build_profile_parser().parse_args(argv)
    try:
        if args.config not in CONFIGS:
            raise ValueError(f"unknown config {args.config!r}; valid "
                             f"choices: {sorted(CONFIGS)}")
        config = CONFIGS[args.config]
        profiles = profiler.profile_all(config, kernels=args.kernel,
                                        top=args.top)
    except ValueError as exc:
        return _usage_error(exc)

    print(f"profile config {config.name}: seq={config.seq} head={config.head} "
          f"V={config.v} density={config.density} seed={config.seed}\n")
    print(profiler.profile_table(profiles))
    doc = roofline_doc(profiles)
    print()
    print(roofline_summary(doc))
    if args.verbose:
        print("\nwhat to fix first:\n")
        for line in bottleneck_lines(profiles):
            print(line)

    if args.diff:
        a, b = args.diff
        try:
            _validate_names([a, b], profiles, "kernels")
        except ValueError as exc:
            return _usage_error(exc)
        print(f"\ndiff {a} vs {b}:\n")
        print(profiler.diff_kernels(profiles[a], profiles[b]))

    if args.json:
        payload = {
            "config": config.as_dict(),
            "kernels": {n: p.counters() for n, p in sorted(profiles.items())},
            "roofline": doc,
        }
        Path(args.json).write_text(
            _json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"\nprofile document written to {args.json}")

    history_path = Path(args.history)
    record = None
    if not args.no_history and args.kernel is None:
        record = profiler.make_record(
            "kernel-profile", config.as_dict(),
            {"kernels": {n: p.counters() for n, p in sorted(profiles.items())}})
        profiler.append_record(history_path, record)
        print(f"\nhistory: appended {record['digest'][:12]} to {history_path}")

    if args.diff_runs:
        records = profiler.query(profiler.load_history(history_path),
                                 kind="kernel-profile")
        i, j = args.diff_runs
        try:
            ra, rb = records[i], records[j]
        except IndexError:
            return _usage_error(f"--diff-runs {i} {j}: history has "
                                f"{len(records)} kernel-profile record(s)")
        print(f"\ndiff history runs {i} ({ra['digest'][:12]}) vs "
              f"{j} ({rb['digest'][:12]}):\n")
        print(profiler.diff_records(ra, rb))

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        if args.kernel is not None:
            return _usage_error("--update-baseline needs a full sweep, not "
                                "a --kernel subset")
        profiler.write_baseline(
            baseline_path,
            profiler.baseline_from_profiles(profiles, config.name))
        print(f"baseline written to {baseline_path}")

    failures: List[str] = []
    if args.check or (args.smoke and baseline_path.exists()):
        if not baseline_path.exists():
            return _usage_error(f"baseline {baseline_path} does not exist "
                                f"(create it with --update-baseline)")
        baseline = profiler.load_baseline(baseline_path)
        regressions = profiler.check_profiles(profiles, baseline,
                                              config=config.name)
        from .obs import metrics as obs_metrics
        obs_metrics.counter_add("profiler.check.regressions",
                                len(regressions))
        if regressions:
            print(f"\nbaseline check FAILED "
                  f"(tolerance {baseline.get('tolerance_pct')}%):",
                  file=sys.stderr)
            for r in regressions:
                change = (f" ({r['change_pct']:+.1f}%)"
                          if r["change_pct"] is not None else "")
                print(f"  - {r['kernel']}: {r['counter']} "
                      f"{r['baseline']} -> {r['current']}{change}",
                      file=sys.stderr)
            failures.append(f"{len(regressions)} counter regression(s) "
                            f"against {baseline_path}")
        else:
            print(f"\nbaseline check OK ({len(baseline['kernels'])} kernels "
                  f"within {baseline.get('tolerance_pct')}%)")

    if args.smoke:
        if args.kernel is None and len(profiles) != len(profiler.KERNEL_NAMES):
            failures.append(f"coverage: {len(profiles)}/"
                            f"{len(profiler.KERNEL_NAMES)} kernels profiled")
        unclassified = [n for n, p in profiles.items()
                        if p.classification not in ("compute", "memory",
                                                    "latency")]
        if unclassified:
            failures.append(f"classification: {unclassified}")
        mismatched = roofline_agreement(profiles)
        if mismatched:
            failures.append(f"roofline agreement: {mismatched} classified "
                            f"against the two-ceiling prediction")
        if record is not None:
            same = profiler.query(profiler.load_history(history_path),
                                  kind="kernel-profile",
                                  config_digest=record["config_digest"])
            bad = profiler.validate_record(same[-1]) if same else ["missing"]
            if bad:
                failures.append(f"history: last record invalid: {bad}")
            if len(same) >= 2 and same[-1]["digest"] != same[-2]["digest"]:
                failures.append("history: consecutive same-config runs "
                                "produced different digests (bit-stability)")
        if failures:
            print("\nprofile smoke FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return EXIT_FINDINGS
        print(f"\nprofile smoke: {len(profiles)} kernels classified, "
              f"roofline agreement OK, history bit-stable")
    return EXIT_FINDINGS if failures else EXIT_CLEAN


def _topology(args):
    if args.smtx:
        return read_smtx(args.smtx)
    rng = np.random.default_rng(args.seed)
    return generate_topology((args.rows, args.cols), args.sparsity, rng)


def bench_spmm(csr, v: int, n: int, profile: bool = False, only=None) -> List[Dict[str, object]]:
    """SpMM comparison rows + guideline reports for one topology.

    ``only`` restricts the table to the named kernels (see
    ``SPMM_BENCH_KERNELS``); unknown names raise ``ValueError`` listing
    the valid choices.
    """
    if only is not None:
        _validate_names(only, SPMM_BENCH_KERNELS, "kernels")
    rng = np.random.default_rng(1)
    a = cvse_from_csr_topology(csr, v, rng)
    ell = blocked_ell_matching(a, rng)
    m, k = a.shape
    dense = DenseGemmKernel()
    t_dense = dense._model.estimate(dense.stats_for_shape(m, k, n)).time_us

    kernels = (
        [("octet", "mma (octet)", OctetSpmmKernel()), ("wmma", "wmma", WmmaSpmmKernel())]
        if v >= 2
        else []
    )
    kernels.append(("fpu", "fpu (sputnik)", FpuSpmmKernel()))
    rows = [{"kernel": "cublasHgemm", "time_us": round(t_dense, 2), "speedup": 1.0}]
    reports = []
    for key, name, kern in kernels:
        if only is not None and key not in only:
            continue
        st = kern.stats_for(a, n)
        est = kern._model.estimate(st)
        rows.append({"kernel": name, "time_us": round(est.time_us, 2),
                     "speedup": round(t_dense / est.time_us, 3)})
        rep = profile_kernel(st, kern._model)
        rep.name = name
        reports.append(rep)
    if only is None or "blocked-ell" in only:
        bk = BlockedEllSpmmKernel()
        st = bk.stats_for(ell, n)
        est = bk._model.estimate(st)
        rows.append({"kernel": "blocked-ELL", "time_us": round(est.time_us, 2),
                     "speedup": round(t_dense / est.time_us, 3)})
        rep = profile_kernel(st, bk._model)
        rep.name = "blocked-ELL"
        reports.append(rep)
    if profile:
        rows.append({"kernel": "", "time_us": "", "speedup": ""})
    return rows, reports


def bench_sddmm(csr, v: int, k: int, profile: bool = False, only=None):
    """SDDMM comparison rows + guideline reports for one topology.

    ``only`` restricts the table to the named kernels (see
    ``SDDMM_BENCH_KERNELS``); unknown names raise ``ValueError``.
    """
    if only is not None:
        _validate_names(only, SDDMM_BENCH_KERNELS, "kernels")
    rng = np.random.default_rng(1)
    cv = cvse_from_csr_topology(csr, v, rng)
    mask = ColumnVectorSparseMatrix(cv.shape, v, cv.row_ptr, cv.col_idx, None)
    m, n = mask.shape
    dense = DenseGemmKernel()
    t_dense = dense._model.estimate(dense.stats_for_shape(m, k, n)).time_us

    rows = [{"kernel": "cublasHgemm", "time_us": round(t_dense, 2), "speedup": 1.0}]
    reports = []
    for key, name, kern in (
        ("reg", "mma (reg)", OctetSddmmKernel(variant="reg")),
        ("shfl", "mma (shfl)", OctetSddmmKernel(variant="shfl")),
        ("arch", "mma (arch)", OctetSddmmKernel(variant="arch")),
        ("wmma", "wmma", WmmaSddmmKernel()),
        ("fpu", "fpu (sputnik)", FpuSddmmKernel()),
    ):
        if only is not None and key not in only:
            continue
        st = kern.stats_for(mask, k)
        est = kern._model.estimate(st)
        rows.append({"kernel": name, "time_us": round(est.time_us, 2),
                     "speedup": round(t_dense / est.time_us, 3)})
        rep = profile_kernel(st, kern._model)
        rep.name = name
        reports.append(rep)
    return rows, reports


def build_analyze_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro-bench analyze``."""
    from pathlib import Path

    from .analysis import RULES

    ap = argparse.ArgumentParser(
        prog="repro-bench analyze",
        description="Run the whole-repo static analysis (contract lints + "
                    "semantic passes) with baseline enforcement; see "
                    "docs/ANALYSIS.md",
    )
    ap.add_argument("--rule", action="append", default=None, metavar="ID",
                    help="run only this rule (repeatable); "
                         f"choices: {sorted(RULES)}")
    ap.add_argument("--repo", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repository root (default: this checkout)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline file (default: <repo>/tools/"
                         "analysis_baseline.json)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to exactly the current "
                         "findings and exit 0")
    ap.add_argument("--json", type=str, default="", metavar="PATH",
                    help="write the findings as JSON here")
    ap.add_argument("--sarif", type=str, default="", metavar="PATH",
                    help="write a SARIF 2.1.0 report here")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    return ap


def _analyze_main(argv) -> int:
    """``analyze`` subcommand: exit 0 clean (new findings none), 1 on new
    findings, 2 on bad invocation."""
    from pathlib import Path

    from .analysis import (
        RULES,
        diff_baseline,
        load_baseline,
        run_analysis,
        to_json,
        to_sarif,
        write_baseline,
    )

    args = build_analyze_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(rid) for rid in RULES)
        for rid in sorted(RULES):
            spec = RULES[rid]
            print(f"{rid:<{width}}  [{spec.severity}] {spec.description}")
        return EXIT_CLEAN

    repo = args.repo
    if not (repo / "src" / "repro").is_dir():
        return _usage_error(f"{repo} has no src/repro package")
    baseline_path = args.baseline or repo / "tools" / "analysis_baseline.json"

    try:
        findings = run_analysis(repo, args.rule)
        fingerprints = load_baseline(Path(baseline_path))
    except ValueError as exc:
        return _usage_error(exc)

    if args.update_baseline:
        write_baseline(Path(baseline_path), findings)
        print(f"analyze: baseline updated with {len(findings)} finding(s) "
              f"-> {baseline_path}")
        return EXIT_CLEAN

    diff = diff_baseline(findings, fingerprints)
    grandfathered = {f.fingerprint for f in diff.grandfathered}
    for finding in diff.new:
        print(finding.render())
    for finding in diff.grandfathered:
        print(f"{finding.render()}  [grandfathered]")
    if diff.stale:
        print(f"analyze: {len(diff.stale)} stale baseline entr"
              f"{'y' if len(diff.stale) == 1 else 'ies'} — fixed findings; "
              "run --update-baseline to burn them down")

    if args.json:
        Path(args.json).write_text(to_json(findings, grandfathered))
    if args.sarif:
        Path(args.sarif).write_text(to_sarif(findings, grandfathered))

    ran = len(args.rule) if args.rule else len(RULES)
    print(f"analyze: {ran} rule(s), {len(diff.new)} new finding(s), "
          f"{len(diff.grandfathered)} grandfathered")
    return EXIT_FINDINGS if diff.new else EXIT_CLEAN


def main(argv=None) -> int:
    """``repro-bench`` entry point (``sanitize`` dispatches the sanitizer)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        return _analyze_main(argv[1:])
    if argv and argv[0] == "sanitize":
        return _sanitize_main(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_main(argv[1:])
    if argv and argv[0] == "obs":
        return _obs_main(argv[1:])
    if argv and argv[0] == "plans":
        return _plans_main(argv[1:])
    if argv and argv[0] == "memo":
        return _memo_main(argv[1:])
    if argv and argv[0] == "merge":
        return _merge_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        csr = _topology(args)
    except (OSError, ValueError) as exc:
        print(f"error reading matrix: {exc}", file=sys.stderr)
        return 2
    v = args.vector_length
    if csr.shape[0] * v % v:
        print("rows must divide by V", file=sys.stderr)
        return 2
    print(
        f"matrix: {csr.shape[0]}x{csr.shape[1]} topology, sparsity {csr.sparsity:.1%}, "
        f"V={v} -> logical {csr.shape[0] * v}x{csr.shape[1]}"
    )
    try:
        if args.op == "spmm":
            rows, reports = bench_spmm(csr, v, args.N, args.profile, only=args.kernel)
        else:
            rows, reports = bench_sddmm(csr, v, args.K, args.profile, only=args.kernel)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.op == "spmm":
        print(f"\nSpMM, N={args.N} (times on the simulated V100):\n")
    else:
        print(f"\nSDDMM, K={args.K} (times on the simulated V100):\n")
    print(format_table([r for r in rows if r["kernel"]]))
    if args.profile:
        print("\nfive-guideline profile (Table 2/3 layout):\n")
        print(format_table(guidelines_table(reports)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
