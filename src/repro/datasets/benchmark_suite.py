"""Benchmark construction per §7.1.1 (Figure 16).

Given a DLMC topology at sparsity S:

* **CVSE benchmark** — reuse ``csrRowPtr``/``csrColInd`` and draw a
  random V-vector per indexed position (the logical row count becomes
  ``rows x V``);
* **Blocked-ELL benchmark** — block size = V, blocks per block row
  matched to the same sparsity, uniform-random block columns;
* dense operands ``B`` (SpMM) or ``A``/``B`` (SDDMM) drawn uniform.

The SpMM problem is ``A[MxK] @ B[KxN]`` with A the sparse benchmark and
N in {64, 128, 256}; the SDDMM problem is ``A[MxK] @ B[KxN] ∘ C`` with
C the sparse benchmark and K in {64, 128, 256}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.conversions import blocked_ell_matching, cvse_from_csr_topology
from ..formats.cvse import ColumnVectorSparseMatrix
from ..perfmodel import memo
from .dlmc import DlmcEntry

__all__ = ["SpmmProblem", "SddmmProblem", "build_spmm_problem", "build_sddmm_problem"]

#: The paper's dense-dimension grid.
N_SIZES: Tuple[int, ...] = (64, 128, 256)
K_SIZES: Tuple[int, ...] = (64, 128, 256)


@dataclass
class SpmmProblem:
    """One Figure-17 data point: sparse A, matched Blocked-ELL, dense B."""

    entry: DlmcEntry
    vector_length: int
    n: int
    a_cvse: ColumnVectorSparseMatrix
    a_ell: BlockedEllMatrix
    b: Optional[np.ndarray]

    @property
    def m(self) -> int:
        return self.a_cvse.shape[0]

    @property
    def k(self) -> int:
        return self.a_cvse.shape[1]

    def dense_a(self) -> np.ndarray:
        return self.a_cvse.to_dense(np.float16)


@dataclass
class SddmmProblem:
    """One Figure-19 data point: dense A/B, sparse output mask C."""

    entry: DlmcEntry
    vector_length: int
    k: int
    mask: ColumnVectorSparseMatrix
    a: Optional[np.ndarray]
    b: Optional[np.ndarray]

    @property
    def m(self) -> int:
        return self.mask.shape[0]

    @property
    def n(self) -> int:
        return self.mask.shape[1]


@memo.memoised_rng("problem")
def build_spmm_problem(
    entry: DlmcEntry,
    vector_length: int,
    n: int,
    rng: Optional[np.random.Generator] = None,
    operands: bool = True,
) -> SpmmProblem:
    """§7.1.1 SpMM benchmark: CVSE + matched Blocked-ELL + dense B.

    ``operands=False`` skips the dense-B draw (``b`` is None) for
    analytic sweeps that only consume the sparse structures.
    """
    rng = rng or np.random.default_rng(7)
    a = cvse_from_csr_topology(entry.csr, vector_length, rng)
    ell = blocked_ell_matching(a, rng)
    b = None
    if operands:
        b = rng.uniform(-1.0, 1.0, size=(a.shape[1], n)).astype(np.float16)
    return SpmmProblem(entry, vector_length, n, a, ell, b)


@memo.memoised_rng("problem")
def build_sddmm_problem(
    entry: DlmcEntry,
    vector_length: int,
    k: int,
    rng: Optional[np.random.Generator] = None,
    operands: bool = True,
) -> SddmmProblem:
    """§7.1.1 SDDMM benchmark: CVSE output mask + dense A/B.

    ``operands=False`` skips the dense-A/B draws (both None) for
    analytic sweeps that only consume the output mask.
    """
    rng = rng or np.random.default_rng(7)
    mask_vals = cvse_from_csr_topology(entry.csr, vector_length, rng)
    mask = ColumnVectorSparseMatrix(
        mask_vals.shape, vector_length, mask_vals.row_ptr, mask_vals.col_idx, None
    )
    m, n = mask.shape
    a = b = None
    if operands:
        a = rng.uniform(-1.0, 1.0, size=(m, k)).astype(np.float16)
        b = rng.uniform(-1.0, 1.0, size=(k, n)).astype(np.float16)
    return SddmmProblem(entry, vector_length, k, mask, a, b)
