"""Benchmark datasets: synthetic DLMC topologies and §7.1.1 construction."""

from .dlmc import (
    RESNET50_SHAPES,
    SPARSITIES,
    DlmcEntry,
    dlmc_suite,
    generate_topology,
    magnitude_prune,
)
from .graphs import cluster_to_vectors, gcn_layer_matrices, powerlaw_adjacency
from .benchmark_suite import (
    K_SIZES,
    N_SIZES,
    SddmmProblem,
    SpmmProblem,
    build_sddmm_problem,
    build_spmm_problem,
)

__all__ = [
    "RESNET50_SHAPES",
    "SPARSITIES",
    "DlmcEntry",
    "dlmc_suite",
    "generate_topology",
    "magnitude_prune",
    "K_SIZES",
    "N_SIZES",
    "SddmmProblem",
    "SpmmProblem",
    "build_sddmm_problem",
    "build_spmm_problem",
    "cluster_to_vectors",
    "gcn_layer_matrices",
    "powerlaw_adjacency",
]
