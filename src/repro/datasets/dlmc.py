"""Synthetic stand-in for the Deep Learning Matrix Collection (DLMC).

The paper benchmarks on "the sparse matrices from ResNet-50 with
magnitude pruning in the DLMC dataset" [22].  The dataset itself is a
download we substitute (DESIGN.md): what the kernels care about is the
*topology* — problem shapes of ResNet-50's convolutions-as-GEMM and the
row-imbalance statistics magnitude pruning produces — so we generate
matrices by magnitude-pruning Gaussian weights, which reproduces the
non-uniform per-row nonzero distributions of the real collection
(rows corresponding to important filters stay denser).

Shapes follow the ResNet-50 bottleneck blocks as im2col GEMMs
(K = C_in * kh * kw); the six sparsity levels are the paper's
{0.5, 0.7, 0.8, 0.9, 0.95, 0.98}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..formats.csr import CSRMatrix
from ..perfmodel import memo

__all__ = [
    "DlmcEntry",
    "RESNET50_SHAPES",
    "SPARSITIES",
    "magnitude_prune",
    "generate_topology",
    "dlmc_suite",
]

#: (rows, cols) of representative ResNet-50 weight GEMMs (output
#: channels x C_in*kh*kw), bottleneck 1x1 and 3x3 layers.
RESNET50_SHAPES: Tuple[Tuple[int, int], ...] = (
    (64, 256),
    (128, 512),
    (256, 512),
    (256, 1024),
    (512, 1024),
    (512, 2048),
    (256, 2304),    # 3x3 conv, 256 x (256*9)
    (512, 4608),    # 3x3 conv, 512 x (512*9)
    (1024, 512),
    (2048, 1024),   # the profiling benchmark of §3.1/§7.2.2
)

#: The paper's sparsity grid (Figures 4, 6, 17, 19).
SPARSITIES: Tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.98)


@dataclass(frozen=True)
class DlmcEntry:
    """One benchmark matrix: a CSR topology plus its metadata."""

    name: str
    shape: Tuple[int, int]
    sparsity: float
    csr: CSRMatrix

    @property
    def nnz(self) -> int:
        return self.csr.nnz


def magnitude_prune(
    weights: np.ndarray, sparsity: float
) -> np.ndarray:
    """Zero the smallest-|w| entries globally, like magnitude pruning.

    Returns a boolean keep-mask.  Global (not per-row) thresholding is
    what produces DLMC's characteristic row imbalance.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    flat = np.abs(weights).ravel()
    k = int(round(sparsity * flat.size))
    if k == 0:
        return np.ones(weights.shape, dtype=bool)
    # threshold at the k-th smallest magnitude
    thresh = np.partition(flat, k - 1)[k - 1]
    keep = np.abs(weights) > thresh
    # break ties deterministically to hit the target count exactly
    deficit = (flat.size - k) - int(keep.sum())
    if deficit > 0:
        ties = np.argwhere((np.abs(weights) == thresh) & ~keep)
        for idx in ties[:deficit]:
            keep[tuple(idx)] = True
    return keep


def generate_topology(
    shape: Tuple[int, int],
    sparsity: float,
    rng: Optional[np.random.Generator] = None,
) -> CSRMatrix:
    """Magnitude-pruned Gaussian weight matrix as a CSR topology.

    Per-row *and* per-column variances are themselves random: filters
    differ in importance (heavy-tailed row-nnz distribution) and so do
    input channels — an important channel keeps weights across many
    filters, which is the column correlation that gives the real DLMC
    matrices their cross-row reuse (validated against the trace-driven
    cache simulation in ``tests/test_trace_validation.py``).
    """
    rng = rng or np.random.default_rng(0)
    rows, cols = shape
    row_scale = rng.lognormal(mean=0.0, sigma=0.35, size=(rows, 1))
    col_scale = rng.lognormal(mean=0.0, sigma=0.6, size=(1, cols))
    w = rng.normal(size=shape) * row_scale * col_scale
    keep = magnitude_prune(w, sparsity)
    dense = np.where(keep, w, 0.0).astype(np.float32)
    return CSRMatrix.from_dense(dense, dtype=np.float16)


@memo.memoised("suite")
def dlmc_suite(
    shapes: Sequence[Tuple[int, int]] = RESNET50_SHAPES,
    sparsities: Sequence[float] = SPARSITIES,
    seed: int = 2021,
) -> List[DlmcEntry]:
    """The full benchmark suite: every shape at every sparsity."""
    out: List[DlmcEntry] = []
    rng = np.random.default_rng(seed)
    for shape in shapes:
        for s in sparsities:
            csr = generate_topology(shape, s, rng)
            out.append(
                DlmcEntry(
                    name=f"rn50_{shape[0]}x{shape[1]}_s{int(round(s * 100))}",
                    shape=shape,
                    sparsity=s,
                    csr=csr,
                )
            )
    return out
