"""Graph-adjacency workloads for SpMM (the §2.2 GCN motivation).

"The forward propagation of Graph Convolutional Neural Networks
naturally adopts sparsity in the graph adjacent matrix" — the paper's
other natural SpMM consumer (it cites the authors' own fuseGNN [3]).
This module builds synthetic graph adjacencies with realistic degree
distributions and the vector-aligned *node clustering* that makes them
CVSE-encodable:

* :func:`powerlaw_adjacency` — a Barabási-Albert graph's (row-
  normalised) adjacency as CSR;
* :func:`cluster_to_vectors` — group nodes into V-blocks by BFS order
  so neighbourhoods overlap within a vector row (the graph analogue of
  the vector constraint: a V-group attends to the union of its
  members' neighbourhoods);
* :func:`gcn_layer_matrices` — the Â X W operands of one GCN layer.
"""

from __future__ import annotations

from typing import Optional, Tuple

import networkx as nx
import numpy as np

from ..formats.csr import CSRMatrix
from ..formats.cvse import ColumnVectorSparseMatrix

__all__ = [
    "powerlaw_adjacency",
    "cluster_to_vectors",
    "gcn_layer_matrices",
]


def powerlaw_adjacency(
    num_nodes: int,
    attachment: int = 4,
    seed: int = 0,
    normalise: bool = True,
) -> CSRMatrix:
    """Symmetric-normalised adjacency (with self loops) of a BA graph.

    ``Â = D^-1/2 (A + I) D^-1/2`` — the standard GCN propagation
    matrix; heavy-tailed degrees give exactly the row imbalance that
    stresses the kernels' load balancing.
    """
    if num_nodes <= attachment:
        raise ValueError("num_nodes must exceed the attachment count")
    g = nx.barabasi_albert_graph(num_nodes, attachment, seed=seed)
    a = nx.to_scipy_sparse_array(g, format="csr", dtype=np.float64)
    a = a + a.T.multiply(a.T > a) - a.multiply(a.T > a)  # symmetrise
    a = a.tocsr()
    a.setdiag(1.0)
    if normalise:
        deg = np.asarray(a.sum(axis=1)).ravel()
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
        a = a.multiply(inv_sqrt[:, None]).multiply(inv_sqrt[None, :]).tocsr()
    return CSRMatrix.from_scipy(a, dtype=np.float16)


def cluster_to_vectors(
    adj: CSRMatrix,
    vector_length: int,
    pad: bool = True,
) -> Tuple[ColumnVectorSparseMatrix, np.ndarray]:
    """Encode an adjacency in CVSE by BFS-ordering node groups.

    Nodes are re-ordered by BFS from the highest-degree node so that
    consecutive nodes share neighbourhoods, then each ``V``-group of
    rows becomes one vector row whose column set is the union of its
    members' neighbourhoods (absent members contribute explicit zeros
    — the grain-size storage cost the paper trades for reuse).
    """
    n = adj.shape[0]
    sp = adj.to_scipy()
    g = nx.from_scipy_sparse_array(sp)
    root = int(np.argmax(adj.row_nnz()))
    order = [root] + [v for _, v in nx.bfs_edges(g, root)]
    seen = set(order)
    order += [v for v in range(n) if v not in seen]
    perm = np.asarray(order, dtype=np.int64)
    dense = adj.to_dense(np.float32)[perm][:, perm]
    if pad and n % vector_length:
        extra = vector_length - n % vector_length
        dense = np.vstack([dense, np.zeros((extra, n), dtype=np.float32)])
    enc = ColumnVectorSparseMatrix.from_dense(dense.astype(np.float16), vector_length)
    return enc, perm


def gcn_layer_matrices(
    num_nodes: int,
    in_features: int,
    vector_length: int = 4,
    attachment: int = 4,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[ColumnVectorSparseMatrix, np.ndarray, CSRMatrix, np.ndarray]:
    """(Â in CVSE — node order permuted, features X in the *permuted*
    order, raw CSR Â in the original order, permutation) of one layer.

    ``cvse @ x`` equals ``(adj @ x_original)[perm]``; undo with
    ``out[inv_perm]`` where ``inv_perm = np.argsort(perm)``.
    """
    rng = rng or np.random.default_rng(seed)
    adj = powerlaw_adjacency(num_nodes, attachment, seed)
    cvse, perm = cluster_to_vectors(adj, vector_length)
    x_orig = rng.uniform(-1.0, 1.0, size=(num_nodes, in_features)).astype(np.float16)
    return cvse, x_orig[perm], adj, perm
