"""ASCII chart rendering for the figure experiments.

The paper's figures are speedup-vs-sparsity line charts and stacked
latency bars; this module renders the regenerated data as terminal
charts so ``repro-experiments`` output *looks* like the figures it
reproduces (no plotting dependency available offline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["line_chart", "bar_chart", "render_fig17", "render_fig20"]

_MARKS = "ox+*#@%&"


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
    title: str = "",
    hline: Optional[float] = 1.0,
) -> str:
    """Plot named (x, y) series on one ASCII grid.

    ``hline`` draws a reference level (the speedup-1.0 line of
    Figures 17/19).  X positions are rank-scaled (the paper's sparsity
    axis is categorical: 0.5, 0.7, 0.8, 0.9, 0.95, 0.98).
    """
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts]
    if not xs or not ys:
        return "(no data)"
    y_min = min(0.0, min(ys))
    y_max = max(max(ys), hline or 0.0) * 1.05
    span = max(1e-9, y_max - y_min)

    grid = [[" "] * width for _ in range(height)]

    def col(x) -> int:
        return int(round(xs.index(x) / max(1, len(xs) - 1) * (width - 1)))

    def row(y) -> int:
        return int(round((y_max - y) / span * (height - 1)))

    if hline is not None and y_min <= hline <= y_max:
        r = row(hline)
        for c in range(width):
            grid[r][c] = "·"

    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = _MARKS[i % len(_MARKS)]
        legend.append(f"{mark}={name}")
        pts = sorted(pts)
        # connect consecutive points with interpolated marks
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            c0, c1 = col(x0), col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                grid[row(y)][c] = mark if c in (c0, c1) else "-" if grid[row(y)][c] == " " else grid[row(y)][c]
        for x, y in pts:
            grid[row(y)][col(x)] = mark

    lines = []
    if title:
        lines.append(title)
    for r, grow in enumerate(grid):
        y_val = y_max - r / (height - 1) * span
        label = f"{y_val:6.2f} |" if r % 3 == 0 else "       |"
        lines.append(label + "".join(grow))
    axis = "       +" + "-" * width
    lines.append(axis)
    ticks = "        " + "  ".join(str(x) for x in xs)
    lines.append(ticks)
    lines.append("        " + "  ".join(legend))
    return "\n".join(lines)


def bar_chart(
    bars: Dict[str, Dict[str, float]],
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal stacked bars: ``{bar_label: {segment: value}}``.

    Used for the Figure 20 latency breakdowns.
    """
    if not bars:
        return "(no data)"
    total_max = max(sum(segs.values()) for segs in bars.values()) or 1.0
    seg_names: List[str] = []
    for segs in bars.values():
        for s in segs:
            if s not in seg_names:
                seg_names.append(s)
    marks = {s: _MARKS[i % len(_MARKS)] for i, s in enumerate(seg_names)}
    label_w = max(len(k) for k in bars)
    lines = [title] if title else []
    for name, segs in bars.items():
        bar = ""
        for s in seg_names:
            v = segs.get(s, 0.0)
            bar += marks[s] * max(0, int(round(v / total_max * width)))
        total = sum(segs.values())
        lines.append(f"{name.ljust(label_w)} |{bar.ljust(width)}| {total:8.1f}")
    lines.append("legend: " + "  ".join(f"{m}={s}" for s, m in marks.items()))
    return "\n".join(lines)


def render_fig17(rows: Sequence[dict], v: int, n: int) -> str:
    """One Figure-17 panel (fixed V, N) as an ASCII line chart."""
    panel = [r for r in rows if r["V"] == v and r["N"] == n]
    series: Dict[str, list] = {}
    for kernel in ("mma", "fpu", "blocked-ELL"):
        pts = [(r["sparsity"], r[kernel]) for r in panel if r.get(kernel)]
        if pts:
            series[kernel] = pts
    return line_chart(series, title=f"Fig 17 panel: V={v}, N={n} (speedup over cublasHgemm)")


def render_fig20(rows: Sequence[dict], l: int, k: int) -> str:
    """One Figure-20 panel as stacked latency bars."""
    panel = [r for r in rows if r["l"] == l and r["k"] == k]
    bars = {
        r["config"]: {s: r[s] for s in ("QK^T∘C", "Softmax", "AV", "Others")}
        for r in panel
    }
    return bar_chart(bars, title=f"Fig 20 panel: l={l}, k={k} (µs per head)")
