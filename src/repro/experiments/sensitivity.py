"""Sensitivity of the reproduced claims to the calibration constants.

The model carries a handful of fitted constants (docs/PERFMODEL.md's
calibration ledger).  A reproduction is only convincing if the paper's
*qualitative* claims survive perturbing them; this module re-judges the
core SpMM claims under ±20% variations of the most influential knobs:

* the L2 bandwidth figure,
* the sparse kernels' efficiency constant,
* the latency model's overlap slack,
* the launch overhead.

``run()`` returns one row per (knob, direction) with the claim verdicts,
plus a ``robust`` summary of claims that held under every perturbation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator


from ..hardware import config as hw_config
from ..kernels.spmm_octet import OctetSpmmKernel
from ..perfmodel.latency import LatencyModel
from .claims import verify
from .common import ExperimentResult
from . import fig17_spmm_speedup

__all__ = ["run", "KNOBS"]


@contextmanager
def _spec_override(**kwargs) -> Iterator[None]:
    """Temporarily replace the module-level default GPU spec."""
    original = hw_config.VOLTA_V100
    hw_config.VOLTA_V100 = original.with_overrides(**kwargs)
    try:
        yield
    finally:
        hw_config.VOLTA_V100 = original


@contextmanager
def _class_attr(obj, name: str, value) -> Iterator[None]:
    original = getattr(obj, name)
    setattr(obj, name, value)
    try:
        yield
    finally:
        setattr(obj, name, original)


def _judge(quick: bool) -> Dict[str, str]:
    res = fig17_spmm_speedup.run(
        quick=quick, vector_lengths=(2, 4, 8), n_sizes=(256,),
    )
    return {v.claim_id: v.verdict for v in verify({"fig17": res})}


#: knob name -> context-manager factory for (low, high) perturbations
KNOBS: Dict[str, Callable[[float], object]] = {
    "l2_bandwidth": lambda f: _spec_override(
        l2_bandwidth_gbs=hw_config.VOLTA_V100.l2_bandwidth_gbs * f
    ),
    "launch_overhead": lambda f: _spec_override(
        launch_overhead_us=hw_config.VOLTA_V100.launch_overhead_us * f
    ),
    "octet_efficiency": lambda f: _class_attr(
        OctetSpmmKernel, "efficiency", min(1.0, OctetSpmmKernel.efficiency * f)
    ),
    "overlap_slack": lambda f: _class_attr(
        LatencyModel, "OVERLAP_SLACK", LatencyModel.OVERLAP_SLACK * f
    ),
}


def run(quick: bool = True, factors=(0.8, 1.2)) -> ExperimentResult:
    """Re-judge the SpMM claims under calibration perturbations."""
    res = ExperimentResult(
        name="sensitivity",
        paper_artifact="calibration robustness (docs/PERFMODEL.md ledger)",
        description="SpMM claim verdicts under ±20% calibration perturbations",
    )
    baseline = _judge(quick)
    res.rows.append({"knob": "baseline", "factor": 1.0, **baseline})

    held: Dict[str, bool] = {k: v != "failed" for k, v in baseline.items()}
    for knob, make_ctx in KNOBS.items():
        for f in factors:
            with make_ctx(f):
                verdicts = _judge(quick)
            res.rows.append({"knob": knob, "factor": f, **verdicts})
            for cid, v in verdicts.items():
                held[cid] = held.get(cid, True) and v != "failed"
    res.notes["robust claims"] = sorted(c for c, ok in held.items() if ok)
    res.notes["fragile claims"] = sorted(c for c, ok in held.items() if not ok)
    return res
