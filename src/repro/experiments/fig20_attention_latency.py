"""Figure 20: self-attention latency breakdown in various setups.

Panels: (l=2048, k=64), (l=4096, k=64), (l=8192, k=64), (l=8192,
k=256); bars: dense(half) vs sparse at 90/95/98% sparsity, decomposed
into QK^T∘C, Softmax, AV and Others.  The expectations the paper
states: SpMM + sparse softmax cut the Softmax and AV terms everywhere;
the SDDMM term loses to dense at k = 64 but wins at k = 256; whole-
layer speedups reach 1.35-1.78x / 1.48-2.09x / 1.57-2.30x at
90/95/98%.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..transformer.attention import DenseAttention, SparseAttention
from ..transformer.masks import band_random_mask, mask_to_cvse
from .common import ExperimentResult

__all__ = ["run", "SETUPS"]

SETUPS: Tuple[Tuple[int, int], ...] = ((2048, 64), (4096, 64), (8192, 64), (8192, 256))
SPARSITIES = (0.9, 0.95, 0.98)


def run(
    setups: Sequence[Tuple[int, int]] = SETUPS,
    sparsities: Sequence[float] = SPARSITIES,
    vector_length: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Figure 20 (attention latency breakdowns)."""
    rng = rng or np.random.default_rng(20)
    res = ExperimentResult(
        name="fig20",
        paper_artifact="Figure 20",
        description="Self-attention latency breakdown (µs per head): dense vs sparse",
    )
    for l, k in setups:
        dense = DenseAttention(precision="half")
        # analytic estimate only: the figure discards the numerics, and
        # estimate() produces the exact timings __call__ would
        t_d = dense.estimate(l, k)
        res.rows.append(
            {
                "l": l, "k": k, "config": "dense(half)",
                "QK^T∘C": round(t_d.qk, 1), "Softmax": round(t_d.softmax, 1),
                "AV": round(t_d.av, 1), "Others": round(t_d.others, 1),
                "Total": round(t_d.total, 1), "speedup": 1.0,
            }
        )
        for s in sparsities:
            # the band must share the density budget or the three
            # sparsity levels collapse into one mask at short l (a
            # fixed 256 band alone is 12.5% density at l=2048): give
            # half the budget to the band, half to random attention.
            band = max(vector_length * 2, min(256, int(l * (1.0 - s) / 2)))
            mask = band_random_mask(l, vector_length, band, s, rng)
            att = SparseAttention(mask_to_cvse(mask, vector_length))
            t = att.estimate(l, k)
            res.rows.append(
                {
                    "l": l, "k": k, "config": f"sparse {int(s * 100)}%",
                    "QK^T∘C": round(t.qk, 1), "Softmax": round(t.softmax, 1),
                    "AV": round(t.av, 1), "Others": round(t.others, 1),
                    "Total": round(t.total, 1),
                    "speedup": round(t_d.total / t.total, 2),
                }
            )
    res.notes["paper whole-layer speedups"] = "1.35-1.78x (90%), 1.48-2.09x (95%), 1.57-2.30x (98%)"
    res.notes["paper SDDMM"] = "slower than dense at k=64, faster at k=256"
    return res
