"""Figure 19: SDDMM speedup over cublasHgemm.

Grid: V in {1, 2, 4, 8} x K in {64, 128, 256} x sparsity; kernels:
"fpu" (§6.1), "wmma" (§6.2), and the three octet variants
"mma (reg)" / "mma (shfl)" / "mma (arch)" (§6.3).  At V = 1 the octet
kernels degenerate (the paper's figure shows fpu/wmma-dominated
behaviour there) but remain runnable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.benchmark_suite import K_SIZES, build_sddmm_problem
from ..datasets.dlmc import SPARSITIES
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.sddmm_wmma import WmmaSddmmKernel
from .common import ExperimentResult, geomean, suite_for

__all__ = ["run"]

VECTOR_LENGTHS = (1, 2, 4, 8)


def run(
    quick: bool = True,
    vector_lengths: Sequence[int] = VECTOR_LENGTHS,
    k_sizes: Sequence[int] = K_SIZES,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Figure 19 (SDDMM speedup grid, geomean per cell)."""
    rng = rng or np.random.default_rng(19)
    suite = suite_for(quick, sparsities)
    hgemm = DenseGemmKernel()
    kernels = {
        "fpu": FpuSddmmKernel(),
        "wmma": WmmaSddmmKernel(),
        "mma (reg)": OctetSddmmKernel(variant="reg"),
        "mma (shfl)": OctetSddmmKernel(variant="shfl"),
        "mma (arch)": OctetSddmmKernel(variant="arch"),
    }

    res = ExperimentResult(
        name="fig19",
        paper_artifact="Figure 19",
        description="SDDMM speedup over cublasHgemm (geomean across the DLMC suite)",
    )
    for v in vector_lengths:
        for k in k_sizes:
            for s in sparsities:
                speedups = {name: [] for name in kernels}
                for entry in (e for e in suite if abs(e.sparsity - s) < 1e-9):
                    prob = build_sddmm_problem(entry, v, k, rng)
                    t_dense = hgemm._model.estimate(
                        hgemm.stats_for_shape(prob.m, k, prob.n)
                    ).time_us
                    for name, kern in kernels.items():
                        t = kern._model.estimate(kern.stats_for(prob.mask, k)).time_us
                        speedups[name].append(t_dense / t)
                row = {"V": v, "K": k, "sparsity": s}
                row.update({name: round(geomean(vals), 3) for name, vals in speedups.items()})
                res.rows.append(row)

    ratios_fpu, ratios_wmma = [], []
    for r in res.rows:
        if r["V"] >= 2:
            ratios_fpu.append(r["mma (reg)"] / r["fpu"])
            ratios_wmma.append(r["mma (reg)"] / r["wmma"])
    res.notes["mma/fpu range"] = f"{min(ratios_fpu):.2f}-{max(ratios_fpu):.2f} (paper: 1.27-3.03)"
    res.notes["mma/wmma range"] = (
        f"{min(ratios_wmma):.2f}-{max(ratios_wmma):.2f} (paper: 0.93-1.44)"
    )
    return res
