"""Figure 19: SDDMM speedup over cublasHgemm.

Grid: V in {1, 2, 4, 8} x K in {64, 128, 256} x sparsity; kernels:
"fpu" (§6.1), "wmma" (§6.2), and the three octet variants
"mma (reg)" / "mma (shfl)" / "mma (arch)" (§6.3).  At V = 1 the octet
kernels degenerate (the paper's figure shows fpu/wmma-dominated
behaviour there) but remain runnable.

As in fig17, each (entry, V) pair seeds its own child generator so the
mask build recurs — and caches — across the K loop, and the grid cells
can fan out over a process pool (``jobs``) without changing any value.
Passing an explicit ``rng`` keeps the legacy serially-threaded draws
(and forces a serial run).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.benchmark_suite import K_SIZES, build_sddmm_problem
from ..datasets.dlmc import SPARSITIES, DlmcEntry
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.sddmm_wmma import WmmaSddmmKernel
from .common import ExperimentResult, geomean, suite_for
from .pool import parallel_map
from .sharding import shard_indices

__all__ = ["run", "finalise"]

VECTOR_LENGTHS = (1, 2, 4, 8)


def _kernels() -> Dict[str, object]:
    return {
        "fpu": FpuSddmmKernel(),
        "wmma": WmmaSddmmKernel(),
        "mma (reg)": OctetSddmmKernel(variant="reg"),
        "mma (shfl)": OctetSddmmKernel(variant="shfl"),
        "mma (arch)": OctetSddmmKernel(variant="arch"),
    }


def _cell(
    args: Tuple[int, int, float, List[Tuple[int, DlmcEntry]]],
) -> Dict[str, object]:
    """One (V, K, sparsity) grid cell (module-level so pools can pickle it)."""
    v, k, s, entries = args
    hgemm = DenseGemmKernel()
    kernels = _kernels()
    speedups: Dict[str, list] = {name: [] for name in kernels}
    for ei, entry in entries:
        # child generator per (entry, V): K deliberately excluded so the
        # mask build repeats — and caches — across the K loop; the
        # analytic sweep only consumes the mask, so skip drawing A/B
        prob = build_sddmm_problem(
            entry, v, k, np.random.default_rng([19, ei, v]), operands=False
        )
        t_dense = hgemm._model.estimate(hgemm.stats_for_shape(prob.m, k, prob.n)).time_us
        for name, kern in kernels.items():
            t = kern._model.estimate(kern.stats_for(prob.mask, k)).time_us
            speedups[name].append(t_dense / t)
    row: Dict[str, object] = {"V": v, "K": k, "sparsity": s}
    row.update({name: round(geomean(vals), 3) for name, vals in speedups.items()})
    return row


def run(
    quick: bool = True,
    vector_lengths: Sequence[int] = VECTOR_LENGTHS,
    k_sizes: Sequence[int] = K_SIZES,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
    jobs: int = 1,
    shard: Optional[Tuple[int, int]] = None,
) -> ExperimentResult:
    """Regenerate Figure 19 (SDDMM speedup grid, geomean per cell).

    ``shard=(i, n)`` computes only the grid cells whose flattened index
    satisfies ``index % n == i`` (bit-identical to the corresponding
    slice of a full run); the headline notes are deferred to the merge.
    """
    if shard is not None and rng is not None:
        raise ValueError("shard requires the self-contained cell path (rng=None)")
    suite = suite_for(quick, sparsities)
    res = ExperimentResult(
        name="fig19",
        paper_artifact="Figure 19",
        description="SDDMM speedup over cublasHgemm (geomean across the DLMC suite)",
    )
    if rng is not None:
        res.rows.extend(_run_threaded(suite, vector_lengths, k_sizes, sparsities, rng))
    else:
        by_sparsity = {
            s: [(ei, e) for ei, e in enumerate(suite) if abs(e.sparsity - s) < 1e-9]
            for s in sparsities
        }
        cells = [
            (v, k, s, by_sparsity[s])
            for v in vector_lengths
            for k in k_sizes
            for s in sparsities
        ]
        if shard is not None:
            indices = shard_indices(len(cells), shard)
            res.meta["cell_total"] = len(cells)
            res.meta["cell_indices"] = indices
            res.meta["shard"] = {"index": shard[0], "total": shard[1]}
            cells = [cells[i] for i in indices]
        res.rows.extend(parallel_map(_cell, cells, jobs=jobs))

    if shard is None:
        res.notes.update(finalise(res.rows))
    return res


def finalise(rows: Sequence[Dict[str, object]]) -> Dict[str, str]:
    """Headline geomean ratios; needs the *complete* grid — sharded
    runs skip it and the merge applies it to the reassembled rows."""
    ratios_fpu, ratios_wmma = [], []
    for r in rows:
        if r["V"] >= 2:
            ratios_fpu.append(r["mma (reg)"] / r["fpu"])
            ratios_wmma.append(r["mma (reg)"] / r["wmma"])
    return {
        "mma/fpu range": (
            f"{min(ratios_fpu):.2f}-{max(ratios_fpu):.2f} (paper: 1.27-3.03)"
        ),
        "mma/wmma range": (
            f"{min(ratios_wmma):.2f}-{max(ratios_wmma):.2f} (paper: 0.93-1.44)"
        ),
    }


def _run_threaded(
    suite: List[DlmcEntry],
    vector_lengths: Sequence[int],
    k_sizes: Sequence[int],
    sparsities: Sequence[float],
    rng: np.random.Generator,
) -> List[Dict[str, object]]:
    """Legacy path: one generator threaded through every cell in order."""
    rows: List[Dict[str, object]] = []
    hgemm = DenseGemmKernel()
    kernels = _kernels()
    for v in vector_lengths:
        for k in k_sizes:
            for s in sparsities:
                speedups: Dict[str, list] = {name: [] for name in kernels}
                for entry in (e for e in suite if abs(e.sparsity - s) < 1e-9):
                    prob = build_sddmm_problem(entry, v, k, rng)
                    t_dense = hgemm._model.estimate(
                        hgemm.stats_for_shape(prob.m, k, prob.n)
                    ).time_us
                    for name, kern in kernels.items():
                        t = kern._model.estimate(kern.stats_for(prob.mask, k)).time_us
                        speedups[name].append(t_dense / t)
                row: Dict[str, object] = {"V": v, "K": k, "sparsity": s}
                row.update({name: round(geomean(vals), 3) for name, vals in speedups.items()})
                rows.append(row)
    return rows
