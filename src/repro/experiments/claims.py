"""Programmatic registry of the paper's claims, with automated verdicts.

Every quantitative claim the paper makes is registered here with a
checker that runs against the regenerated experiments; ``verify()``
returns a verdict table (the EXPERIMENTS.md ledger, but computed).
``repro-experiments --verify`` prints it.

Verdicts: ``reproduced`` (the claim's shape holds), ``partial`` (holds
with a documented quantitative gap), ``failed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .common import ExperimentResult, geomean

__all__ = ["Claim", "ClaimVerdict", "PAPER_CLAIMS", "verify"]


@dataclass
class ClaimVerdict:
    claim_id: str
    statement: str
    paper_value: str
    measured: str
    verdict: str  # reproduced | partial | failed

    def as_row(self) -> Dict[str, str]:
        return {
            "claim": self.claim_id,
            "statement": self.statement,
            "paper": self.paper_value,
            "measured": self.measured,
            "verdict": self.verdict,
        }


@dataclass
class Claim:
    """One paper claim: which experiment feeds it, how to judge it."""

    claim_id: str
    statement: str
    paper_value: str
    experiment: str
    check: Callable[[ExperimentResult], "ClaimVerdict"]


def _rows(res, **kv):
    return [r for r in res.rows if all(r.get(k) == v for k, v in kv.items())]


# --------------------------------------------------------------------- #
# checkers
# --------------------------------------------------------------------- #

def _check_spmm_vs_bell(res: ExperimentResult) -> ClaimVerdict:
    ratios = [r["mma"] / r["blocked-ELL"] for r in res.rows if r.get("mma")]
    lo, hi = min(ratios), max(ratios)
    verdict = "reproduced" if hi > 1.71 and lo > 0.9 else "partial" if hi > 1.5 else "failed"
    return ClaimVerdict("spmm-vs-bell", "octet SpMM beats Blocked-ELL",
                        "1.71-7.19x", f"{lo:.2f}-{hi:.2f}x", verdict)


def _check_spmm_vs_fpu(res: ExperimentResult) -> ClaimVerdict:
    ratios = [r["mma"] / r["fpu"] for r in res.rows if r.get("mma")]
    lo, hi = min(ratios), max(ratios)
    verdict = "reproduced" if geomean(ratios) > 1.34 else "partial" if hi > 1.34 else "failed"
    return ClaimVerdict("spmm-vs-fpu", "octet SpMM beats the FPU baseline",
                        "1.34-4.51x", f"{lo:.2f}-{hi:.2f}x", verdict)


def _crossover(res: ExperimentResult, v: int, n: int = 256) -> Optional[float]:
    pts = sorted(
        (r["sparsity"], r["mma"]) for r in _rows(res, V=v, N=n) if r.get("mma")
    )
    for s, sp in pts:
        if sp >= 1.0:
            return s
    return None


def _check_crossovers(res: ExperimentResult) -> ClaimVerdict:
    # the sparsity axis is a 6-point grid: the paper's ">80/>70/>50%"
    # bounds mean the NEXT grid point up must win.  Landing there is
    # "reproduced"; one grid notch later is "partial" (the geomean over
    # our synthetic small matrices runs conservative); two is "failed".
    tight = {2: 0.9, 4: 0.8, 8: 0.7}     # first winning grid point per paper
    loose = {2: 0.95, 4: 0.9, 8: 0.8}    # one notch of slack
    got = {v: _crossover(res, v) for v in (2, 4, 8)}
    is_tight = all(got[v] is not None and got[v] <= tight[v] for v in tight)
    is_loose = all(got[v] is not None and got[v] <= loose[v] for v in loose)
    verdict = "reproduced" if is_tight else "partial" if is_loose else "failed"
    return ClaimVerdict(
        "spmm-crossovers", "practical speedup over cublasHgemm by grain size",
        ">80/>70/>50% (V=2/4/8)",
        "/".join(f"{got[v]:.0%}" if got[v] else "-" for v in (2, 4, 8)),
        verdict,
    )


def _check_sddmm_vs_fpu(res: ExperimentResult) -> ClaimVerdict:
    ratios = [r["mma (reg)"] / r["fpu"] for r in res.rows if r["V"] >= 2]
    lo, hi = min(ratios), max(ratios)
    verdict = "reproduced" if geomean(ratios) > 1.27 else "partial" if hi > 1.27 else "failed"
    return ClaimVerdict("sddmm-vs-fpu", "octet SDDMM beats the FPU baseline",
                        "1.27-3.03x", f"{lo:.2f}-{hi:.2f}x", verdict)


def _check_sddmm_vs_wmma(res: ExperimentResult) -> ClaimVerdict:
    ratios = [r["mma (reg)"] / r["wmma"] for r in res.rows if r["V"] >= 2]
    lo, hi = min(ratios), max(ratios)
    verdict = "reproduced" if 0.9 <= geomean(ratios) and hi >= 1.2 else "partial"
    return ClaimVerdict("sddmm-vs-wmma", "octet SDDMM vs classic WMMA mapping",
                        "0.93-1.44x", f"{lo:.2f}-{hi:.2f}x", verdict)


def _check_arch_best(res: ExperimentResult) -> ClaimVerdict:
    ok = all(
        r["mma (arch)"] >= r["mma (reg)"] - 1e-9 and r["mma (arch)"] >= r["mma (shfl)"] - 1e-9
        for r in res.rows
    )
    return ClaimVerdict("sddmm-arch-best", "the SWITCH architecture variant is consistently best",
                        "consistent", "consistent" if ok else "violated",
                        "reproduced" if ok else "failed")


def _check_bell_stalls(res: ExperimentResult) -> ClaimVerdict:
    row = res.rows[0]
    ni = float(row["No Instruction"].rstrip("%"))
    verdict = "reproduced" if 35 <= ni <= 52 else "partial" if 25 <= ni <= 55 else "failed"
    return ClaimVerdict("bell-icache", "Blocked-ELL block-4 stalls on instruction fetch",
                        "42.6%", f"{ni:.1f}%", verdict)


def _check_fig5(res: ExperimentResult) -> ClaimVerdict:
    g = [r for r in res.rows if r["kernel"] == "GEMM"]
    s = [r for r in res.rows if r["kernel"] == "SpMM"]
    g_red = 1 - g[1]["L1 missed sectors"] / g[0]["L1 missed sectors"]
    s_red = 1 - s[1]["L1 missed sectors"] / s[0]["L1 missed sectors"]
    ok = g_red > s_red and 0.65 < g_red < 0.85 and 0.35 < s_red < 0.65
    return ClaimVerdict("fig5-reuse", "GEMM gains more from reduced precision than SpMM",
                        "77% vs 49% miss reduction", f"{g_red:.0%} vs {s_red:.0%}",
                        "reproduced" if ok else "partial" if g_red > s_red else "failed")


def _check_fig18(res: ExperimentResult) -> ClaimVerdict:
    ok = all(r["ratio"] >= 1.0 for r in res.rows)
    lo = min(r["ratio"] for r in res.rows)
    return ClaimVerdict("fig18-traffic", "CVSE loads no more L2 bytes than Blocked-ELL",
                        "always fewer", f"min ratio {lo:.2f}",
                        "reproduced" if ok else "failed")


def _check_table4(res: ExperimentResult) -> ClaimVerdict:
    rows = {r["Model"]: r for r in res.rows}
    thr = {m: rows[m]["Throughput (seq/s)"] for m in rows}
    acc = {m: float(rows[m]["Accuracy"].rstrip("%")) for m in rows}
    order_ok = thr["Sparse(half)"] > thr["Dense(half)"] > thr["Dense(float)"]
    acc_ok = abs(acc["Sparse(half)"] - acc["Dense(float)"]) < 6.0
    ratio = thr["Sparse(half)"] / thr["Dense(half)"]
    verdict = "partial" if order_ok and acc_ok else "failed"
    if order_ok and acc_ok and 1.1 < ratio < 1.8:
        verdict = "reproduced"
    return ClaimVerdict("transformer-e2e", "sparse transformer: ordering + accuracy preserved",
                        "1.41x over half, ~equal accuracy",
                        f"{ratio:.2f}x, Δacc {acc['Sparse(half)'] - acc['Dense(float)']:+.1f}pp",
                        verdict)


PAPER_CLAIMS: List[Claim] = [
    Claim("spmm-vs-bell", "octet SpMM vs Blocked-ELL", "1.71-7.19x", "fig17", _check_spmm_vs_bell),
    Claim("spmm-vs-fpu", "octet SpMM vs FPU baseline", "1.34-4.51x", "fig17", _check_spmm_vs_fpu),
    Claim("spmm-crossovers", "Hgemm crossovers by V", ">80/>70/>50%", "fig17", _check_crossovers),
    Claim("sddmm-vs-fpu", "octet SDDMM vs FPU baseline", "1.27-3.03x", "fig19", _check_sddmm_vs_fpu),
    Claim("sddmm-vs-wmma", "octet SDDMM vs WMMA baseline", "0.93-1.44x", "fig19", _check_sddmm_vs_wmma),
    Claim("sddmm-arch-best", "SWITCH variant consistently best", "consistent", "fig19", _check_arch_best),
    Claim("bell-icache", "Blocked-ELL i-cache stall", "42.6%", "table1", _check_bell_stalls),
    Claim("fig5-reuse", "precision benefit: GEMM >> SpMM", "77% vs 49%", "fig5", _check_fig5),
    Claim("fig18-traffic", "CVSE L2 traffic <= Blocked-ELL", "fewer bytes", "fig18", _check_fig18),
    Claim("transformer-e2e", "sparse transformer end to end", "1.41x / ~equal acc", "table4", _check_table4),
]


def verify(results: Dict[str, ExperimentResult]) -> List[ClaimVerdict]:
    """Judge every registered claim against regenerated experiments.

    ``results`` maps experiment names (as in ``runner.EXPERIMENTS``) to
    their :class:`ExperimentResult`; claims whose experiment is absent
    are skipped.
    """
    out: List[ClaimVerdict] = []
    for claim in PAPER_CLAIMS:
        res = results.get(claim.experiment)
        if res is None:
            continue
        try:
            out.append(claim.check(res))
        except Exception as exc:  # a checker crash is a failed claim
            out.append(
                ClaimVerdict(claim.claim_id, claim.statement, claim.paper_value,
                             f"checker error: {exc}", "failed")
            )
    return out
