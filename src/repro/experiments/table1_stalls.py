"""Table 1: stall reasons in the Blocked-ELL SpMM kernel at block 4.

Profile on A[2048x1024] x B[1024x256], 90% sparsity; the paper measures
No Instruction 42.6%, Wait 21.0%, Short Scoreboard 11.9%.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..perfmodel.profiler import profile_kernel
from .common import ExperimentResult

__all__ = ["run"]

PAPER = {"No Instruction": 42.6, "Wait": 21.0, "Short Scoreboard": 11.9}


def run(rng: Optional[np.random.Generator] = None) -> ExperimentResult:
    """Regenerate Table 1 (Blocked-ELL stall reasons)."""
    rng = rng or np.random.default_rng(1)
    ell = BlockedEllMatrix.random((2048, 1024), 4, 0.9, rng)
    kern = BlockedEllSpmmKernel()
    rep = profile_kernel(kern.stats_for(ell, 256), kern._model)

    res = ExperimentResult(
        name="table1",
        paper_artifact="Table 1",
        description="Stall reasons, Blocked-ELL SpMM, block size 4 (2048x1024x256, 90%)",
    )
    res.rows.append(
        {
            "Block Size": 4,
            "No Instruction": f"{rep.no_instruction_pct:.1f}%",
            "Wait": f"{rep.wait_pct:.1f}%",
            "Short Scoreboard": f"{rep.short_scoreboard_pct:.1f}%",
        }
    )
    res.notes["paper"] = " / ".join(f"{k}: {v}%" for k, v in PAPER.items())
    return res
