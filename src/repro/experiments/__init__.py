"""One module per paper table/figure; see DESIGN.md's experiment index.

* :mod:`~repro.experiments.fig4_fine_grained` — Figure 4;
* :mod:`~repro.experiments.fig5_gemm_vs_spmm` — Figure 5;
* :mod:`~repro.experiments.fig6_blocked_ell` — Figure 6;
* :mod:`~repro.experiments.table1_stalls` — Table 1;
* :mod:`~repro.experiments.fig17_spmm_speedup` — Figure 17;
* :mod:`~repro.experiments.fig18_l2_traffic` — Figure 18;
* :mod:`~repro.experiments.table2_guidelines_spmm` — Table 2;
* :mod:`~repro.experiments.fig19_sddmm_speedup` — Figure 19;
* :mod:`~repro.experiments.table3_guidelines_sddmm` — Table 3;
* :mod:`~repro.experiments.table4_transformer` — Table 4;
* :mod:`~repro.experiments.fig20_attention_latency` — Figure 20;
* :mod:`~repro.experiments.runner` — run-all CLI (``repro-experiments``).
"""

from . import (
    ablations,
    sensitivity,
    fig4_fine_grained,
    fig5_gemm_vs_spmm,
    fig6_blocked_ell,
    fig17_spmm_speedup,
    fig18_l2_traffic,
    fig19_sddmm_speedup,
    fig20_attention_latency,
    table1_stalls,
    table2_guidelines_spmm,
    table3_guidelines_sddmm,
    table4_transformer,
)
from .claims import PAPER_CLAIMS, Claim, ClaimVerdict, verify
from .charts import bar_chart, line_chart, render_fig17, render_fig20
from .common import ExperimentResult, geomean
from .runner import EXPERIMENTS, run_all

__all__ = [
    "ExperimentResult",
    "ablations",
    "sensitivity",
    "geomean",
    "bar_chart",
    "PAPER_CLAIMS",
    "Claim",
    "ClaimVerdict",
    "verify",
    "line_chart",
    "render_fig17",
    "render_fig20",
    "EXPERIMENTS",
    "run_all",
    "fig4_fine_grained",
    "fig5_gemm_vs_spmm",
    "fig6_blocked_ell",
    "fig17_spmm_speedup",
    "fig18_l2_traffic",
    "fig19_sddmm_speedup",
    "fig20_attention_latency",
    "table1_stalls",
    "table2_guidelines_spmm",
    "table3_guidelines_sddmm",
    "table4_transformer",
]
