"""Figure 18: bytes moved L2 -> L1, CVSE vs Blocked-ELL.

Same problem size and sparsity for both formats (the §7.1.1 matched
construction); the claim being validated is §4's "data reuse is
independent of the number of columns in the block": the column-vector
encoding loads no more (in fact slightly fewer) bytes from L2 than the
V x V Blocked-ELL format across every sparsity level.

``trace=True`` (``repro-experiments --only fig18 --trace``) adds a
trace-validated column pair: the kernels' actual sector streams
replayed through the vectorised cache simulator
(:mod:`repro.perfmodel.trace`) at the full problem size, next to the
analytic estimates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.dlmc import SPARSITIES, generate_topology
from ..formats.conversions import blocked_ell_matching, cvse_from_csr_topology
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..perfmodel.trace import trace_blocked_ell, trace_octet_spmm
from .common import ExperimentResult

__all__ = ["run"]


def run(
    vector_length: int = 4,
    n: int = 256,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
    trace: bool = False,
) -> ExperimentResult:
    """Regenerate Figure 18 (bytes L2->L1, CVSE vs Blocked-ELL)."""
    rng = rng or np.random.default_rng(18)
    octet = OctetSpmmKernel()
    bell = BlockedEllSpmmKernel()
    res = ExperimentResult(
        name="fig18",
        paper_artifact="Figure 18",
        description=f"Bytes L2->L1, vector-sparse vs Blocked-ELL (V={vector_length}, 2048x1024x{n})",
    )
    for s in sparsities:
        topo = generate_topology((2048 // vector_length, 1024), s, rng)
        a = cvse_from_csr_topology(topo, vector_length, rng)
        ell = blocked_ell_matching(a, rng)
        b_vec = octet.stats_for(a, n).global_mem.bytes_l2_to_l1
        b_ell = bell.stats_for(ell, n).global_mem.bytes_l2_to_l1
        row = {
            "sparsity": s,
            "vector-sparse (MB)": round(b_vec / 2**20, 2),
            "blocked-ELL (MB)": round(b_ell / 2**20, 2),
            "ratio": round(b_ell / b_vec, 2),
        }
        if trace:
            t_vec = trace_octet_spmm(a, n).bytes_l2_to_l1
            t_ell = trace_blocked_ell(ell, n).bytes_l2_to_l1
            row["vec trace (MB)"] = round(t_vec / 2**20, 2)
            row["ELL trace (MB)"] = round(t_ell / 2**20, 2)
            row["trace ratio"] = round(t_ell / t_vec, 2)
        res.rows.append(row)
    res.notes["expectation"] = "ratio >= 1 at every sparsity (vector-sparse loads fewer bytes)"
    if trace:
        res.notes["trace"] = (
            "trace columns replay the kernels' sector streams through the cache "
            "simulator (2 sampled SMs, loads only); the analytic octet reuse runs "
            "optimistic on synthetic topologies — see EXPERIMENTS.md, Known model gaps"
        )
    return res
