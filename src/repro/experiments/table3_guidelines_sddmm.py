"""Table 3: the five guidelines across SDDMM implementations (V = 4, 8).

Benchmark A[2048x256] x B[256x1024] with C[2048x1024] at 90% sparsity.
Rows: MMA (octet, reg variant — §7.3.2 notes the three variants look
alike on these metrics), CUDA (FPU baseline), WMMA.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.dlmc import generate_topology
from ..formats.cvse import ColumnVectorSparseMatrix
from ..formats.conversions import cvse_from_csr_topology
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.sddmm_wmma import WmmaSddmmKernel
from ..perfmodel.profiler import guidelines_table, profile_kernel
from .common import ExperimentResult

__all__ = ["run"]

PAPER = {
    (4, "MMA"): dict(ni=0.8, blocks=16384, wait=10.7, ssb=2.1, spr=3.83),
    (4, "CUDA"): dict(ni=6.1, blocks=16384, wait=28.1, ssb=2.5, spr=3.53),
    (4, "WMMA"): dict(ni=0.3, blocks=16384, wait=10.6, ssb=14.4, spr=3.82),
    (8, "MMA"): dict(ni=1.0, blocks=8192, wait=11.0, ssb=1.9, spr=9.25),
    (8, "CUDA"): dict(ni=7.3, blocks=16384, wait=24.6, ssb=3.1, spr=3.33),
    (8, "WMMA"): dict(ni=0.4, blocks=8192, wait=9.5, ssb=17.9, spr=9.26),
}


def run(rng: Optional[np.random.Generator] = None) -> ExperimentResult:
    """Regenerate Table 3 (five guidelines, SDDMM kernels)."""
    rng = rng or np.random.default_rng(3)
    k = 256
    res = ExperimentResult(
        name="table3",
        paper_artifact="Table 3",
        description="Five-guideline profile of the SDDMM kernels (2048x256x1024, 90%)",
    )
    for v in (4, 8):
        topo = generate_topology((2048 // v, 1024), 0.9, rng)
        cv = cvse_from_csr_topology(topo, v, rng)
        mask = ColumnVectorSparseMatrix(cv.shape, v, cv.row_ptr, cv.col_idx, None)
        reports = []
        for name, kern in (
            ("MMA", OctetSddmmKernel(variant="reg")),
            ("CUDA", FpuSddmmKernel()),
            ("WMMA", WmmaSddmmKernel()),
        ):
            rep = profile_kernel(kern.stats_for(mask, k), kern._model)
            rep.name = f"{name} (V={v})"
            reports.append(rep)
        res.rows.extend(guidelines_table(reports))
    res.notes["paper"] = {f"{name} V={v}": vals for (v, name), vals in PAPER.items()}
    return res
