"""Figure 6: Blocked-ELL SpMM speedup over cuBLAS by block size.

Block sizes {4, 8, 16} across the sparsity grid: the cuSPARSE
Blocked-ELL kernel only delivers practical speedup once the block size
reaches 8-16 — the wrestling between kernel performance (wants big
blocks) and model quality (wants small grains) that motivates the
column-vector encoding.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.dlmc import SPARSITIES
from ..formats.blocked_ell import BlockedEllMatrix
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..kernels.gemm import DenseGemmKernel
from .common import ExperimentResult, geomean, suite_for

__all__ = ["run", "BLOCK_SIZES"]

BLOCK_SIZES = (4, 8, 16)


def run(
    quick: bool = True,
    n: int = 256,
    block_sizes: Sequence[int] = BLOCK_SIZES,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Figure 6 (Blocked-ELL speedup by block size)."""
    rng = rng or np.random.default_rng(6)
    suite = suite_for(quick, sparsities)
    hgemm = DenseGemmKernel()
    bell = BlockedEllSpmmKernel()

    res = ExperimentResult(
        name="fig6",
        paper_artifact="Figure 6",
        description="Blocked-ELL SpMM speedup over cublasHgemm by block size (geomean)",
    )
    for b in block_sizes:
        for s in sparsities:
            speedups = []
            for entry in (e for e in suite if abs(e.sparsity - s) < 1e-9):
                rows, cols = entry.shape
                m = rows * b  # match §7.1.1: logical rows = topo rows x block
                k = max(b, (cols // b) * b)
                ell = BlockedEllMatrix.random((m, k), b, s, rng)
                t_d = hgemm._model.estimate(hgemm.stats_for_shape(m, k, n)).time_us
                t_b = bell._model.estimate(bell.stats_for(ell, n)).time_us
                speedups.append(t_d / t_b)
            res.rows.append(
                {"block": b, "sparsity": s, "blocked-ELL": round(geomean(speedups), 3)}
            )
    res.notes["expectation"] = "block=4 below 1.0 except extreme sparsity; block=16 comfortably above"
    return res
