"""Ablations over the octet kernels' design choices.

DESIGN.md calls out the octet designs' load-bearing decisions; each
ablation here isolates one of them on the §7.2.2 reference benchmark
(A 2048x1024 x B 1024x256 SpMM / 2048x256x1024 SDDMM at 90%):

* **tile_k** — the shared-memory staging depth of the SpMM (§5.4 picks
  TileK = 32; smaller strides stage more often, larger strides waste
  residue work and registers);
* **ilp_fence** — §5.4's register trick: issuing all TileK/4 loads
  before a ``__threadfence_block`` raises the load/compute ILP from ~2
  (compiler register reuse) to TileK/4;
* **sddmm_tile_n** — §6.4's TileN = 32 "balance between the data reuse
  ratio and the number of CTA" ("any multiple of 8 is acceptable");
* **sddmm_variant** — the inverted-pattern remedies (reg / shfl / arch)
  at a glance (the full grid is Figure 19).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.dlmc import generate_topology
from ..formats.conversions import cvse_from_csr_topology
from ..formats.cvse import ColumnVectorSparseMatrix
from ..kernels.sddmm_octet import SDDMM_VARIANTS, OctetSddmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from .common import ExperimentResult

__all__ = ["run"]


def _spmm_time(a, n, tile_k=None, ilp=None):
    kern = OctetSpmmKernel()
    if tile_k is not None:
        kern.TILE_K = tile_k
    st = kern.stats_for(a, n)
    if ilp is not None:
        st.ilp = ilp
    return kern._model.estimate(st).time_us


def run(
    rng: Optional[np.random.Generator] = None,
    tile_ks: Sequence[int] = (8, 16, 32, 64),
    sddmm_tile_ns: Sequence[int] = (8, 16, 32, 64),
) -> ExperimentResult:
    """Ablation table over the octet kernels' design knobs."""
    rng = rng or np.random.default_rng(8)
    res = ExperimentResult(
        name="ablations",
        paper_artifact="design-choice ablations (DESIGN.md)",
        description="Octet-kernel design knobs on the §7.2.2 reference benchmark",
    )

    # --- SpMM: TileK sweep ---------------------------------------------------
    topo = generate_topology((512, 1024), 0.9, rng)
    a = cvse_from_csr_topology(topo, 4, rng)
    base = _spmm_time(a, 256, tile_k=32)
    for tk in tile_ks:
        t = _spmm_time(a, 256, tile_k=tk)
        res.rows.append(
            {"ablation": "spmm tile_k", "setting": tk,
             "time_us": round(t, 2), "vs default": round(base / t, 3)}
        )

    # --- SpMM: the §5.4 ILP fence --------------------------------------------
    for label, ilp in (("fence (TileK/4 chains)", 8.0), ("compiler reuse (~2)", 2.0),
                       ("fully serial", 1.0)):
        t = _spmm_time(a, 256, ilp=ilp)
        res.rows.append(
            {"ablation": "spmm ilp fence", "setting": label,
             "time_us": round(t, 2), "vs default": round(base / t, 3)}
        )

    # --- SDDMM: TileN sweep -----------------------------------------------------
    topo = generate_topology((512, 1024), 0.9, rng)
    cv = cvse_from_csr_topology(topo, 4, rng)
    mask = ColumnVectorSparseMatrix(cv.shape, 4, cv.row_ptr, cv.col_idx, None)
    kern = OctetSddmmKernel()
    t_base = kern._model.estimate(kern.stats_for(mask, 256)).time_us
    for tn in sddmm_tile_ns:
        kern = OctetSddmmKernel()
        kern.TILE_N = tn
        t = kern._model.estimate(kern.stats_for(mask, 256)).time_us
        res.rows.append(
            {"ablation": "sddmm tile_n", "setting": tn,
             "time_us": round(t, 2), "vs default": round(t_base / t, 3)}
        )

    # --- SDDMM: inverted-pattern variants ------------------------------------------
    for variant in SDDMM_VARIANTS:
        kern = OctetSddmmKernel(variant=variant)
        t = kern._model.estimate(kern.stats_for(mask, 256)).time_us
        res.rows.append(
            {"ablation": "sddmm variant", "setting": variant,
             "time_us": round(t, 2), "vs default": round(t_base / t, 3)}
        )
    return res
