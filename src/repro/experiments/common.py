"""Shared experiment infrastructure.

Every experiment module exposes ``run(...) -> ExperimentResult`` whose
rows regenerate one of the paper's tables or figures (series for
figures, rows for tables).  ``quick=True`` shrinks the benchmark suite
so the whole harness runs in seconds; the full suite mirrors §7.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


from ..datasets.dlmc import RESNET50_SHAPES, SPARSITIES, DlmcEntry, dlmc_suite
from ..perfmodel.profiler import format_table

__all__ = [
    "ExperimentResult",
    "geomean",
    "suite_for",
    "QUICK_SHAPES",
    "format_table",
]

#: reduced shape set for quick runs (keeps the §7.2.2 reference shape)
QUICK_SHAPES: Tuple[Tuple[int, int], ...] = ((256, 512), (512, 1024), (2048, 1024))


@dataclass
class ExperimentResult:
    """Rows + metadata for one regenerated table/figure."""

    name: str
    paper_artifact: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)
    #: machine-readable bookkeeping that never renders into the text
    #: artifact (e.g. shard cell indices — see experiments/sharding.py)
    meta: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        head = f"== {self.name} — {self.paper_artifact} ==\n{self.description}\n"
        body = format_table(self.rows)
        tail = ""
        if self.notes:
            tail = "\n" + "\n".join(f"  note: {k} = {v}" for k, v in self.notes.items())
        return head + body + tail

    def series(self, key: str) -> List[object]:
        return [r[key] for r in self.rows]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean over the positive entries (Gale et al.'s metric)."""
    vals = [float(v) for v in values if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def suite_for(
    quick: bool,
    sparsities: Sequence[float] = SPARSITIES,
    seed: int = 2021,
) -> List[DlmcEntry]:
    """Benchmark suite: reduced shapes when ``quick``, else §7.1's."""
    shapes = QUICK_SHAPES if quick else RESNET50_SHAPES
    return dlmc_suite(shapes=shapes, sparsities=sparsities, seed=seed)
