"""Process-pool fan-out for the experiment sweeps.

The sweeps are embarrassingly parallel across their grid cells once the
cells are self-contained (each cell seeds its own generators — see
fig17/fig19), so a plain ``ProcessPoolExecutor.map`` preserves both
determinism and ordering.  ``jobs <= 1`` falls back to an in-process
loop, which additionally shares the process-wide memo cache across
cells (worker processes each warm their own).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(fn: Callable[[T], R], items: Iterable[T], jobs: int = 1) -> List[R]:
    """Map ``fn`` over ``items`` preserving order.

    ``jobs > 1`` fans out over a process pool (``fn`` and the items must
    be picklable — use module-level functions); otherwise runs serially
    in-process.  Results arrive in input order either way, so callers
    are bit-identical across ``jobs`` settings.
    """
    work: Sequence[T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(x) for x in work]
    with ProcessPoolExecutor(max_workers=jobs) as ex:
        return list(ex.map(fn, work))
