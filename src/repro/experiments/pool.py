"""Fault-tolerant process-pool fan-out for the experiment sweeps.

The sweeps are embarrassingly parallel across their grid cells once the
cells are self-contained (each cell seeds its own generators — see
fig17/fig19), so fanning out preserves both determinism and ordering.
Two surfaces are exposed:

* :func:`parallel_map` — the strict map the inner sweeps use: results
  in input order, the first failure re-raised (a grid cell that cannot
  compute is a bug, not an operational fault).
* :func:`resilient_map` — the scheduler behind ``run_all``: one future
  per task, per-task wall-clock timeouts, bounded deterministic
  retries with exponential backoff, and survival of worker crashes
  (``BrokenProcessPool`` / OOM-killed workers) by respawning the pool
  and continuing.  Every task resolves to a :class:`TaskOutcome`
  instead of an exception, so one crashed experiment cannot discard
  the finished ones.

``jobs <= 1`` falls back to an in-process loop, which additionally
shares the process-wide memo cache across cells (worker processes each
warm their own).  Killing on timeout requires ``jobs > 1``: an
in-process task cannot be interrupted from the outside, so the serial
path lets the task finish but reports the overrun the same way the
pooled path does — the ``pool.timeouts`` counter plus a
:attr:`TaskOutcome.note` — keeping timeout pressure comparable across
``--jobs`` settings.

Determinism: retries back off by :func:`retry_delay` —
``backoff * 2**attempt`` seconds, no jitter (the serving simulator's
:class:`repro.serving.policies.RetryPolicy` follows the same
convention) — and nothing timing-dependent enters a task's *result*;
only the bookkeeping fields (``seconds``, ``attempts``) vary run to
run, and the checkpoint layer excludes them from its hashes.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..obs import metrics as obs_metrics
from ..perfmodel import sharedmemo as _sharedmemo

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "TaskOutcome",
    "parallel_map",
    "resilient_map",
    "retry_delay",
    "effective_workers",
    "OK",
    "ERROR",
    "TIMEOUT",
    "CRASHED",
    "INTERRUPTED",
]

#: task statuses
OK = "ok"                    # fn returned; ``result`` holds the value
ERROR = "error"              # fn raised on every attempt
TIMEOUT = "timeout"          # exceeded the wall-clock budget every attempt
CRASHED = "crashed"          # the worker process died (segfault/OOM/_exit)
INTERRUPTED = "interrupted"  # sweep stopped (KeyboardInterrupt) before it ran

#: scheduler poll interval (seconds) for the pooled path
_POLL = 0.05


@dataclass
class TaskOutcome:
    """Structured outcome of one task of a resilient fan-out."""

    index: int                  # position in the input sequence
    status: str = INTERRUPTED
    result: Any = None          # fn's return value when ``status == OK``
    error: str = ""             # ``repr(exception)`` of the final attempt
    traceback: str = ""         # formatted traceback of the final attempt
    attempts: int = 0           # executions tried (0 = never started)
    seconds: float = 0.0        # wall clock of the final attempt
    #: operational annotations that do not change the status (e.g. a
    #: serial task that finished but overran its wall-clock budget)
    note: str = ""
    #: the exception object of the final attempt, when one exists
    #: (re-raised by :func:`parallel_map`; excluded from repr noise)
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == OK


def retry_delay(attempt: int, backoff: float) -> float:
    """Deterministic backoff before re-running a task after attempt
    ``attempt`` (0-based): ``backoff * 2**attempt`` seconds, no jitter.
    Shared by the serial and pooled paths (and mirrored by the serving
    layer's retry policy), so the retry schedule is identical across
    ``--jobs`` settings."""
    return backoff * (2 ** attempt)


def effective_workers(jobs: int, n_tasks: int) -> int:
    """Worker count actually used: never more processes than tasks."""
    return max(1, min(jobs, n_tasks))


def _call_and_flush(fn: Callable[[T], R], item: T) -> R:
    """Run one task, then publish this process's shared-memo index.

    Pool workers each hold their own single-writer segment; flushing at
    task granularity makes freshly computed entries visible to sibling
    workers (and concurrent shard invocations) without waiting for the
    publish batch or process exit.  A cheap no-op when the shared tier
    never wrote anything.  Module-level so the pooled path can pickle
    it.
    """
    try:
        return fn(item)
    finally:
        _sharedmemo.flush()


#: failure-status -> observability counter (scheduler-side accounting
#: of retry/timeout/crash pressure; see docs/OBSERVABILITY.md)
_STATUS_METRIC = {
    ERROR: "pool.errors",
    TIMEOUT: "pool.timeouts",
    CRASHED: "pool.crashes",
}


def _failure(outcome: TaskOutcome, status: str, exc: Optional[BaseException],
             tb: str = "") -> None:
    metric = _STATUS_METRIC.get(status)
    if metric is not None:
        obs_metrics.counter_add(metric)
    outcome.status = status
    outcome.exception = exc
    outcome.error = repr(exc) if exc is not None else ""
    outcome.traceback = tb or (
        "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        if exc is not None
        else ""
    )


# --------------------------------------------------------------------- #
# serial path
# --------------------------------------------------------------------- #
def _serial_resilient(
    fn: Callable[[T], R],
    work: Sequence[T],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    on_outcome: Optional[Callable[[TaskOutcome], None]],
) -> List[TaskOutcome]:
    outcomes = [TaskOutcome(index=i) for i in range(len(work))]
    interrupted = False
    for i, item in enumerate(work):
        out = outcomes[i]
        if interrupted:
            break
        for attempt in range(retries + 1):
            out.attempts = attempt + 1
            t0 = time.perf_counter()
            try:
                out.result = fn(item)
            except KeyboardInterrupt:
                out.seconds = time.perf_counter() - t0
                _failure(out, INTERRUPTED, None)
                interrupted = True
                break
            except Exception as exc:
                out.seconds = time.perf_counter() - t0
                _failure(out, ERROR, exc)
                if attempt < retries:
                    obs_metrics.counter_add("pool.retries")
                    time.sleep(retry_delay(attempt, backoff))
                continue
            out.seconds = time.perf_counter() - t0
            out.status = OK
            out.exception = None
            out.error = out.traceback = ""
            break
        # an in-process task cannot be killed mid-flight, but an
        # overrun still counts as timeout pressure: same counter as
        # the pooled path, annotated instead of expired
        if timeout is not None and out.seconds > timeout:
            obs_metrics.counter_add(_STATUS_METRIC[TIMEOUT])
            out.note = (f"completed but overran the {timeout}s wall-clock "
                        "budget (in-process tasks cannot be expired)")
        if on_outcome is not None and out.status != INTERRUPTED:
            on_outcome(out)
    return outcomes


# --------------------------------------------------------------------- #
# pooled path
# --------------------------------------------------------------------- #
def _kill_executor(ex: Optional[ProcessPoolExecutor]) -> None:
    """Tear an executor down *now*: cancel queued work and terminate the
    worker processes (a hung or stuck worker would otherwise keep the
    shutdown — and the sweep — waiting forever)."""
    if ex is None:
        return
    procs = list(getattr(ex, "_processes", {}).values())
    ex.shutdown(wait=False, cancel_futures=True)
    for p in procs:
        try:
            p.terminate()
        except Exception:
            pass


def resilient_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> List[TaskOutcome]:
    """Map ``fn`` over ``items``, resolving every task to a
    :class:`TaskOutcome` (input order).

    ``jobs > 1`` fans out over a process pool (``fn`` and the items
    must be picklable), capped at one worker per task.  Per task:

    * an exception is captured (repr + traceback) and retried up to
      ``retries`` times with deterministic exponential backoff;
    * ``timeout`` seconds of wall clock expire the task — the stuck
      worker is terminated, the pool respawned, and co-running tasks
      are resubmitted without consuming an attempt; in serial mode the
      task cannot be killed, so an overrun keeps its result but emits
      the same ``pool.timeouts`` counter and a :attr:`TaskOutcome.note`;
    * a dead worker (``BrokenProcessPool``) poisons every in-flight
      future, so the culprit is identified by re-running the suspects
      one at a time in a fresh pool: collateral tasks complete without
      being charged an attempt, and the task that actually kills its
      worker ends ``CRASHED`` (after ``retries`` more tries);
    * ``KeyboardInterrupt`` in the scheduler shuts the pool down and
      returns immediately: finished tasks keep their outcomes, the
      rest stay ``INTERRUPTED``.

    ``on_outcome`` is invoked with each task's final outcome as soon
    as it is known (completion order) — the runner uses it to persist
    artifacts the moment they exist.
    """
    work: Sequence[T] = list(items)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if not work:
        return []
    obs_metrics.counter_add("pool.tasks", len(work))
    if jobs <= 1 or len(work) == 1:
        obs_metrics.gauge_set("pool.workers", 1)
        return _serial_resilient(fn, work, timeout, retries, backoff, on_outcome)

    outcomes = [TaskOutcome(index=i) for i in range(len(work))]
    workers = effective_workers(jobs, len(work))
    obs_metrics.gauge_set("pool.workers", workers)
    # (index, attempt, not_before): attempt counts real executions;
    # not_before implements the retry backoff without blocking the loop
    pending: deque = deque((i, 0, 0.0) for i in range(len(work)))
    # future -> (index, attempt, submit_time, deadline)
    running: Dict[Future, Tuple[int, int, float, float]] = {}
    # tasks that were in flight when a pool broke: a dead worker poisons
    # every sibling future, so these re-run ONE at a time (attributable:
    # a second breakage with a single task in flight convicts it) and
    # are not charged an attempt unless convicted
    suspects: deque = deque()
    ex: Optional[ProcessPoolExecutor] = None

    def settle(i: int, attempt: int, status: str, exc: Optional[BaseException],
               tb: str = "") -> None:
        """Record a failed attempt; requeue when budget remains."""
        out = outcomes[i]
        out.attempts = attempt + 1
        _failure(out, status, exc, tb)
        if attempt < retries:
            obs_metrics.counter_add("pool.retries")
            pending.append((i, attempt + 1,
                            time.monotonic() + retry_delay(attempt, backoff)))

    def submit(i: int, attempt: int) -> None:
        t0 = time.monotonic()
        fut = ex.submit(_call_and_flush, fn, work[i])
        deadline = t0 + timeout if timeout is not None else float("inf")
        running[fut] = (i, attempt, t0, deadline)
        outcomes[i].attempts = attempt + 1

    try:
        while pending or running or suspects:
            if ex is None:
                ex = ProcessPoolExecutor(max_workers=workers)
            if suspects:
                # crash triage: exactly one suspect in flight at a time
                if not running:
                    i, attempt = suspects.popleft()
                    submit(i, attempt)
            else:
                # submit at most ``workers`` tasks so a submitted future
                # is (approximately) a *started* future and its deadline
                # is real
                now = time.monotonic()
                delayed = []
                while pending and len(running) < workers:
                    i, attempt, not_before = pending.popleft()
                    if not_before > now:
                        delayed.append((i, attempt, not_before))
                        continue
                    submit(i, attempt)
                pending.extendleft(reversed(delayed))

            if not running:
                time.sleep(_POLL)
                continue
            done, _ = wait(list(running), timeout=_POLL, return_when=FIRST_COMPLETED)

            broken: List[Tuple[int, int]] = []
            broken_exc: Optional[BaseException] = None
            for fut in done:
                i, attempt, t0, _deadline = running.pop(fut)
                out = outcomes[i]
                out.seconds = time.monotonic() - t0
                try:
                    value = fut.result()
                except BrokenProcessPool as exc:
                    broken.append((i, attempt))
                    broken_exc = exc
                except KeyboardInterrupt as exc:
                    # a worker-side Ctrl-C: treat as a whole-sweep stop
                    _failure(out, INTERRUPTED, exc)
                    out.attempts = attempt + 1
                    raise KeyboardInterrupt from exc
                except BaseException as exc:
                    settle(i, attempt, ERROR, exc)
                else:
                    out.status = OK
                    out.result = value
                    out.exception = None
                    out.error = out.traceback = ""
                    if on_outcome is not None:
                        on_outcome(out)

            # expire tasks past their wall-clock budget: the stuck
            # worker must die, which costs the whole pool — co-running
            # tasks are resubmitted without consuming an attempt
            now = time.monotonic()
            expired = [fut for fut, (_, _, _, dl) in running.items() if now > dl]
            if expired:
                for fut in expired:
                    i, attempt, t0, _dl = running.pop(fut)
                    settle(i, attempt, TIMEOUT, None,
                           tb=f"task exceeded the {timeout}s wall-clock budget\n")
                    outcomes[i].error = f"TimeoutError({timeout}s)"
                    outcomes[i].seconds = now - t0
                for fut in list(running):
                    i, attempt, _t0, _dl = running.pop(fut)
                    pending.appendleft((i, attempt, 0.0))
                _kill_executor(ex)
                ex = None
            elif broken:
                # a dead worker broke the pool; siblings still in
                # ``running`` resolve broken too — fold them in, then
                # attribute: a lone in-flight task is the culprit, a
                # crowd goes to one-at-a-time triage uncharged
                for fut in list(running):
                    i, attempt, _t0, _dl = running.pop(fut)
                    broken.append((i, attempt))
                if len(broken) == 1:
                    i, attempt = broken[0]
                    settle(i, attempt, CRASHED, broken_exc,
                           tb="worker process died before the task returned\n")
                else:
                    suspects.extend(sorted(broken))
                _kill_executor(ex)
                ex = None

        # deliver terminal failures (on_outcome already saw every OK)
        if on_outcome is not None:
            for out in outcomes:
                if out.status not in (OK, INTERRUPTED):
                    on_outcome(out)
        return outcomes
    except KeyboardInterrupt:
        _kill_executor(ex)
        ex = None
        return outcomes
    finally:
        if ex is not None:
            ex.shutdown(wait=True, cancel_futures=True)


def parallel_map(fn: Callable[[T], R], items: Iterable[T], jobs: int = 1) -> List[R]:
    """Map ``fn`` over ``items`` preserving order (strict).

    ``jobs > 1`` fans out over a process pool (``fn`` and the items must
    be picklable — use module-level functions); otherwise runs serially
    in-process.  Results arrive in input order either way, so callers
    are bit-identical across ``jobs`` settings.  The first task failure
    is re-raised — the inner sweeps treat a failing grid cell as a bug;
    use :func:`resilient_map` for fan-outs that must survive failures.
    """
    outcomes = resilient_map(fn, items, jobs=jobs)
    for out in outcomes:
        if out.status == INTERRUPTED:
            raise KeyboardInterrupt
        if not out.ok:
            if out.exception is not None:
                raise out.exception
            raise RuntimeError(
                f"task {out.index} failed ({out.status}): {out.error}\n{out.traceback}"
            )
    return [out.result for out in outcomes]
