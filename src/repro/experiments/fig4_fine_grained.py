"""Figure 4: speedup over cuBLAS with fine-grained sparsity (V = 1).

Four panels: SpMM / SDDMM x single / half precision; baselines Sputnik
(our FPU kernels at V = 1) and cuSPARSE (CSR kernels); dense reference
cublasSgemm / cublasHgemm.  The paper's takeaways the harness should
reproduce:

* single precision: both libraries achieve good speedup above ~80%;
* half precision: Sputnik only beats cublasHgemm at extreme sparsity,
  and cuSPARSE is lower still;
* SDDMM half: the modified Sputnik stays below cublasHgemm.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.benchmark_suite import build_sddmm_problem, build_spmm_problem
from ..datasets.dlmc import SPARSITIES
from ..kernels.cusparse import CusparseCsrSpmmKernel, CusparseSddmmKernel
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from .common import ExperimentResult, geomean, suite_for

__all__ = ["run"]


def run(
    quick: bool = True,
    n: int = 256,
    k: int = 256,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Figure 4 (fine-grained speedups over cuBLAS)."""
    rng = rng or np.random.default_rng(4)
    suite = suite_for(quick, sparsities)
    res = ExperimentResult(
        name="fig4",
        paper_artifact="Figure 4",
        description="Speedup over cuBLAS with fine-grained sparsity (V=1, geomean)",
    )

    gemm = {p: DenseGemmKernel(precision=p) for p in ("single", "half")}
    spmm = {p: FpuSpmmKernel(precision=p) for p in ("single", "half")}
    sddmm = {p: FpuSddmmKernel(precision=p) for p in ("single", "half")}
    cu_spmm = {p: CusparseCsrSpmmKernel(precision=p) for p in ("single", "half")}
    cu_sddmm = CusparseSddmmKernel(precision="single")

    for op in ("SpMM", "SDDMM"):
        for prec in ("single", "half"):
            for s in sparsities:
                sp_sput, sp_cu = [], []
                for entry in (e for e in suite if abs(e.sparsity - s) < 1e-9):
                    if op == "SpMM":
                        prob = build_spmm_problem(entry, 1, n, rng)
                        t_d = gemm[prec]._model.estimate(
                            gemm[prec].stats_for_shape(prob.m, prob.k, n)
                        ).time_us
                        t_s = spmm[prec]._model.estimate(
                            spmm[prec].stats_for(prob.a_cvse, n)
                        ).time_us
                        t_c = cu_spmm[prec]._model.estimate(
                            cu_spmm[prec].stats_for(entry.csr, n)
                        ).time_us
                        sp_cu.append(t_d / t_c)
                    else:
                        prob = build_sddmm_problem(entry, 1, k, rng)
                        t_d = gemm[prec]._model.estimate(
                            gemm[prec].stats_for_shape(prob.m, k, prob.n)
                        ).time_us
                        t_s = sddmm[prec]._model.estimate(
                            sddmm[prec].stats_for(prob.mask, k)
                        ).time_us
                        if prec == "single":
                            t_c = cu_sddmm._model.estimate(
                                cu_sddmm.stats_for(entry.csr, k)
                            ).time_us
                            sp_cu.append(t_d / t_c)
                    sp_sput.append(t_d / t_s)
                res.rows.append(
                    {
                        "op": op,
                        "precision": prec,
                        "sparsity": s,
                        "sputnik": round(geomean(sp_sput), 3),
                        "cusparse": round(geomean(sp_cu), 3) if sp_cu else None,
                    }
                )
    return res
