"""Table 2: the five guidelines across SpMM implementations (V = 4, 8).

Benchmark A[2048x1024] x B[1024x256], 90% sparsity.  Rows: MMA (octet),
CUDA (FPU baseline), Blocked-ELL.  Columns: "No Instruction" (guideline
I), "# Thread Block" (II), "Wait" (III), "Short Scoreboard" (IV),
"Sectors/Req" (V).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.dlmc import generate_topology
from ..formats.conversions import blocked_ell_matching, cvse_from_csr_topology
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..perfmodel.profiler import guidelines_table, profile_kernel
from .common import ExperimentResult

__all__ = ["run"]

#: the paper's measured values, for side-by-side inspection
PAPER = {
    (4, "MMA"): dict(ni=1.1, blocks=2048, wait=4.7, ssb=4.5, spr=12.56),
    (4, "CUDA"): dict(ni=11.0, blocks=2048, wait=11.6, ssb=2.6, spr=4.04),
    (4, "Blocked-ELL"): dict(ni=42.6, blocks=1024, wait=21.0, ssb=11.9, spr=14.92),
    (8, "MMA"): dict(ni=1.1, blocks=1024, wait=6.2, ssb=2.6, spr=13.22),
    (8, "CUDA"): dict(ni=52.2, blocks=1024, wait=8.3, ssb=2.0, spr=4.27),
    (8, "Blocked-ELL"): dict(ni=35.1, blocks=512, wait=16.2, ssb=12.1, spr=13.85),
}


def run(rng: Optional[np.random.Generator] = None) -> ExperimentResult:
    """Regenerate Table 2 (five guidelines, SpMM kernels)."""
    rng = rng or np.random.default_rng(2)
    n = 256
    res = ExperimentResult(
        name="table2",
        paper_artifact="Table 2",
        description="Five-guideline profile of the SpMM kernels (2048x1024x256, 90%)",
    )
    for v in (4, 8):
        topo = generate_topology((2048 // v, 1024), 0.9, rng)
        a = cvse_from_csr_topology(topo, v, rng)
        ell = blocked_ell_matching(a, rng)
        kernels = {
            "MMA": (OctetSpmmKernel(), a),
            "CUDA": (FpuSpmmKernel(), a),
        }
        reports = []
        for name, (kern, mat) in kernels.items():
            rep = profile_kernel(kern.stats_for(mat, n), kern._model)
            rep.name = f"{name} (V={v})"
            reports.append(rep)
        bk = BlockedEllSpmmKernel()
        rep = profile_kernel(bk.stats_for(ell, n), bk._model)
        rep.name = f"Blocked-ELL (V={v})"
        reports.append(rep)
        res.rows.extend(guidelines_table(reports))
    res.notes["paper"] = {
        f"{name} V={v}": vals for (v, name), vals in PAPER.items()
    }
    return res
