"""Sharded sweep execution: deterministic partitioning + manifest merge.

``repro-experiments --shard I/N --out DIR_I`` runs the ``I``-th of ``N``
deterministic slices of a sweep; ``--merge DIR_0 ... DIR_N-1 --out DIR``
(or ``python -m repro.cli merge``) combines the shard-scoped manifests
into one verified sweep result — turning the checkpoint/resume
machinery of PR 4 into multi-machine scale-out.

Partitioning is two-level and purely positional (no RNG, no timing):

* **Cell-shardable experiments** (:data:`CELL_SHARDABLE` — the fig17 /
  fig19 grid sweeps) run on *every* shard, each invocation computing
  the grid cells whose flattened index ``i`` satisfies
  ``i % N == shard`` (see :func:`shard_indices`).  Their partial
  results additionally persist as ``<name>.rows.json`` (rows + global
  cell indices) so the merge can reassemble the full grid and apply
  the experiment's ``finalise()`` notes exactly as a solo run would.
* **Every other experiment** is wholesale-assigned to one shard by its
  position in the requested list (:func:`assign_wholesale`).

A shard's ``manifest.json`` carries a ``__shard__`` entry (index,
total, quick/trace flags, the requested experiment list); per-shard
cell subsets get a shard-aware :func:`config_hash` so ``--resume``
within a shard can never be satisfied by a different slice's
checkpoint.  :func:`merge_shards` refuses — with exit code 2 at the
CLI — to mix shards whose configuration differs, verifies every shard
artifact against its recorded checksum before trusting it, and writes
a merged manifest whose entries use the *plain* config hashes, so a
merged directory is indistinguishable from (and ``--resume``-compatible
with) a single full run.

Because every cell seeds its own child generator (fig17/fig19 module
docs), shard outputs are bit-identical to the corresponding slice of a
solo run, and the merged artifacts are byte-identical to a full run's —
pinned by ``tests/test_sharding.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CELL_SHARDABLE",
    "MANIFEST_NAME",
    "SHARD_KEY",
    "MergeError",
    "parse_shard",
    "shard_indices",
    "assign_wholesale",
    "config_hash",
    "text_checksum",
    "load_manifest",
    "write_manifest",
    "rows_doc",
    "merge_shards",
    "verify_manifest",
]

MANIFEST_NAME = "manifest.json"

#: manifest key describing the shard that wrote it; the resume logic
#: ignores it (only per-experiment dict entries with a ``config`` key
#: participate in skip decisions)
SHARD_KEY = "__shard__"

#: experiments whose ``run()`` accepts ``shard`` and partitions its own
#: grid-cell fan-out; all other experiments are wholesale-assigned
CELL_SHARDABLE = frozenset({"fig17", "fig19"})


class MergeError(RuntimeError):
    """A shard-manifest merge that must not proceed (mismatched sweep
    configurations, missing/duplicate shards, or artifacts that fail
    their recorded checksums).  The CLI maps this to exit code 2."""


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse ``"I/N"`` (0-based) into ``(index, total)``.

    Raises :class:`ValueError` with the valid form on anything else.
    """
    try:
        index_s, total_s = spec.split("/")
        index, total = int(index_s), int(total_s)
    except ValueError:
        raise ValueError(
            f"--shard must be I/N (0-based, e.g. 0/2), got {spec!r}"
        ) from None
    if total < 1 or not 0 <= index < total:
        raise ValueError(
            f"--shard must satisfy 0 <= I < N, got {index}/{total}"
        )
    return index, total


def shard_indices(n_cells: int, shard: Tuple[int, int]) -> List[int]:
    """Global cell indices owned by ``shard``: ``i % total == index``.

    Round-robin (not contiguous blocks) so every shard samples the whole
    grid — the slices stay balanced whatever order the grid enumerates
    its axes in.
    """
    index, total = shard
    return [i for i in range(n_cells) if i % total == index]


def assign_wholesale(names: Sequence[str], shard: Tuple[int, int]) -> List[str]:
    """The non-cell-shardable experiments ``shard`` owns (by position).

    Every shard invocation must be given the same requested list for
    the assignment to partition — :func:`merge_shards` verifies that.
    """
    index, total = shard
    return [n for pos, n in enumerate(names) if pos % total == index]


# --------------------------------------------------------------------- #
# checkpoint-manifest primitives (shared by the runner and the merge)
# --------------------------------------------------------------------- #
def config_hash(name: str, quick: bool, trace: bool,
                shard: Optional[Tuple[int, int]] = None) -> str:
    """Hash of everything that shapes an experiment's output.

    ``trace`` must already be the *effective* flag (requested AND the
    experiment is trace-aware); ``jobs`` is excluded — fan-out is
    bit-transparent, pinned by TestJobsParity.  For a cell-shardable
    experiment running a shard slice the shard is part of the config
    (a different slice is a different output), while wholesale-assigned
    experiments keep the plain hash — their artifacts are complete, so
    the merged manifest is resume-compatible with a solo run.
    """
    payload: list = [name, bool(quick), bool(trace)]
    if shard is not None and name in CELL_SHARDABLE:
        payload.append([int(shard[0]), int(shard[1])])
    h = hashlib.blake2b(digest_size=12)
    h.update(json.dumps(payload).encode())
    return h.hexdigest()


def text_checksum(text: str) -> str:
    """Checksum recorded next to every artifact and rows document."""
    return hashlib.blake2b(text.encode(), digest_size=12).hexdigest()


def load_manifest(out_dir: Path) -> Dict[str, dict]:
    """Read ``out_dir``'s manifest; an unreadable or torn one is an
    empty dict (treat as no checkpoints), never an exception."""
    path = Path(out_dir) / MANIFEST_NAME
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}  # unreadable/torn manifest: treat as no checkpoints
    return data if isinstance(data, dict) else {}


def write_manifest(out_dir: Path, manifest: Dict[str, dict]) -> None:
    """Rewrite the manifest atomically (write-then-rename, so a kill
    mid-write leaves the old manifest, never a torn one)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    tmp = out_dir / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    tmp.replace(out_dir / MANIFEST_NAME)


def rows_doc(res) -> Dict[str, object]:
    """Machine-readable artifact for one :class:`ExperimentResult`.

    The runner writes this as ``<name>.rows.json`` next to the text
    artifact during sharded runs; ``res.meta`` contributes the shard
    bookkeeping (``cell_total`` / ``cell_indices`` / ``shard``) for the
    cell-shardable experiments.
    """
    doc: Dict[str, object] = {
        "name": res.name,
        "paper_artifact": res.paper_artifact,
        "description": res.description,
        "rows": res.rows,
        "notes": res.notes,
    }
    doc.update(res.meta)
    return doc


# --------------------------------------------------------------------- #
# merge
# --------------------------------------------------------------------- #
def _shard_infos(shard_dirs: Sequence[Path]) -> List[Tuple[Path, dict, dict]]:
    """Load and cross-validate every shard's manifest + ``__shard__``."""
    infos = []
    for d in shard_dirs:
        d = Path(d)
        man = load_manifest(d)
        if not man:
            raise MergeError(f"{d}: no readable {MANIFEST_NAME} — not a sweep output")
        sh = man.get(SHARD_KEY)
        if not isinstance(sh, dict):
            raise MergeError(
                f"{d}: {MANIFEST_NAME} has no {SHARD_KEY} entry — "
                f"this directory was not written by a --shard run"
            )
        infos.append((d, man, sh))
    ref_dir, _, ref = infos[0]
    for d, _man, sh in infos[1:]:
        for field in ("total", "quick", "trace", "experiments"):
            if sh.get(field) != ref.get(field):
                raise MergeError(
                    f"config mismatch between shards: {d} has "
                    f"{field}={sh.get(field)!r} but {ref_dir} has "
                    f"{field}={ref.get(field)!r} — refusing to mix sweeps "
                    f"(re-run the shards with identical flags)"
                )
    total = int(ref.get("total", 0))
    indices = sorted(int(sh.get("index", -1)) for _d, _m, sh in infos)
    if indices != list(range(total)):
        raise MergeError(
            f"need exactly one manifest per shard 0..{total - 1}, "
            f"got shard indices {indices}"
        )
    return infos


def _read_artifact(d: Path, name: str, entry: dict) -> str:
    """A shard artifact's text, verified against its recorded checksum."""
    artifact = Path(d) / f"{name}.txt"
    if not artifact.is_file():
        raise MergeError(f"{name}: artifact {artifact} is missing")
    text = artifact.read_text()[:-1]  # _write_artifact appends one \n
    if text_checksum(text) != entry.get("checksum"):
        raise MergeError(
            f"{name}: artifact in {d} does not match its recorded "
            f"checksum — the shard output was edited or corrupted; re-run "
            f"that shard (its --resume will skip verified experiments)"
        )
    return text


def _merge_cell_shardable(name: str, infos, quick: bool, trace_eff: bool,
                          out_dir: Path) -> dict:
    """Reassemble one grid experiment from every shard's rows.json."""
    from .common import ExperimentResult
    from . import fig17_spmm_speedup, fig19_sddmm_speedup, runner

    finalisers = {
        "fig17": fig17_spmm_speedup.finalise,
        "fig19": fig19_sddmm_speedup.finalise,
    }
    rows_all: Optional[List[Optional[dict]]] = None
    head: Dict[str, object] = {}
    seconds = 0.0
    for d, man, sh in infos:
        shard = (int(sh["index"]), int(sh["total"]))
        entry = man.get(name)
        if not isinstance(entry, dict):
            raise MergeError(f"{name}: shard {shard[0]}/{shard[1]} ({d}) has no "
                             f"checkpoint for it — that shard did not finish")
        if entry.get("config") != config_hash(name, quick, trace_eff, shard=shard):
            raise MergeError(
                f"{name}: shard {shard[0]}/{shard[1]} checkpoint was written "
                f"under a different configuration — refusing to mix sweeps"
            )
        _read_artifact(d, name, entry)  # verify before trusting the shard
        rows_path = Path(d) / f"{name}.rows.json"
        try:
            doc = json.loads(rows_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise MergeError(f"{name}: unreadable {rows_path}: {exc}") from None
        if entry.get("rows_checksum") != text_checksum(json.dumps(doc)):
            raise MergeError(
                f"{name}: {rows_path} does not match its recorded checksum"
            )
        cell_total = int(doc["cell_total"])
        if rows_all is None:
            rows_all = [None] * cell_total
            head = doc
        elif cell_total != len(rows_all):
            raise MergeError(f"{name}: shards disagree on the grid size "
                             f"({cell_total} vs {len(rows_all)} cells)")
        for idx, row in zip(doc["cell_indices"], doc["rows"]):
            if rows_all[idx] is not None:
                raise MergeError(f"{name}: cell {idx} appears in two shards")
            rows_all[idx] = row
        seconds += float(entry.get("seconds", 0.0))
    missing = [i for i, r in enumerate(rows_all or []) if r is None]
    if rows_all is None or missing:
        raise MergeError(f"{name}: grid incomplete after merge "
                         f"(missing cells {missing[:8]}...)")
    res = ExperimentResult(
        name=name,
        paper_artifact=str(head["paper_artifact"]),
        description=str(head["description"]),
        rows=list(rows_all),
    )
    res.notes.update(finalisers[name](res.rows))
    text = runner._render(name, res)
    (out_dir / f"{name}.txt").write_text(text + "\n")
    merged_doc = rows_doc(res)
    (out_dir / f"{name}.rows.json").write_text(json.dumps(merged_doc))
    return {
        "config": config_hash(name, quick, trace_eff),
        "checksum": text_checksum(text),
        "seconds": round(seconds, 3),
    }


def merge_shards(shard_dirs: Sequence[Path], out_dir: Path) -> Dict[str, object]:
    """Combine N shard output directories into one verified sweep result.

    Every shard manifest must describe the same sweep (total/quick/
    trace/experiment list — anything else raises :class:`MergeError`);
    every artifact is re-verified against its recorded checksum before
    it is trusted.  The merged directory holds full artifacts and a
    manifest with plain config hashes — ``--resume`` against it skips
    everything, exactly as after a solo full run.
    """
    from . import runner

    infos = _shard_infos([Path(d) for d in shard_dirs])
    _d, _m, ref = infos[0]
    quick, trace_flag = bool(ref.get("quick")), bool(ref.get("trace"))
    names = list(ref.get("experiments") or [])
    if not names:
        raise MergeError("shard manifests list no experiments to merge")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    merged: Dict[str, dict] = {}
    for name in names:
        trace_eff = trace_flag and name in runner._TRACE_AWARE
        if name in CELL_SHARDABLE:
            merged[name] = _merge_cell_shardable(
                name, infos, quick, trace_eff, out_dir)
            continue
        owners = [(d, man) for d, man, _sh in infos
                  if isinstance(man.get(name), dict)]
        if not owners:
            raise MergeError(f"experiment {name!r} is missing from every "
                             f"shard manifest — a shard did not finish "
                             f"(re-run it with --resume)")
        if len(owners) > 1:
            raise MergeError(f"experiment {name!r} appears in "
                             f"{len(owners)} shard manifests — the shard "
                             f"outputs do not partition one sweep")
        d, man = owners[0]
        entry = man[name]
        if entry.get("config") != config_hash(name, quick, trace_eff):
            raise MergeError(
                f"{name}: shard checkpoint was written under a different "
                f"configuration than its {SHARD_KEY} entry claims — "
                f"refusing to mix sweeps"
            )
        text = _read_artifact(d, name, entry)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        merged[name] = {
            "config": entry["config"],
            "checksum": entry["checksum"],
            "seconds": entry.get("seconds", 0.0),
        }
    write_manifest(out_dir, merged)
    return {
        "out": str(out_dir),
        "shards": len(infos),
        "experiments": list(merged),
    }


def verify_manifest(out_dir: Path) -> Dict[str, bool]:
    """``{experiment: artifact matches its manifest checksum}``.

    The merge CLI prints this after combining shards; CI asserts every
    value is ``True``.
    """
    out_dir = Path(out_dir)
    manifest = load_manifest(out_dir)
    results: Dict[str, bool] = {}
    for name, entry in manifest.items():
        if name.startswith("__") or not isinstance(entry, dict):
            continue
        if "config" not in entry:
            continue
        artifact = out_dir / f"{name}.txt"
        ok = artifact.is_file() and text_checksum(
            artifact.read_text()[:-1]) == entry.get("checksum")
        results[name] = bool(ok)
    return results
