"""Figure 5: GEMM vs fine-grained SpMM under single vs half precision.

Profile on A[2048x1024] x B[1024x256] with 90% sparsity (§3.1):

* **L1$ missed sectors** — GEMM drops ~77% from single to half (the
  b^1.5 I/O lower bound), SpMM only ~49% (reuse-starved);
* **max compute-pipe utilisation** — HGEMM moves the bound from the
  FMA pipe (88% at single) to the tensor pipe (~15%);
* **executed math instructions** — HMMA fuses the FMA stream (-92.3%).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.dlmc import generate_topology
from ..formats.conversions import cvse_from_csr_topology
from ..kernels.base import elem_bytes
from ..kernels.gemm import DenseGemmKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..perfmodel.profiler import profile_kernel
from ..perfmodel.trace import trace_gemm, trace_octet_spmm
from .common import ExperimentResult

__all__ = ["run", "REFERENCE_SHAPE"]

REFERENCE_SHAPE = (2048, 1024, 256)  # M, K, N of §3.1's profile
REFERENCE_SPARSITY = 0.9


def run(rng: Optional[np.random.Generator] = None, trace: bool = False) -> ExperimentResult:
    """Regenerate Figure 5 (GEMM vs SpMM precision profile).

    ``trace=True`` adds an "L1 missed sectors (trace)" column: the
    kernels' sector streams replayed through the cache simulator, the
    cross-check for the analytic missed-sector column.
    """
    rng = rng or np.random.default_rng(5)
    m, k, n = REFERENCE_SHAPE
    topo = generate_topology((m, k), REFERENCE_SPARSITY, rng)
    a1 = cvse_from_csr_topology(topo, 1, rng)

    res = ExperimentResult(
        name="fig5",
        paper_artifact="Figure 5",
        description="GEMM vs fine-grained SpMM profile, single vs half (2048x1024x256, 90%)",
    )
    reports = {}
    for prec in ("single", "half"):
        gk = DenseGemmKernel(precision=prec)
        sk = FpuSpmmKernel(precision=prec)
        reports[("GEMM", prec)] = profile_kernel(gk.stats_for_shape(m, k, n), gk._model)
        reports[("SpMM", prec)] = profile_kernel(sk.stats_for(a1, n), sk._model)

    for (kind, prec), rep in reports.items():
        row = {
            "kernel": kind,
            "precision": prec,
            "L1 missed sectors": int(rep.l1_missed_sectors),
            "max compute pipe": rep.max_compute_pipe,
            "pipe util %": round(100 * rep.max_compute_pipe_utilization, 1),
            "math instructions": int(rep.math_instructions),
        }
        if trace:
            eb = elem_bytes(prec)
            if kind == "GEMM":
                tr = trace_gemm(m, k, n, elem_bytes=eb)
            else:
                tr = trace_octet_spmm(a1, n, tile_n=FpuSpmmKernel.TILE_N, elem_bytes=eb)
            row["L1 missed sectors (trace)"] = int(tr.l1_missed_sectors)
        res.rows.append(row)
    if trace:
        res.notes["trace"] = (
            "trace column: sector streams replayed through the cache simulator "
            "(2 sampled SMs, loads only); the GEMM stream models the per-CTA tile "
            "footprint (shared-memory staging loads each byte once per CTA)"
        )

    def reduction(kind: str) -> float:
        s = reports[(kind, "single")].l1_missed_sectors
        h = reports[(kind, "half")].l1_missed_sectors
        return 100.0 * (1.0 - h / s)

    res.notes["GEMM L1-missed-sector reduction"] = f"{reduction('GEMM'):.1f}% (paper: 77.0%)"
    res.notes["SpMM L1-missed-sector reduction"] = f"{reduction('SpMM'):.1f}% (paper: 48.8%)"
    g_s = reports[("GEMM", "single")].math_instructions
    g_h = reports[("GEMM", "half")].math_instructions
    res.notes["GEMM math-instruction reduction"] = f"{100 * (1 - g_h / g_s):.1f}% (paper: 92.3%)"
    return res
