"""Figure 17: SpMM speedup over cublasHgemm.

Grid: V in {1, 2, 4, 8} x N in {64, 128, 256} x sparsity in
{0.5, 0.7, 0.8, 0.9, 0.95, 0.98}; kernels: "fpu" (Sputnik-extended),
"blocked-ELL" (cuSPARSE), "mma" (TCU 1-D Octet Tiling; V >= 2 only —
the octet design computes V output columns per TCU tile and degenerates
at V = 1, matching the paper's figure which omits it there).

Each cell is the geometric mean of the speedup over the suite's
matrices, following Gale et al. (the solid lines of the figure).

Each (entry, V) pair seeds its own child generator, so (a) the same
CVSE/Blocked-ELL build recurs across the N loop and is served from the
format cache, and (b) grid cells are self-contained and can be fanned
out over a process pool (``jobs``) without changing any value.  Passing
an explicit ``rng`` keeps the legacy serially-threaded draws (and
forces a serial run).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.benchmark_suite import N_SIZES, build_spmm_problem
from ..datasets.dlmc import SPARSITIES, DlmcEntry
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..kernels.gemm import DenseGemmKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from .common import ExperimentResult, geomean, suite_for
from .pool import parallel_map
from .sharding import shard_indices

__all__ = ["run", "finalise"]

VECTOR_LENGTHS = (1, 2, 4, 8)


def _cell(
    args: Tuple[int, int, float, List[Tuple[int, DlmcEntry]]],
) -> Dict[str, object]:
    """One (V, N, sparsity) grid cell (module-level so pools can pickle it)."""
    v, n, s, entries = args
    hgemm = DenseGemmKernel()
    fpu = FpuSpmmKernel()
    octet = OctetSpmmKernel()
    bell = BlockedEllSpmmKernel()
    sp_f, sp_b, sp_m = [], [], []
    for ei, entry in entries:
        # child generator per (entry, V): N deliberately excluded so the
        # format builds repeat — and cache — across the N loop; the
        # analytic sweep never touches dense B, so skip drawing it
        prob = build_spmm_problem(
            entry, v, n, np.random.default_rng([17, ei, v]), operands=False
        )
        t_dense = hgemm._model.estimate(hgemm.stats_for_shape(prob.m, prob.k, n)).time_us
        t_f = fpu._model.estimate(fpu.stats_for(prob.a_cvse, n)).time_us
        t_b = bell._model.estimate(bell.stats_for(prob.a_ell, n)).time_us
        sp_f.append(t_dense / t_f)
        sp_b.append(t_dense / t_b)
        if v >= 2:
            t_m = octet._model.estimate(octet.stats_for(prob.a_cvse, n)).time_us
            sp_m.append(t_dense / t_m)
    row: Dict[str, object] = {
        "V": v,
        "N": n,
        "sparsity": s,
        "fpu": round(geomean(sp_f), 3),
        "blocked-ELL": round(geomean(sp_b), 3),
    }
    row["mma"] = round(geomean(sp_m), 3) if sp_m else None
    return row


def run(
    quick: bool = True,
    vector_lengths: Sequence[int] = VECTOR_LENGTHS,
    n_sizes: Sequence[int] = N_SIZES,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
    jobs: int = 1,
    shard: Optional[Tuple[int, int]] = None,
) -> ExperimentResult:
    """Regenerate Figure 17 (SpMM speedup grid, geomean per cell).

    ``shard=(i, n)`` computes only the grid cells whose flattened index
    satisfies ``index % n == i`` (each cell seeds its own generator, so
    the subset is bit-identical to the corresponding slice of a full
    run); the headline notes are deferred to the merge, which sees the
    whole grid.
    """
    if shard is not None and rng is not None:
        raise ValueError("shard requires the self-contained cell path (rng=None)")
    suite = suite_for(quick, sparsities)
    res = ExperimentResult(
        name="fig17",
        paper_artifact="Figure 17",
        description="SpMM speedup over cublasHgemm (geomean across the DLMC suite)",
    )
    if rng is not None:
        res.rows.extend(_run_threaded(suite, vector_lengths, n_sizes, sparsities, rng))
    else:
        by_sparsity = {
            s: [(ei, e) for ei, e in enumerate(suite) if abs(e.sparsity - s) < 1e-9]
            for s in sparsities
        }
        cells = [
            (v, n, s, by_sparsity[s])
            for v in vector_lengths
            for n in n_sizes
            for s in sparsities
        ]
        if shard is not None:
            indices = shard_indices(len(cells), shard)
            res.meta["cell_total"] = len(cells)
            res.meta["cell_indices"] = indices
            res.meta["shard"] = {"index": shard[0], "total": shard[1]}
            cells = [cells[i] for i in indices]
        res.rows.extend(parallel_map(_cell, cells, jobs=jobs))

    if shard is None:
        res.notes.update(finalise(res.rows))
    return res


def finalise(rows: Sequence[Dict[str, object]]) -> Dict[str, str]:
    """Headline geomean ratios (the abstract's 1.71-7.19x / 1.34-4.51x).

    Needs the *complete* grid — sharded runs skip it and the merge
    applies it to the reassembled rows."""
    ratios_bell, ratios_fpu = [], []
    for r in rows:
        if r["mma"]:
            ratios_bell.append(r["mma"] / r["blocked-ELL"])
            ratios_fpu.append(r["mma"] / r["fpu"])
    return {
        "mma/blocked-ELL range": (
            f"{min(ratios_bell):.2f}-{max(ratios_bell):.2f} (paper: 1.71-7.19)"
        ),
        "mma/fpu range": (
            f"{min(ratios_fpu):.2f}-{max(ratios_fpu):.2f} (paper: 1.34-4.51)"
        ),
    }


def _run_threaded(
    suite: List[DlmcEntry],
    vector_lengths: Sequence[int],
    n_sizes: Sequence[int],
    sparsities: Sequence[float],
    rng: np.random.Generator,
) -> List[Dict[str, object]]:
    """Legacy path: one generator threaded through every cell in order."""
    rows: List[Dict[str, object]] = []
    for v in vector_lengths:
        for n in n_sizes:
            for s in sparsities:
                entries = [(ei, e) for ei, e in enumerate(suite) if abs(e.sparsity - s) < 1e-9]
                hgemm = DenseGemmKernel()
                fpu = FpuSpmmKernel()
                octet = OctetSpmmKernel()
                bell = BlockedEllSpmmKernel()
                sp_f, sp_b, sp_m = [], [], []
                for _, entry in entries:
                    prob = build_spmm_problem(entry, v, n, rng)
                    t_dense = hgemm._model.estimate(
                        hgemm.stats_for_shape(prob.m, prob.k, n)
                    ).time_us
                    t_f = fpu._model.estimate(fpu.stats_for(prob.a_cvse, n)).time_us
                    t_b = bell._model.estimate(bell.stats_for(prob.a_ell, n)).time_us
                    sp_f.append(t_dense / t_f)
                    sp_b.append(t_dense / t_b)
                    if v >= 2:
                        t_m = octet._model.estimate(octet.stats_for(prob.a_cvse, n)).time_us
                        sp_m.append(t_dense / t_m)
                row: Dict[str, object] = {
                    "V": v,
                    "N": n,
                    "sparsity": s,
                    "fpu": round(geomean(sp_f), 3),
                    "blocked-ELL": round(geomean(sp_b), 3),
                }
                row["mma"] = round(geomean(sp_m), 3) if sp_m else None
                rows.append(row)
    return rows
