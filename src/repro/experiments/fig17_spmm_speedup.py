"""Figure 17: SpMM speedup over cublasHgemm.

Grid: V in {1, 2, 4, 8} x N in {64, 128, 256} x sparsity in
{0.5, 0.7, 0.8, 0.9, 0.95, 0.98}; kernels: "fpu" (Sputnik-extended),
"blocked-ELL" (cuSPARSE), "mma" (TCU 1-D Octet Tiling; V >= 2 only —
the octet design computes V output columns per TCU tile and degenerates
at V = 1, matching the paper's figure which omits it there).

Each cell is the geometric mean of the speedup over the suite's
matrices, following Gale et al. (the solid lines of the figure).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..datasets.benchmark_suite import N_SIZES, build_spmm_problem
from ..datasets.dlmc import SPARSITIES
from ..kernels.cusparse import BlockedEllSpmmKernel
from ..kernels.gemm import DenseGemmKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from .common import ExperimentResult, geomean, suite_for

__all__ = ["run"]

VECTOR_LENGTHS = (1, 2, 4, 8)


def run(
    quick: bool = True,
    vector_lengths: Sequence[int] = VECTOR_LENGTHS,
    n_sizes: Sequence[int] = N_SIZES,
    sparsities: Sequence[float] = SPARSITIES,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Figure 17 (SpMM speedup grid, geomean per cell)."""
    rng = rng or np.random.default_rng(17)
    suite = suite_for(quick, sparsities)
    hgemm = DenseGemmKernel()
    fpu = FpuSpmmKernel()
    octet = OctetSpmmKernel()
    bell = BlockedEllSpmmKernel()

    res = ExperimentResult(
        name="fig17",
        paper_artifact="Figure 17",
        description="SpMM speedup over cublasHgemm (geomean across the DLMC suite)",
    )
    for v in vector_lengths:
        for n in n_sizes:
            for s in sparsities:
                sp_f, sp_b, sp_m = [], [], []
                for entry in (e for e in suite if abs(e.sparsity - s) < 1e-9):
                    prob = build_spmm_problem(entry, v, n, rng)
                    t_dense = hgemm._model.estimate(
                        hgemm.stats_for_shape(prob.m, prob.k, n)
                    ).time_us
                    t_f = fpu._model.estimate(fpu.stats_for(prob.a_cvse, n)).time_us
                    t_b = bell._model.estimate(bell.stats_for(prob.a_ell, n)).time_us
                    sp_f.append(t_dense / t_f)
                    sp_b.append(t_dense / t_b)
                    if v >= 2:
                        t_m = octet._model.estimate(octet.stats_for(prob.a_cvse, n)).time_us
                        sp_m.append(t_dense / t_m)
                row = {
                    "V": v,
                    "N": n,
                    "sparsity": s,
                    "fpu": round(geomean(sp_f), 3),
                    "blocked-ELL": round(geomean(sp_b), 3),
                }
                row["mma"] = round(geomean(sp_m), 3) if sp_m else None
                res.rows.append(row)

    # headline geomean ratios (the abstract's 1.71-7.19x / 1.34-4.51x)
    ratios_bell, ratios_fpu = [], []
    for r in res.rows:
        if r["mma"]:
            ratios_bell.append(r["mma"] / r["blocked-ELL"])
            ratios_fpu.append(r["mma"] / r["fpu"])
    res.notes["mma/blocked-ELL range"] = (
        f"{min(ratios_bell):.2f}-{max(ratios_bell):.2f} (paper: 1.71-7.19)"
    )
    res.notes["mma/fpu range"] = f"{min(ratios_fpu):.2f}-{max(ratios_fpu):.2f} (paper: 1.34-4.51)"
    return res
