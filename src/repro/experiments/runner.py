"""Run-all CLI: regenerate every table and figure.

``repro-experiments [--full] [--only fig17,table2,...] [--out DIR]``
prints each :class:`ExperimentResult` and optionally writes one text
file per artifact.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from .charts import render_fig17, render_fig20
from .claims import verify
from .common import format_table
from . import (
    ablations,
    fig4_fine_grained,
    fig5_gemm_vs_spmm,
    fig6_blocked_ell,
    fig17_spmm_speedup,
    fig18_l2_traffic,
    fig19_sddmm_speedup,
    fig20_attention_latency,
    table1_stalls,
    table2_guidelines_spmm,
    table3_guidelines_sddmm,
    table4_transformer,
)

__all__ = ["EXPERIMENTS", "main", "run_all"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4_fine_grained.run,
    "fig5": fig5_gemm_vs_spmm.run,
    "fig6": fig6_blocked_ell.run,
    "table1": table1_stalls.run,
    "fig17": fig17_spmm_speedup.run,
    "fig18": fig18_l2_traffic.run,
    "table2": table2_guidelines_spmm.run,
    "fig19": fig19_sddmm_speedup.run,
    "table3": table3_guidelines_sddmm.run,
    "table4": table4_transformer.run,
    "fig20": fig20_attention_latency.run,
    "ablations": ablations.run,
}

#: experiments whose run() accepts the quick flag
_QUICK_AWARE = {"fig4", "fig6", "fig17", "fig19", "table4"}


def run_all(quick: bool = True, only=None, out_dir: Path | None = None) -> Dict[str, object]:
    """Run the selected experiments, print (and optionally save) each."""
    names = list(EXPERIMENTS) if not only else [n for n in EXPERIMENTS if n in set(only)]
    results = {}
    for name in names:
        fn = EXPERIMENTS[name]
        t0 = time.perf_counter()
        res = fn(quick=quick) if name in _QUICK_AWARE else fn()
        dt = time.perf_counter() - t0
        results[name] = res
        text = res.to_text()
        if name == "fig17":
            panels = [render_fig17(res.rows, v, 256) for v in (2, 4, 8)]
            text += "\n\n" + "\n\n".join(panels)
        elif name == "fig20":
            seen = sorted({(r["l"], r["k"]) for r in res.rows})
            text += "\n\n" + "\n\n".join(render_fig20(res.rows, l, k) for l, k in seen)
        print(text)
        print(f"  ({dt:.1f}s)\n")
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return results


def main(argv=None) -> int:
    """``repro-experiments`` entry point."""
    ap = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    ap.add_argument("--full", action="store_true", help="use the full DLMC-style suite")
    ap.add_argument("--only", type=str, default="", help="comma-separated experiment names")
    ap.add_argument("--out", type=str, default="", help="directory for per-artifact text files")
    ap.add_argument("--verify", action="store_true",
                    help="judge every registered paper claim after the runs")
    args = ap.parse_args(argv)
    only = [s.strip() for s in args.only.split(",") if s.strip()] or None
    if only:
        unknown = set(only) - set(EXPERIMENTS)
        if unknown:
            print(f"unknown experiments: {sorted(unknown)}; known: {sorted(EXPERIMENTS)}")
            return 2
    out = Path(args.out) if args.out else None
    results = run_all(quick=not args.full, only=only, out_dir=out)
    if args.verify:
        verdicts = verify(results)
        print("\n== paper-claim verification ==")
        print(format_table([v.as_row() for v in verdicts]))
        if any(v.verdict == "failed" for v in verdicts):
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
