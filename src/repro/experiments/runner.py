"""Run-all CLI: regenerate every table and figure.

``repro-experiments [--full] [--only fig17,table2,...] [--jobs N]
[--out DIR]`` prints each :class:`ExperimentResult` and optionally
writes one text file per artifact.  ``--jobs N`` fans the experiments
out over a process pool (results are printed in registry order either
way); each line reports the wall time and the memo-cache hit rate the
experiment saw.

Resilience (see ``docs/ROBUSTNESS.md``):

* A failing experiment no longer aborts the sweep: the remaining
  experiments finish, every completed artifact is written, a failure
  report is printed, and the process exits 1.  ``--retries``/
  ``--timeout`` bound flaky or stuck experiments (timeouts need
  ``--jobs 2`` or more — an in-process experiment cannot be killed).
* ``--out DIR`` persists each artifact *the moment its experiment
  finishes* (any ``--jobs``), so a crash late in the sweep cannot lose
  early finishers' files.
* ``--out DIR --resume`` checkpoints into ``DIR/manifest.json`` (per
  experiment: config hash + artifact checksum) and skips experiments
  whose checkpoint matches the requested configuration, so a killed
  ``--full`` sweep restarts where it left off.  ``--verify`` only sees
  the experiments that actually ran in this invocation.

Scale-out (see ``src/repro/experiments/sharding.py``):

* ``--shard I/N --out DIR_I`` runs one deterministic slice of the
  sweep: the fig17/fig19 grids partition at cell granularity (every
  shard runs them on its ``index % N == I`` cells), the remaining
  experiments are wholesale-assigned by position.  The manifest gains a
  ``__shard__`` entry and each experiment a ``<name>.rows.json``
  machine artifact.
* ``--merge DIR_0 .. DIR_N-1 --out DIR`` (or ``python -m repro.cli
  merge``) verifies and combines N shard outputs into one full sweep
  result — mismatched shard configurations exit 2, artifact checksums
  are re-verified before anything is trusted.
* With ``REPRO_MEMO_SHARED=1`` all invocations share the file-backed
  memo tier (:mod:`repro.perfmodel.sharedmemo`), so shard workers hit
  entries their siblings already computed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .. import envgates
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..perfmodel import memo
from ..perfmodel import sharedmemo
from .charts import render_fig17, render_fig20
from .claims import verify
from .common import format_table
from .pool import INTERRUPTED, OK, TaskOutcome, resilient_map
from .sharding import (
    CELL_SHARDABLE,
    MANIFEST_NAME,
    SHARD_KEY,
    MergeError,
    merge_shards,
    parse_shard,
    rows_doc,
    verify_manifest,
)
from . import sharding
from . import (
    ablations,
    fig4_fine_grained,
    fig5_gemm_vs_spmm,
    fig6_blocked_ell,
    fig17_spmm_speedup,
    fig18_l2_traffic,
    fig19_sddmm_speedup,
    fig20_attention_latency,
    sensitivity,
    table1_stalls,
    table2_guidelines_spmm,
    table3_guidelines_sddmm,
    table4_transformer,
)

__all__ = ["EXPERIMENTS", "main", "run_all", "SweepFailure"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4_fine_grained.run,
    "fig5": fig5_gemm_vs_spmm.run,
    "fig6": fig6_blocked_ell.run,
    "table1": table1_stalls.run,
    "fig17": fig17_spmm_speedup.run,
    "fig18": fig18_l2_traffic.run,
    "table2": table2_guidelines_spmm.run,
    "fig19": fig19_sddmm_speedup.run,
    "table3": table3_guidelines_sddmm.run,
    "table4": table4_transformer.run,
    "fig20": fig20_attention_latency.run,
    "ablations": ablations.run,
    "sensitivity": sensitivity.run,
}

#: experiments whose run() accepts the quick flag
_QUICK_AWARE = {"fig4", "fig6", "fig17", "fig19", "table4", "sensitivity"}

#: experiments whose run() accepts a jobs parameter for cell-level fan-out
_JOBS_AWARE = {"fig17", "fig19"}

#: experiments whose run() accepts the trace cross-check flag
_TRACE_AWARE = {"fig5", "fig18"}

#: chaos test hook (CI + tests only): ``REPRO_CHAOS=crash:fig5`` kills
#: the worker mid-experiment with os._exit, ``raise:NAME`` raises,
#: ``hang:NAME:SECS`` sleeps — all scoped to the named experiment.


class SweepFailure(RuntimeError):
    """Raised by :func:`run_all` after a degraded sweep: every healthy
    experiment completed and was emitted; ``results`` holds them and
    ``failures`` the failed outcomes (name attached)."""

    def __init__(self, results: Dict[str, object],
                 failures: List[Tuple[str, TaskOutcome]],
                 interrupted: bool = False) -> None:
        names = ", ".join(n for n, _ in failures) or "interrupted"
        super().__init__(f"sweep degraded: {names}")
        self.results = results
        self.failures = failures
        self.interrupted = interrupted


def _chaos(name: str) -> None:
    spec = envgates.raw("REPRO_CHAOS")
    if not spec:
        return
    parts = spec.split(":")
    action, target = parts[0], parts[1] if len(parts) > 1 else ""
    if target != name:
        return
    if action == "crash":
        os._exit(13)
    elif action == "raise":
        raise RuntimeError(f"chaos hook: injected failure in {name}")
    elif action == "hang":
        time.sleep(float(parts[2]) if len(parts) > 2 else 3600.0)


def _obs_payload(name: str, dt: float,
                 scope: Dict[str, Tuple[int, int]],
                 before: Dict[str, Tuple[int, int]],
                 before_shared: Dict[str, Tuple[int, int]]) -> Dict[str, object]:
    """Per-experiment observability payload (plain dicts, picklable).

    Always carries the scoped memo counters the hit-rate line prints;
    when observability is on it also records the raw memo deltas —
    local tier as ``memo.<region>.*``, shared tier as
    ``memo.shared.<region>.*`` — into the metrics registry and ships
    the worker's drained spans/metrics home so the parent can stitch
    one timeline (the pool-mode half of ``docs/OBSERVABILITY.md``).
    """
    if obs_metrics.enabled():
        for region, (h, m) in memo.counters().items():
            bh, bm = before.get(region, (0, 0))
            if h - bh:
                obs_metrics.counter_add(f"memo.{region}.hits", h - bh)
            if m - bm:
                obs_metrics.counter_add(f"memo.{region}.misses", m - bm)
        for region, (h, m) in sharedmemo.counters().items():
            bh, bm = before_shared.get(region, (0, 0))
            if h - bh:
                obs_metrics.counter_add(f"memo.shared.{region}.hits", h - bh)
            if m - bm:
                obs_metrics.counter_add(f"memo.shared.{region}.misses", m - bm)
        for region, (served, lookups) in scope.items():
            obs_metrics.counter_add(f"memo.scoped.{region}.served", served)
            obs_metrics.counter_add(f"memo.scoped.{region}.lookups", lookups)
        obs_metrics.gauge_set(f"experiment.{name}.seconds", round(dt, 4))
        obs_metrics.observe("experiment.seconds", dt)
    return {
        "memo_scope": scope,
        "spans": obs_tracing.drain() if obs_tracing.enabled() else [],
        "metrics": obs_metrics.drain() if obs_metrics.enabled() else None,
    }


def _run_one(task: Tuple[str, bool, int, bool, bool, Optional[Tuple[int, int]]]):
    """Run one experiment (module-level so process pools can pickle it).

    Returns ``(name, result, seconds, obs_payload)``; the payload's
    ``memo_scope`` counters are scoped to this run (identical across
    serial, ``--jobs`` and ``--shard`` schedules for the same work —
    see :func:`memo.scope_begin`), and its spans/metrics are the
    worker's drained observability state when tracing is enabled.
    """
    name, quick, jobs, trace, obs_on, shard = task
    if obs_on:
        obs_tracing.enable()
    _chaos(name)
    fn = EXPERIMENTS[name]
    kwargs = {}
    if name in _QUICK_AWARE:
        kwargs["quick"] = quick
    if jobs > 1 and name in _JOBS_AWARE:
        kwargs["jobs"] = jobs
    if trace and name in _TRACE_AWARE:
        kwargs["trace"] = True
    if shard is not None and name in CELL_SHARDABLE:
        kwargs["shard"] = shard
    memo.scope_begin()
    before = memo.counters()
    before_shared = sharedmemo.counters()
    t0 = time.perf_counter()
    with obs_tracing.span(f"experiment.{name}", quick=bool(quick)):
        res = fn(**kwargs)
    dt = time.perf_counter() - t0
    payload = _obs_payload(name, dt, memo.scope_end(), before, before_shared)
    # drop the operand-carrying cache entries so a long sweep's heap
    # stays bounded by one experiment's working set
    memo.trim()
    return name, res, dt, payload


def _render(name: str, res) -> str:
    text = res.to_text()
    if name == "fig17":
        panels = [render_fig17(res.rows, v, 256) for v in (2, 4, 8)]
        text += "\n\n" + "\n\n".join(panels)
    elif name == "fig20":
        seen = sorted({(r["l"], r["k"]) for r in res.rows})
        text += "\n\n" + "\n\n".join(render_fig20(res.rows, l, k) for l, k in seen)
    return text


def _emit(name: str, res, dt: float, payload: Dict[str, object], out_dir: Path | None,
          text: Optional[str] = None, write: bool = True) -> None:
    if text is None:
        text = _render(name, res)
    # the hit-rate line reads the scope counters the metrics registry
    # records (memo.scoped.*): repetition *within* the experiment, so
    # serial and --jobs sweeps print identical numbers
    scope: Dict[str, Tuple[int, int]] = payload.get("memo_scope") or {}
    served = sum(s for s, _ in scope.values())
    lookups = sum(n for _, n in scope.values())
    print(text)
    print(f"  ({dt:.1f}s, memo: {100.0 * memo.hit_rate(served, lookups - served):.0f}% hit, "
          f"{served}/{lookups})\n")
    if write and out_dir is not None:
        _write_artifact(out_dir, name, text)


def _write_artifact(out_dir: Path, name: str, text: str) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.txt").write_text(text + "\n")


# --------------------------------------------------------------------- #
# checkpoint manifest (primitives live in sharding.py; re-exported here
# because the manifest format is shared with the shard-merge path)
# --------------------------------------------------------------------- #
_text_checksum = sharding.text_checksum
_load_manifest = sharding.load_manifest


def _config_hash(name: str, quick: bool, trace: bool,
                 shard: Optional[Tuple[int, int]] = None) -> str:
    """Hash of everything that shapes an experiment's output (``jobs``
    is excluded: fan-out is bit-transparent, pinned by TestJobsParity;
    a cell-shard slice is part of the config — see sharding.py)."""
    return sharding.config_hash(
        name, quick, bool(trace and name in _TRACE_AWARE), shard=shard)


def _checkpoint(out_dir: Path, manifest: Dict[str, dict], name: str,
                config: str, text: str, seconds: float,
                extra: Optional[Dict[str, object]] = None) -> None:
    """Record one completed experiment and rewrite the manifest
    atomically (write-then-rename, so a kill mid-write leaves the old
    manifest, never a torn one)."""
    entry: Dict[str, object] = {
        "config": config,
        "checksum": _text_checksum(text),
        "seconds": round(seconds, 3),
    }
    if extra:
        entry.update(extra)
    manifest[name] = entry
    sharding.write_manifest(out_dir, manifest)


def _resume_skips(names: List[str], quick: bool, trace: bool,
                  out_dir: Path, manifest: Dict[str, dict],
                  shard: Optional[Tuple[int, int]] = None) -> List[str]:
    """Names whose checkpoint matches the requested configuration *and*
    whose artifact file still exists with the recorded checksum."""
    skips = []
    for name in names:
        entry = manifest.get(name)
        if not isinstance(entry, dict):
            continue
        if entry.get("config") != _config_hash(name, quick, trace, shard=shard):
            continue  # stale: quick/trace/shard changed since checkpoint
        artifact = out_dir / f"{name}.txt"
        if not artifact.is_file():
            continue
        if _text_checksum(artifact.read_text()[:-1]) != entry.get("checksum"):
            continue  # artifact edited/corrupted on disk: rerun
        skips.append(name)
    return skips


# --------------------------------------------------------------------- #
# sweep driver
# --------------------------------------------------------------------- #
def _failure_report(failures: List[Tuple[str, TaskOutcome]]) -> str:
    rows = [
        {
            "Experiment": name,
            "Status": out.status,
            "Attempts": out.attempts,
            "Error": (out.error or "-")[:60],
        }
        for name, out in failures
    ]
    report = "== failure report ==\n" + format_table(rows)
    tracebacks = [
        f"\n-- {name} ({out.status}) --\n{out.traceback.rstrip()}"
        for name, out in failures
        if out.traceback
    ]
    return report + "".join(tracebacks)


def run_all(
    quick: bool = True,
    only=None,
    out_dir: Path | None = None,
    jobs: int = 1,
    trace: bool = False,
    resume: bool = False,
    timeout: Optional[float] = None,
    retries: int = 0,
    shard: Optional[object] = None,
    profile: bool = False,
) -> Dict[str, object]:
    """Run the selected experiments, print (and optionally save) each.

    ``only`` must name registered experiments — unknown names raise
    :class:`ValueError` (listing the valid choices) instead of being
    silently dropped; so do ``jobs < 0`` and ``--resume`` without an
    output directory.  ``jobs > 1`` runs the experiments on a process
    pool; outputs still appear in registry order.  ``trace`` adds the
    trace-simulator cross-check columns to the trace-aware experiments
    (fig5, fig18).

    The sweep is resilient: a failing experiment is recorded, the rest
    complete and are emitted (artifacts written as each finishes), and
    a :class:`SweepFailure` carrying the partial results is raised after
    the failure report prints.  ``resume`` skips experiments already
    checkpointed in ``out_dir/manifest.json`` under the same
    configuration.

    ``shard`` (an ``"I/N"`` string or ``(index, total)`` tuple) runs one
    deterministic slice of the sweep: the cell-shardable experiments
    (fig17/fig19) run on every shard with their grid partitioned at
    cell granularity, everything else is wholesale-assigned by position.
    A sharded run needs ``out_dir`` (the shard-scoped manifest and
    ``<name>.rows.json`` artifacts are what the merge consumes).

    ``profile`` (needs ``out_dir``) writes a ``<name>.profile.json``
    artifact next to the manifest as each experiment settles, and after
    a clean sweep appends one ``experiment-sweep`` record to
    ``out_dir/profile_history.jsonl`` — the runner's entry in the
    profiler's run-history store (:mod:`repro.profiler.history`).
    """
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if resume and out_dir is None:
        raise ValueError("--resume needs --out DIR (checkpoints live in the manifest there)")
    shard_t = parse_shard(shard) if isinstance(shard, str) else shard
    if shard_t is not None and out_dir is None:
        raise ValueError("--shard needs --out DIR (the merge consumes the shard manifests)")
    if profile and out_dir is None:
        raise ValueError("--profile needs --out DIR (profile artifacts live next to the manifest)")
    if only:
        unknown = sorted(set(only) - set(EXPERIMENTS))
        if unknown:
            raise ValueError(
                f"unknown experiments: {unknown}; valid choices: {sorted(EXPERIMENTS)}"
            )
    names = list(EXPERIMENTS) if not only else [n for n in EXPERIMENTS if n in set(only)]
    requested = list(names)

    manifest: Dict[str, dict] = _load_manifest(out_dir) if out_dir is not None else {}
    if shard_t is not None:
        # this shard: its wholesale assignment + every cell-shardable
        # experiment (those partition their own grid)
        wholesale = [n for n in names if n not in CELL_SHARDABLE]
        keep = set(sharding.assign_wholesale(wholesale, shard_t))
        keep |= set(names) & CELL_SHARDABLE
        names = [n for n in names if n in keep]
        manifest[SHARD_KEY] = {
            "index": shard_t[0], "total": shard_t[1],
            "quick": bool(quick), "trace": bool(trace),
            "experiments": requested,
        }
        # publish the shard identity up front so a merge attempt against
        # an unfinished (even empty) shard fails with a clear message
        sharding.write_manifest(out_dir, manifest)
        print(f"shard {shard_t[0]}/{shard_t[1]}: "
              f"{', '.join(names) or '(no experiments assigned)'}\n")
    if resume:
        skips = _resume_skips(names, quick, trace, out_dir, manifest, shard=shard_t)
        for name in skips:
            print(f"{name}: skipped (checkpoint matches, artifact verified)")
        if skips:
            print()
        names = [n for n in names if n not in set(skips)]
    if not names:
        return {}

    # each experiment runs serially inside its worker; the pool
    # parallelises across experiments (and _run_one skips handing the
    # inner sweeps a nested pool)
    obs_on = obs_tracing.enabled()
    tasks = [(name, quick, 1, trace, obs_on, shard_t) for name in names]
    results: Dict[str, object] = {}
    rendered: Dict[str, str] = {}

    def on_outcome(out: TaskOutcome) -> None:
        # runs in the scheduler (parent) as each experiment settles:
        # persist the artifact + checkpoint immediately so nothing a
        # later crash does can lose it; worker spans/metrics are
        # stitched into the parent's timeline here (same path whether
        # the experiment ran in-process or in a pool worker)
        if not out.ok:
            return
        name, res, dt, payload = out.result
        obs_tracing.ingest(payload.get("spans") or [])
        obs_metrics.merge(payload.get("metrics"))
        text = rendered[name] = _render(name, res)
        if out_dir is not None:
            _write_artifact(out_dir, name, text)
            if profile:
                _write_profile_artifact(out_dir, name, dt, payload,
                                        _config_hash(name, quick, trace,
                                                     shard=shard_t))
            extra = None
            if shard_t is not None:
                # machine artifact for the merge: rows + cell indices,
                # checksummed into the checkpoint entry
                # key order matters: row columns render in insertion
                # order, and json round-trips it
                doc = json.dumps(sharding.rows_doc(res))
                (out_dir / f"{name}.rows.json").write_text(doc)
                extra = {"rows_checksum": _text_checksum(doc)}
            _checkpoint(out_dir, manifest, name,
                        _config_hash(name, quick, trace, shard=shard_t),
                        text, dt, extra=extra)
        # make this experiment's shared-memo entries visible to sibling
        # shard/runner invocations immediately (no-op when tier is off)
        sharedmemo.flush()

    with obs_tracing.span("run_all", jobs=jobs, quick=bool(quick),
                          experiments=len(tasks)):
        outcomes = resilient_map(
            _run_one, tasks, jobs=jobs,
            timeout=timeout, retries=retries, on_outcome=on_outcome,
        )

    failures: List[Tuple[str, TaskOutcome]] = []
    interrupted = False
    for (name, *_rest), out in zip(tasks, outcomes):
        if out.ok:
            res_name, res, dt, payload = out.result
            results[res_name] = res
            # artifact already written in on_outcome; just print
            _emit(res_name, res, dt, payload, out_dir,
                  text=rendered.get(res_name), write=False)
        elif out.status == INTERRUPTED:
            interrupted = True
        else:
            failures.append((name, out))

    if obs_on and out_dir is not None:
        _write_obs_outputs(out_dir, manifest)

    if failures or interrupted:
        if failures:
            print(_failure_report(failures))
        if interrupted:
            pending = [n for (n, *_rest), o in zip(tasks, outcomes)
                       if o.status == INTERRUPTED]
            print(f"interrupted: {len(results)}/{len(tasks)} experiments completed; "
                  f"pending: {', '.join(pending)}")
        raise SweepFailure(results, failures, interrupted=interrupted)
    if profile and out_dir is not None:
        _append_sweep_record(out_dir, manifest, requested, quick, trace, shard_t)
    return results


def _write_profile_artifact(out_dir: Path, name: str, dt: float,
                            payload: Dict[str, object], config: str) -> None:
    """One ``<name>.profile.json`` next to the manifest: the experiment's
    config hash, wall time and scoped memo counters."""
    scope: Dict[str, Tuple[int, int]] = payload.get("memo_scope") or {}
    doc = {
        "experiment": name,
        "config": config,
        "seconds": round(dt, 3),
        "memo_scope": {region: {"served": s, "lookups": n}
                       for region, (s, n) in sorted(scope.items())},
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"{name}.profile.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _append_sweep_record(out_dir: Path, manifest: Dict[str, dict],
                         requested: List[str], quick: bool, trace: bool,
                         shard_t: Optional[Tuple[int, int]]) -> None:
    """Append this sweep's ``experiment-sweep`` record to the profiler
    history store colocated with the artifacts."""
    from ..profiler import history as profile_history

    experiments = {
        name: {"config": entry.get("config"), "seconds": entry.get("seconds")}
        for name, entry in sorted(manifest.items())
        if isinstance(entry, dict) and "config" in entry
    }
    record = profile_history.make_record(
        "experiment-sweep",
        {"experiments": requested, "quick": bool(quick), "trace": bool(trace),
         "shard": list(shard_t) if shard_t else None},
        {"experiments": experiments})
    profile_history.append_record(out_dir / "profile_history.jsonl", record)
    print(f"profile: appended sweep record {record['digest'][:12]} to "
          f"{out_dir / 'profile_history.jsonl'}")


def _write_obs_outputs(out_dir: Path, manifest: Dict[str, dict]) -> None:
    """Persist the metrics snapshot next to the artifacts and fold it
    into the checkpoint manifest (under ``__metrics__``, which the
    resume logic ignores — only per-experiment dict entries with a
    ``config`` key participate in skip decisions)."""
    out_dir.mkdir(parents=True, exist_ok=True)
    obs_metrics.write_json(out_dir / "metrics.json")
    manifest["__metrics__"] = obs_metrics.snapshot()
    sharding.write_manifest(out_dir, manifest)


def _merge_main(shard_dirs: List[str], out: Optional[Path]) -> int:
    """``--merge`` / ``cli merge`` driver: combine, then verify.

    Exit codes: 0 merged and every artifact verifies, 1 a merged
    artifact failed verification (a bug, not an input problem), 2 the
    shard outputs cannot be merged (mismatched configs, missing or
    corrupt shards).
    """
    if out is None:
        print("--merge needs --out DIR for the combined sweep result")
        return 2
    try:
        summary = merge_shards(shard_dirs, out)
    except MergeError as exc:
        print(f"merge refused: {exc}")
        return 2
    checks = verify_manifest(out)
    print(f"merged {summary['shards']} shards -> {summary['out']} "
          f"({len(summary['experiments'])} experiments)")
    for name, ok in checks.items():
        print(f"  {name}: {'verified' if ok else 'CHECKSUM MISMATCH'}")
    return 0 if checks and all(checks.values()) else 1


def main(argv=None) -> int:
    """``repro-experiments`` entry point."""
    ap = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    ap.add_argument("--full", action="store_true", help="use the full DLMC-style suite")
    ap.add_argument("--only", type=str, default="", help="comma-separated experiment names")
    ap.add_argument("--jobs", type=int, default=1,
                    help="fan the experiments out over N worker processes")
    ap.add_argument("--out", type=str, default="", help="directory for per-artifact text files")
    ap.add_argument("--resume", action="store_true",
                    help="skip experiments already checkpointed in --out's manifest")
    ap.add_argument("--shard", type=str, default="",
                    help="run slice I/N of the sweep (0-based; fig17/fig19 "
                         "partition at grid-cell granularity, other experiments "
                         "are wholesale-assigned); needs --out")
    ap.add_argument("--merge", nargs="+", metavar="SHARD_DIR", default=None,
                    help="merge N shard output directories (each written by a "
                         "--shard run) into --out and verify the result")
    ap.add_argument("--timeout", type=float, default=None,
                    help="per-experiment wall-clock budget in seconds (needs --jobs >= 2)")
    ap.add_argument("--retries", type=int, default=0,
                    help="re-run a failed experiment up to N times (deterministic backoff)")
    ap.add_argument("--trace", action="store_true",
                    help="add the cache-simulator trace cross-check columns (fig5, fig18)")
    ap.add_argument("--profile", action="store_true",
                    help="write <name>.profile.json artifacts next to the "
                         "manifest and append a sweep record to the profiler "
                         "history store (needs --out)")
    ap.add_argument("--trace-out", type=str, default="",
                    help="enable observability and write a Chrome trace-event "
                         "timeline (plus a sibling metrics.json) to PATH")
    ap.add_argument("--verify", action="store_true",
                    help="judge every registered paper claim after the runs")
    args = ap.parse_args(argv)
    only = [s.strip() for s in args.only.split(",") if s.strip()] or None
    out = Path(args.out) if args.out else None
    if args.merge is not None:
        return _merge_main(args.merge, out)
    if args.trace_out:
        obs_tracing.enable()
    degraded = False
    try:
        results = run_all(quick=not args.full, only=only, out_dir=out, jobs=args.jobs,
                          trace=args.trace, resume=args.resume,
                          timeout=args.timeout, retries=args.retries,
                          shard=args.shard or None, profile=args.profile)
    except ValueError as exc:
        print(exc)
        return 2
    except SweepFailure as exc:
        if exc.interrupted and not exc.failures:
            return 130
        degraded = True
        results = exc.results
    finally:
        if args.trace_out:
            trace_path = Path(args.trace_out)
            obs_tracing.export_chrome_trace(trace_path)
            obs_metrics.write_json(trace_path.with_name(
                trace_path.stem + ".metrics.json"))
            print(f"trace written to {trace_path} "
                  f"(load in Perfetto / chrome://tracing)")
    if args.verify:
        verdicts = verify(results)
        print("\n== paper-claim verification ==")
        print(format_table([v.as_row() for v in verdicts]))
        if any(v.verdict == "failed" for v in verdicts):
            return 1
    return 1 if degraded else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
