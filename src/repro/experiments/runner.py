"""Run-all CLI: regenerate every table and figure.

``repro-experiments [--full] [--only fig17,table2,...] [--jobs N]
[--out DIR]`` prints each :class:`ExperimentResult` and optionally
writes one text file per artifact.  ``--jobs N`` fans the experiments
out over a process pool (results are printed in registry order either
way); each line reports the wall time and the memo-cache hit rate the
experiment saw.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from ..perfmodel import memo
from .charts import render_fig17, render_fig20
from .claims import verify
from .common import format_table
from .pool import parallel_map
from . import (
    ablations,
    fig4_fine_grained,
    fig5_gemm_vs_spmm,
    fig6_blocked_ell,
    fig17_spmm_speedup,
    fig18_l2_traffic,
    fig19_sddmm_speedup,
    fig20_attention_latency,
    sensitivity,
    table1_stalls,
    table2_guidelines_spmm,
    table3_guidelines_sddmm,
    table4_transformer,
)

__all__ = ["EXPERIMENTS", "main", "run_all"]

EXPERIMENTS: Dict[str, Callable] = {
    "fig4": fig4_fine_grained.run,
    "fig5": fig5_gemm_vs_spmm.run,
    "fig6": fig6_blocked_ell.run,
    "table1": table1_stalls.run,
    "fig17": fig17_spmm_speedup.run,
    "fig18": fig18_l2_traffic.run,
    "table2": table2_guidelines_spmm.run,
    "fig19": fig19_sddmm_speedup.run,
    "table3": table3_guidelines_sddmm.run,
    "table4": table4_transformer.run,
    "fig20": fig20_attention_latency.run,
    "ablations": ablations.run,
    "sensitivity": sensitivity.run,
}

#: experiments whose run() accepts the quick flag
_QUICK_AWARE = {"fig4", "fig6", "fig17", "fig19", "table4", "sensitivity"}

#: experiments whose run() accepts a jobs parameter for cell-level fan-out
_JOBS_AWARE = {"fig17", "fig19"}

#: experiments whose run() accepts the trace cross-check flag
_TRACE_AWARE = {"fig5", "fig18"}


def _run_one(task: Tuple[str, bool, int, bool]):
    """Run one experiment (module-level so process pools can pickle it).

    Returns ``(name, result, seconds, (cache_hits, cache_misses))`` with
    the counters scoped to this run.
    """
    name, quick, jobs, trace = task
    fn = EXPERIMENTS[name]
    kwargs = {}
    if name in _QUICK_AWARE:
        kwargs["quick"] = quick
    if jobs > 1 and name in _JOBS_AWARE:
        kwargs["jobs"] = jobs
    if trace and name in _TRACE_AWARE:
        kwargs["trace"] = True
    before = memo.snapshot()
    t0 = time.perf_counter()
    res = fn(**kwargs)
    dt = time.perf_counter() - t0
    # drop the operand-carrying cache entries so a long sweep's heap
    # stays bounded by one experiment's working set
    memo.trim()
    return name, res, dt, memo.delta(before)


def _render(name: str, res) -> str:
    text = res.to_text()
    if name == "fig17":
        panels = [render_fig17(res.rows, v, 256) for v in (2, 4, 8)]
        text += "\n\n" + "\n\n".join(panels)
    elif name == "fig20":
        seen = sorted({(r["l"], r["k"]) for r in res.rows})
        text += "\n\n" + "\n\n".join(render_fig20(res.rows, l, k) for l, k in seen)
    return text


def _emit(name: str, res, dt: float, cache: Tuple[int, int], out_dir: Path | None) -> None:
    text = _render(name, res)
    hits, misses = cache
    print(text)
    print(f"  ({dt:.1f}s, memo: {100.0 * memo.hit_rate(hits, misses):.0f}% hit, {hits}/{hits + misses})\n")
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


def run_all(
    quick: bool = True,
    only=None,
    out_dir: Path | None = None,
    jobs: int = 1,
    trace: bool = False,
) -> Dict[str, object]:
    """Run the selected experiments, print (and optionally save) each.

    ``only`` must name registered experiments — unknown names raise
    :class:`ValueError` (listing the valid choices) instead of being
    silently dropped.  ``jobs > 1`` runs the experiments on a process
    pool; outputs still appear in registry order.  ``trace`` adds the
    trace-simulator cross-check columns to the trace-aware experiments
    (fig5, fig18).
    """
    if only:
        unknown = sorted(set(only) - set(EXPERIMENTS))
        if unknown:
            raise ValueError(
                f"unknown experiments: {unknown}; valid choices: {sorted(EXPERIMENTS)}"
            )
    names = list(EXPERIMENTS) if not only else [n for n in EXPERIMENTS if n in set(only)]
    results: Dict[str, object] = {}
    if jobs > 1:
        # each experiment runs serially inside its worker; the pool
        # parallelises across experiments (and _run_one skips handing
        # the inner sweeps a nested pool)
        tasks = [(name, quick, 1, trace) for name in names]
        outcomes: List = parallel_map(_run_one, tasks, jobs=jobs)
        for name, res, dt, cache in outcomes:
            results[name] = res
            _emit(name, res, dt, cache, out_dir)
    else:
        for name in names:
            name, res, dt, cache = _run_one((name, quick, 1, trace))
            results[name] = res
            _emit(name, res, dt, cache, out_dir)
    return results


def main(argv=None) -> int:
    """``repro-experiments`` entry point."""
    ap = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    ap.add_argument("--full", action="store_true", help="use the full DLMC-style suite")
    ap.add_argument("--only", type=str, default="", help="comma-separated experiment names")
    ap.add_argument("--jobs", type=int, default=1,
                    help="fan the experiments out over N worker processes")
    ap.add_argument("--out", type=str, default="", help="directory for per-artifact text files")
    ap.add_argument("--trace", action="store_true",
                    help="add the cache-simulator trace cross-check columns (fig5, fig18)")
    ap.add_argument("--verify", action="store_true",
                    help="judge every registered paper claim after the runs")
    args = ap.parse_args(argv)
    only = [s.strip() for s in args.only.split(",") if s.strip()] or None
    out = Path(args.out) if args.out else None
    try:
        results = run_all(quick=not args.full, only=only, out_dir=out, jobs=args.jobs,
                          trace=args.trace)
    except ValueError as exc:
        print(exc)
        return 2
    if args.verify:
        verdicts = verify(results)
        print("\n== paper-claim verification ==")
        print(format_table([v.as_row() for v in verdicts]))
        if any(v.verdict == "failed" for v in verdicts):
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
