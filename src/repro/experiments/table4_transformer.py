"""Table 4: sparse transformer — accuracy, throughput, peak memory.

Paper setup: LRA byte-level text classification, sequence length 4000,
4 layers x 4 heads x 64 features/head, batch 8; fixed band+random mask
at 90% sparsity with the 8x1 vector constraint; half-precision models
quantised directly without finetuning.

Substitutions (DESIGN.md): accuracy comes from a scaled-down trained
model (NumPy backprop on the synthetic byte task — what matters is the
*relative* accuracy of dense-float / dense-half / sparse-half, which
the paper reports as 65.12 / 65.09 / 65.01%); throughput and peak
memory come from the cost model evaluated at the paper's full
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..kernels.gemm import DenseGemmKernel
from ..transformer.attention import DenseAttention, SparseAttention
from ..transformer.lra import ByteTaskConfig, make_dataset
from ..transformer.masks import band_random_mask, mask_to_cvse
from ..transformer.memory import dense_attention_peak, sparse_attention_peak
from ..transformer.model import TransformerClassifier, TransformerConfig
from ..transformer.training import TrainConfig, evaluate, train
from .common import ExperimentResult

__all__ = ["run", "PaperConfig", "throughput_seq_per_s"]


@dataclass(frozen=True)
class PaperConfig:
    """The §7.4 full-scale configuration."""

    seq_len: int = 4000
    n_layers: int = 4
    n_heads: int = 4
    head_dim: int = 64
    d_ff: int = 1024
    batch: int = 8
    sparsity: float = 0.9
    band: int = 256
    vector_length: int = 8

    @property
    def d_model(self) -> int:
        return self.n_heads * self.head_dim


def _layer_gemms_us(cfg: PaperConfig, precision: str) -> float:
    """Projection + FFN GEMMs of one layer (batch folded into M)."""
    g = DenseGemmKernel(precision=precision)
    m = cfg.seq_len * cfg.batch
    t = 0.0
    for _ in range(4):  # Wq, Wk, Wv, Wo
        t += g._model.estimate(g.stats_for_shape(m, cfg.d_model, cfg.d_model)).time_us
    t += g._model.estimate(g.stats_for_shape(m, cfg.d_model, cfg.d_ff)).time_us
    t += g._model.estimate(g.stats_for_shape(m, cfg.d_ff, cfg.d_model)).time_us
    return t


def throughput_seq_per_s(cfg: PaperConfig, mode: str, rng=None) -> float:
    """Modelled inference throughput (sequences / second).

    Per layer the heads x batch attention problems dispatch as batched
    launches (one per stage); projections/FFN GEMMs fold the batch into
    their M dimension.
    """
    rng = rng or np.random.default_rng(44)
    copies = cfg.n_heads * cfg.batch
    if mode == "sparse-half":
        # the mask's sequence length must divide V
        l = (cfg.seq_len // cfg.vector_length) * cfg.vector_length
        mask = band_random_mask(l, cfg.vector_length, cfg.band, cfg.sparsity, rng)
        att = SparseAttention(mask_to_cvse(mask, cfg.vector_length))
        per_layer = att.estimate_batched(l, cfg.head_dim, copies).total
        gemm_prec = "half"
    else:
        prec = "half" if mode == "dense-half" else "single"
        datt = DenseAttention(precision=prec)
        per_layer = datt.estimate_batched(cfg.seq_len, cfg.head_dim, copies).total
        gemm_prec = prec
    att_us = cfg.n_layers * per_layer
    gemm_us = cfg.n_layers * _layer_gemms_us(cfg, gemm_prec)
    total_s = (att_us + gemm_us) / 1e6
    return cfg.batch / total_s


def run(
    quick: bool = True,
    paper_cfg: PaperConfig = PaperConfig(),
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Regenerate Table 4 (sparse transformer end to end)."""
    rng = rng or np.random.default_rng(4242)

    # --- accuracy on the scaled-down trained model -------------------------
    # marker-noise 0.68 puts the task's Bayes ceiling near the paper's
    # mid-60s accuracy regime (tuned once; see lra.py)
    seq = 128
    task = ByteTaskConfig(seq_len=seq, markers=9, label_noise=0.68, seed=7)
    n_train = 384 if quick else 512
    n_test = 256
    tok_tr, lab_tr = make_dataset(n_train, task, np.random.default_rng(1))
    tok_te, lab_te = make_dataset(n_test, task, np.random.default_rng(777))
    mask = band_random_mask(seq, vector_length=8, band=16, sparsity=0.9,
                            rng=np.random.default_rng(2))
    model_cfg = TransformerConfig(
        seq_len=seq, d_model=32, n_heads=2, n_layers=2, d_ff=64
    )
    model = TransformerClassifier(model_cfg, np.random.default_rng(11))
    train(
        model, tok_tr, lab_tr, mask=mask,
        cfg=TrainConfig(epochs=6 if quick else 8, lr=2e-3, seed=5),
    )
    sparse_att = SparseAttention(mask_to_cvse(mask, 8))
    acc = {
        "Dense(float)": evaluate(model, tok_te, lab_te, mask=mask, mode="dense-float"),
        "Dense(half)": evaluate(model, tok_te, lab_te, mask=mask, mode="dense-half"),
        "Sparse(half)": evaluate(
            model, tok_te[: min(128, n_test)], lab_te[: min(128, n_test)],
            mode="sparse-half", sparse_attention=sparse_att,
        ),
    }

    # --- throughput + memory at the paper's full scale ----------------------
    thr = {
        "Dense(float)": throughput_seq_per_s(paper_cfg, "dense-float"),
        "Dense(half)": throughput_seq_per_s(paper_cfg, "dense-half"),
        "Sparse(half)": throughput_seq_per_s(paper_cfg, "sparse-half"),
    }
    l = (paper_cfg.seq_len // paper_cfg.vector_length) * paper_cfg.vector_length
    full_mask = mask_to_cvse(
        band_random_mask(l, paper_cfg.vector_length, paper_cfg.band, paper_cfg.sparsity,
                         np.random.default_rng(12)),
        paper_cfg.vector_length,
    )
    mem = {
        "Dense(float)": dense_attention_peak(
            paper_cfg.seq_len, paper_cfg.d_model, paper_cfg.n_heads, paper_cfg.d_ff,
            paper_cfg.batch, "single",
        ).total,
        "Dense(half)": dense_attention_peak(
            paper_cfg.seq_len, paper_cfg.d_model, paper_cfg.n_heads, paper_cfg.d_ff,
            paper_cfg.batch, "half",
        ).total,
        "Sparse(half)": sparse_attention_peak(
            full_mask, paper_cfg.d_model, paper_cfg.n_heads, paper_cfg.d_ff, paper_cfg.batch,
        ).total,
    }

    res = ExperimentResult(
        name="table4",
        paper_artifact="Table 4",
        description="Sparse transformer: accuracy (scaled task), modelled throughput and peak memory",
    )
    for model_name in ("Dense(float)", "Dense(half)", "Sparse(half)"):
        res.rows.append(
            {
                "Model": model_name,
                "Accuracy": f"{100 * acc[model_name]:.2f}%",
                "Throughput (seq/s)": round(thr[model_name], 1),
                "Peak Memory": f"{mem[model_name] / 2**30:.2f} GB"
                if mem[model_name] > 2**29
                else f"{mem[model_name] / 2**20:.1f} MB",
            }
        )
    res.notes["paper accuracy"] = "65.12% / 65.09% / 65.01%"
    res.notes["paper throughput"] = "74.7 / 182.6 / 258 seq/s"
    res.notes["paper peak memory"] = "4.44 GB / 2.22 GB / 170.03 MB"
    res.notes["speedup sparse/dense-half"] = f"{thr['Sparse(half)'] / thr['Dense(half)']:.2f}x (paper: 1.41x)"
    res.notes["speedup sparse/dense-float"] = f"{thr['Sparse(half)'] / thr['Dense(float)']:.2f}x (paper: 3.45x)"
    res.notes["memory reduction vs half"] = f"{mem['Dense(half)'] / mem['Sparse(half)']:.1f}x (paper: 13.37x)"
    return res
