"""End-to-end observability for the simulator stack.

Two halves behind one switch (``REPRO_TRACE=1`` or
:func:`enable`):

* :mod:`repro.obs.tracing` — nested spans with monotonic-clock
  timing, exported as Chrome trace-event JSON
  (``chrome://tracing``/Perfetto) or a human tree.
* :mod:`repro.obs.metrics` — counters/gauges/histograms snapshotted
  to ``metrics.json`` and merged into the runner's ``manifest.json``.

Both are near-zero-overhead no-ops while disabled (the default), so
the hot paths — kernel dispatch, the memo layer, trace replay, the
experiment runner, the sanitizer, the fault campaigns — carry their
instrumentation permanently.  ``python -m repro.cli obs`` runs any
experiment under the tracer and emits timeline + metrics + a slowest
spans table; see ``docs/OBSERVABILITY.md``.
"""

from . import metrics, tracing
from .tracing import (
    disable,
    drain,
    enable,
    enabled,
    export_chrome_trace,
    ingest,
    render_tree,
    reset,
    set_enabled,
    slowest_table,
    span,
    traced,
    validate_chrome_trace,
)

__all__ = [
    "metrics",
    "tracing",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "reset",
    "span",
    "traced",
    "drain",
    "ingest",
    "export_chrome_trace",
    "validate_chrome_trace",
    "render_tree",
    "slowest_table",
]
