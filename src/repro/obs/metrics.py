"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the numeric half of the observability layer
(:mod:`repro.obs.tracing` is the timeline half).  Subsystems push
named instruments::

    from repro.obs import metrics

    metrics.counter_add("trace.replay.batches")
    metrics.gauge_set("pool.workers", 4)
    metrics.observe("hmma.batch_size", 128)

Instruments are no-ops while observability is disabled (one boolean
check per call — safe on hot paths).  Enabled, they accumulate into a
process-wide store that :func:`snapshot` renders as plain JSON:
counters and gauges as scalars, histograms as
``{count, sum, min, max, mean}`` summaries.  A histogram can opt into
explicit bucket boundaries with :func:`configure_buckets`; bucketed
histograms additionally report per-bucket counts (last bucket =
overflow above the top bound).

Naming convention (``docs/OBSERVABILITY.md``): dotted lowercase
``<subsystem>.<thing>``; counters count events, gauges hold last
values, histograms hold distributions.

Pool stitching mirrors the tracer: a worker :func:`drain`\\ s its
registry after each task, the plain-dict payload rides home in the
task result, and the parent :func:`merge`\\ s it — counters add,
histograms combine, gauges last-write-wins — so ``metrics.json`` is
one registry no matter how many processes contributed.  Bucketed
histograms travel with their boundaries, and :func:`merge` refuses to
fold counts binned against *different* boundaries — that raises
:class:`HistogramBucketMismatchError` instead of silently misbinning.

:func:`snapshot` also emits a ``derived`` section with the headline
rates the acceptance dashboards read (memo hit rate per region,
sector-cache hit rates) — always present, zero-valued when the run
never touched the subsystem, so consumers need no existence checks.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, List, Optional

from . import tracing

__all__ = [
    "enabled",
    "counter_add",
    "gauge_set",
    "observe",
    "configure_buckets",
    "HistogramBucketMismatchError",
    "reset",
    "drain",
    "merge",
    "snapshot",
    "write_json",
    "counters",
    "gauges",
    "histograms",
]

_lock = threading.Lock()
_counters: Dict[str, float] = {}
_gauges: Dict[str, float] = {}
#: name -> [count, sum, min, max]
_hists: Dict[str, List[float]] = {}
#: opt-in explicit boundaries: name -> ascending upper bounds
_bucket_bounds: Dict[str, List[float]] = {}
#: name -> per-bucket counts, len(bounds) + 1 (last = overflow)
_bucket_counts: Dict[str, List[float]] = {}


class HistogramBucketMismatchError(ValueError):
    """Two registries tried to combine a histogram binned against
    different bucket boundaries — adding the counts would silently
    misbin, so the merge refuses instead."""


def enabled() -> bool:
    """Metrics share the tracer's switch: one observability toggle."""
    return tracing.enabled()


def counter_add(name: str, n: float = 1.0) -> None:
    """Add ``n`` to a monotonically increasing counter."""
    if not tracing.enabled():
        return
    with _lock:
        _counters[name] = _counters.get(name, 0.0) + n


def gauge_set(name: str, value: float) -> None:
    """Set a last-value-wins gauge."""
    if not tracing.enabled():
        return
    with _lock:
        _gauges[name] = float(value)


def observe(name: str, value: float) -> None:
    """Record one observation into a histogram summary (and, when the
    histogram has configured boundaries, into its bucket counts)."""
    if not tracing.enabled():
        return
    v = float(value)
    with _lock:
        h = _hists.get(name)
        if h is None:
            _hists[name] = [1.0, v, v, v]
        else:
            h[0] += 1.0
            h[1] += v
            if v < h[2]:
                h[2] = v
            if v > h[3]:
                h[3] = v
        bounds = _bucket_bounds.get(name)
        if bounds is not None:
            _bucket_counts[name][bisect.bisect_left(bounds, v)] += 1.0


def configure_buckets(name: str, bounds) -> None:
    """Opt a histogram into explicit bucket boundaries.

    ``bounds`` are ascending upper bounds; a value lands in the first
    bucket whose bound is >= the value, values above the last bound land
    in the overflow bucket (so counts have ``len(bounds) + 1`` slots).
    Reconfiguring with identical boundaries is a no-op; *different*
    boundaries raise :class:`HistogramBucketMismatchError` — two binnings
    of the same name cannot coexist.  Unlike the instruments this is
    registry *configuration*, so it applies regardless of the enabled
    switch.
    """
    bl = [float(b) for b in bounds]
    if not bl or any(b2 <= b1 for b1, b2 in zip(bl, bl[1:])):
        raise ValueError(f"bucket bounds must be non-empty and strictly "
                         f"ascending, got {bl}")
    with _lock:
        existing = _bucket_bounds.get(name)
        if existing is not None:
            if existing != bl:
                raise HistogramBucketMismatchError(
                    f"histogram {name!r} already configured with bounds "
                    f"{existing}, refusing to reconfigure with {bl}")
            return
        _bucket_bounds[name] = bl
        _bucket_counts[name] = [0.0] * (len(bl) + 1)


def reset() -> None:
    """Drop every instrument (bucket configurations included)."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _hists.clear()
        _bucket_bounds.clear()
        _bucket_counts.clear()


def counters() -> Dict[str, float]:
    with _lock:
        return dict(_counters)


def gauges() -> Dict[str, float]:
    with _lock:
        return dict(_gauges)


def histograms() -> Dict[str, Dict[str, Any]]:
    with _lock:
        out: Dict[str, Dict[str, Any]] = {}
        for name, h in _hists.items():
            entry: Dict[str, Any] = {
                "count": h[0],
                "sum": h[1],
                "min": h[2],
                "max": h[3],
                "mean": h[1] / h[0] if h[0] else 0.0,
            }
            if name in _bucket_bounds:
                entry["buckets"] = {
                    "bounds": list(_bucket_bounds[name]),
                    "counts": list(_bucket_counts[name]),
                }
            out[name] = entry
        return out


def drain() -> Dict[str, Any]:
    """Pop the registry into a plain-dict payload (worker -> parent).

    Bucketed histograms ship their boundaries alongside the counts so
    the receiving registry can verify the binning matches before
    folding anything in; the local bucket *configuration* survives the
    drain (only the data is popped).
    """
    with _lock:
        out = {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "hists": {k: list(v) for k, v in _hists.items()},
            "buckets": {
                k: {"bounds": list(_bucket_bounds[k]), "counts": list(c)}
                for k, c in _bucket_counts.items()
            },
        }
        _counters.clear()
        _gauges.clear()
        _hists.clear()
        for k in _bucket_counts:
            _bucket_counts[k] = [0.0] * (len(_bucket_bounds[k]) + 1)
    return out


def merge(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a drained payload in: counters add, histograms combine,
    gauges last-write-wins.

    Bucket counts only combine against identical boundaries; a payload
    binned with different bounds raises
    :class:`HistogramBucketMismatchError` (folding it would misbin every
    count), and nothing from that payload is applied.  A histogram this
    registry never configured adopts the payload's boundaries.
    """
    if not payload:
        return
    with _lock:
        for k, b in payload.get("buckets", {}).items():
            mine = _bucket_bounds.get(k)
            if mine is not None and mine != list(b["bounds"]):
                raise HistogramBucketMismatchError(
                    f"histogram {k!r}: cannot merge counts binned with "
                    f"bounds {b['bounds']} into a registry configured "
                    f"with {mine}")
        for k, v in payload.get("counters", {}).items():
            _counters[k] = _counters.get(k, 0.0) + v
        for k, v in payload.get("gauges", {}).items():
            _gauges[k] = v
        for k, h in payload.get("hists", {}).items():
            mine = _hists.get(k)
            if mine is None:
                _hists[k] = list(h)
            else:
                mine[0] += h[0]
                mine[1] += h[1]
                mine[2] = min(mine[2], h[2])
                mine[3] = max(mine[3], h[3])
        for k, b in payload.get("buckets", {}).items():
            if k not in _bucket_bounds:
                _bucket_bounds[k] = [float(x) for x in b["bounds"]]
                _bucket_counts[k] = [float(x) for x in b["counts"]]
            else:
                counts = _bucket_counts[k]
                for i, x in enumerate(b["counts"]):
                    counts[i] += x


# --------------------------------------------------------------------- #
# derived views
# --------------------------------------------------------------------- #
#: memo regions always reported, even when untouched
_MEMO_REGIONS = ("stats", "latency", "trace", "suite", "problem", "format", "plan")
#: cache levels always reported, even when no replay ran
_CACHE_LEVELS = ("l1", "l2")


def _rate(hits: float, total: float) -> float:
    return round(hits / total, 4) if total else 0.0


def memo_table(counter_map: Optional[Dict[str, float]] = None) -> Dict[str, Dict[str, float]]:
    """``{region: {hits, misses, hit_rate, shared_*}}`` from the
    registry's ``memo.<region>.hits/misses`` (process-local tier) and
    ``memo.shared.<region>.hits/misses`` (cross-process file-backed
    tier) counters — every region present, both tiers always reported
    (zeros when the shared tier is off)."""
    c = counters() if counter_map is None else counter_map
    regions = set(_MEMO_REGIONS)
    for name in c:
        if not name.startswith("memo."):
            continue
        if name.count(".") == 2:
            regions.add(name.split(".")[1])
        elif name.startswith("memo.shared.") and name.count(".") == 3:
            regions.add(name.split(".")[2])
    out: Dict[str, Dict[str, float]] = {}
    for region in sorted(regions):
        hits = c.get(f"memo.{region}.hits", 0.0)
        misses = c.get(f"memo.{region}.misses", 0.0)
        shared_hits = c.get(f"memo.shared.{region}.hits", 0.0)
        shared_misses = c.get(f"memo.shared.{region}.misses", 0.0)
        out[region] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": _rate(hits, hits + misses),
            "shared_hits": shared_hits,
            "shared_misses": shared_misses,
            "shared_hit_rate": _rate(shared_hits, shared_hits + shared_misses),
        }
    return out


def cache_table(counter_map: Optional[Dict[str, float]] = None) -> Dict[str, Dict[str, float]]:
    """``{level: {sector_accesses, sector_hits, hit_rate}}`` from the
    ``cache.<level>.*`` counters (both levels always present)."""
    c = counters() if counter_map is None else counter_map
    out: Dict[str, Dict[str, float]] = {}
    for level in _CACHE_LEVELS:
        acc = c.get(f"cache.{level}.sector_accesses", 0.0)
        hits = c.get(f"cache.{level}.sector_hits", 0.0)
        out[level] = {
            "sector_accesses": acc,
            "sector_hits": hits,
            "hit_rate": _rate(hits, acc),
        }
    return out


def snapshot() -> Dict[str, Any]:
    """The registry as a JSON-ready document (``metrics.json``)."""
    c = counters()
    memo = memo_table(c)
    total_hits = sum(r["hits"] for r in memo.values())
    total = total_hits + sum(r["misses"] for r in memo.values())
    shared_hits = sum(r["shared_hits"] for r in memo.values())
    shared_total = shared_hits + sum(r["shared_misses"] for r in memo.values())
    return {
        "counters": {k: c[k] for k in sorted(c)},
        "gauges": {k: v for k, v in sorted(gauges().items())},
        "histograms": {k: v for k, v in sorted(histograms().items())},
        "memo": memo,
        "cache": cache_table(c),
        "derived": {
            "memo.hit_rate": _rate(total_hits, total),
            # compiled execution plans: codegen amortisation at a glance
            "memo.plan.hit_rate": memo["plan"]["hit_rate"],
            # cross-process tier: how often an L1 miss was saved by a
            # sibling process's published entry
            "memo.shared.hit_rate": _rate(shared_hits, shared_total),
        },
    }


def write_json(path) -> Dict[str, Any]:
    """Write :func:`snapshot` to ``path`` and return it."""
    snap = snapshot()
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snap
