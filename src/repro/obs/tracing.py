"""Structured span tracer with Chrome trace-event export.

One process-wide tracer records *spans* — named, nested intervals on
the monotonic clock with per-span attributes — across every subsystem
(kernel dispatch, memo misses, trace replay, experiments, sanitizer,
fault campaigns).  The API is a context manager / decorator pair::

    from repro import obs

    with obs.span("experiment.fig17", quick=True):
        ...

    @obs.traced("kernel.spmm")
    def spmm(...): ...

Disabled (the default) the tracer is a near-zero-overhead no-op:
``span()`` returns a shared singleton whose ``__enter__``/``__exit__``
do nothing — no clock reads, no allocation beyond the call itself.
Enable with ``REPRO_TRACE=1``, :func:`enable`, or the surfaces built
on them (``repro-experiments --trace-out``, ``python -m repro.cli
obs``).

Process-pool awareness: spans are plain dicts.  A worker records
normally, :func:`drain` pops its completed spans, they travel back to
the parent inside the task result (through
:class:`~repro.experiments.pool.TaskOutcome`), and :func:`ingest`
stitches them into the parent's timeline keeping the worker's
pid/tid, so the exported Chrome trace shows every process as its own
track.

Export targets:

* :func:`export_chrome_trace` — ``chrome://tracing`` / Perfetto
  "trace event" JSON (``ph:"X"`` complete events, microsecond
  timestamps, ``M`` metadata rows naming each process/thread).
* :func:`render_tree` — a human summary of the span forest.
* :func:`slowest_table` — rows for the top-N slowest spans.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``<subsystem>.<operation>``, e.g. ``experiment.fig17``,
``memo.miss.stats``, ``trace.replay``, ``kernel.spmm``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .. import envgates

__all__ = [
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "reset",
    "span",
    "traced",
    "drain",
    "ingest",
    "completed_spans",
    "export_chrome_trace",
    "chrome_trace_events",
    "validate_chrome_trace",
    "render_tree",
    "slowest_table",
]


_enabled_override: Optional[bool] = None
_lock = threading.Lock()
#: completed spans, each a plain dict (see ``_Span.finish``)
_completed: List[Dict[str, Any]] = []
_local = threading.local()
#: monotonically increasing span ids (process-local; uniqueness across
#: processes comes from the (pid, id) pair)
_next_id = 0


def enabled() -> bool:
    """Whether span recording is active (override > env > default off)."""
    if _enabled_override is not None:
        return _enabled_override
    return envgates.flag("REPRO_TRACE")


def set_enabled(flag: Optional[bool]) -> None:
    """Force on (True), off (False), or defer to ``REPRO_TRACE`` (None)."""
    global _enabled_override
    _enabled_override = flag


def enable() -> None:
    """Force tracing on regardless of ``REPRO_TRACE``."""
    set_enabled(True)


def disable() -> None:
    """Force tracing off regardless of ``REPRO_TRACE``."""
    set_enabled(False)


def reset() -> None:
    """Drop every recorded span (the enable state is untouched)."""
    global _next_id
    with _lock:
        _completed.clear()
        _next_id = 0
    _local.stack = []


def _stack() -> List[int]:
    st = getattr(_local, "stack", None)
    if st is None:
        st = _local.stack = []
    return st


class _NoopSpan:
    """Shared do-nothing span: the disabled-mode fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span; becomes a plain dict in ``_completed`` on exit."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t0", "tid")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        global _next_id
        self.name = name
        self.attrs = attrs
        with _lock:
            _next_id += 1
            self.span_id = _next_id
        stack = _stack()
        self.parent_id = stack[-1] if stack else 0
        stack.append(self.span_id)
        self.tid = threading.get_ident()
        self.t0 = time.perf_counter_ns()

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes on the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.perf_counter_ns()
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        rec = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "tid": self.tid,
            "ts_ns": self.t0,
            "dur_ns": t1 - self.t0,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            rec["attrs"] = dict(self.attrs, error=exc_type.__name__)
        with _lock:
            _completed.append(rec)


def span(name: str, **attrs):
    """Context manager recording one span (no-op singleton when
    tracing is disabled — safe on hot paths)."""
    if not enabled():
        return _NOOP
    return _Span(name, attrs)


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form of :func:`span`; defaults to the function name."""

    def deco(fn):
        label = name or fn.__qualname__

        def wrapper(*args, **kwargs):
            if not enabled():
                return fn(*args, **kwargs)
            with _Span(label, dict(attrs)):
                return fn(*args, **kwargs)

        wrapper.__wrapped__ = fn
        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__obs_traced__ = True
        return wrapper

    return deco


def completed_spans() -> List[Dict[str, Any]]:
    """A copy of the completed-span list (records are shared, do not
    mutate)."""
    with _lock:
        return list(_completed)


def drain() -> List[Dict[str, Any]]:
    """Pop and return every completed span.

    The worker half of pool stitching: a worker drains after each task
    and ships the spans home inside the task result, so each span ends
    up in exactly one timeline.
    """
    with _lock:
        out = list(_completed)
        _completed.clear()
    return out


def ingest(spans: List[Dict[str, Any]]) -> None:
    """Merge spans shipped from another process (or drained earlier)
    back into this tracer's timeline, keeping their pid/tid."""
    if not spans:
        return
    with _lock:
        _completed.extend(spans)


# --------------------------------------------------------------------- #
# Chrome trace-event export
# --------------------------------------------------------------------- #
def chrome_trace_events(spans: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event dicts (``ph:"X"`` + ``M`` metadata).

    Timestamps are microseconds on the shared ``perf_counter`` epoch;
    worker processes inherit the parent's clock on fork, and even under
    spawn the relative layout within each process stays correct.
    """
    spans = completed_spans() if spans is None else spans
    events: List[Dict[str, Any]] = []
    seen_procs: Dict[int, None] = {}
    seen_threads: Dict[tuple, None] = {}
    # full deterministic key: concurrent spans across processes can share
    # a ts_ns, and a stable event order is what makes exported traces
    # (and the --smoke output built on them) diffable across runs
    for s in sorted(spans, key=lambda s: (s["ts_ns"], s["pid"], s["tid"], s["id"])):
        pid, tid = s["pid"], s["tid"]
        if pid not in seen_procs:
            seen_procs[pid] = None
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            })
        if (pid, tid) not in seen_threads:
            seen_threads[(pid, tid)] = None
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": f"thread {tid}"},
            })
        args = {k: v for k, v in s["attrs"].items()}
        args["span_id"] = s["id"]
        if s["parent"]:
            args["parent_id"] = s["parent"]
        events.append({
            "name": s["name"],
            "ph": "X",
            "ts": s["ts_ns"] / 1000.0,
            "dur": s["dur_ns"] / 1000.0,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def export_chrome_trace(path, spans: Optional[List[Dict[str, Any]]] = None) -> None:
    """Write ``chrome://tracing``/Perfetto-loadable JSON to ``path``."""
    doc = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)
        fh.write("\n")


def validate_chrome_trace(doc: Any) -> List[str]:
    """Problems that would stop ``chrome://tracing`` loading ``doc``.

    Checks the JSON-object trace format: a ``traceEvents`` list whose
    entries carry ``name``/``ph``/``pid``/``tid``, with numeric
    ``ts``/``dur >= 0`` on ``X`` events and an ``args.name`` on ``M``
    metadata.  Returns an empty list for a valid document.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                problems.append(f"{where}: missing {field!r}")
        ph = ev.get("ph")
        if ph == "X":
            for field in ("ts", "dur"):
                v = ev.get(field)
                if not isinstance(v, (int, float)):
                    problems.append(f"{where}: {field!r} must be numeric, got {v!r}")
                elif field == "dur" and v < 0:
                    problems.append(f"{where}: negative dur {v!r}")
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"{where}: args must be an object")
        elif ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata event needs args.name")
        elif not isinstance(ph, str) or len(ph) != 1:
            problems.append(f"{where}: bad phase {ph!r}")
    return problems


# --------------------------------------------------------------------- #
# human summaries
# --------------------------------------------------------------------- #
def _forest(spans: List[Dict[str, Any]]):
    """(roots, children) of the span forest; cross-process parents that
    never shipped resolve to roots."""
    by_id = {(s["pid"], s["id"]): s for s in spans}
    children: Dict[tuple, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for s in sorted(spans, key=lambda s: (s["ts_ns"], s["pid"], s["tid"], s["id"])):
        pkey = (s["pid"], s["parent"])
        if s["parent"] and pkey in by_id:
            children.setdefault(pkey, []).append(s)
        else:
            roots.append(s)
    return roots, children


def render_tree(spans: Optional[List[Dict[str, Any]]] = None) -> str:
    """Indented tree of the span forest with durations (ms)."""
    spans = completed_spans() if spans is None else spans
    if not spans:
        return "(no spans recorded)"
    roots, children = _forest(spans)
    lines: List[str] = []

    def walk(s: Dict[str, Any], depth: int) -> None:
        ms = s["dur_ns"] / 1e6
        attrs = "".join(
            f" {k}={v}" for k, v in s["attrs"].items() if k != "error"
        )
        err = " [ERROR]" if "error" in s["attrs"] else ""
        lines.append(f"{'  ' * depth}{s['name']}  {ms:.3f} ms  (pid {s['pid']}){attrs}{err}")
        for c in children.get((s["pid"], s["id"]), []):
            walk(c, depth + 1)

    for r in roots:
        walk(r, 0)
    return "\n".join(lines)


def slowest_table(n: int = 10, spans: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, object]]:
    """Rows for the top-``n`` slowest spans (self time excluded — these
    are whole-span durations, what a profiler's 'total time' shows)."""
    spans = completed_spans() if spans is None else spans
    # duration ties (common under coarse clocks / parallel shards) break
    # on name then pid/tid/id so the table is stable run to run
    top = sorted(spans,
                 key=lambda s: (-s["dur_ns"], s["name"], s["pid"], s["tid"],
                                s["id"]))[:n]
    return [
        {
            "Span": s["name"],
            "ms": round(s["dur_ns"] / 1e6, 3),
            "pid": s["pid"],
            "Attrs": ", ".join(f"{k}={v}" for k, v in s["attrs"].items()) or "-",
        }
        for s in top
    ]
