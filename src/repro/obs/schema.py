"""Declared observability naming schema.

Every span, counter, gauge and histogram name the system emits is declared
here; the ``obs-naming-contract`` analysis rule statically collects the
names at each emission site (``tracing.span``/``traced``,
``metrics.counter_add``/``gauge_set``/``observe``) and checks both
directions against this schema — an undeclared emission and a declared
name nothing emits are both findings.

Patterns: names are dotted lowercase ``<subsystem>.<thing>``; a ``*``
segment matches exactly one dynamic segment (an f-string hole at the
emission site, e.g. ``memo.{region}.hits`` collects as ``memo.*.hits``).

``DERIVED`` maps each derived metric computed in ``metrics.snapshot()`` to
the counter patterns it divides — the rule requires every referenced
counter to be declared, so a counter rename breaks the analysis instead of
silently zeroing a hit-rate.

The lists are pure literals: the analysis rule reads them with
``ast.literal_eval`` and never imports this module.
"""

from __future__ import annotations

SPANS = [
    "run_all",
    "experiment.*",
    "sanitize",
    "sanitize.*",
    "faults.campaign",
    "kernel.spmm",
    "kernel.sddmm",
    "kernel.sparse_softmax",
    "kernel.dense_gemm",
    "memo.miss.*",
    "memo.shared.read.*",
    "memo.shared.publish.*",
    "trace.replay",
    "trace.replay_reference",
    "serving.run",
    "profiler.capture",
    "profiler.kernel.*",
]

COUNTERS = [
    "kernel.dispatch.spmm",
    "kernel.dispatch.sddmm",
    "kernel.dispatch.sparse_softmax",
    "kernel.dispatch.dense_gemm",
    "trace.replay.runs",
    "trace.replay.sector_accesses",
    "sanitizer.cases",
    "sanitizer.findings",
    "faults.injections",
    "faults.detected",
    "pool.tasks",
    "pool.retries",
    "pool.errors",
    "pool.timeouts",
    "pool.crashes",
    "memo.*.hits",
    "memo.*.misses",
    "memo.shared.*.hits",
    "memo.shared.*.misses",
    "memo.scoped.*.served",
    "memo.scoped.*.lookups",
    "cache.*.sector_accesses",
    "cache.*.sector_hits",
    "cache.*.line_fills",
    "cache.*.writeback_sectors",
    "serving.requests.offered",
    "serving.requests.admitted",
    "serving.requests.completed",
    "serving.requests.expired",
    "serving.requests.failed",
    "serving.shed.admission",
    "serving.shed.queue",
    "serving.batches",
    "serving.retries",
    "serving.hedges",
    "serving.faults.injected",
    "serving.faults.detected",
    "profiler.kernels.profiled",
    "profiler.history.appended",
    "profiler.check.regressions",
]

GAUGES = [
    "pool.workers",
    "experiment.*.seconds",
    "serving.degradation.level",
]

HISTOGRAMS = [
    "hmma.batch_size",
    "trace.replay.batch_size",
    "experiment.seconds",
    "serving.batch.tokens",
]

DERIVED = {
    "memo.hit_rate": ["memo.*.hits", "memo.*.misses"],
    "memo.plan.hit_rate": ["memo.*.hits", "memo.*.misses"],
    "memo.shared.hit_rate": ["memo.shared.*.hits", "memo.shared.*.misses"],
}
