"""The deterministic discrete-event serving simulator.

One :func:`simulate` call plays a generated workload
(:mod:`repro.serving.workload`) against a virtual cluster of workers
whose batch service times come from the kernel latency model
(:mod:`repro.serving.costmodel`), under the scenario's seeded fault
schedule (:mod:`repro.serving.faultplan`) and the admission /
retry / degradation policies of :mod:`repro.serving.policies`.

Determinism contract: the only randomness is the pre-drawn workload
and fault plan; the event loop itself runs on a ``heapq`` whose
entries carry a monotonically increasing sequence number, so event
order is a *total* order independent of float ties, and two runs with
the same ``(scenario, n_requests, seed)`` produce bit-identical
request ledgers (:meth:`ServingResult.ledger_digest`).

Every request ends in exactly one typed outcome — completed, shed at
admission, shed by queue backpressure, expired past its deadline,
failed after exhausting retries, or (verification disabled only)
corrupt-served.  Nothing is silently dropped: ``offered ==
sum(outcome counts)`` is asserted at the end of every run.

Event kinds (staleness-checked where later events can supersede):

* ``CLOSE(config)`` — a batch window expired; stale if the config's
  pending-close time moved (a token-cap close already fired).
* ``DONE(exec)`` — an execution finished; stale unless its timestamp
  equals the execution's current ``done_time`` (worker stalls slide
  completions), superseded if a hedge already completed the batch.
* ``HEDGE(exec)`` — straggler check for one execution.
* ``STALL(worker)`` / ``TICK`` / ``RETRY(batch)`` — fault injection,
  guardrail control, and delayed re-dispatch.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from .. import envgates
from ..obs import metrics as obs_metrics
from ..obs.tracing import span
from .costmodel import VERIFY_OVERHEAD_US, ServingCostModel
from .faultplan import FaultPlan
from .policies import HedgePolicy, RetryPolicy, SLOGuardrail, TokenBucket
from .workload import Scenario, Workload, generate_workload

__all__ = ["OUTCOMES", "ServingResult", "simulate"]

#: typed request outcomes (ledger codes index this tuple)
OUTCOMES = (
    "pending",          # 0 — never terminal in a finished run
    "completed",        # 1 — served within the lifecycle
    "shed-admission",   # 2 — tenant token bucket empty
    "shed-queue",       # 3 — queue-depth backpressure
    "expired",          # 4 — deadline unmeetable, removed at batching
    "failed",           # 5 — retries exhausted (corrupt results)
    "corrupt-served",   # 6 — verification disabled: corruption shipped
)
(PENDING, COMPLETED, SHED_ADMISSION, SHED_QUEUE,
 EXPIRED, FAILED, CORRUPT_SERVED) = range(7)

# event kinds, ordered only by (time, seq) — kind is payload, not key
K_CLOSE, K_DONE, K_HEDGE, K_STALL, K_TICK, K_RETRY = range(6)

#: nominal batch window (scaled by the degradation level)
BATCH_WINDOW_US = 1_500.0
#: an idle worker forms a batch early once a config queues this much
MIN_FORM_TOKENS = 512
#: queued work may cover at most this fraction of the tightest SLO
#: (drain time at cluster capacity) before backpressure sheds
QUEUE_SLO_FRACTION = 0.3
#: admission headroom: tenant buckets refill slightly above fair share
ADMIT_HEADROOM = 1.1
#: bucket burst depth, in microseconds of the tenant's refill rate
BURST_WINDOW_US = 12_000.0
#: a request is expired at batch formation when its remaining slack is
#: under this many full-batch (max tokens, fully contended) service
#: times — the queue-wait + retry margin of the doom check
DOOM_MARGIN = 2.0


@dataclass
class _Batch:
    """A formed batch: one kernel launch (plus retries/hedges)."""

    id: int
    config: int
    reqs: List[int]
    tokens: int
    failures: int = 0
    hedges: int = 0
    done: bool = False


@dataclass
class _Exec:
    """One execution of a batch on a worker."""

    id: int
    batch: _Batch
    worker: int
    t0: float
    done_time: float
    variant: str
    corrupt: bool
    is_hedge: bool
    settled: bool = False


@dataclass
class ServingResult:
    """Everything a finished simulation knows, ledger first."""

    scenario: Scenario
    seed: int
    n_requests: int
    workload: Workload
    capacity_tokens_per_us: float
    #: per-request ledger arrays (aligned with the workload arrays)
    outcome: np.ndarray      # int8 code into OUTCOMES
    finish_us: np.ndarray    # float64 terminal time (arrival-relative clock)
    attempts: np.ndarray     # int16 batch executions backing the outcome
    #: (worker, t0_us, t1_us, batch_id, config, tokens, variant,
    #: corrupt, superseded) per settled execution, in settle order
    exec_log: List[Tuple[int, float, float, int, int, int, str, bool, bool]]
    #: (t_us, level) guardrail trajectory
    level_trace: List[Tuple[float, int]]
    counters: Dict[str, float]
    end_time_us: float

    def outcome_counts(self) -> Dict[str, int]:
        """``{outcome name: requests}`` over the whole ledger."""
        binc = np.bincount(self.outcome, minlength=len(OUTCOMES))
        return {name: int(binc[i]) for i, name in enumerate(OUTCOMES)}

    def completed_latencies_us(self) -> np.ndarray:
        """Latency of every completed request (finish - arrival)."""
        m = self.outcome == COMPLETED
        return (self.finish_us[m] - self.workload.arrival_us[m])

    def goodput_tokens(self) -> int:
        """Tokens of completed requests (the goodput numerator)."""
        return int(self.workload.tokens[self.outcome == COMPLETED].sum())

    def ledger_digest(self) -> str:
        """Content digest of the request ledger — bit-identical across
        same-seed reruns (the determinism acceptance gate)."""
        h = hashlib.blake2b(digest_size=16)
        h.update(self.outcome.tobytes())
        h.update(self.attempts.tobytes())
        h.update(self.finish_us.tobytes())
        h.update(self.workload.tokens.tobytes())
        h.update(self.workload.tenant.tobytes())
        return h.hexdigest()


class _Sim:
    """Mutable event-loop state for one :func:`simulate` call."""

    def __init__(self, scenario: Scenario, workload: Workload,
                 cost: ServingCostModel, plan: FaultPlan,
                 retry: RetryPolicy, hedge: HedgePolicy,
                 guardrail: SLOGuardrail, verify: bool) -> None:
        self.sc = scenario
        self.wl = workload
        self.cost = cost
        self.plan = plan
        self.retry = retry
        self.hedge = hedge
        self.guard = guardrail
        self.verify = verify

        n = workload.n
        self.outcome = np.zeros(n, dtype=np.int8)
        self.finish = np.zeros(n, dtype=np.float64)
        self.attempts = np.zeros(n, dtype=np.int16)
        self.terminal = 0

        self.heap: List[Tuple[float, int, int, int, float]] = []
        self._seq = 0

        n_cfg = len(cost._configs)
        #: per-config earliest-deadline-first queues: (deadline, req) heaps
        self.queues: List[List[Tuple[float, int]]] = [[] for _ in range(n_cfg)]
        self.queued_tok = [0] * n_cfg
        self.queued_tok_total = 0
        self.ready: Deque[_Batch] = deque()
        self.ready_tok = 0
        self.pending_close: List[Optional[float]] = [None] * n_cfg
        #: doomed-request slack floor: a full-cap batch under full
        #: contention, with retry margin — expire anything tighter
        self.doom_us = [
            DOOM_MARGIN * cost.service_us(c, cost.max_batch_tokens, "tcu",
                                          busy_workers=scenario.workers)
            for c in range(n_cfg)
        ]

        self.worker_exec: List[Optional[int]] = [None] * scenario.workers
        self.execs: List[_Exec] = []
        self.batches: List[_Batch] = []
        self.exec_ordinal = 0

        cap = workload.capacity_tokens_per_us
        min_slo = min(t.slo_us for t in scenario.tenants)
        self.queue_cap = cap * QUEUE_SLO_FRACTION * min_slo
        wsum = sum(t.weight for t in scenario.tenants)
        self.buckets = [
            TokenBucket(rate_per_us=(t.weight / wsum) * cap * ADMIT_HEADROOM,
                        burst=(t.weight / wsum) * cap * BURST_WINDOW_US)
            for t in scenario.tenants
        ]
        self.slo = np.array([t.slo_us for t in scenario.tenants])

        self.exec_log: List[Tuple[int, float, float, int, int, int, str,
                                  bool, bool]] = []
        self.level_trace: List[Tuple[float, int]] = []
        self.c = {k: 0 for k in (
            "offered", "admitted", "completed", "expired", "failed",
            "shed_admission", "shed_queue", "corrupt_served",
            "batches", "retries", "hedges", "superseded",
            "stalls_applied", "spiked_execs",
            "faults_injected", "faults_detected",
        )}

    # -- heap ------------------------------------------------------- #
    def push(self, t: float, kind: int, a: int = 0, b: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self.heap, (t, self._seq, kind, a, b))

    # -- terminal outcomes ------------------------------------------ #
    def settle(self, r: int, code: int, now: float, attempts: int = 0) -> None:
        self.outcome[r] = code
        self.finish[r] = now
        self.attempts[r] = attempts
        self.terminal += 1

    # -- admission (one request arrives) ---------------------------- #
    def arrive(self, r: int, now: float) -> None:
        self.c["offered"] += 1
        level = self.guard.current
        ten = int(self.wl.tenant[r])
        tok = int(self.wl.tokens[r])
        if not self.buckets[ten].try_take(now, tok,
                                          rate_factor=level.admit_factor):
            self.c["shed_admission"] += 1
            self.settle(r, SHED_ADMISSION, now)
            return
        if (self.queued_tok_total + self.ready_tok + tok
                > self.queue_cap * level.queue_factor):
            self.c["shed_queue"] += 1
            self.settle(r, SHED_QUEUE, now)
            return
        self.c["admitted"] += 1
        cfg = self.cost.tenant_config[ten]
        heapq.heappush(self.queues[cfg], (float(self.wl.deadline_us[r]), r))
        self.queued_tok[cfg] += tok
        self.queued_tok_total += tok
        cap = self.cost.max_batch_tokens * level.max_tokens_factor
        if self.queued_tok[cfg] >= cap:
            self.pending_close[cfg] = None   # cap close supersedes window
            self.form_and_dispatch(cfg, now)
        else:
            window = BATCH_WINDOW_US * level.window_factor
            head_deadline = self.queues[cfg][0][0]
            t_close = max(now, min(now + window,
                                   head_deadline - self.doom_us[cfg]))
            pending = self.pending_close[cfg]
            if pending is None or t_close < pending:
                self.pending_close[cfg] = t_close
                self.push(t_close, K_CLOSE, cfg, t_close)

    # -- batching --------------------------------------------------- #
    def form_batch(self, cfg: int, now: float) -> Optional[_Batch]:
        """Pop the config's queue — earliest deadline first — into a
        batch, expiring doomed requests with a typed outcome."""
        level = self.guard.current
        cap = self.cost.max_batch_tokens * level.max_tokens_factor
        doom = self.doom_us[cfg]
        q = self.queues[cfg]
        reqs: List[int] = []
        total = 0
        while q:
            deadline, r = q[0]
            tok = int(self.wl.tokens[r])
            if reqs and total + tok > cap:
                break
            heapq.heappop(q)
            self.queued_tok[cfg] -= tok
            self.queued_tok_total -= tok
            if deadline - now < doom:
                self.c["expired"] += 1
                self.settle(r, EXPIRED, now)
                continue
            reqs.append(r)
            total += tok
        if not reqs:
            return None
        batch = _Batch(id=len(self.batches), config=cfg, reqs=reqs,
                       tokens=total)
        self.batches.append(batch)
        self.c["batches"] += 1
        return batch

    def form_and_dispatch(self, cfg: int, now: float) -> None:
        batch = self.form_batch(cfg, now)
        if batch is not None:
            self.dispatch(batch, now)
        if self.queues[cfg] and self.pending_close[cfg] is None:
            window = BATCH_WINDOW_US * self.guard.current.window_factor
            t_close = now + window
            self.pending_close[cfg] = t_close
            self.push(t_close, K_CLOSE, cfg, t_close)

    def idle_worker(self) -> Optional[int]:
        for w, e in enumerate(self.worker_exec):
            if e is None:
                return w
        return None

    def dispatch(self, batch: _Batch, now: float) -> None:
        w = self.idle_worker()
        if w is None:
            self.ready.append(batch)
            self.ready_tok += batch.tokens
        else:
            self.start_exec(batch, w, now, is_hedge=False)

    # -- execution -------------------------------------------------- #
    def start_exec(self, batch: _Batch, worker: int, now: float,
                   is_hedge: bool) -> None:
        busy = sum(1 for e in self.worker_exec if e is not None) + 1
        variant = "fpu" if self.guard.fpu_fallback(now) else "tcu"
        service = self.cost.service_us(batch.config, batch.tokens, variant,
                                       busy_workers=busy)
        factor = self.plan.latency_factor(now)
        if factor > 1.0:
            service *= factor
            self.c["spiked_execs"] += 1
            self.c["faults_injected"] += 1
        if self.verify:
            service += VERIFY_OVERHEAD_US
        corrupt = self.plan.corrupt(self.exec_ordinal, variant)
        self.exec_ordinal += 1
        if corrupt:
            self.c["faults_injected"] += 1
        ex = _Exec(id=len(self.execs), batch=batch, worker=worker, t0=now,
                   done_time=now + service, variant=variant, corrupt=corrupt,
                   is_hedge=is_hedge)
        self.execs.append(ex)
        self.worker_exec[worker] = ex.id
        self.push(ex.done_time, K_DONE, ex.id, ex.done_time)
        if not is_hedge and self.hedge.max_hedges > 0:
            self.push(self.hedge.deadline_us(now, service), K_HEDGE, ex.id)

    def on_worker_free(self, worker: int, now: float) -> None:
        while self.ready:
            batch = self.ready.popleft()
            self.ready_tok -= batch.tokens
            if batch.done:
                continue                # hedged duplicate already won
            self.start_exec(batch, worker, now,
                            is_hedge=batch.hedges > 0)
            return
        # work-conserving early formation: the config whose head
        # request has the tightest deadline, once enough tokens queued
        best_cfg, best_deadline = -1, np.inf
        for cfg, q in enumerate(self.queues):
            if q and q[0][0] < best_deadline:
                best_cfg, best_deadline = cfg, q[0][0]
        if best_cfg < 0:
            return
        level = self.guard.current
        cap = self.cost.max_batch_tokens * level.max_tokens_factor
        if self.queued_tok[best_cfg] >= min(MIN_FORM_TOKENS, cap):
            self.pending_close[best_cfg] = None
            self.form_and_dispatch(best_cfg, now)

    # -- event handlers --------------------------------------------- #
    def on_done(self, eid: int, t: float, now: float) -> None:
        ex = self.execs[eid]
        if t != ex.done_time or ex.settled:
            return                      # stall slid this completion
        ex.settled = True
        if self.worker_exec[ex.worker] == eid:
            self.worker_exec[ex.worker] = None
        batch = ex.batch
        superseded = batch.done
        self.exec_log.append((ex.worker, ex.t0, now, batch.id, batch.config,
                              batch.tokens, ex.variant, ex.corrupt,
                              superseded))
        if superseded:
            self.c["superseded"] += 1
        elif ex.corrupt and self.verify:
            self.c["faults_detected"] += 1
            self.guard.observe_corruption(now)
            batch.failures += 1
            if batch.failures >= self.retry.max_attempts:
                batch.done = True
                self.c["failed"] += len(batch.reqs)
                for r in batch.reqs:
                    self.settle(r, FAILED, now, attempts=batch.failures)
            else:
                self.c["retries"] += 1
                self.push(now + self.retry.delay_us(batch.failures),
                          K_RETRY, batch.id)
        elif ex.corrupt:
            batch.done = True           # verification off: SDC ships
            self.c["corrupt_served"] += len(batch.reqs)
            for r in batch.reqs:
                self.settle(r, CORRUPT_SERVED, now,
                            attempts=batch.failures + 1)
        else:
            batch.done = True
            self.c["completed"] += len(batch.reqs)
            for r in batch.reqs:
                self.settle(r, COMPLETED, now, attempts=batch.failures + 1)
                lat = now - float(self.wl.arrival_us[r])
                self.guard.observe_latency(
                    lat / float(self.slo[self.wl.tenant[r]]))
        self.on_worker_free(ex.worker, now)

    def on_hedge(self, eid: int, now: float) -> None:
        ex = self.execs[eid]
        batch = ex.batch
        if ex.settled or batch.done or batch.hedges >= self.hedge.max_hedges:
            return
        batch.hedges += 1
        self.c["hedges"] += 1
        w = self.idle_worker()
        if w is not None:
            self.start_exec(batch, w, now, is_hedge=True)
        else:
            # no spare worker right now: jump the ready queue so the
            # duplicate dispatches the moment one frees (the original
            # may still win; the loser is superseded)
            self.ready.appendleft(batch)
            self.ready_tok += batch.tokens

    def on_stall(self, worker: int, dur: float, now: float) -> None:
        eid = self.worker_exec[worker]
        if eid is None:
            return                      # idle-worker stall is absorbed
        ex = self.execs[eid]
        ex.done_time += dur
        self.c["stalls_applied"] += 1
        self.c["faults_injected"] += 1
        self.push(ex.done_time, K_DONE, eid, ex.done_time)

    def on_tick(self, now: float) -> None:
        frac = min(1.0, (self.queued_tok_total + self.ready_tok)
                   / self.queue_cap)
        level = self.guard.tick(now, frac)
        if not self.level_trace or self.level_trace[-1][1] != level.level:
            self.level_trace.append((now, level.level))

    # -- main loop -------------------------------------------------- #
    def run(self) -> float:
        wl = self.wl
        n = wl.n
        for t, w in self.plan.stalls:
            self.push(t, K_STALL, w, self.plan.profile.stall_us)
        self.push(self.guard.tick_us, K_TICK)
        self.level_trace.append((0.0, 0))

        arr = wl.arrival_us
        i = 0
        now = 0.0
        max_events = 400 * n + 100_000   # runaway backstop, never hit
        events = 0
        while self.terminal < n and events < max_events:
            events += 1
            next_t = self.heap[0][0] if self.heap else np.inf
            if i < n and arr[i] <= next_t:
                now = float(arr[i])
                self.arrive(i, now)
                i += 1
                continue
            if not self.heap:
                break
            t, _, kind, a, b = heapq.heappop(self.heap)
            now = t
            if kind == K_CLOSE:
                if self.pending_close[a] == b:
                    self.pending_close[a] = None
                    self.form_and_dispatch(a, now)
            elif kind == K_DONE:
                self.on_done(a, t, now)
            elif kind == K_HEDGE:
                self.on_hedge(a, now)
            elif kind == K_STALL:
                self.on_stall(a, b, now)
            elif kind == K_RETRY:
                batch = self.batches[a]
                if not batch.done:
                    self.dispatch(batch, now)
            elif kind == K_TICK:
                self.on_tick(now)
                if self.terminal < n:
                    self.push(now + self.guard.tick_us, K_TICK)
        # safety net: the loop above drains every request; a leftover
        # pending request would be a scheduler bug — fail loudly
        leftovers = int((self.outcome == PENDING).sum())
        if leftovers:
            raise RuntimeError(
                f"simulator ended with {leftovers} pending requests")
        return now


def simulate(
    scenario: Scenario,
    n_requests: int,
    seed: int,
    *,
    workload: Optional[Workload] = None,
    verify: Optional[bool] = None,
) -> ServingResult:
    """Run one serving simulation and return its ledger.

    ``workload`` short-circuits generation (the sweep reuses capacity
    across loads); ``verify`` overrides the ``REPRO_SERVING_VERIFY``
    gate (batch-result verification on by default).
    """
    if verify is None:
        verify = envgates.flag("REPRO_SERVING_VERIFY")
    with span("serving.run", scenario=scenario.name, requests=n_requests,
              seed=seed):
        cost = ServingCostModel(scenario, seed=seed)
        if workload is None:
            workload = generate_workload(
                scenario, n_requests, seed, cost.capacity_tokens_per_us())
        # the horizon tracks the arrival span (plus drain slack) so the
        # profile's per-second fault rates hold during the actual run
        plan = FaultPlan(scenario.faults, seed,
                         horizon_us=workload.duration_us * 1.25 + 50_000.0,
                         workers=scenario.workers)
        sim = _Sim(scenario, workload, cost, plan,
                   RetryPolicy(), HedgePolicy(), SLOGuardrail(),
                   verify=verify)
        end = sim.run()

        c = sim.c
        obs_metrics.counter_add("serving.requests.offered", c["offered"])
        obs_metrics.counter_add("serving.requests.admitted", c["admitted"])
        obs_metrics.counter_add("serving.requests.completed", c["completed"])
        obs_metrics.counter_add("serving.requests.expired", c["expired"])
        obs_metrics.counter_add("serving.requests.failed", c["failed"])
        obs_metrics.counter_add("serving.shed.admission", c["shed_admission"])
        obs_metrics.counter_add("serving.shed.queue", c["shed_queue"])
        obs_metrics.counter_add("serving.batches", c["batches"])
        obs_metrics.counter_add("serving.retries", c["retries"])
        obs_metrics.counter_add("serving.hedges", c["hedges"])
        obs_metrics.counter_add("serving.faults.injected",
                                c["faults_injected"])
        obs_metrics.counter_add("serving.faults.detected",
                                c["faults_detected"])
        obs_metrics.gauge_set("serving.degradation.level",
                              sim.guard.level)
        for b in sim.batches:
            obs_metrics.observe("serving.batch.tokens", b.tokens)

        counters = {k: float(v) for k, v in c.items()}
        counters["guardrail.escalations"] = float(sim.guard.escalations)
        counters["guardrail.deescalations"] = float(sim.guard.deescalations)
        counters["guardrail.fallback_engagements"] = float(
            sim.guard.fallback_engagements)
        return ServingResult(
            scenario=scenario, seed=seed, n_requests=workload.n,
            workload=workload,
            capacity_tokens_per_us=workload.capacity_tokens_per_us,
            outcome=sim.outcome, finish_us=sim.finish,
            attempts=sim.attempts, exec_log=sim.exec_log,
            level_trace=sim.level_trace, counters=counters,
            end_time_us=end,
        )
