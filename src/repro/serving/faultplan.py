"""Seeded fault schedule for the serving simulator.

The serving layer's declared fault sites (catalogued alongside the
kernel sites in ``docs/ROBUSTNESS.md``):

==========================  ==============================================
site                        effect
==========================  ==============================================
``serving.worker.stall``    a worker freezes mid-batch for ``stall_us``;
                            the in-flight execution's completion slides
                            (hedged retries are the recovery path)
``serving.worker.latency``  a cluster-wide latency-spike window: every
                            execution dispatched inside it runs
                            ``spike_factor`` slower (the memory-bound
                            inflation regime)
``serving.batch.result``    a TCU batch execution returns a corrupted
                            result; detected by result verification
                            (``REPRO_SERVING_VERIFY``) and never served
==========================  ==============================================

Unlike the single-shot :class:`repro.faults.injector.FaultInjector`
(one corruption per armed block), a serving run needs a *schedule* of
faults across a long virtual-time horizon.  :class:`FaultPlan`
pre-draws that schedule from ``np.random.default_rng`` sub-streams of
one seed: stall events ``(t, worker)``, spike windows ``(t0, t1)``,
and a per-execution corruption stream indexed by execution ordinal —
so the same ``(profile, seed)`` always injects the same faults at the
same virtual times, and the ``serving-overload`` campaign
(:mod:`repro.faults.campaign`) can score detection and recovery
record-for-record.

Corruption targets only the TCU (tensor-core) kernel variant: the
reduced-precision HMMA path is the reproduction's silent-data-
corruption surface (the ``spmm_octet.acc``/``sddmm_octet.acc`` sites
of the kernel campaigns); the FPU fallback variant is the clean —
slower — harbour the degradation controller retreats to.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .workload import FaultProfile

__all__ = ["FaultPlan"]

#: corruption draws are materialised in blocks of this many executions
_CORRUPT_BLOCK = 4096


class FaultPlan:
    """Pre-drawn, seeded fault schedule over a virtual-time horizon."""

    def __init__(self, profile: FaultProfile, seed: int, horizon_us: float,
                 workers: int) -> None:
        self.profile = profile
        self.seed = seed
        self.horizon_us = float(horizon_us)
        self.workers = workers

        rng_stall = np.random.default_rng(np.random.SeedSequence([seed, 101]))
        rng_spike = np.random.default_rng(np.random.SeedSequence([seed, 102]))
        self._rng_corrupt = np.random.default_rng(
            np.random.SeedSequence([seed, 103]))

        #: (t_us, worker) stall events, time-ordered
        self.stalls: List[Tuple[float, int]] = []
        if profile.stall_rate_per_s > 0 and workers > 0:
            n = int(np.ceil(profile.stall_rate_per_s * horizon_us / 1e6))
            times = np.sort(rng_stall.uniform(0.0, horizon_us, size=n))
            targets = rng_stall.integers(0, workers, size=n)
            self.stalls = [(float(t), int(w)) for t, w in zip(times, targets)]

        #: (t0_us, t1_us) spike windows, time-ordered, non-overlapping
        self.spikes: List[Tuple[float, float]] = []
        if profile.spike_rate_per_s > 0:
            n = int(np.ceil(profile.spike_rate_per_s * horizon_us / 1e6))
            starts = np.sort(rng_spike.uniform(0.0, horizon_us, size=n))
            last_end = -1.0
            for t0 in starts:
                t0 = max(float(t0), last_end)
                t1 = t0 + profile.spike_us
                self.spikes.append((t0, t1))
                last_end = t1
        self._spike_starts = np.array([s[0] for s in self.spikes])
        self._spike_ends = np.array([s[1] for s in self.spikes])

        self._corrupt_draws = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------- #
    def latency_factor(self, now_us: float) -> float:
        """Service-time multiplier at ``now_us`` (the
        ``serving.worker.latency`` site): ``spike_factor`` inside a
        spike window, 1.0 outside."""
        if not self.spikes:
            return 1.0
        i = int(np.searchsorted(self._spike_starts, now_us, side="right")) - 1
        if i >= 0 and now_us < self._spike_ends[i]:
            return self.profile.spike_factor
        return 1.0

    def corrupt(self, exec_index: int, variant: str) -> bool:
        """Whether execution ordinal ``exec_index`` returns a corrupted
        result (the ``serving.batch.result`` site).  Only the TCU
        variant corrupts; draws are indexed, so replaying the same
        execution order replays the same corruptions."""
        if self.profile.corrupt_prob <= 0 or variant != "tcu":
            return False
        while exec_index >= self._corrupt_draws.size:
            block = self._rng_corrupt.random(_CORRUPT_BLOCK) < self.profile.corrupt_prob
            self._corrupt_draws = np.concatenate([self._corrupt_draws, block])
        return bool(self._corrupt_draws[exec_index])
