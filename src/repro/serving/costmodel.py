"""Request/batch service times composed from the kernel latency model.

A batch of requests for one tenant model is served by one sparse SpMM
launch: the tenant's CVSE weight matrix times the batch's activation
panel, whose column count is the batch's total token count.  The
service time of a batch is therefore exactly what the reproduction
already knows how to compute — ``kernel.stats_for(a, n)`` through
:class:`repro.perfmodel.latency.LatencyModel` — evaluated at the
token count rounded up to a power-of-two *bucket*.  Both layers are
memoised on content-addressed keys, so a million-request run touches
each ``(config, bucket, variant)`` estimate once and serves the rest
from cache ("memoised shapes nearly free", ROADMAP item 1).

Two kernel variants per config give the degradation controller its
fallback axis:

* ``tcu`` — the paper's octet-tiling tensor-core SpMM;
* ``fpu`` — the Sputnik-style CUDA-core SpMM.

The TCU variant wins at production batch sizes, but its advantage
shrinks (guideline II: tiny grids strand SMs) as degraded batch
windows shrink batches — exactly when the controller considers the
fallback.  The cost model also classifies each estimate's limiting
bound: batches whose limiter is ``l2``/``dram`` are *memory-bound*
("Can Tensor Cores Benefit Memory-Bound Kernels?  (No!)", PAPERS.md)
and are charged a contention factor when several workers run
concurrently — the regime where per-request latency inflates under
load and the degradation policies have to hold the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..datasets.dlmc import generate_topology
from ..formats.conversions import cvse_from_csr_topology
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from .workload import Scenario

__all__ = ["BatchCost", "ServingCostModel", "VARIANTS"]

#: kernel variants the degradation controller can switch between
VARIANTS = ("tcu", "fpu")

#: token-count buckets a batch is rounded up to (memo keys)
_BATCH_BUCKETS = (64, 128, 256, 512, 1024, 2048, 4096)

#: topology of every tenant model: vector rows x cols (logical rows
#: are ``rows * V``); small enough to build in milliseconds, big
#: enough that the estimates sit in the paper's measured regimes
#: (service scales with the token count instead of drowning in launch
#: overhead, and the large buckets go memory-bound)
_MODEL_ROWS, _MODEL_COLS = 512, 2048

#: fixed host-side cost per dispatched batch (scheduling, tensor
#: staging, result gather) — what makes batching worth the wait
BATCH_OVERHEAD_US = 40.0

#: result-verification cost per batch when REPRO_SERVING_VERIFY is on
VERIFY_OVERHEAD_US = 4.0

#: memory-bound contention: service inflates by this per additional
#: concurrently-busy worker when the batch's limiter is L2/DRAM
CONTENTION_PER_WORKER = 0.18


@dataclass(frozen=True)
class BatchCost:
    """One memoised cost-table row: a (config, bucket, variant) cell."""

    service_us: float     # kernel estimate + batch overhead
    memory_bound: bool    # limiter was l2/dram: contention applies
    limiter: str          # the estimate's limiting bound (diagnostic)


class ServingCostModel:
    """Per-batch service times for a scenario's tenant models.

    One CVSE matrix is built per distinct ``(v, sparsity)`` tenant
    config (seeded); the public surface is :meth:`service_us` and the
    capacity figures the workload generator calibrates against.
    """

    def __init__(self, scenario: Scenario, seed: int = 0) -> None:
        self.scenario = scenario
        self.seed = seed
        #: tenant index -> config index
        self.tenant_config: List[int] = []
        self._configs: List[Tuple[int, float]] = []
        for t in scenario.tenants:
            key = (t.v, t.sparsity)
            if key not in self._configs:
                self._configs.append(key)
            self.tenant_config.append(self._configs.index(key))
        self._matrices = []
        for ci, (v, sparsity) in enumerate(self._configs):
            rng = np.random.default_rng(np.random.SeedSequence([seed, 7, ci]))
            csr = generate_topology((_MODEL_ROWS, _MODEL_COLS), sparsity, rng)
            self._matrices.append(cvse_from_csr_topology(csr, v, rng))
        self._kernels = {"tcu": OctetSpmmKernel(), "fpu": FpuSpmmKernel()}
        self._table: Dict[Tuple[int, int, str], BatchCost] = {}

    # ------------------------------------------------------------- #
    @staticmethod
    def bucket(tokens: int) -> int:
        """Smallest batch bucket holding ``tokens`` (clamped to the
        largest bucket — the batcher caps batches below it anyway)."""
        for b in _BATCH_BUCKETS:
            if tokens <= b:
                return b
        return _BATCH_BUCKETS[-1]

    @property
    def max_batch_tokens(self) -> int:
        """The largest batch the cost table models."""
        return _BATCH_BUCKETS[-1]

    def cost(self, config: int, tokens: int, variant: str) -> BatchCost:
        """The cost-table cell for ``tokens`` on ``config`` under
        ``variant`` (bucketed; computed once, then served locally —
        the kernel/latency layers underneath are content-memoised)."""
        b = self.bucket(tokens)
        key = (config, b, variant)
        hit = self._table.get(key)
        if hit is not None:
            return hit
        kern = self._kernels[variant]
        a = self._matrices[config]
        st = kern.stats_for(a, b)
        est = kern._model.estimate(st)
        cost = BatchCost(
            service_us=est.time_us + BATCH_OVERHEAD_US,
            memory_bound=est.limiter in ("l2", "dram"),
            limiter=est.limiter,
        )
        self._table[key] = cost
        return cost

    def service_us(self, config: int, tokens: int, variant: str,
                   busy_workers: int = 1) -> float:
        """Service time of one batch execution, including memory-bound
        contention from other concurrently busy workers."""
        c = self.cost(config, tokens, variant)
        t = c.service_us
        if c.memory_bound and busy_workers > 1:
            t *= 1.0 + CONTENTION_PER_WORKER * (busy_workers - 1)
        return t

    def min_service_us(self, config: int) -> float:
        """Cheapest possible batch on ``config`` (smallest bucket,
        cheaper variant) — the dispatch-feasibility floor."""
        return min(self.cost(config, _BATCH_BUCKETS[0], v).service_us
                   for v in VARIANTS)

    def best_variant(self, config: int, tokens: int) -> str:
        """The cheaper variant at this batch size (what the degraded
        controller falls back to when TCU launch overheads dominate)."""
        return min(VARIANTS,
                   key=lambda v: self.cost(config, tokens, v).service_us)

    # ------------------------------------------------------------- #
    def capacity_tokens_per_us(self) -> float:
        """Aggregate steady-state throughput of the scenario's workers.

        Per config: tokens/us of one worker running back-to-back
        reference batches (the 1024-token bucket, TCU variant, with the
        average memory-bound contention of a fully busy cluster);
        weighted by each tenant's share of the token load.
        """
        ref = 1024
        w = self.scenario.workers
        total, wsum = 0.0, 0.0
        for ti, t in enumerate(self.scenario.tenants):
            per_worker = ref / self.service_us(
                self.tenant_config[ti], ref, "tcu", busy_workers=w)
            total += t.weight * per_worker * w
            wsum += t.weight
        return total / wsum
