"""Admission, retry/hedging, and degradation policies for the simulator.

Everything here is deterministic — policies read the *virtual* clock
the simulator passes in and never draw randomness, so the same request
stream always produces the same admission decisions, retry schedule
and degradation trajectory.

* :class:`TokenBucket` — per-tenant admission control.  Each tenant
  refills at its fair share of cluster capacity (times a small
  headroom); a request that cannot take its token count is shed with
  a typed ``shed-admission`` outcome, never silently dropped.
* :class:`RetryPolicy` — deterministic exponential backoff,
  ``backoff_us * 2**attempt`` with no jitter: the same convention as
  :func:`repro.experiments.pool.retry_delay`, so the serving layer and
  the experiment runner share one retry vocabulary.
* :class:`HedgePolicy` — straggler insurance: a batch still running
  past ``multiplier x`` its expected service time is re-dispatched to
  an idle worker; the first completion wins.
* :class:`DegradationLevel` / :class:`SLOGuardrail` — the controller.
  Level 0-2 trades throughput for latency (shrink the batch window,
  then tighten admission and queue caps); a separate corruption signal
  falls the cluster back from the TCU kernel variant to the FPU one
  while detections persist (the reduced-precision tensor-core path is
  the silent-data-corruption surface — see docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "TokenBucket",
    "RetryPolicy",
    "HedgePolicy",
    "DegradationLevel",
    "DEGRADATION_LEVELS",
    "SLOGuardrail",
]


class TokenBucket:
    """Deterministic token bucket on the simulator's virtual clock."""

    def __init__(self, rate_per_us: float, burst: float) -> None:
        self.rate = float(rate_per_us)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_us = 0.0

    def try_take(self, now_us: float, tokens: float, rate_factor: float = 1.0) -> bool:
        """Refill to ``now_us`` (at ``rate * rate_factor``) and take
        ``tokens`` if available; ``False`` sheds the request."""
        if now_us > self.last_us:
            self.tokens = min(
                self.burst, self.tokens + self.rate * rate_factor * (now_us - self.last_us))
            self.last_us = now_us
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded deterministic retries for failed (corrupt) batches."""

    max_attempts: int = 3       # total executions, including the first
    backoff_us: float = 500.0

    def delay_us(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based):
        ``backoff_us * 2**(failures - 1)`` — no jitter."""
        return self.backoff_us * (2.0 ** (failures - 1))


@dataclass(frozen=True)
class HedgePolicy:
    """Re-dispatch a straggling batch to an idle worker."""

    multiplier: float = 2.5     # hedge when elapsed > multiplier x expected
    slack_us: float = 500.0     # absolute slack on top
    max_hedges: int = 1         # duplicate executions per batch

    def deadline_us(self, dispatch_us: float, expected_us: float) -> float:
        """Virtual time at which the batch is declared a straggler."""
        return dispatch_us + self.multiplier * expected_us + self.slack_us


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the graceful-degradation ladder."""

    level: int
    name: str
    window_factor: float        # scales the nominal batch window
    max_tokens_factor: float    # scales the nominal max batch tokens
    admit_factor: float         # scales every tenant's token-bucket rate
    queue_factor: float         # scales the queued-token backpressure cap


#: the ladder the guardrail walks: shed latency first (smaller batch
#: windows start batches sooner), then shed load (tighter admission
#: and queue caps) — each rung keeps the SLO at the cost of goodput
DEGRADATION_LEVELS: Sequence[DegradationLevel] = (
    DegradationLevel(0, "nominal", 1.0, 1.0, 1.0, 1.0),
    DegradationLevel(1, "shrink-window", 0.25, 0.5, 0.9, 0.8),
    DegradationLevel(2, "tighten-admission", 0.1, 0.5, 0.7, 0.5),
)


class SLOGuardrail:
    """Windowed SLO controller driving the degradation level.

    Ticks on a fixed virtual-time interval; between ticks it ingests
    per-request latency/SLO ratios and corruption detections.  A tick
    escalates when the windowed p99 ratio or queue pressure crosses the
    red line, de-escalates after ``healthy_ticks`` consecutive green
    ones, and (independently) engages the FPU kernel fallback for
    ``fallback_hold_us`` whenever corruption detections cluster.
    """

    RING = 256                  # latency samples the window keeps

    def __init__(
        self,
        tick_us: float = 5_000.0,
        escalate_ratio: float = 0.9,
        deescalate_ratio: float = 0.6,
        escalate_queue: float = 0.9,
        deescalate_queue: float = 0.5,
        healthy_ticks: int = 3,
        corrupt_trigger: int = 2,
        fallback_hold_us: float = 250_000.0,
    ) -> None:
        self.tick_us = tick_us
        self.escalate_ratio = escalate_ratio
        self.deescalate_ratio = deescalate_ratio
        self.escalate_queue = escalate_queue
        self.deescalate_queue = deescalate_queue
        self.healthy_ticks = healthy_ticks
        self.corrupt_trigger = corrupt_trigger
        self.fallback_hold_us = fallback_hold_us

        self.level = 0
        self.fpu_fallback_until = -1.0
        self._ratios: List[float] = []
        self._healthy_streak = 0
        self._corrupt_in_window = 0
        self.escalations = 0
        self.deescalations = 0
        self.fallback_engagements = 0

    # ------------------------------------------------------------- #
    def observe_latency(self, ratio: float) -> None:
        """Ingest one completed request's ``latency / SLO`` ratio."""
        ring = self._ratios
        ring.append(ratio)
        if len(ring) > self.RING:
            del ring[: len(ring) - self.RING]

    def observe_corruption(self, now_us: float) -> None:
        """Ingest one detected-corruption event; clustering engages
        (or extends) the FPU fallback immediately."""
        self._corrupt_in_window += 1
        if self._corrupt_in_window >= self.corrupt_trigger:
            if now_us > self.fpu_fallback_until:
                self.fallback_engagements += 1
            self.fpu_fallback_until = now_us + self.fallback_hold_us

    def fpu_fallback(self, now_us: float) -> bool:
        """Whether batches should run the FPU kernel variant now."""
        return now_us <= self.fpu_fallback_until

    def windowed_p99(self) -> float:
        """p99 of the latency/SLO ratios currently in the window."""
        if not self._ratios:
            return 0.0
        return float(np.quantile(np.array(self._ratios), 0.99))

    def tick(self, now_us: float, queue_fraction: float) -> DegradationLevel:
        """One control decision; returns the (possibly new) level."""
        p99 = self.windowed_p99()
        unhealthy = p99 >= self.escalate_ratio or queue_fraction >= self.escalate_queue
        healthy = p99 <= self.deescalate_ratio and queue_fraction <= self.deescalate_queue
        if unhealthy:
            self._healthy_streak = 0
            if self.level < len(DEGRADATION_LEVELS) - 1:
                self.level += 1
                self.escalations += 1
        elif healthy:
            self._healthy_streak += 1
            if self._healthy_streak >= self.healthy_ticks and self.level > 0:
                self.level -= 1
                self.deescalations += 1
                self._healthy_streak = 0
        else:
            self._healthy_streak = 0
        self._corrupt_in_window = 0
        return DEGRADATION_LEVELS[self.level]

    @property
    def current(self) -> DegradationLevel:
        """The active degradation level."""
        return DEGRADATION_LEVELS[self.level]
