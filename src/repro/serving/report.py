"""Reports over a finished simulation: percentiles, goodput, timeline.

Three consumers share this module:

* ``python -m repro.cli serve`` renders :func:`format_report` (the
  p50/p99/p99.9 + outcome table) and, with ``--sweep``, the
  goodput-vs-offered-load table of :func:`load_sweep`;
* ``--trace-out`` exports :func:`timeline_spans` through
  :func:`repro.obs.tracing.export_chrome_trace` — worker lanes show
  batch executions (hedges, retries, corrupt reruns), tenant lanes
  show per-request lifecycles;
* the ``serving-overload`` fault campaign reads :func:`percentiles`
  and the typed outcome counts to score detection and recovery.

Timeline export is capped (``REPRO_SERVING_TIMELINE``, default
20000 events) so a million-request run still writes a trace a browser
can open; the cap keeps the *earliest* events, and the truncation is
reported, never silent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import envgates
from ..perfmodel.profiler import format_table
from .simulator import COMPLETED, OUTCOMES, ServingResult

__all__ = [
    "percentiles",
    "report",
    "format_report",
    "load_sweep",
    "format_sweep",
    "timeline_spans",
    "profile_summary",
]

#: default cap on exported timeline events (override with the
#: REPRO_SERVING_TIMELINE gate)
DEFAULT_TIMELINE_CAP = 20_000

_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p99.9", 0.999))


def percentiles(lat_us: np.ndarray) -> Dict[str, float]:
    """``{p50, p99, p99.9}`` of a latency sample, in microseconds."""
    if lat_us.size == 0:
        return {name: 0.0 for name, _ in _QUANTILES}
    return {name: float(np.quantile(lat_us, q)) for name, q in _QUANTILES}


def report(result: ServingResult) -> Dict[str, Any]:
    """The run summary as a JSON-ready document."""
    wl = result.workload
    lat = result.completed_latencies_us()
    counts = result.outcome_counts()
    offered_tok = wl.offered_tokens
    good_tok = result.goodput_tokens()
    per_tenant = []
    for ti, t in enumerate(wl.scenario.tenants):
        m = (result.outcome == COMPLETED) & (wl.tenant == ti)
        tl = result.finish_us[m] - wl.arrival_us[m]
        p = percentiles(tl)
        per_tenant.append({
            "tenant": t.name,
            "slo_us": t.slo_us,
            "completed": int(m.sum()),
            "offered": int((wl.tenant == ti).sum()),
            **p,
            "p99_slo_ratio": round(p["p99"] / t.slo_us, 4) if t.slo_us else 0.0,
        })
    return {
        "scenario": result.scenario.name,
        "seed": result.seed,
        "requests": result.n_requests,
        "load": result.scenario.load,
        "capacity_tokens_per_us": round(result.capacity_tokens_per_us, 4),
        "duration_us": round(result.end_time_us, 1),
        "outcomes": counts,
        "offered_tokens": offered_tok,
        "goodput_tokens": good_tok,
        "goodput_fraction": round(good_tok / offered_tok, 4) if offered_tok else 0.0,
        "latency_us": percentiles(lat),
        "per_tenant": per_tenant,
        "counters": result.counters,
        "final_level": result.level_trace[-1][1] if result.level_trace else 0,
        "ledger_digest": result.ledger_digest(),
    }


def profile_summary(result: ServingResult) -> Dict[str, Any]:
    """Per-tenant SLO attainment + degradation-ladder occupancy.

    This is the serving payload of the profiler's run-history store
    (``results/profile_history.jsonl``): ``per_tenant`` rows carry the
    fraction of each tenant's *offered* requests that completed within
    its SLO, and ``ladder_occupancy`` maps degradation level to the
    fraction of the run spent at that level (``level_trace`` walked to
    ``end_time_us``; the simulator always seeds level 0 at t=0).
    """
    wl = result.workload
    per_tenant = []
    for ti, t in enumerate(wl.scenario.tenants):
        offered = (wl.tenant == ti)
        done = (result.outcome == COMPLETED) & offered
        in_slo = done & (result.finish_us - wl.arrival_us <= t.slo_us)
        n_off = int(offered.sum())
        per_tenant.append({
            "tenant": t.name,
            "slo_us": t.slo_us,
            "offered": n_off,
            "completed": int(done.sum()),
            "within_slo": int(in_slo.sum()),
            "slo_attainment": round(int(in_slo.sum()) / n_off, 4) if n_off else 0.0,
        })
    occupancy: Dict[str, float] = {}
    end = max(result.end_time_us, 1e-9)
    trace = result.level_trace or [(0.0, 0)]
    for i, (t_us, level) in enumerate(trace):
        nxt = trace[i + 1][0] if i + 1 < len(trace) else result.end_time_us
        occupancy[str(level)] = occupancy.get(str(level), 0.0) + max(0.0, nxt - t_us) / end
    return {
        "per_tenant": per_tenant,
        "ladder_occupancy": {k: round(v, 4) for k, v in sorted(occupancy.items())},
    }


def format_report(result: ServingResult) -> str:
    """Human rendering of :func:`report` (outcome + per-tenant tables)."""
    doc = report(result)
    lines = [
        f"scenario {doc['scenario']} · load {doc['load']}x · "
        f"{doc['requests']} requests · seed {doc['seed']}",
        f"goodput {doc['goodput_tokens']}/{doc['offered_tokens']} tokens "
        f"({doc['goodput_fraction']:.1%}) · final degradation level "
        f"{doc['final_level']} · ledger {doc['ledger_digest'][:12]}",
        "",
        format_table([
            {"outcome": name, "requests": doc["outcomes"][name]}
            for name in OUTCOMES if doc["outcomes"][name]
        ]),
        "",
        format_table([
            {
                "tenant": row["tenant"],
                "completed": f"{row['completed']}/{row['offered']}",
                "p50_ms": f"{row['p50'] / 1000:.2f}",
                "p99_ms": f"{row['p99'] / 1000:.2f}",
                "p99.9_ms": f"{row['p99.9'] / 1000:.2f}",
                "slo_ms": f"{row['slo_us'] / 1000:.0f}",
                "p99/slo": f"{row['p99_slo_ratio']:.2f}",
            }
            for row in doc["per_tenant"]
        ]),
    ]
    return "\n".join(lines)


#: offered-load multiples the goodput sweep visits
SWEEP_LOADS = (0.5, 1.0, 1.5, 2.0, 3.0)


def load_sweep(scenario, n_requests: int, seed: int,
               loads: Tuple[float, ...] = SWEEP_LOADS) -> List[Dict[str, Any]]:
    """Goodput-vs-offered-load rows: the same scenario re-simulated at
    each load multiple (same seed — load is the only variable)."""
    from .simulator import simulate
    rows = []
    for load in loads:
        res = simulate(scenario.with_load(load), n_requests, seed)
        doc = report(res)
        rows.append({
            "load": load,
            "goodput_fraction": doc["goodput_fraction"],
            "goodput_tokens_per_us": round(
                doc["goodput_tokens"] / doc["duration_us"], 3)
            if doc["duration_us"] else 0.0,
            "p99_ms": round(doc["latency_us"]["p99"] / 1000, 2),
            "shed": doc["outcomes"]["shed-admission"]
            + doc["outcomes"]["shed-queue"],
            "expired": doc["outcomes"]["expired"],
            "final_level": doc["final_level"],
        })
    return rows


def format_sweep(rows: List[Dict[str, Any]]) -> str:
    """Human rendering of :func:`load_sweep` rows."""
    return format_table(rows)


def _timeline_cap() -> int:
    raw = envgates.raw("REPRO_SERVING_TIMELINE")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_TIMELINE_CAP


def timeline_spans(result: ServingResult,
                   cap: Optional[int] = None) -> List[Dict[str, Any]]:
    """The run as tracer-shaped span dicts for Chrome-trace export.

    Worker lanes (pid 1) carry batch executions; tenant lanes (pid 2)
    carry request lifecycles (arrival to terminal).  Virtual
    microseconds map to trace nanoseconds 1:1000.
    """
    if cap is None:
        cap = _timeline_cap()
    spans: List[Dict[str, Any]] = []
    sid = 0
    for (worker, t0, t1, bid, cfg, tokens, variant, corrupt,
         superseded) in result.exec_log:
        sid += 1
        spans.append({
            "name": f"batch.{variant}", "id": sid, "parent": 0,
            "pid": 1, "tid": worker,
            "ts_ns": int(t0 * 1000), "dur_ns": max(1, int((t1 - t0) * 1000)),
            "attrs": {"batch": bid, "config": cfg, "tokens": tokens,
                      "corrupt": corrupt, "superseded": superseded},
        })
        if len(spans) >= cap:
            return spans
    wl = result.workload
    names = wl.scenario.tenants
    for r in range(wl.n):
        sid += 1
        t0 = float(wl.arrival_us[r])
        t1 = float(result.finish_us[r])
        spans.append({
            "name": f"request.{OUTCOMES[result.outcome[r]]}", "id": sid,
            "parent": 0, "pid": 2, "tid": int(wl.tenant[r]),
            "ts_ns": int(t0 * 1000),
            "dur_ns": max(1, int((t1 - t0) * 1000)),
            "attrs": {"tenant": names[int(wl.tenant[r])].name,
                      "tokens": int(wl.tokens[r]),
                      "attempts": int(result.attempts[r])},
        })
        if len(spans) >= cap:
            break
    return spans
