"""Multi-tenant serving simulation over the sparse-kernel cost model.

The serving layer (ROADMAP item 1) drives the reproduction's kernels
with synthetic request traffic and reports what a cluster would
deliver: SLO percentiles, goodput under overload, and — because a
serving layer is only credible when things go wrong — typed behaviour
under injected worker stalls, latency spikes, and corrupted batch
results.

Modules
-------
* :mod:`~repro.serving.workload` — scenarios and seeded multi-tenant
  request tables (Poisson/bursty arrivals, mixed sequence lengths).
* :mod:`~repro.serving.costmodel` — batch service times composed from
  the per-kernel latency estimates (memoised shapes nearly free).
* :mod:`~repro.serving.policies` — admission token buckets,
  deterministic retry/hedging, the SLO-guardrail degradation ladder.
* :mod:`~repro.serving.faultplan` — the seeded fault schedule behind
  the declared ``serving.*`` fault sites.
* :mod:`~repro.serving.simulator` — the discrete-event loop and the
  bit-reproducible request ledger.
* :mod:`~repro.serving.report` — percentile/goodput reports, the
  load sweep, and Chrome-timeline export.

Entry points: ``python -m repro.cli serve`` and
``benchmarks/bench_serving.py``; see ``docs/SERVING.md``.
"""

from .report import (format_report, format_sweep, load_sweep, profile_summary,
                     report, timeline_spans)
from .simulator import OUTCOMES, ServingResult, simulate
from .workload import SCENARIOS, Scenario, Workload, generate_workload, get_scenario

__all__ = [
    "OUTCOMES",
    "SCENARIOS",
    "Scenario",
    "ServingResult",
    "Workload",
    "format_report",
    "format_sweep",
    "generate_workload",
    "get_scenario",
    "load_sweep",
    "profile_summary",
    "report",
    "simulate",
    "timeline_spans",
]
