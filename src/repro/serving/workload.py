"""Multi-tenant synthetic traffic for the serving simulator.

A :class:`Scenario` names a tenant mix (each tenant owns a sparse
model config, a sequence-length distribution, and a latency SLO), an
offered load expressed as a multiple of the cluster's measured
capacity, an arrival process (``poisson`` or ``bursty``), and a fault
profile (:class:`FaultProfile` — worker stalls, latency spikes,
corrupted batch results).  :func:`generate_workload` turns one into a
flat, arrival-sorted request table (NumPy arrays), fully determined by
``(scenario, n_requests, seed, capacity)``.

Determinism: every random draw flows through
``np.random.default_rng(seed)`` sub-streams; the merged arrival order
breaks ties by ``(arrival_us, tenant, per-tenant index)`` via a stable
lexsort, so two runs with the same inputs produce bit-identical
request tables — the foundation of the simulator's replayable ledger.

Offered load is calibrated in *tokens*, not requests: tenant ``t``
contributes ``load * capacity_tokens_per_us * weight_t`` tokens per
microsecond, split into requests of its mean sequence length.  An
``overload`` scenario with ``load=2.2`` therefore offers 2.2x the
work the workers can drain regardless of how the token mix shakes out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "TenantSpec",
    "FaultProfile",
    "Scenario",
    "Workload",
    "SCENARIOS",
    "get_scenario",
    "generate_workload",
]

#: sequence-length buckets every tenant draws from (powers of two keep
#: the cost-model memo hot: a handful of distinct shapes per run)
TOKEN_BUCKETS = (32, 64, 128, 256, 512)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its sparse model config, traffic shape, and SLO."""

    name: str
    weight: float          # share of offered token load
    v: int                 # column-vector length of the tenant's model
    sparsity: float        # vector-level sparsity of the tenant's model
    mean_tokens: int       # mean sequence length (tokens per request)
    slo_us: float          # per-request latency SLO (p99 target)

    def token_mix(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(buckets, probabilities)`` of the tenant's sequence-length
        distribution: geometric-ish mass centred on ``mean_tokens``."""
        buckets = np.array(TOKEN_BUCKETS, dtype=np.int64)
        # closeness (in octaves) to the tenant's mean length
        dist = np.abs(np.log2(buckets) - np.log2(self.mean_tokens))
        w = np.exp(-1.1 * dist)
        return buckets, w / w.sum()


@dataclass(frozen=True)
class FaultProfile:
    """Injected-fault rates for a scenario (all seeded, see
    :mod:`repro.serving.faultplan`)."""

    stall_rate_per_s: float = 0.0   # worker stalls per simulated second
    stall_us: float = 0.0           # stall duration
    spike_rate_per_s: float = 0.0   # latency-spike windows per second
    spike_us: float = 0.0           # spike window duration
    spike_factor: float = 1.0       # service-time multiplier inside a window
    corrupt_prob: float = 0.0       # per batch execution

    @property
    def any(self) -> bool:
        """Whether this profile injects anything at all."""
        return (self.stall_rate_per_s > 0 or self.spike_rate_per_s > 0
                or self.corrupt_prob > 0)


@dataclass(frozen=True)
class Scenario:
    """A named serving scenario: tenants, load, arrivals, faults."""

    name: str
    description: str
    tenants: Tuple[TenantSpec, ...]
    load: float                     # offered load as a multiple of capacity
    process: str = "poisson"        # "poisson" | "bursty"
    workers: int = 4
    faults: FaultProfile = field(default_factory=FaultProfile)
    #: bursty process: mean on/off epoch length and the on-state rate
    #: multiplier (off epochs idle; the average still meets ``load``)
    burst_epoch_us: float = 50_000.0
    burst_factor: float = 3.0

    def with_load(self, load: float) -> "Scenario":
        """This scenario at a different offered-load multiple."""
        return replace(self, load=load)


#: the default tenant mix: an interactive chat tenant (tight SLO,
#: short sequences), a search tenant (mid), and a batch tenant (long
#: sequences, loose SLO) — mixed sequence lengths and per-tenant
#: sparsity configs per ROADMAP item 1
_TENANTS = (
    TenantSpec("chat", weight=0.5, v=4, sparsity=0.90, mean_tokens=96,
               slo_us=25_000.0),
    TenantSpec("search", weight=0.3, v=4, sparsity=0.90, mean_tokens=192,
               slo_us=40_000.0),
    TenantSpec("batch", weight=0.2, v=8, sparsity=0.95, mean_tokens=384,
               slo_us=80_000.0),
)

SCENARIOS: Dict[str, Scenario] = {
    "steady": Scenario(
        "steady",
        "0.6x capacity, Poisson arrivals, no faults — the healthy baseline",
        _TENANTS, load=0.6,
    ),
    "bursty": Scenario(
        "bursty",
        "0.85x capacity on a bursty (on/off modulated Poisson) process "
        "with occasional latency spikes",
        _TENANTS, load=0.85, process="bursty",
        faults=FaultProfile(spike_rate_per_s=2.0, spike_us=20_000.0,
                            spike_factor=2.5),
    ),
    "overload": Scenario(
        "overload",
        "2.2x capacity plus injected worker stalls, latency spikes and "
        "corrupted batch results — the graceful-degradation acceptance run",
        _TENANTS, load=2.2,
        faults=FaultProfile(stall_rate_per_s=4.0, stall_us=60_000.0,
                            spike_rate_per_s=2.0, spike_us=25_000.0,
                            spike_factor=2.0, corrupt_prob=0.01),
    ),
}


def get_scenario(name: str) -> Scenario:
    """The named scenario; ``ValueError`` listing the valid choices on
    unknown names (the CLI convention)."""
    sc = SCENARIOS.get(name)
    if sc is None:
        raise ValueError(
            f"unknown scenario: {name!r}; valid choices: {sorted(SCENARIOS)}")
    return sc


@dataclass
class Workload:
    """A generated request table, sorted by arrival time."""

    scenario: Scenario
    seed: int
    capacity_tokens_per_us: float
    arrival_us: np.ndarray   # float64, non-decreasing
    tenant: np.ndarray       # int16 index into scenario.tenants
    tokens: np.ndarray       # int32 sequence length
    deadline_us: np.ndarray  # float64 arrival + tenant SLO

    @property
    def n(self) -> int:
        """Number of requests."""
        return int(self.arrival_us.size)

    @property
    def offered_tokens(self) -> int:
        """Total tokens offered across every request."""
        return int(self.tokens.sum())

    @property
    def duration_us(self) -> float:
        """Arrival span of the workload."""
        return float(self.arrival_us[-1]) if self.n else 0.0


def _bursty_interarrivals(rng: np.random.Generator, n: int, rate: float,
                          epoch_us: float, factor: float) -> np.ndarray:
    """On/off modulated exponential inter-arrivals with mean rate
    ``rate``: on-epochs arrive ``factor`` times faster, off-epochs are
    silent, epoch lengths are exponential with mean ``epoch_us``."""
    # duty cycle keeping the long-run average at ``rate``
    duty = 1.0 / factor
    gaps = rng.exponential(1.0 / (rate * factor), size=n)
    out = np.empty(n, dtype=np.float64)
    t = 0.0
    i = 0
    while i < n:
        on_len = rng.exponential(epoch_us * duty)
        off_len = rng.exponential(epoch_us * (1.0 - duty))
        end = t + on_len
        while i < n:
            t += gaps[i]
            if t > end:
                t = end + off_len
                break
            out[i] = t
            i += 1
    return out


def generate_workload(
    scenario: Scenario,
    n_requests: int,
    seed: int,
    capacity_tokens_per_us: float,
) -> Workload:
    """Seeded multi-tenant request table for ``scenario``.

    Request counts are split across tenants by their share of the
    offered *token* load; each tenant's stream is drawn independently
    (sub-seeded), then the streams are merged by arrival with a total,
    deterministic tie-break order.
    """
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive, got {n_requests}")
    if capacity_tokens_per_us <= 0:
        raise ValueError("capacity_tokens_per_us must be positive")
    tenants = scenario.tenants
    total_tokens_per_us = scenario.load * capacity_tokens_per_us
    wsum = sum(t.weight for t in tenants)

    # requests per tenant, proportional to token share / mean length
    req_rates = np.array([
        (t.weight / wsum) * total_tokens_per_us / t.mean_tokens
        for t in tenants
    ])
    counts = np.maximum(1, np.round(
        n_requests * req_rates / req_rates.sum()).astype(int))
    # pin the total exactly to n_requests (largest tenant absorbs)
    counts[int(np.argmax(counts))] += n_requests - int(counts.sum())

    arr_parts, ten_parts, tok_parts, order_parts = [], [], [], []
    for ti, tenant in enumerate(tenants):
        rng = np.random.default_rng(np.random.SeedSequence([seed, ti]))
        rate = req_rates[ti]  # requests per us
        n = int(counts[ti])
        if scenario.process == "bursty":
            arrivals = _bursty_interarrivals(
                rng, n, rate, scenario.burst_epoch_us, scenario.burst_factor)
        else:
            arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
        buckets, probs = tenant.token_mix()
        toks = rng.choice(buckets, size=n, p=probs).astype(np.int32)
        arr_parts.append(arrivals)
        ten_parts.append(np.full(n, ti, dtype=np.int16))
        tok_parts.append(toks)
        order_parts.append(np.arange(n, dtype=np.int64))

    arrival = np.concatenate(arr_parts)
    tenant_ix = np.concatenate(ten_parts)
    tokens = np.concatenate(tok_parts)
    per_tenant_ix = np.concatenate(order_parts)
    # total order: arrival, then tenant, then per-tenant index — stable
    # and independent of concatenation layout
    order = np.lexsort((per_tenant_ix, tenant_ix, arrival))
    arrival = arrival[order]
    tenant_ix = tenant_ix[order]
    tokens = tokens[order]
    slos = np.array([t.slo_us for t in tenants])
    deadline = arrival + slos[tenant_ix]
    return Workload(
        scenario=scenario, seed=seed,
        capacity_tokens_per_us=capacity_tokens_per_us,
        arrival_us=arrival, tenant=tenant_ix, tokens=tokens,
        deadline_us=deadline,
    )
