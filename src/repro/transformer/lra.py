"""Synthetic byte-level classification task (LRA stand-in).

The paper trains on the byte-level text-classification task of the
Long-Range Arena benchmark; the dataset is a download we substitute
(DESIGN.md).  This generator produces byte sequences whose class
depends on *scattered occurrences* of two marker-byte families amid
noise bytes — a classification signal that requires aggregating
information across the whole sequence (what the attention + pooling
pipeline is good at) and whose difficulty is tunable so that accuracy
lands in the paper's mid-60s regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["ByteTaskConfig", "make_dataset"]


@dataclass(frozen=True)
class ByteTaskConfig:
    seq_len: int = 128
    vocab: int = 256
    num_classes: int = 2
    #: how many marker bytes are planted per sequence
    markers: int = 10
    #: probability that a planted marker is flipped to the wrong family
    label_noise: float = 0.22
    seed: int = 0


def make_dataset(
    n: int, cfg: ByteTaskConfig = ByteTaskConfig(), rng: Optional[np.random.Generator] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (tokens[n, seq_len] uint8-range ints, labels[n])."""
    rng = rng or np.random.default_rng(cfg.seed)
    # marker families: class c owns bytes [16 + 8c, 16 + 8c + 8)
    tokens = rng.integers(64, cfg.vocab, size=(n, cfg.seq_len))
    labels = rng.integers(0, cfg.num_classes, size=n)
    for i in range(n):
        pos = rng.choice(cfg.seq_len, size=cfg.markers, replace=False)
        fam = np.full(cfg.markers, labels[i])
        flips = rng.random(cfg.markers) < cfg.label_noise
        fam[flips] = rng.integers(0, cfg.num_classes, size=int(flips.sum()))
        tokens[i, pos] = 16 + 8 * fam + rng.integers(0, 8, size=cfg.markers)
    return tokens.astype(np.int64), labels.astype(np.int64)
