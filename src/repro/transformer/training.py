"""Minimal Adam trainer for the NumPy transformer.

Used by the Table 4 experiment: train the classifier on the synthetic
byte task (dense fp32, with the fixed sparse attention mask applied
additively — the paper trains with the mask in place), then evaluate in
the three execution modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .model import TransformerClassifier

__all__ = ["TrainConfig", "train", "evaluate"]


@dataclass
class TrainConfig:
    lr: float = 3e-3
    betas: tuple = (0.9, 0.999)
    eps: float = 1e-8
    batch_size: int = 32
    epochs: int = 6
    weight_decay: float = 0.0
    seed: int = 0
    verbose: bool = False


def train(
    model: TransformerClassifier,
    tokens: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
    cfg: TrainConfig = TrainConfig(),
) -> List[float]:
    """Adam on cross-entropy; returns the per-epoch mean losses."""
    rng = np.random.default_rng(cfg.seed)
    m = {k: np.zeros_like(v) for k, v in model.params.items()}
    v = {k: np.zeros_like(w) for k, w in model.params.items()}
    t = 0
    losses: List[float] = []
    n = tokens.shape[0]
    for epoch in range(cfg.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for lo in range(0, n, cfg.batch_size):
            idx = order[lo : lo + cfg.batch_size]
            loss, grads = model.loss_and_grads(tokens[idx], labels[idx], mask)
            t += 1
            b1, b2 = cfg.betas
            for key, gval in grads.items():
                if cfg.weight_decay:
                    gval = gval + cfg.weight_decay * model.params[key]
                m[key] = b1 * m[key] + (1 - b1) * gval
                v[key] = b2 * v[key] + (1 - b2) * gval * gval
                mhat = m[key] / (1 - b1**t)
                vhat = v[key] / (1 - b2**t)
                model.params[key] -= cfg.lr * mhat / (np.sqrt(vhat) + cfg.eps)
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / max(1, batches))
        if cfg.verbose:
            print(f"epoch {epoch}: loss={losses[-1]:.4f}")
    return losses


def evaluate(
    model: TransformerClassifier,
    tokens: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
    mode: str = "dense-float",
    sparse_attention=None,
    batch_size: int = 64,
) -> float:
    """Classification accuracy in the given execution mode."""
    correct = 0
    for lo in range(0, tokens.shape[0], batch_size):
        batch = tokens[lo : lo + batch_size]
        pred = model.predict(
            batch, mask=mask, mode=mode, sparse_attention=sparse_attention
        )
        correct += int((pred == labels[lo : lo + batch.shape[0]]).sum())
    return correct / tokens.shape[0]
