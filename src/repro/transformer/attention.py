"""Self-attention layers: dense baseline and the §7.4 sparse pipeline.

Sparse attention per head::

    A = Softmax((Q K^T ∘ C) / sqrt(k))   # SDDMM (octet) -> sparse softmax
    out = A V                             # SpMM  (octet)

with ``C`` a fixed CVSE mask.  Each call returns both the numeric
output and a latency breakdown in the Figure 20 vocabulary
(``QK^T ∘ C``, ``Softmax``, ``AV``, ``Others``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec, default_spec
from ..kernels.base import Precision, as_compute, elem_bytes
from ..perfmodel.events import scale_batch
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.softmax_sparse import SparseSoftmaxKernel
from ..kernels.spmm_octet import OctetSpmmKernel

__all__ = ["AttentionTiming", "DenseAttention", "SparseAttention"]


@dataclass
class AttentionTiming:
    """Per-stage latency (µs) of one attention call, Figure 20 style."""

    qk: float = 0.0
    softmax: float = 0.0
    av: float = 0.0
    others: float = 0.0

    @property
    def total(self) -> float:
        return self.qk + self.softmax + self.av + self.others

    def add(self, other: "AttentionTiming") -> None:
        self.qk += other.qk
        self.softmax += other.softmax
        self.av += other.av
        self.others += other.others

    def as_dict(self) -> Dict[str, float]:
        return {
            "QK^T∘C": self.qk,
            "Softmax": self.softmax,
            "AV": self.av,
            "Others": self.others,
            "Total": self.total,
        }


def _dense_softmax(scores: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
    if mask is not None:
        scores = np.where(mask, scores, -np.inf)
    scores = scores - scores.max(axis=-1, keepdims=True)
    ex = np.exp(scores)
    denom = ex.sum(axis=-1, keepdims=True)
    return ex / np.where(denom > 0, denom, 1.0)


class DenseAttention:
    """Dense scaled-dot-product attention at half or single precision.

    The optional boolean ``mask`` is applied additively (-inf), which is
    how the paper's dense baseline realises C (all-ones when absent).
    """

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "single") -> None:
        self.spec = spec or default_spec()
        self.precision = precision
        self._gemm = DenseGemmKernel(self.spec, precision)

    def __call__(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: Optional[np.ndarray] = None
    ):
        l, d = q.shape
        q32 = as_compute(q, self.precision)
        k32 = as_compute(k, self.precision)
        v32 = as_compute(v, self.precision)
        scores = (q32 @ k32.T) / np.sqrt(d)
        att = _dense_softmax(scores, mask)
        out = att @ v32

        t = AttentionTiming()
        t.qk = self._gemm.estimate(q32, k32.T).time_us
        t.av = self._gemm.estimate(att, v32).time_us
        # dense softmax: a fused kernel streams the l x l matrix twice
        eb = elem_bytes(self.precision)
        bytes_stream = 2.0 * l * l * eb
        t.softmax = bytes_stream / (self.spec.dram_bandwidth_gbs * 1e3) + self.spec.launch_overhead_us
        t.others = 0.15 * (t.qk + t.av)
        dtype = np.float16 if self.precision == "half" else np.float32
        return out.astype(dtype), t

    def estimate(self, l: int, d: int) -> AttentionTiming:
        """Latency breakdown without the numerics (Figure 20 sweeps) —
        identical timings to ``__call__`` on ``(l, d)`` operands."""
        return self.estimate_batched(l, d, 1)

    def estimate_batched(self, l: int, d: int, copies: int) -> AttentionTiming:
        """Per-layer timing with heads x batch folded into batched
        launches (how frameworks actually dispatch attention)."""
        qk = self._gemm._model.estimate(
            scale_batch(self._gemm.stats_for_shape(l, d, l), copies)
        ).time_us
        av = self._gemm._model.estimate(
            scale_batch(self._gemm.stats_for_shape(l, l, d), copies)
        ).time_us
        eb = elem_bytes(self.precision)
        softmax = (
            copies * 2.0 * l * l * eb / (self.spec.dram_bandwidth_gbs * 1e3)
            + self.spec.launch_overhead_us
        )
        return AttentionTiming(qk=qk, softmax=softmax, av=av, others=0.15 * (qk + av))

    def peak_bytes(self, l: int, d: int, heads: int, batch: int) -> int:
        """Peak activation memory of the attention matrices."""
        eb = elem_bytes(self.precision)
        # scores + softmax output live simultaneously per head x batch
        return 2 * heads * batch * l * l * eb


class SparseAttention:
    """§7.4 sparse attention: SDDMM -> sparse softmax -> SpMM on CVSE."""

    def __init__(
        self,
        mask: ColumnVectorSparseMatrix,
        spec: GPUSpec | None = None,
        sddmm_variant: str = "reg",
    ) -> None:
        if not mask.is_mask:
            mask = ColumnVectorSparseMatrix(
                mask.shape, mask.vector_length, mask.row_ptr, mask.col_idx, None
            )
        self.mask = mask
        self.spec = spec or default_spec()
        self._sddmm = OctetSddmmKernel(self.spec, variant=sddmm_variant)
        self._spmm = OctetSpmmKernel(self.spec)

    def __call__(self, q: np.ndarray, k: np.ndarray, v: np.ndarray):
        l, d = q.shape
        if self.mask.shape != (l, l):
            raise ValueError(f"mask is {self.mask.shape}, queries give {(l, l)}")
        softmax_kernel = SparseSoftmaxKernel(self.spec, scale=1.0 / np.sqrt(d))
        # B must be (K x N): K^T has shape (d, l)
        scores = self._sddmm.run(q, np.ascontiguousarray(np.asarray(k).T), self.mask)
        att = softmax_kernel.run(scores.output)
        out = self._spmm.run(att.output, np.asarray(v))

        t = AttentionTiming(
            qk=scores.time_us,
            softmax=att.time_us,
            av=out.time_us,
            others=0.15 * (scores.time_us + out.time_us),
        )
        return out.output, t

    def estimate(self, l: int, d: int) -> AttentionTiming:
        """Latency breakdown without the numerics (Figure 20 sweeps)."""
        softmax_kernel = SparseSoftmaxKernel(self.spec)
        sddmm_est = self._sddmm._model.estimate(self._sddmm.stats_for(self.mask, d))
        att_values = self.mask.with_values(
            np.zeros((self.mask.nnz_vectors, self.mask.vector_length), dtype=np.float16)
        )
        sm_est = softmax_kernel._model.estimate(softmax_kernel.stats_for(att_values))
        spmm_est = self._spmm._model.estimate(self._spmm.stats_for(att_values, d))
        return AttentionTiming(
            qk=sddmm_est.time_us,
            softmax=sm_est.time_us,
            av=spmm_est.time_us,
            others=0.15 * (sddmm_est.time_us + spmm_est.time_us),
        )

    def estimate_batched(self, l: int, d: int, copies: int) -> AttentionTiming:
        """Per-layer timing with heads x batch batched into one launch
        per stage (SDDMM, softmax, SpMM)."""
        softmax_kernel = SparseSoftmaxKernel(self.spec)
        att_values = self.mask.with_values(
            np.zeros((self.mask.nnz_vectors, self.mask.vector_length), dtype=np.float16)
        )
        qk = self._sddmm._model.estimate(
            scale_batch(self._sddmm.stats_for(self.mask, d), copies)
        ).time_us
        sm = softmax_kernel._model.estimate(
            scale_batch(softmax_kernel.stats_for(att_values), copies)
        ).time_us
        av = self._spmm._model.estimate(
            scale_batch(self._spmm.stats_for(att_values, d), copies)
        ).time_us
        return AttentionTiming(qk=qk, softmax=sm, av=av, others=0.15 * (qk + av))

    def peak_bytes(self, l: int, d: int, heads: int, batch: int) -> int:
        """Peak activation memory: CVSE attention matrices only."""
        per_mat = self.mask.memory_bytes() + self.mask.nnz * 2  # values fp16
        return 2 * heads * batch * per_mat
