"""A NumPy transformer classifier with manual backprop.

Substrate for the §7.4 experiment: a byte-level text classifier in the
Long-Range-Arena style — token + position embeddings, pre-LayerNorm
encoder blocks (multi-head self-attention + GELU FFN), mean pooling and
a linear head.  Forward supports three execution modes:

* ``dense`` float32 — the training path (mask applied additively);
* ``dense`` float16 — "directly quantize the weights and activations to
  half without finetuning" (Table 4's Dense(half));
* ``sparse`` float16 — attention through the CVSE kernel pipeline
  (:class:`~repro.transformer.attention.SparseAttention`).

Backprop is implemented by hand (no autograd available offline); the
gradient check in the tests pins it against finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .attention import AttentionTiming, SparseAttention

__all__ = ["TransformerConfig", "TransformerClassifier", "softmax", "layer_norm"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return e / e.sum(axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, g: np.ndarray, b: np.ndarray, eps: float = 1e-5):
    """LayerNorm; returns (output, cache-for-backward)."""
    mu = x.mean(-1, keepdims=True)
    var = x.var(-1, keepdims=True)
    xhat = (x - mu) / np.sqrt(var + eps)
    return xhat * g + b, (xhat, var, eps)


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x**3)))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    t = np.tanh(0.7978845608028654 * (x + 0.044715 * x**3))
    dt = (1 - t**2) * 0.7978845608028654 * (1 + 3 * 0.044715 * x**2)
    return 0.5 * (1 + t) + 0.5 * x * dt


@dataclass(frozen=True)
class TransformerConfig:
    """Model hyperparameters (paper §7.4 uses 4 layers / 4 heads / 64)."""

    vocab: int = 256
    seq_len: int = 128
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    n_classes: int = 2

    @property
    def head_dim(self) -> int:
        if self.d_model % self.n_heads:
            raise ValueError("d_model must divide by n_heads")
        return self.d_model // self.n_heads


class TransformerClassifier:
    """Encoder-only classifier; see the module docstring for modes."""

    def __init__(self, cfg: TransformerConfig, rng: Optional[np.random.Generator] = None):
        self.cfg = cfg
        rng = rng or np.random.default_rng(0)
        d, f = cfg.d_model, cfg.d_ff
        s = 1.0 / np.sqrt(d)
        p: Dict[str, np.ndarray] = {
            "emb": rng.normal(0, 0.5 * s, (cfg.vocab, d)),
            "pos": rng.normal(0, 0.5 * s, (cfg.seq_len, d)),
            "w_cls": rng.normal(0, s, (d, cfg.n_classes)),
            "b_cls": np.zeros(cfg.n_classes),
        }
        for i in range(cfg.n_layers):
            for nm in ("wq", "wk", "wv", "wo"):
                p[f"{nm}{i}"] = rng.normal(0, s, (d, d))
            p[f"w1_{i}"] = rng.normal(0, s, (d, f))
            p[f"b1_{i}"] = np.zeros(f)
            p[f"w2_{i}"] = rng.normal(0, 1.0 / np.sqrt(f), (f, d))
            p[f"b2_{i}"] = np.zeros(d)
            p[f"g1_{i}"] = np.ones(d)
            p[f"bn1_{i}"] = np.zeros(d)
            p[f"g2_{i}"] = np.ones(d)
            p[f"bn2_{i}"] = np.zeros(d)
        self.params = p

    # ------------------------------------------------------------------ #
    def _attend_dense(self, q, k, v, mask, timing: Optional[AttentionTiming]):
        d = q.shape[-1]
        scores = q @ k.swapaxes(-1, -2) / np.sqrt(d)
        if mask is not None:
            scores = np.where(mask, scores, -1e9)
        att = softmax(scores)
        return att @ v, att

    def forward(
        self,
        tokens: np.ndarray,
        mask: Optional[np.ndarray] = None,
        mode: str = "dense-float",
        sparse_attention: Optional[SparseAttention] = None,
        collect_timing: bool = False,
    ):
        """Run the classifier.

        ``mode``: "dense-float" | "dense-half" | "sparse-half".
        Returns (logits, cache, timing); cache is populated only in
        dense-float mode (the training path).
        """
        cfg = self.cfg
        if mode not in ("dense-float", "dense-half", "sparse-half"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "sparse-half" and sparse_attention is None:
            raise ValueError("sparse-half mode needs a SparseAttention instance")
        half = mode != "dense-float"

        def q16(x):
            return x.astype(np.float16).astype(np.float32) if half else x

        # dense-float keeps float64 end to end (training/grad-check
        # path); the half modes round every operand through fp16.
        p = {k: (q16(v.astype(np.float32)) if half else v) for k, v in self.params.items()}
        tokens = np.asarray(tokens)
        single = tokens.ndim == 1
        if single:
            tokens = tokens[None]
        B, L = tokens.shape
        timing = AttentionTiming() if collect_timing else None

        x = q16(p["emb"][tokens] + p["pos"][None, :L])
        cache: Dict[str, object] = {"tokens": tokens, "x0": x}
        for i in range(cfg.n_layers):
            h, ln1 = layer_norm(x, p[f"g1_{i}"], p[f"bn1_{i}"])
            h = q16(h)
            q = q16(h @ p[f"wq{i}"])
            k = q16(h @ p[f"wk{i}"])
            v = q16(h @ p[f"wv{i}"])
            hd = cfg.head_dim
            outs = np.empty_like(q)
            atts = []
            for hh in range(cfg.n_heads):
                sl = slice(hh * hd, (hh + 1) * hd)
                for b in range(B):
                    if mode == "sparse-half":
                        o, t = sparse_attention(
                            q[b, :, sl].astype(np.float16),
                            k[b, :, sl].astype(np.float16),
                            v[b, :, sl].astype(np.float16),
                        )
                        outs[b, :, sl] = o.astype(np.float32)
                        if timing is not None:
                            timing.add(t)
                        atts.append(None)
                    else:
                        o, att = self._attend_dense(q[b, :, sl], k[b, :, sl], v[b, :, sl], mask, timing)
                        outs[b, :, sl] = q16(o)
                        atts.append(att)
            proj = q16(outs @ p[f"wo{i}"])
            x = x + proj
            h2, ln2 = layer_norm(x, p[f"g2_{i}"], p[f"bn2_{i}"])
            h2 = q16(h2)
            a1 = h2 @ p[f"w1_{i}"] + p[f"b1_{i}"]
            f1 = q16(_gelu(a1))
            ffn = q16(f1 @ p[f"w2_{i}"] + p[f"b2_{i}"])
            x = x + ffn
            cache[f"layer{i}"] = (h, ln1, q, k, v, outs, atts, h2, ln2, a1, f1)
            cache[f"x_in{i}"] = cache.get(f"x_out{i-1}", cache["x0"]) if i else cache["x0"]
            cache[f"x_mid{i}"] = x - ffn
            cache[f"x_out{i}"] = x
        pooled = x.mean(axis=1)
        logits = pooled @ p["w_cls"] + p["b_cls"]
        cache["pooled"] = pooled
        cache["mask"] = mask
        if single:
            logits = logits[0]
        return logits, cache, timing

    # ------------------------------------------------------------------ #
    def loss_and_grads(
        self, tokens: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Cross-entropy loss and full parameter gradients (dense fp32)."""
        cfg = self.cfg
        p = self.params
        logits, cache, _ = self.forward(tokens, mask, mode="dense-float")
        tokens = cache["tokens"]
        B, L = tokens.shape
        probs = softmax(logits if logits.ndim == 2 else logits[None])
        labels = np.asarray(labels).reshape(B)
        loss = -np.log(probs[np.arange(B), labels] + 1e-12).mean()

        g: Dict[str, np.ndarray] = {k: np.zeros_like(v) for k, v in p.items()}
        dlogits = probs.copy()
        dlogits[np.arange(B), labels] -= 1.0
        dlogits /= B

        pooled = cache["pooled"]
        g["w_cls"] += pooled.T @ dlogits
        g["b_cls"] += dlogits.sum(0)
        dx = (dlogits @ p["w_cls"].T)[:, None, :] * np.ones((B, L, 1)) / L

        for i in reversed(range(cfg.n_layers)):
            h, ln1, q, k, v, outs, atts, h2, ln2, a1, f1 = cache[f"layer{i}"]
            # FFN branch
            dffn = dx
            g[f"w2_{i}"] += f1.reshape(-1, cfg.d_ff).T @ dffn.reshape(-1, cfg.d_model)
            g[f"b2_{i}"] += dffn.sum((0, 1))
            df1 = dffn @ p[f"w2_{i}"].T
            da1 = df1 * _gelu_grad(a1)
            g[f"w1_{i}"] += h2.reshape(-1, cfg.d_model).T @ da1.reshape(-1, cfg.d_ff)
            g[f"b1_{i}"] += da1.sum((0, 1))
            dh2 = da1 @ p[f"w1_{i}"].T
            dx_mid = dx + self._ln_backward(dh2, ln2, p[f"g2_{i}"], g, f"g2_{i}", f"bn2_{i}")
            # attention branch
            dproj = dx_mid
            g[f"wo{i}"] += outs.reshape(-1, cfg.d_model).T @ dproj.reshape(-1, cfg.d_model)
            douts = dproj @ p[f"wo{i}"].T
            dq = np.zeros_like(q)
            dk = np.zeros_like(k)
            dv = np.zeros_like(v)
            hd = cfg.head_dim
            for hh in range(cfg.n_heads):
                sl = slice(hh * hd, (hh + 1) * hd)
                for b in range(B):
                    att = atts[hh * B + b]
                    do = douts[b, :, sl]
                    dv[b, :, sl] += att.T @ do
                    datt = do @ v[b, :, sl].T
                    ds = att * (datt - (datt * att).sum(-1, keepdims=True))
                    ds /= np.sqrt(hd)
                    dq[b, :, sl] += ds @ k[b, :, sl]
                    dk[b, :, sl] += ds.T @ q[b, :, sl]
            dh = dq @ p[f"wq{i}"].T + dk @ p[f"wk{i}"].T + dv @ p[f"wv{i}"].T
            g[f"wq{i}"] += h.reshape(-1, cfg.d_model).T @ dq.reshape(-1, cfg.d_model)
            g[f"wk{i}"] += h.reshape(-1, cfg.d_model).T @ dk.reshape(-1, cfg.d_model)
            g[f"wv{i}"] += h.reshape(-1, cfg.d_model).T @ dv.reshape(-1, cfg.d_model)
            dx = dx_mid + self._ln_backward(dh, ln1, p[f"g1_{i}"], g, f"g1_{i}", f"bn1_{i}")

        g["emb"] = np.zeros_like(p["emb"])
        np.add.at(g["emb"], tokens.reshape(-1), dx.reshape(-1, cfg.d_model))
        g["pos"] += dx.sum(0)
        return float(loss), g

    @staticmethod
    def _ln_backward(dy, ln_cache, gamma, grads, g_key, b_key):
        xhat, var, eps = ln_cache
        grads[g_key] += (dy * xhat).sum(axis=tuple(range(dy.ndim - 1)))
        grads[b_key] += dy.sum(axis=tuple(range(dy.ndim - 1)))
        dxhat = dy * gamma
        inv = 1.0 / np.sqrt(var + eps)
        return inv * (dxhat - dxhat.mean(-1, keepdims=True) - xhat * (dxhat * xhat).mean(-1, keepdims=True))

    # ------------------------------------------------------------------ #
    def predict(self, tokens: np.ndarray, **kwargs) -> np.ndarray:
        logits, _, _ = self.forward(tokens, **kwargs)
        return np.argmax(logits, axis=-1)

    def num_parameters(self) -> int:
        return int(sum(v.size for v in self.params.values()))

    def parameter_bytes(self, precision: str = "single") -> int:
        per = 2 if precision == "half" else 4
        return self.num_parameters() * per
