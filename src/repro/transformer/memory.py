"""Peak-memory accounting for the sparse transformer (Table 4).

The paper reports peak memory of 4.44 GB / 2.22 GB / 170 MB for
Dense(float) / Dense(half) / Sparse(half) at sequence length 4000,
4 layers x 4 heads x 64 features, batch 8.  The dominant term is the
pair of l x l attention matrices (scores + softmax output) alive per
head per batch element; the sparse pipeline replaces both with CVSE
matrices holding only the ~10% stored entries plus indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats.cvse import ColumnVectorSparseMatrix

__all__ = ["MemoryBreakdown", "dense_attention_peak", "sparse_attention_peak"]


@dataclass
class MemoryBreakdown:
    """Peak activation memory in bytes, by component."""

    attention_matrices: int
    qkv_activations: int
    ffn_activations: int
    weights: int

    @property
    def total(self) -> int:
        return (
            self.attention_matrices
            + self.qkv_activations
            + self.ffn_activations
            + self.weights
        )

    @property
    def total_gb(self) -> float:
        return self.total / 2**30

    @property
    def total_mb(self) -> float:
        return self.total / 2**20


def _common_terms(l: int, d_model: int, d_ff: int, batch: int, eb: int, weights_bytes: int):
    qkv = 4 * batch * l * d_model * eb      # q, k, v, out per live layer
    ffn = batch * l * d_ff * eb
    return qkv, ffn, weights_bytes


def dense_attention_peak(
    l: int,
    d_model: int,
    n_heads: int,
    d_ff: int,
    batch: int,
    precision: str = "single",
    weights_bytes: int = 0,
) -> MemoryBreakdown:
    """Peak activation memory of dense attention (2 copies of l x l)."""
    eb = 2 if precision == "half" else 4
    # scores + probabilities coexist per head x batch at the softmax
    att = 2 * n_heads * batch * l * l * eb
    qkv, ffn, w = _common_terms(l, d_model, d_ff, batch, eb, weights_bytes)
    return MemoryBreakdown(att, qkv, ffn, w)


def sparse_attention_peak(
    mask: ColumnVectorSparseMatrix,
    d_model: int,
    n_heads: int,
    d_ff: int,
    batch: int,
    weights_bytes: int = 0,
) -> MemoryBreakdown:
    """Peak activation memory of the CVSE pipeline (in-place softmax)."""
    l = mask.shape[0]
    eb = 2
    per_matrix = mask.memory_bytes() + mask.nnz * eb  # indices + fp16 values
    # the CVSE softmax normalises in place, so only ONE copy of each
    # attention matrix is live (the dense path keeps scores +
    # probabilities — hence its factor 2)
    att = n_heads * batch * per_matrix
    qkv, ffn, w = _common_terms(l, d_model, d_ff, batch, eb, weights_bytes)
    return MemoryBreakdown(att, qkv, ffn, w)
