"""Sparse attention masks (§7.4).

"We generate fixed attention masks with a dense band of size 256 along
the diagonal and off-diagonal random attention.  The overall sparsity
is 90% and the attention mask can be expressed by our column-vector
sparse encoding" — i.e. the random part is drawn at ``V x 1`` column-
vector granularity (the paper adds an 8x1 vector constraint to the
Sputnik-style pattern).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix

__all__ = ["band_random_mask", "mask_to_cvse", "global_row_mask",
           "longformer_mask", "bigbird_mask"]


def band_random_mask(
    seq_len: int,
    vector_length: int = 8,
    band: int = 256,
    sparsity: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Boolean (seq, seq) mask: diagonal band + random V-vector columns.

    The mask is constant within each ``V``-row group (the column-vector
    constraint), so it is exactly representable in CVSE.  The random
    component's rate is chosen so the *overall* density hits
    ``1 - sparsity`` (the band is counted first).
    """
    if seq_len % vector_length:
        raise ValueError(f"seq_len {seq_len} not divisible by V={vector_length}")
    rng = rng or np.random.default_rng(0)
    n_vr = seq_len // vector_length
    grp = np.zeros((n_vr, seq_len), dtype=bool)

    # dense band: |i - j| < band/2, evaluated at vector-row granularity
    half = band // 2
    centers = (np.arange(n_vr) * vector_length)[:, None] + vector_length / 2.0
    cols = np.arange(seq_len)[None, :]
    grp |= np.abs(cols - centers) < half

    target = 1.0 - sparsity
    band_density = grp.mean()
    rest = max(0.0, target - band_density)
    free = ~grp
    n_free = int(free.sum())
    if n_free and rest > 0:
        p = min(1.0, rest * grp.size / n_free)
        grp |= free & (rng.random(grp.shape) < p)
    return np.repeat(grp, vector_length, axis=0)


def global_row_mask(seq_len: int, num_global: int) -> np.ndarray:
    """§8 Case 2: rows fully nonzero (global attention tokens)."""
    mask = np.zeros((seq_len, seq_len), dtype=bool)
    mask[:num_global, :] = True
    mask[:, :num_global] = True
    return mask


def mask_to_cvse(mask: np.ndarray, vector_length: int = 8) -> ColumnVectorSparseMatrix:
    """Encode a boolean mask as a topology-only CVSE matrix."""
    return ColumnVectorSparseMatrix.mask_from_dense(mask, vector_length)


def longformer_mask(
    seq_len: int,
    vector_length: int = 8,
    window: int = 128,
    num_global: int = 0,
) -> np.ndarray:
    """Longformer-style pattern: sliding window + optional global tokens.

    Deterministic (no random component); the window is evaluated at
    vector-row granularity so the result is CVSE-encodable.
    """
    m = band_random_mask(seq_len, vector_length, band=window, sparsity=1.0,
                         rng=np.random.default_rng(0))
    if num_global:
        if num_global % vector_length:
            raise ValueError("num_global must align to the vector length")
        m = m | global_row_mask(seq_len, num_global)
        # re-impose the vector constraint on the global *columns*
        grp = m.reshape(seq_len // vector_length, vector_length, seq_len)
        m = np.repeat(grp.any(axis=1), vector_length, axis=0)
    return m


def bigbird_mask(
    seq_len: int,
    vector_length: int = 8,
    window: int = 64,
    num_global: int = 0,
    random_per_row: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """BigBird-style pattern: window + global + per-row random blocks.

    ``random_per_row`` random V-column blocks are added per vector row
    (the paper's citation [30] uses exactly this family).
    """
    rng = rng or np.random.default_rng(0)
    m = longformer_mask(seq_len, vector_length, window, num_global)
    n_vr = seq_len // vector_length
    grp = m.reshape(n_vr, vector_length, seq_len).any(axis=1)
    for r in range(n_vr):
        cols = rng.choice(seq_len // vector_length, size=random_per_row, replace=False)
        for c in cols:
            grp[r, c * vector_length : (c + 1) * vector_length] = True
    return np.repeat(grp, vector_length, axis=0)
