"""Sparse-transformer application (paper §7.4).

* :mod:`~repro.transformer.masks` — band + random CVSE attention masks;
* :mod:`~repro.transformer.attention` — dense and sparse (SDDMM ->
  sparse softmax -> SpMM) attention with Figure-20 latency breakdowns;
* :mod:`~repro.transformer.model` — NumPy transformer classifier with
  manual backprop and dense-float / dense-half / sparse-half modes;
* :mod:`~repro.transformer.lra` — synthetic LRA-style byte task;
* :mod:`~repro.transformer.training` — Adam trainer + evaluator;
* :mod:`~repro.transformer.memory` — Table 4 peak-memory accounting.
"""

from .attention import AttentionTiming, DenseAttention, SparseAttention
from .lra import ByteTaskConfig, make_dataset
from .masks import band_random_mask, bigbird_mask, global_row_mask, longformer_mask, mask_to_cvse
from .memory import MemoryBreakdown, dense_attention_peak, sparse_attention_peak
from .model import TransformerClassifier, TransformerConfig
from .training import TrainConfig, evaluate, train

__all__ = [
    "AttentionTiming",
    "DenseAttention",
    "SparseAttention",
    "ByteTaskConfig",
    "make_dataset",
    "band_random_mask",
    "bigbird_mask",
    "longformer_mask",
    "global_row_mask",
    "mask_to_cvse",
    "MemoryBreakdown",
    "dense_attention_peak",
    "sparse_attention_peak",
    "TransformerClassifier",
    "TransformerConfig",
    "TrainConfig",
    "evaluate",
    "train",
]
