"""statcheck: static consistency of a kernel's ``KernelStats``.

The analog on real hardware is the sanity a profiler run imposes on a
kernel's counters: Nsight cannot report more useful FLOPs than the
issued math instructions could retire, sectors outlive their requests,
or an occupancy the register file cannot hold.  Our kernels *author*
their counters analytically, so the same cross-checks catch modelling
bugs (an inflated ``flops``, a dropped request term, a resource demand
that can never be scheduled) before they skew every downstream figure.

Checks, in order:

* the ``violations()`` contract of :class:`~repro.perfmodel.events.KernelStats`
  re-run on the *final* field values (kernels mutate their traffic
  after construction, so ``__post_init__`` alone is not enough);
* launch/resource agreement and occupancy feasibility via
  :func:`~repro.hardware.register_file.compute_occupancy`;
* request/sector/byte monotonicity of global traffic;
* shared-memory wavefront/request monotonicity;
* the FLOP roofline: useful FLOPs never exceed what the issued math
  instructions can retire (capacity table below).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hardware.config import GPUSpec
from ..hardware.instructions import InstrClass
from ..hardware.register_file import compute_occupancy
from ..perfmodel.events import KernelStats
from .findings import Checker, Finding

__all__ = ["FLOPS_PER_INSTRUCTION", "check_stats"]

#: Useful-FLOP retirement capacity of one warp-level instruction.
#: HMMA: one HMMA.884 step is a quadrant of a warp-wide mma.m8n8k4
#: (4 octets x an (8x4)·(4x8) each = 2048 FLOPs over 4 steps -> 512
#: per step; the octet SpMM at V=8 and the wmma decomposition both
#: retire exactly this).  Packed half ops do 2 lanes-worth per lane,
#: FMAs 2 FLOPs per op, adds/EXP one per lane.
FLOPS_PER_INSTRUCTION: Dict[InstrClass, float] = {
    InstrClass.HMMA: 512.0,
    InstrClass.HFMA2: 128.0,
    InstrClass.HMUL2: 64.0,
    InstrClass.FFMA: 64.0,
    InstrClass.FADD: 32.0,
    InstrClass.EXP: 32.0,
}

_REL_TOL = 1e-9


def check_stats(
    stats: KernelStats, spec: GPUSpec | None = None, max_findings: int = 25
) -> Tuple[List[Finding], dict]:
    """Validate one final ``KernelStats`` object; returns (findings, counters)."""
    findings: List[Finding] = []

    def report(message: str, location: str) -> None:
        if len(findings) < max_findings:
            findings.append(Finding(Checker.STATCHECK, stats.name, message, location))

    # 1. field-level contract on the final values
    for problem in stats.violations():
        report(problem, "KernelStats.violations")

    # 2. launch vs resources, and occupancy feasibility
    if stats.resources.cta_size != stats.launch.cta_size:
        report(
            f"resources.cta_size ({stats.resources.cta_size}) disagrees with "
            f"launch.cta_size ({stats.launch.cta_size})",
            "launch",
        )
    try:
        occ = compute_occupancy(stats.resources, spec)
    except ValueError as exc:
        occ = None
        report(f"occupancy infeasible: {exc}", "resources")
    if stats.program.sass_lines <= 0:
        report(f"program size must be positive, got {stats.program.sass_lines}", "program")

    # 3. global-memory monotonicity
    gm = stats.global_mem
    tol = 1.0 + _REL_TOL
    if gm.load_sectors < gm.load_requests * (1.0 - _REL_TOL) - 1e-6:
        report(
            f"load_sectors ({gm.load_sectors:g}) below load_requests "
            f"({gm.load_requests:g}) — every warp-level load touches at least "
            "one sector",
            "global_mem",
        )
    if gm.store_sectors < gm.store_requests * (1.0 - _REL_TOL) - 1e-6:
        report(
            f"store_sectors ({gm.store_sectors:g}) below store_requests "
            f"({gm.store_requests:g})",
            "global_mem",
        )
    if gm.bytes_requested > gm.sectors * 32.0 * tol + 1e-6:
        report(
            f"bytes_requested ({gm.bytes_requested:g}) exceed the "
            f"{gm.sectors:g} fetched sectors x 32 B — lanes cannot use bytes "
            "no sector carried",
            "global_mem",
        )
    if gm.bytes_dram_to_l2 > gm.bytes_l2_to_l1 * tol + 1e-6:
        report(
            f"bytes_dram_to_l2 ({gm.bytes_dram_to_l2:g}) exceed bytes_l2_to_l1 "
            f"({gm.bytes_l2_to_l1:g}) — DRAM traffic flows through L2",
            "global_mem",
        )

    # 4. shared-memory monotonicity
    sm = stats.shared_mem
    if sm.load_wavefronts < sm.load_requests:
        report(
            f"shared load_wavefronts ({sm.load_wavefronts}) below load_requests "
            f"({sm.load_requests}) — each request is at least one wavefront",
            "shared_mem",
        )
    if sm.store_wavefronts < sm.store_requests:
        report(
            f"shared store_wavefronts ({sm.store_wavefronts}) below "
            f"store_requests ({sm.store_requests})",
            "shared_mem",
        )
    if stats.resources.shared_bytes_per_cta == 0 and sm.requests:
        report(
            f"{sm.requests} shared-memory requests from a kernel declaring "
            "zero shared bytes per CTA",
            "shared_mem",
        )

    # 5. FLOP roofline against the issued math instructions
    capacity = sum(
        stats.instructions[cls] * cap for cls, cap in FLOPS_PER_INSTRUCTION.items()
    )
    if stats.flops > capacity * tol + 1e-6:
        report(
            f"flops ({stats.flops:g}) exceed what the issued math instructions "
            f"can retire ({capacity:g}) — inflated FLOP count or missing "
            "instructions",
            "flops",
        )

    counters = {
        "stat_checks": 9,
        "warps_per_sm": occ.warps_per_sm if occ is not None else 0,
    }
    return findings, counters
