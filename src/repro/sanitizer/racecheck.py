"""racecheck/synccheck: shared-memory races, barrier divergence, and
HMMA fragment ownership.

Two contract surfaces of the simulated Volta stack are policed here:

* **Shared-memory staging** (``compute-sanitizer --tool racecheck`` /
  ``synccheck`` analog).  Each kernel's cooperative staging pattern is
  expressed as a :class:`SharedPlan` — the barrier-delimited schedule
  of warp-level shared-memory accesses of one CTA, derived from the
  kernel's tile constants (the same constants its ``KernelStats``
  shared-memory traffic is computed from).  The checker verifies that
  no two warps touch overlapping bytes in the same barrier interval
  with at least one write (racecheck), that every barrier is reached
  by every warp of the CTA (synccheck), and that no access leaves the
  CTA's declared shared allocation (reported as a memcheck finding —
  that is the tool that flags shared OOB on hardware).

* **Octet/thread-group fragment ownership** (§2.2, Figures 1/2/15).
  The HMMA.884 register contract says each octet computes an 8x8
  accumulator tile and *its accumulator ownership never moves* — also
  under the proposed SWITCH extension.  The checker re-derives each
  kernel's output strictly from per-octet owned fragments (one
  :func:`~repro.hardware.tensor_core.mma_m8n8k4` per octet, writing
  only the octet's owned rows) and demands the kernel's simulated
  execution match bit for bit; any cross-octet writeback, dropped
  HMMA step or broken SWITCH pairing shows up as a mismatch.  The
  issued-HMMA accounting is validated alongside (4 steps per mma;
  SWITCH steps all-or-nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.tensor_core import TensorCoreStats, mma_m8n8k4
from ..hardware.thread_hierarchy import ceil_div
from .findings import Checker, Finding

__all__ = [
    "SharedAccess",
    "SharedPlan",
    "staged_plan",
    "check_shared_plan",
    "check_spmm_octet_ownership",
    "check_sddmm_octet_ownership",
]


# --------------------------------------------------------------------- #
# shared-memory plans
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedAccess:
    """One warp-level shared-memory access (byte-granular)."""

    warp: int
    start: int
    nbytes: int
    is_store: bool

    @property
    def end(self) -> int:
        return self.start + self.nbytes


@dataclass
class SharedPlan:
    """Barrier-delimited shared-memory schedule of one CTA.

    ``phases[i]`` holds the accesses issued between barrier ``i-1``
    and barrier ``i``; ``barriers[i]`` is the set of warps arriving at
    barrier ``i`` (``len(barriers) == len(phases) - 1``).
    """

    kernel: str
    warps: int
    shared_bytes: int
    phases: List[List[SharedAccess]] = field(default_factory=list)
    barriers: List[Set[int]] = field(default_factory=list)


def staged_plan(
    kernel: str,
    warps: int,
    shared_bytes: int,
    stage_bytes: int,
    k_steps: int,
    barrier: bool = True,
    store_overlap: int = 0,
    barrier_warps: Sequence[int] | None = None,
) -> SharedPlan:
    """Canonical cooperative staging: per k-step, every warp stores a
    disjoint ``stage_bytes / warps`` slice, (optionally) barriers, then
    every warp reads the whole stage, and barriers again before the
    buffer is overwritten.

    This is the pattern behind the GEMM/Blocked-ELL/wmma staging loops
    (§3.2, Figure 11 (1)); ``barrier=False`` and ``store_overlap`` are
    fault-injection knobs for the corpus.
    """
    plan = SharedPlan(kernel=kernel, warps=warps, shared_bytes=shared_bytes)
    slice_bytes = ceil_div(stage_bytes, warps)
    arrivals = set(range(warps)) if barrier_warps is None else set(barrier_warps)
    for _ in range(k_steps):
        stores = []
        for w in range(warps):
            start = max(0, w * slice_bytes - (store_overlap if w else 0))
            nbytes = min(slice_bytes + (store_overlap if w else 0), stage_bytes - w * slice_bytes + (store_overlap if w else 0))
            stores.append(SharedAccess(w, start, max(0, nbytes), True))
        loads = [SharedAccess(w, 0, stage_bytes, False) for w in range(warps)]
        if barrier:
            plan.phases.append(stores)
            plan.barriers.append(set(arrivals))
            plan.phases.append(loads)
            plan.barriers.append(set(arrivals))
        else:
            plan.phases.append(stores + loads)
            plan.barriers.append(set(range(warps)))
    if plan.barriers and len(plan.barriers) == len(plan.phases):
        plan.barriers.pop()  # no trailing barrier after the last phase
    return plan


def _overlaps(a: SharedAccess, b: SharedAccess) -> bool:
    return a.start < b.end and b.start < a.end


def check_shared_plan(plan: SharedPlan, max_findings: int = 25) -> Tuple[List[Finding], dict]:
    """Race/sync/bounds validation of one CTA's shared-memory plan."""
    findings: List[Finding] = []
    counters = {"shared_accesses": 0, "barriers": len(plan.barriers)}

    def report(checker: Checker, message: str, location: str) -> None:
        if len(findings) < max_findings:
            findings.append(Finding(checker, plan.kernel, message, location))

    all_warps = set(range(plan.warps))
    for bi, arrived in enumerate(plan.barriers):
        missing = sorted(all_warps - set(arrived))
        if missing:
            report(
                Checker.SYNCCHECK,
                f"barrier {bi} reached by {len(arrived)}/{plan.warps} warps "
                f"(missing {missing}) — divergent __syncthreads",
                f"barrier {bi}",
            )
    for pi, phase in enumerate(plan.phases):
        counters["shared_accesses"] += len(phase)
        for acc in phase:
            if acc.start < 0 or acc.end > plan.shared_bytes:
                report(
                    Checker.MEMCHECK,
                    f"shared-memory access [{acc.start}, {acc.end}) outside the "
                    f"CTA's {plan.shared_bytes} B allocation",
                    f"phase {pi}, warp {acc.warp}",
                )
        # race: conflicting accesses from different warps, same interval
        writes = [a for a in phase if a.is_store]
        for w in writes:
            for other in phase:
                if other.warp == w.warp:
                    continue
                if _overlaps(w, other):
                    kind = "write-write" if other.is_store else "read-write"
                    report(
                        Checker.RACECHECK,
                        f"{kind} race on shared bytes "
                        f"[{max(w.start, other.start)}, {min(w.end, other.end)}) "
                        f"between warp {w.warp} and warp {other.warp} with no "
                        "intervening barrier",
                        f"phase {pi}",
                    )
                    break
            else:
                continue
            break
    return findings, counters


# --------------------------------------------------------------------- #
# HMMA octet fragment ownership
# --------------------------------------------------------------------- #
def _check_tc_accounting(
    kernel: str, tc: TensorCoreStats, switched: bool
) -> List[Finding]:
    out: List[Finding] = []
    if tc.hmma_steps != 4 * tc.mma_instructions:
        out.append(
            Finding(
                Checker.OWNERSHIP,
                kernel,
                f"issued {tc.hmma_steps} HMMA steps for {tc.mma_instructions} "
                "mma.m8n8k4 (contract: 4 steps each, none removed — §7.1.3)",
                "tensor-core accounting",
            )
        )
    want_switch = tc.hmma_steps if switched else 0
    if tc.switch_steps != want_switch:
        out.append(
            Finding(
                Checker.OWNERSHIP,
                kernel,
                f"{tc.switch_steps}/{tc.hmma_steps} HMMA steps carried the SWITCH "
                f"flag (contract: {'all' if switched else 'none'} — partial "
                "switching breaks the Mat_b mux pairing)",
                "tensor-core accounting",
            )
        )
    return out


def check_spmm_octet_ownership(kern, a: ColumnVectorSparseMatrix, b: np.ndarray) -> Tuple[List[Finding], dict]:
    """Differential ownership check of the octet SpMM simulate path.

    Reconstructs the output with one :func:`mma_m8n8k4` per octet,
    writing *only* the octet's owned 8 rows of the switched 64x8 tile,
    and requires the kernel's simulated execution to match bit for bit
    (the batched fast path is pinned bit-identical to this schedule,
    so any deviation is an unowned-fragment writeback or a dropped
    step, not rounding).
    """
    out = np.asarray(kern._execute_simulated(a, b))
    tc = getattr(kern, "last_sim_stats", TensorCoreStats())
    findings = _check_tc_accounting(kern.name, tc, switched=False)

    v = a.vector_length
    m, k = a.shape
    b16 = np.asarray(b, dtype=np.float16)
    n = b16.shape[1]
    tile_n = kern.TILE_N
    ref = np.zeros((m, n), dtype=np.float32)
    octet_ops = 0
    for vrow in range(a.num_vector_rows):
        cols, vals = a.row_slice(vrow)
        if cols.size == 0:
            continue
        for jt in range(ceil_div(n, tile_n)):
            n0, n1 = jt * tile_n, min(n, (jt + 1) * tile_n)
            acc = np.zeros((tile_n, 8), dtype=np.float32)
            for s0 in range(0, cols.size, 4):
                s1 = min(cols.size, s0 + 4)
                frag_b = np.zeros((tile_n, 4), dtype=np.float16)
                frag_b[: n1 - n0, : s1 - s0] = b16[cols[s0:s1], n0:n1].T
                frag_a = np.zeros((4, 8), dtype=np.float16)
                frag_a[: s1 - s0, :v] = vals[s0:s1]
                for octet in range(tile_n // 8):
                    r0 = octet * 8
                    owned = mma_m8n8k4(frag_b[r0 : r0 + 8], frag_a, acc[r0 : r0 + 8])
                    # ownership: the writeback lands in rows [r0, r0+8) only
                    acc[r0 : r0 + 8] = owned
                    octet_ops += 1
            ref[vrow * v : (vrow + 1) * v, n0:n1] += acc[: n1 - n0, :v].T
    ref16 = ref.astype(np.float16)
    if out.shape != ref16.shape or not np.array_equal(out, ref16, equal_nan=True):
        bad = (
            int(np.sum(out != ref16))
            if out.shape == ref16.shape
            else out.size
        )
        findings.append(
            Finding(
                Checker.OWNERSHIP,
                kern.name,
                "simulated output deviates from the octet-owned fragment "
                f"schedule in {bad} element(s) — a fragment was written back "
                "outside its octet's owned rows (or an HMMA step was lost)",
                "octet writeback",
            )
        )
    return findings, {"octet_mmas": octet_ops}


def check_sddmm_octet_ownership(
    kern, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
) -> Tuple[List[Finding], dict]:
    """Differential ownership check of the octet SDDMM simulate path.

    Same contract as the SpMM check, plus the SWITCH discipline: the
    ``arch`` variant must issue *every* step with the SWITCH flag on
    inverted operands (the Figure 15 identity), the others none.
    """
    out = kern._execute_simulated(a, b, mask)
    tc = getattr(kern, "last_sim_stats", TensorCoreStats())
    switched = getattr(kern, "variant", "reg") == "arch"
    findings = _check_tc_accounting(kern.name, tc, switched=switched)

    a16 = np.asarray(a, dtype=np.float16)
    b16 = np.asarray(b, dtype=np.float16)
    m, k = a16.shape
    v = mask.vector_length
    k_pad = ceil_div(k, 4) * 4
    a_pad = np.zeros((m, k_pad), dtype=np.float16)
    a_pad[:, :k] = a16
    b_pad = np.zeros((k_pad, b16.shape[1]), dtype=np.float16)
    b_pad[:k] = b16
    ref_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
    octet_ops = 0
    mma_kwargs = (
        dict(invert_groups=True, switch_steps=(0, 1, 2, 3)) if switched else {}
    )
    for vrow in range(mask.num_vector_rows):
        cols, _ = mask.row_slice(vrow)
        if cols.size == 0:
            continue
        lo = mask.row_ptr[vrow]
        rows = slice(vrow * v, (vrow + 1) * v)
        for s0 in range(0, cols.size, 8):
            sel = cols[s0 : s0 + 8]
            acc = np.zeros((8, 8), dtype=np.float32)
            for k0 in range(0, k_pad, 4):
                frag_b = np.zeros((8, 4), dtype=np.float16)
                frag_b[: sel.size] = b_pad[k0 : k0 + 4, sel].T
                frag_a = np.zeros((4, 8), dtype=np.float16)
                frag_a[:, :v] = a_pad[rows, k0 : k0 + 4].T
                acc = mma_m8n8k4(frag_b, frag_a, acc, **mma_kwargs)
                octet_ops += 1
            ref_vals[lo + s0 : lo + s0 + sel.size] = acc[: sel.size, :v]
    ref16 = ref_vals.astype(np.float16)
    got = np.asarray(out.values)
    if got.shape != ref16.shape or not np.array_equal(got, ref16, equal_nan=True):
        bad = int(np.sum(got != ref16)) if got.shape == ref16.shape else got.size
        findings.append(
            Finding(
                Checker.OWNERSHIP,
                kern.name,
                "simulated output deviates from the octet-owned fragment "
                f"schedule in {bad} value(s) — unowned-fragment writeback or "
                "broken SWITCH re-pairing",
                "octet writeback",
            )
        )
    return findings, {"octet_mmas": octet_ops}
