"""Sanitizer harness: kernel cases x problem suites.

Every kernel shipped in :mod:`repro.kernels` is registered here as a
:class:`KernelCase` — a recipe that materialises a seeded problem,
runs the checkers that apply to that kernel's design, and returns a
:class:`~repro.sanitizer.findings.SanitizerReport`:

* **statcheck** runs for every case (all kernels author ``KernelStats``);
* **memcheck** runs where a trace generator exists
  (:mod:`repro.perfmodel.trace`: octet SpMM, Blocked-ELL, SDDMM, GEMM);
* **racecheck/synccheck** runs where the kernel stages through shared
  memory (plans derived from the same tile constants the stats use —
  single-warp CTAs are still bounds-checked);
* **ownership** runs for the HMMA octet kernels, whose simulate paths
  expose the register-level fragment schedule, and — as
  :mod:`repro.sanitizer.plancheck` — over every compiled execution
  plan (:mod:`repro.plans`) of the simulated and functional paths.

``sanitize(names, suite)`` is the engine behind
``python -m repro.cli sanitize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.csr import CSRMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.thread_hierarchy import ceil_div
from ..kernels.cusparse import (
    BlockedEllSpmmKernel,
    CusparseCsrSpmmKernel,
    CusparseSddmmKernel,
)
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.sddmm_wmma import WmmaSddmmKernel
from ..kernels.softmax_sparse import SparseSoftmaxKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..kernels.spmm_wmma import WmmaSpmmKernel
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..perfmodel import trace
from . import memcheck, plancheck, racecheck, statcheck
from .findings import Checker, SanitizerReport

__all__ = ["ProblemSpec", "SUITES", "KERNEL_CASES", "sanitize"]

_EB = 2  # the traced kernels are half-precision designs


@dataclass(frozen=True)
class ProblemSpec:
    """One seeded problem instance of the ``(M x K) x (K x N)`` family."""

    name: str
    m: int
    k: int
    n: int
    v: int            # column-vector length of the sparse operand
    density: float    # vector-level density of the sparse operand
    seed: int

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)


#: Problem suites.  Geometry note: N is kept a multiple of 128 and K a
#: multiple of 64 so the LDG.128 transaction-shape contracts of
#: :mod:`repro.sanitizer.memcheck` are *active* (ragged shapes disable
#: them) — the sanitizer should exercise the strict contracts, the
#: parity tests already cover ragged geometry.
SUITES: Dict[str, Tuple[ProblemSpec, ...]] = {
    "smoke": (
        ProblemSpec("smoke-s", m=32, k=64, n=128, v=4, density=0.4, seed=101),
    ),
    "default": (
        ProblemSpec("default-s", m=64, k=64, n=128, v=4, density=0.3, seed=211),
        ProblemSpec("default-v8", m=64, k=128, n=128, v=8, density=0.25, seed=223),
    ),
    "full": (
        ProblemSpec("full-s", m=64, k=64, n=128, v=4, density=0.3, seed=211),
        ProblemSpec("full-v8", m=64, k=128, n=128, v=8, density=0.25, seed=223),
        ProblemSpec("full-m", m=128, k=192, n=256, v=4, density=0.2, seed=307),
    ),
}


# --------------------------------------------------------------------- #
# problem materialisation (seeded; one construction per spec)
# --------------------------------------------------------------------- #
def _spmm_problem(p: ProblemSpec) -> Tuple[ColumnVectorSparseMatrix, np.ndarray]:
    rng = p.rng()
    keep = rng.random((p.m // p.v, p.k)) < p.density
    d = (rng.uniform(-1, 1, (p.m // p.v, p.v, p.k)) * keep[:, None, :]).reshape(p.m, p.k)
    a = ColumnVectorSparseMatrix.from_dense(d.astype(np.float16), p.v)
    b = rng.uniform(-1, 1, (p.k, p.n)).astype(np.float16)
    return a, b


def _sddmm_problem(p: ProblemSpec) -> Tuple[np.ndarray, np.ndarray, ColumnVectorSparseMatrix]:
    rng = p.rng()
    a = rng.uniform(-1, 1, (p.m, p.k)).astype(np.float16)
    b = rng.uniform(-1, 1, (p.k, p.n)).astype(np.float16)
    mask_grp = rng.random((p.m // p.v, p.n)) < p.density
    mask = ColumnVectorSparseMatrix.mask_from_dense(np.repeat(mask_grp, p.v, axis=0), p.v)
    return a, b, mask


def _ell_problem(p: ProblemSpec) -> Tuple[BlockedEllMatrix, np.ndarray]:
    rng = p.rng()
    block = 16
    m = ceil_div(p.m, block) * block
    k = ceil_div(p.k, block) * block
    ell = BlockedEllMatrix.random((m, k), block, sparsity=1.0 - p.density, rng=rng)
    b = rng.uniform(-1, 1, (k, p.n)).astype(np.float16)
    return ell, b


def _csr_problem(p: ProblemSpec) -> CSRMatrix:
    rng = p.rng()
    d = rng.uniform(-1, 1, (p.m, p.k)) * (rng.random((p.m, p.k)) < p.density)
    return CSRMatrix.from_dense(d.astype(np.float16))


# --------------------------------------------------------------------- #
# shared-memory plans from the kernels' staging constants
# --------------------------------------------------------------------- #
def _staging_plan_checks(report: SanitizerReport, plan: racecheck.SharedPlan) -> None:
    report.ran(Checker.RACECHECK)
    report.ran(Checker.SYNCCHECK)
    findings, counters = racecheck.check_shared_plan(plan)
    report.extend(findings)
    for key, n in counters.items():
        report.count(key, n)


def _statcheck(report: SanitizerReport, stats) -> None:
    report.ran(Checker.STATCHECK)
    findings, counters = statcheck.check_stats(stats)
    report.extend(findings)
    for key, n in counters.items():
        report.count(key, n)


def _memcheck(report: SanitizerReport, stream, amap) -> None:
    report.ran(Checker.MEMCHECK)
    findings, counters = memcheck.check_stream(stream, amap)
    report.extend(findings)
    for key, n in counters.items():
        report.count(key, n)


def _plancheck(report: SanitizerReport, result) -> None:
    report.ran(Checker.OWNERSHIP)
    findings, counters = result
    report.extend(findings)
    for key, n in counters.items():
        report.count(key, n)


# --------------------------------------------------------------------- #
# kernel cases
# --------------------------------------------------------------------- #
def _case_spmm_octet(p: ProblemSpec) -> SanitizerReport:
    a, b = _spmm_problem(p)
    report = SanitizerReport(kernel="spmm-mma-octet")
    _statcheck(report, OctetSpmmKernel().stats_for(a, p.n))
    _memcheck(
        report,
        trace.octet_spmm_cta_sectors(a, p.n),
        memcheck.spmm_octet_address_map(a, p.n),
    )
    report.ran(Checker.OWNERSHIP)
    findings, counters = racecheck.check_spmm_octet_ownership(
        OctetSpmmKernel(simulate=True), a, b
    )
    report.extend(findings)
    for key, n in counters.items():
        report.count(key, n)
    _plancheck(report, plancheck.check_spmm_octet_plan(OctetSpmmKernel(simulate=True), a))
    # single-warp CTA: the LHS stage is race-free by construction, but
    # its accesses must stay inside the declared allocation
    kern = OctetSpmmKernel
    stage = kern.TILE_K * a.vector_length * _EB
    strides = int(np.ceil(a.vector_row_nnz().max() / kern.TILE_K)) if a.nnz_vectors else 1
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "spmm-mma-octet", warps=1, shared_bytes=stage, stage_bytes=stage,
            k_steps=max(1, strides),
        ),
    )
    return report


def _case_spmm_wmma(p: ProblemSpec) -> SanitizerReport:
    a, _ = _spmm_problem(p)
    report = SanitizerReport(kernel="spmm-mma-wmma")
    stats = WmmaSpmmKernel().stats_for(a, p.n)
    _statcheck(report, stats)
    _plancheck(report, plancheck.check_spmm_wmma_plan(WmmaSpmmKernel(simulate=True), a))
    stage = int(stats.resources.shared_bytes_per_cta)
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "spmm-mma-wmma", warps=1, shared_bytes=stage, stage_bytes=stage,
            k_steps=max(1, ceil_div(int(a.vector_row_nnz().max() or 1), WmmaSpmmKernel.TILE_K)),
        ),
    )
    return report


def _case_spmm_fpu(p: ProblemSpec) -> SanitizerReport:
    a, _ = _spmm_problem(p)
    report = SanitizerReport(kernel="spmm-fpu")
    stats = FpuSpmmKernel().stats_for(a, p.n)
    _statcheck(report, stats)
    # the FPU kernels execute through the shared functional layer, so
    # their compiled plans are the functional expansion/CSR skeletons
    _plancheck(report, plancheck.check_functional_plans("spmm-fpu", a))
    stage = int(stats.resources.shared_bytes_per_cta)
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "spmm-fpu", warps=1, shared_bytes=stage, stage_bytes=stage,
            k_steps=max(1, ceil_div(int(a.vector_row_nnz().max() or 1), FpuSpmmKernel.TILE_K)),
        ),
    )
    return report


def _case_blocked_ell(p: ProblemSpec) -> SanitizerReport:
    ell, _ = _ell_problem(p)
    report = SanitizerReport(kernel="cusparse-blocked-ell")
    stats = BlockedEllSpmmKernel().stats_for(ell, p.n)
    _statcheck(report, stats)
    _memcheck(
        report,
        trace.blocked_ell_cta_sectors(ell, p.n),
        memcheck.blocked_ell_address_map(ell, p.n),
    )
    # 4-warp CTA staging A blocks + B tiles behind barriers (§3.2's
    # barrier-heavy pattern — the synccheck surface)
    warps = BlockedEllSpmmKernel.CTA_SIZE // 32
    shared = int(stats.resources.shared_bytes_per_cta)
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "cusparse-blocked-ell", warps=warps, shared_bytes=shared,
            stage_bytes=shared, k_steps=max(1, ell.ell_width),
        ),
    )
    return report


def _case_gemm(p: ProblemSpec) -> SanitizerReport:
    report = SanitizerReport(kernel="dense-gemm")
    kern = DenseGemmKernel()
    stats = kern.stats_for_shape(p.m, p.k, p.n)
    _statcheck(report, stats)
    tile_m, tile_n, cta = kern._pick_tile(p.m, p.n)
    _memcheck(
        report,
        trace.gemm_cta_sectors(p.m, p.k, p.n, tile_m=tile_m, tile_n=tile_n),
        memcheck.gemm_address_map(p.m, p.k, p.n),
    )
    # double-buffered staging: each k-step fills one half while the
    # other is read — modelled as one stage of half the allocation
    shared = int(stats.resources.shared_bytes_per_cta)
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "dense-gemm", warps=cta // 32, shared_bytes=shared,
            stage_bytes=shared // 2, k_steps=ceil_div(p.k, kern.TILE_K),
        ),
    )
    return report


def _sddmm_octet_case(variant: str) -> Callable[[ProblemSpec], SanitizerReport]:
    def run(p: ProblemSpec) -> SanitizerReport:
        a, b, mask = _sddmm_problem(p)
        kern = OctetSddmmKernel(variant=variant, simulate=True)
        report = SanitizerReport(kernel=kern.name)
        _statcheck(report, OctetSddmmKernel(variant=variant).stats_for(mask, p.k))
        _memcheck(
            report,
            trace.octet_sddmm_cta_sectors(mask, p.k),
            memcheck.sddmm_address_map(mask, p.k),
        )
        report.ran(Checker.OWNERSHIP)
        findings, counters = racecheck.check_sddmm_octet_ownership(kern, a, b, mask)
        report.extend(findings)
        for key, n in counters.items():
            report.count(key, n)
        _plancheck(report, plancheck.check_sddmm_octet_plan(kern, mask, p.k))
        return report

    return run


def _case_sddmm_wmma(p: ProblemSpec) -> SanitizerReport:
    _, _, mask = _sddmm_problem(p)
    report = SanitizerReport(kernel="sddmm-mma-wmma")
    stats = WmmaSddmmKernel().stats_for(mask, p.k)
    _statcheck(report, stats)
    _plancheck(report, plancheck.check_sddmm_wmma_plan(WmmaSddmmKernel(simulate=True), mask, p.k))
    _memcheck(
        report,
        trace.wmma_sddmm_cta_sectors(mask, p.k),
        memcheck.sddmm_address_map(mask, p.k),
    )
    stage = int(stats.resources.shared_bytes_per_cta)
    _staging_plan_checks(
        report,
        racecheck.staged_plan(
            "sddmm-mma-wmma", warps=1, shared_bytes=stage, stage_bytes=stage,
            k_steps=max(1, ceil_div(p.k, WmmaSddmmKernel.TILE_K)),
        ),
    )
    return report


def _case_sddmm_fpu(p: ProblemSpec) -> SanitizerReport:
    _, _, mask = _sddmm_problem(p)
    report = SanitizerReport(kernel="sddmm-fpu")
    _statcheck(report, FpuSddmmKernel().stats_for(mask, p.k))
    # the FPU kernels execute through the shared functional layer, so
    # their compiled plans are the functional expansion/CSR skeletons
    _plancheck(report, plancheck.check_functional_plans("sddmm-fpu", mask))
    return report


def _case_softmax(p: ProblemSpec) -> SanitizerReport:
    a, _ = _spmm_problem(p)
    report = SanitizerReport(kernel="softmax-cvse")
    _statcheck(report, SparseSoftmaxKernel().stats_for(a))
    return report


def _case_csr_spmm(p: ProblemSpec) -> SanitizerReport:
    csr = _csr_problem(p)
    report = SanitizerReport(kernel="cusparse-csr-spmm-sp")
    _statcheck(report, CusparseCsrSpmmKernel().stats_for(csr, p.n))
    return report


def _case_csr_sddmm(p: ProblemSpec) -> SanitizerReport:
    csr = _csr_problem(p)
    report = SanitizerReport(kernel="cusparse-sddmm-sp")
    _statcheck(report, CusparseSddmmKernel().stats_for(csr, p.k))
    return report


@dataclass(frozen=True)
class KernelCase:
    """One sanitizable kernel: a name and its per-problem runner."""

    name: str
    run: Callable[[ProblemSpec], SanitizerReport]


KERNEL_CASES: Dict[str, KernelCase] = {
    c.name: c
    for c in (
        KernelCase("spmm-octet", _case_spmm_octet),
        KernelCase("spmm-wmma", _case_spmm_wmma),
        KernelCase("spmm-fpu", _case_spmm_fpu),
        KernelCase("spmm-blocked-ell", _case_blocked_ell),
        KernelCase("dense-gemm", _case_gemm),
        KernelCase("sddmm-octet-reg", _sddmm_octet_case("reg")),
        KernelCase("sddmm-octet-shfl", _sddmm_octet_case("shfl")),
        KernelCase("sddmm-octet-arch", _sddmm_octet_case("arch")),
        KernelCase("sddmm-wmma", _case_sddmm_wmma),
        KernelCase("sddmm-fpu", _case_sddmm_fpu),
        KernelCase("softmax", _case_softmax),
        KernelCase("cusparse-csr-spmm", _case_csr_spmm),
        KernelCase("cusparse-sddmm", _case_csr_sddmm),
    )
}


def sanitize(
    names: Sequence[str] | None = None, suite: str = "default"
) -> List[SanitizerReport]:
    """Run the sanitizer over ``names`` (default: every case) x ``suite``.

    Unknown kernel or suite names raise ``ValueError`` listing the
    valid choices (mirroring ``run_all --only``).  One report is
    returned per (kernel, problem) pair, problems merged per kernel:
    a kernel's report aggregates the findings over every problem of
    the suite.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; valid choices: {sorted(SUITES)}")
    if names:
        unknown = sorted(set(names) - set(KERNEL_CASES))
        if unknown:
            raise ValueError(
                f"unknown kernels: {unknown}; valid choices: {sorted(KERNEL_CASES)}"
            )
        selected = [KERNEL_CASES[n] for n in names]
    else:
        selected = list(KERNEL_CASES.values())

    reports: List[SanitizerReport] = []
    with obs_tracing.span("sanitize", suite=suite, cases=len(selected)):
        for case in selected:
            merged: SanitizerReport | None = None
            with obs_tracing.span(f"sanitize.{case.name}", suite=suite) as sp:
                for problem in SUITES[suite]:
                    rep = case.run(problem)
                    if merged is None:
                        merged = rep
                    else:
                        merged.extend(rep.findings)
                        for chk in rep.checks_run:
                            if chk not in merged.checks_run:
                                merged.checks_run.append(chk)
                        for key, n in rep.counters.items():
                            merged.count(key, n)
                assert merged is not None
                sp.set(findings=len(merged.findings))
            if obs_metrics.enabled():
                obs_metrics.counter_add("sanitizer.cases")
                obs_metrics.counter_add("sanitizer.findings", len(merged.findings))
            reports.append(merged)
    return reports
