"""Findings model shared by every sanitizer checker.

The sanitizer mirrors NVIDIA's ``compute-sanitizer`` tool family: each
checker produces :class:`Finding` records instead of raising, so one
run reports every violation of a kernel at once (the way ``memcheck``
reports every bad access of a launch).  A :class:`SanitizerReport`
aggregates the findings of all checkers that ran for one kernel case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

__all__ = ["Checker", "Finding", "SanitizerReport", "format_reports"]


class Checker(str, enum.Enum):
    """Checker families and their hardware-tool analogs."""

    #: global-memory bounds/alignment on sector streams (= memcheck)
    MEMCHECK = "memcheck"
    #: shared-memory data races between warps (= racecheck)
    RACECHECK = "racecheck"
    #: barrier divergence / participation (= synccheck)
    SYNCCHECK = "synccheck"
    #: HMMA octet/thread-group fragment ownership (racecheck family,
    #: specialised to the tensor-core register contract of §2.2/§6.3)
    OWNERSHIP = "ownership"
    #: static KernelStats consistency (= the Nsight counter sanity a
    #: profiler run would expose)
    STATCHECK = "statcheck"


@dataclass(frozen=True)
class Finding:
    """One contract violation, attributed to a single checker."""

    checker: Checker
    kernel: str
    message: str
    #: where it happened, e.g. ``"cta 3, op 1"`` or ``"stats.flops"``
    location: str = ""

    def __str__(self) -> str:
        loc = f" @ {self.location}" if self.location else ""
        return f"[{self.checker.value}] {self.kernel}{loc}: {self.message}"


@dataclass
class SanitizerReport:
    """Outcome of sanitizing one kernel case over one problem suite."""

    kernel: str
    #: checker families that actually ran for this case
    checks_run: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    #: work counters (sectors checked, accesses checked, ...) so a
    #: "zero findings" line is distinguishable from "nothing ran"
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def ran(self, checker: Checker) -> None:
        if checker.value not in self.checks_run:
            self.checks_run.append(checker.value)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def format(self, verbose: bool = False) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        head = f"{self.kernel}: {status}  [{', '.join(self.checks_run)}]"
        if verbose and self.counters:
            checked = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            head += f"  ({checked})"
        lines = [head]
        lines.extend(f"  {f}" for f in self.findings)
        return "\n".join(lines)


def format_reports(reports: Iterable[SanitizerReport], verbose: bool = False) -> str:
    """Multi-kernel summary block, one report per kernel case."""
    reports = list(reports)
    body = "\n".join(r.format(verbose=verbose) for r in reports)
    total = sum(len(r.findings) for r in reports)
    tail = f"\n{len(reports)} case(s), {total} finding(s)"
    return body + tail
