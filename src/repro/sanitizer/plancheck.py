"""Ownership pass over compiled execution plans.

The plan compilers of :mod:`repro.plans` turn the interpreted kernel
walks into flattened gather/scatter schedules; a wrong schedule does
not crash — it silently mis-attributes fragments.  This checker
compiles each kernel's plan for the case's problem (through the cache,
so the checked artifact is the cached artifact) and replays the
ownership contract against the structure via
:func:`repro.plans.validate_plan`, wrapping violations into
:class:`~repro.sanitizer.findings.Finding` rows under the existing
``ownership`` checker.

Counters report the schedule extents (``plan.groups``,
``plan.slots``) so a silently-empty plan is visible in the report.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import plans
from .findings import Checker, Finding

__all__ = [
    "check_spmm_octet_plan",
    "check_spmm_wmma_plan",
    "check_sddmm_octet_plan",
    "check_sddmm_wmma_plan",
    "check_functional_plans",
]

_Result = Tuple[List[Finding], Dict[str, int]]


def _wrap(kernel: str, messages: List[str], location: str) -> List[Finding]:
    return [
        Finding(Checker.OWNERSHIP, kernel, msg, location=location)
        for msg in messages
    ]


def _layout_counters(plan) -> Dict[str, int]:
    lay = plan.layout
    return {"plan.groups": int(lay.num_groups), "plan.slots": int(lay.slots.size)}


def check_spmm_octet_plan(kern, a) -> _Result:
    """Validate the octet SpMM plan compiled for ``kern`` on ``a``."""
    plan = plans.spmm_octet_plan(kern, a)
    msgs = plans.validate_plan(plan, a)
    return _wrap(kern.name, msgs, "plans.spmm_octet_plan"), _layout_counters(plan)


def check_spmm_wmma_plan(kern, a) -> _Result:
    """Validate the wmma SpMM plan compiled for ``kern`` on ``a``."""
    plan = plans.spmm_wmma_plan(kern, a)
    msgs = plans.validate_plan(plan, a)
    return _wrap(kern.name, msgs, "plans.spmm_wmma_plan"), _layout_counters(plan)


def check_sddmm_octet_plan(kern, mask, k: int) -> _Result:
    """Validate the octet SDDMM plan compiled for ``kern`` on ``mask``."""
    plan = plans.sddmm_octet_plan(kern, mask, k)
    msgs = plans.validate_plan(plan, mask, k=k)
    return _wrap(kern.name, msgs, "plans.sddmm_octet_plan"), _layout_counters(plan)


def check_sddmm_wmma_plan(kern, mask, k: int) -> _Result:
    """Validate the wmma SDDMM plan compiled for ``kern`` on ``mask``."""
    plan = plans.sddmm_wmma_plan(kern, mask, k)
    msgs = plans.validate_plan(plan, mask, k=k)
    return _wrap(kern.name, msgs, "plans.sddmm_wmma_plan"), _layout_counters(plan)


def check_functional_plans(kernel: str, structure) -> _Result:
    """Validate the shared functional-layer plans for ``structure``.

    Checks the SDDMM expansion plan always and the SpMM CSR skeleton
    when the structure carries values (mask-only encodings have no
    SpMM path).
    """
    findings: List[Finding] = []
    counters: Dict[str, int] = {}
    sd = plans.functional_sddmm_plan(structure)
    findings += _wrap(
        kernel, plans.validate_plan(sd, structure), "plans.functional_sddmm_plan"
    )
    counters["plan.slots"] = int(sd.rows.size)
    if structure.values is not None:
        sp = plans.functional_spmm_plan(structure)
        findings += _wrap(
            kernel, plans.validate_plan(sp, structure), "plans.functional_spmm_plan"
        )
        counters["plan.csr_entries"] = int(sp.indices.size)
    return findings, counters
