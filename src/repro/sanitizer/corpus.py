"""Injected-violation corpus: broken kernels that each trip ONE checker.

The sanitizer is only trustworthy if every checker demonstrably fires,
so this module ships one deliberately-broken fixture per checker
family — the analog of compute-sanitizer's own test binaries.  Each
``*_report()`` function builds a small seeded problem, injects exactly
one contract violation, runs the sanitizer surface that owns the
contract and returns the resulting report; ``tests/test_sanitizer.py``
asserts each report is flagged by its *intended* checker and no other.

Fixtures:

* :func:`oob_column_index_report` — a CVSE column index pointing past
  K (corrupted post-construction: the format validates at build time),
  so the B-row gather walks off the operand (**memcheck**);
* :func:`missing_barrier_report` — cooperative staging with the
  inter-phase ``__syncthreads`` dropped (**racecheck**);
* :func:`divergent_barrier_report` — a barrier not reached by every
  warp of the CTA (**synccheck**);
* :func:`unowned_writeback_report` — an octet writing its accumulator
  fragment into the neighbouring octet's owned rows (**ownership**);
* :func:`dropped_switch_report` — the ``arch`` SDDMM issuing only half
  its HMMA steps with the SWITCH flag (**ownership**, accounting);
* :func:`inflated_flops_report` — a ``KernelStats`` claiming more
  useful FLOPs than its issued math instructions can retire
  (**statcheck**).
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..perfmodel import trace
from . import memcheck, racecheck, statcheck
from .findings import Checker, SanitizerReport

__all__ = [
    "oob_column_index_report",
    "missing_barrier_report",
    "divergent_barrier_report",
    "unowned_writeback_report",
    "dropped_switch_report",
    "inflated_flops_report",
    "all_reports",
]


def _small_spmm(seed: int = 31, v: int = 4, m: int = 32, k: int = 64, n: int = 128):
    rng = np.random.default_rng(seed)
    keep = rng.random((m // v, k)) < 0.4
    d = (rng.uniform(-1, 1, (m // v, v, k)) * keep[:, None, :]).reshape(m, k)
    a = ColumnVectorSparseMatrix.from_dense(d.astype(np.float16), v)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    return a, b


def oob_column_index_report() -> SanitizerReport:
    """A column index pointing past K makes the B gather walk off the
    operand — memcheck must flag the out-of-extent sector."""
    a, _ = _small_spmm()
    n = 128
    amap = memcheck.spmm_octet_address_map(a, n)
    # the format validates indices at construction, so corrupt the
    # payload afterwards — the bug class this checker exists for
    a.col_idx[a.col_idx.size // 2] = a.shape[1] * 4
    report = SanitizerReport(kernel="corpus-oob-column")
    report.ran(Checker.MEMCHECK)
    findings, counters = memcheck.check_stream(
        trace.octet_spmm_cta_sectors(a, n), amap
    )
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


def missing_barrier_report() -> SanitizerReport:
    """Cooperative staging with no barrier between the warps' stores
    and the whole-stage loads — racecheck must see the read-write race."""
    plan = racecheck.staged_plan(
        "corpus-missing-barrier", warps=4, shared_bytes=4096,
        stage_bytes=4096, k_steps=2, barrier=False,
    )
    report = SanitizerReport(kernel="corpus-missing-barrier")
    report.ran(Checker.RACECHECK)
    report.ran(Checker.SYNCCHECK)
    findings, counters = racecheck.check_shared_plan(plan)
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


def divergent_barrier_report() -> SanitizerReport:
    """A barrier only three of four warps reach (a warp early-exited
    around the ``__syncthreads``) — synccheck must flag it."""
    plan = racecheck.staged_plan(
        "corpus-divergent-barrier", warps=4, shared_bytes=4096,
        stage_bytes=4096, k_steps=1, barrier_warps=(0, 1, 2),
    )
    report = SanitizerReport(kernel="corpus-divergent-barrier")
    report.ran(Checker.SYNCCHECK)
    findings, counters = racecheck.check_shared_plan(plan)
    # the dropped arrival is a pure synccheck event: the plan's
    # accesses themselves stay disjoint, so racecheck stays quiet
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


class _UnownedWritebackSpmmKernel(OctetSpmmKernel):
    """Octet 0 writes its accumulator into octet 1's owned rows."""

    def _execute_simulated(self, a, b):
        out = np.array(super()._execute_simulated(a, b))
        # corrupt the writeback of the first nonzero output tile: the
        # 8 switched-LHS rows octet 0 owns land on octet 1's rows
        v = a.vector_length
        if out.shape[1] >= 16:
            out[:v, 8:16] = out[:v, 0:8]
        return out


def unowned_writeback_report() -> SanitizerReport:
    """The ownership differential must catch a cross-octet writeback."""
    a, b = _small_spmm(seed=37)
    kern = _UnownedWritebackSpmmKernel(simulate=True)
    report = SanitizerReport(kernel="corpus-unowned-writeback")
    report.ran(Checker.OWNERSHIP)
    findings, counters = racecheck.check_spmm_octet_ownership(kern, a, b)
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


class _DroppedSwitchSddmmKernel(OctetSddmmKernel):
    """An ``arch`` kernel issuing SWITCH on only half its HMMA steps."""

    def _execute_simulated(self, a, b, mask):
        out = super()._execute_simulated(a, b, mask)
        # halve the recorded SWITCH count: the partial switching the
        # Figure 15 contract forbids (the values happen to be produced
        # correctly here — the *discipline* violation is the bug)
        self.last_sim_stats.switch_steps //= 2
        return out


def dropped_switch_report() -> SanitizerReport:
    """Partial SWITCH issue breaks the Mat_b mux pairing contract."""
    rng = np.random.default_rng(41)
    m, k, n, v = 32, 64, 96, 4
    a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    grp = rng.random((m // v, n)) < 0.3
    mask = ColumnVectorSparseMatrix.mask_from_dense(np.repeat(grp, v, axis=0), v)
    kern = _DroppedSwitchSddmmKernel(variant="arch", simulate=True)
    report = SanitizerReport(kernel="corpus-dropped-switch")
    report.ran(Checker.OWNERSHIP)
    findings, counters = racecheck.check_sddmm_octet_ownership(kern, a, b, mask)
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


def inflated_flops_report() -> SanitizerReport:
    """A stats object claiming 50x the FLOPs its instructions retire."""
    a, _ = _small_spmm(seed=43)
    stats = OctetSpmmKernel().stats_for(a, 128)  # memo hit = private copy
    # construction would raise on nonsense, so inflate afterwards —
    # the post-construction-mutation window statcheck exists to close
    stats.flops *= 50.0
    report = SanitizerReport(kernel="corpus-inflated-flops")
    report.ran(Checker.STATCHECK)
    findings, counters = statcheck.check_stats(stats)
    report.extend(findings)
    for key, c in counters.items():
        report.count(key, c)
    return report


def all_reports() -> dict:
    """Every corpus report, keyed by the checker expected to fire."""
    return {
        Checker.MEMCHECK: oob_column_index_report(),
        Checker.RACECHECK: missing_barrier_report(),
        Checker.SYNCCHECK: divergent_barrier_report(),
        Checker.OWNERSHIP: unowned_writeback_report(),
        Checker.STATCHECK: inflated_flops_report(),
    }
