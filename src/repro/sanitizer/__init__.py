"""Kernel sanitizer: a compute-sanitizer analog for the simulated stack.

Checker families (see ``docs/SANITIZER.md`` for the hardware analogs):

* :mod:`~repro.sanitizer.memcheck` — global-memory bounds/alignment on
  the trace generators' sector streams;
* :mod:`~repro.sanitizer.racecheck` — shared-memory races, barrier
  divergence, and HMMA octet fragment ownership;
* :mod:`~repro.sanitizer.statcheck` — static ``KernelStats``
  consistency (roofline, monotonicity, occupancy);
* :mod:`~repro.sanitizer.harness` — kernel cases x problem suites
  (the engine behind ``python -m repro.cli sanitize``);
* :mod:`~repro.sanitizer.corpus` — injected-violation fixtures that
  prove each checker fires.
"""

from .findings import Checker, Finding, SanitizerReport, format_reports
from .harness import KERNEL_CASES, SUITES, ProblemSpec, sanitize

__all__ = [
    "Checker",
    "Finding",
    "SanitizerReport",
    "format_reports",
    "KERNEL_CASES",
    "SUITES",
    "ProblemSpec",
    "sanitize",
]
