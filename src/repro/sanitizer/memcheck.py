"""memcheck: bounds/alignment validation of global-memory sector streams.

The trace generators in :mod:`repro.perfmodel.trace` produce, per CTA,
the 32 B-sector id streams a kernel's global loads would issue.  On
real hardware ``compute-sanitizer --tool memcheck`` polices exactly
this surface: every transaction must fall inside an allocated operand,
and the vectorised ``LDG.128`` paths the paper's kernels rely on
(guideline V) must stay 128 B-aligned or the coalescer silently adds
sectors.  Here the "allocations" are the documented operand address
map of each trace generator (dense operands first, sparse payload and
metadata after — see the module docstring of
:mod:`repro.perfmodel.trace`), so the checks are:

* **bounds** — every sector falls inside a declared operand region;
* **region purity** — a single op (one operand's access list for one
  CTA) never straddles unrelated operands;
* **transaction shape** — in regions declared as LDG.128 targets, each
  maximal run of contiguous sectors must start on the declared
  alignment and cover whole 4-sector (128 B) transactions; a run with
  a ragged tail is the sector-level signature of a misaligned vector
  load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from .findings import Checker, Finding

__all__ = [
    "Region",
    "AddressMap",
    "check_stream",
    "spmm_octet_address_map",
    "blocked_ell_address_map",
    "sddmm_address_map",
    "gemm_address_map",
]

_SECTOR = 32


@dataclass(frozen=True)
class Region:
    """One operand's byte extent in the trace address map."""

    name: str
    start: int            # first byte
    end: int              # one past the last byte
    #: required byte alignment of each contiguous-run start (relative
    #: to ``start``); None = scalar/streamed operand, no constraint
    align: Optional[int] = None
    #: each maximal contiguous sector run must be a whole number of
    #: this many sectors (4 = 128 B LDG.128 transactions)
    run_quantum: Optional[int] = None

    @property
    def sector_lo(self) -> int:
        return self.start // _SECTOR

    @property
    def sector_hi(self) -> int:
        return -(-self.end // _SECTOR)

    def contains_sectors(self, sectors: np.ndarray) -> bool:
        if sectors.size == 0:
            return True
        return bool(sectors.min() >= self.sector_lo and sectors.max() < self.sector_hi)


@dataclass(frozen=True)
class AddressMap:
    """Declared operand regions of one kernel's sector stream."""

    kernel: str
    regions: Tuple[Region, ...]

    @property
    def sector_end(self) -> int:
        return max(r.sector_hi for r in self.regions)

    def region_for_op(self, sectors: np.ndarray) -> Optional[Region]:
        """The single region containing every sector of one op."""
        for r in self.regions:
            if r.contains_sectors(sectors):
                return r
        return None


def _contiguous_runs(sectors: np.ndarray) -> Iterable[Tuple[int, int]]:
    """(start_sector, length) of each maximal run of consecutive ids.

    Within one op, repeats and backward jumps terminate a run — the
    generators emit segment-major monotone runs, so a well-formed
    LDG.128 op decomposes into whole-transaction runs.
    """
    if sectors.size == 0:
        return
    breaks = np.flatnonzero(np.diff(sectors) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks + 1, [sectors.size]))
    for s, e in zip(starts, ends):
        yield int(sectors[s]), int(e - s)


def check_stream(
    stream: Iterable[Tuple[int, List[np.ndarray]]],
    amap: AddressMap,
    max_findings: int = 25,
) -> Tuple[List[Finding], dict]:
    """Validate one kernel's full CTA sector stream against its map.

    Returns (findings, counters); stops collecting (but keeps
    counting) after ``max_findings`` so pathological streams stay
    cheap to report.
    """
    findings: List[Finding] = []
    counters = {"ctas": 0, "ops": 0, "sectors": 0}

    def report(message: str, location: str) -> None:
        if len(findings) < max_findings:
            findings.append(
                Finding(Checker.MEMCHECK, amap.kernel, message, location)
            )

    for cta_id, ops in stream:
        counters["ctas"] += 1
        for op_i, op in enumerate(ops):
            sectors = np.asarray(op, dtype=np.int64)
            counters["ops"] += 1
            counters["sectors"] += int(sectors.size)
            if sectors.size == 0:
                continue
            loc = f"cta {cta_id}, op {op_i}"
            if sectors.min() < 0:
                report(f"negative sector id {int(sectors.min())}", loc)
                continue
            if sectors.max() >= amap.sector_end:
                report(
                    f"sector {int(sectors.max())} is past the end of the declared "
                    f"operands (last mapped sector {amap.sector_end - 1})",
                    loc,
                )
                continue
            region = amap.region_for_op(sectors)
            if region is None:
                inside = amap.regions[0]
                for r in amap.regions:
                    if r.sector_lo <= int(sectors[0]) < r.sector_hi:
                        inside = r
                        break
                report(
                    f"op straddles operand regions (starts in {inside.name!r}; "
                    "one op must address a single operand)",
                    loc,
                )
                continue
            if region.align is None and region.run_quantum is None:
                continue
            for run_start, run_len in _contiguous_runs(sectors):
                if region.align is not None:
                    rel = run_start * _SECTOR - region.start
                    if rel % region.align:
                        report(
                            f"transaction at byte {run_start * _SECTOR} in "
                            f"{region.name!r} breaks the {region.align} B alignment "
                            f"contract (offset {rel % region.align} B)",
                            loc,
                        )
                        break
                if region.run_quantum is not None and run_len % region.run_quantum:
                    report(
                        f"run of {run_len} sectors in {region.name!r} is not a "
                        f"whole number of {region.run_quantum}-sector (128 B) "
                        "transactions — misaligned or ragged vector load",
                        loc,
                    )
                    break
    return findings, counters


# --------------------------------------------------------------------- #
# per-kernel address maps (mirroring the trace generators' layout)
# --------------------------------------------------------------------- #
def spmm_octet_address_map(
    a: ColumnVectorSparseMatrix, n: int, elem_bytes: int = 2
) -> AddressMap:
    """Operand extents of :func:`repro.perfmodel.trace.octet_spmm_cta_sectors`."""
    eb = elem_bytes
    m, k = a.shape
    b_bytes = k * n * eb
    val_base = b_bytes
    idx_base = val_base + a.col_idx.size * a.vector_length * eb
    # B rows are fetched as 128 B LDG.128 segments (§5.4).  The
    # transaction-shape contract is only checkable when the geometry
    # keeps every segment 128 B-sized and -aligned (full 64-column
    # tiles, 128 B-aligned row stride); ragged tails are legal.
    tile_bytes = 64 * eb
    vectorised = n % 64 == 0 and (n * eb) % 128 == 0 and tile_bytes == 128
    return AddressMap(
        kernel="spmm-mma-octet",
        regions=(
            Region("B", 0, b_bytes, align=128 if vectorised else None,
                   run_quantum=4 if vectorised else None),
            Region("A.values", val_base, idx_base),
            Region("A.col_idx", idx_base, idx_base + a.col_idx.size * 8),
        ),
    )


def blocked_ell_address_map(
    ell: BlockedEllMatrix, n: int, elem_bytes: int = 2
) -> AddressMap:
    """Operand extents of :func:`repro.perfmodel.trace.blocked_ell_cta_sectors`."""
    eb = elem_bytes
    m, k = ell.shape
    b_bytes = k * n * eb
    val_base = b_bytes
    val_bytes = ell.num_block_rows * ell.ell_width * ell.block_size * ell.block_size * eb
    # full 128-column tiles at a 128 B-aligned row stride load as whole
    # 128 B transactions; anything else legitimately produces tails
    vectorised = n % 128 == 0 and (n * eb) % 128 == 0
    return AddressMap(
        kernel="spmm-blocked-ell",
        regions=(
            Region("B", 0, b_bytes, align=128 if vectorised else None,
                   run_quantum=4 if vectorised else None),
            Region("A.values", val_base, val_base + val_bytes),
        ),
    )


def sddmm_address_map(
    mask: ColumnVectorSparseMatrix, k: int, elem_bytes: int = 2
) -> AddressMap:
    """Operand extents of the shared SDDMM stream (octet and wmma)."""
    eb = elem_bytes
    m, n_out = mask.shape
    a_bytes = m * k * eb
    b_base = a_bytes
    meta_base = b_base + k * n_out * eb
    return AddressMap(
        kernel="sddmm",
        regions=(
            Region("A", 0, a_bytes),
            # B columns gather as k*eb contiguous runs (column-major
            # LDG.128 — §6.4); k*eb is a multiple of 128 in the paper's
            # K grid, so runs are whole 128 B transactions
            Region("B", b_base, meta_base,
                   align=128 if (k * eb) % 128 == 0 else None,
                   run_quantum=4 if (k * eb) % 128 == 0 else None),
            Region("mask.meta", meta_base, meta_base + mask.col_idx.size * 8),
        ),
    )


def gemm_address_map(m: int, k: int, n: int, elem_bytes: int = 2) -> AddressMap:
    """Operand extents of :func:`repro.perfmodel.trace.gemm_cta_sectors`."""
    eb = elem_bytes
    a_bytes = m * k * eb
    return AddressMap(
        kernel="dense-gemm",
        regions=(
            Region("A", 0, a_bytes),
            Region("B", a_bytes, a_bytes + k * n * eb),
        ),
    )
