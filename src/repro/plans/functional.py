"""Compiled index plans for the shared functional kernel layer.

The functional SpMM/SDDMM paths spend their Python time expanding the
CVSE structure into scalar (row, col) pairs and, for SpMM, building a
scipy CSR from COO triplets.  Both are pure functions of the topology,
so they compile into a cached plan:

* :class:`FunctionalSpmmPlan` holds a ready CSR skeleton — the stable
  row-sort permutation of the expanded triplets plus the
  ``indices``/``indptr`` arrays — so execution is one value gather and
  one ``csr_matrix @ dense`` product.  The permutation is *stable*,
  which keeps each scalar row's entries in storage order (ascending
  columns): the direct CSR build is then entry-for-entry identical to
  the COO round trip of the reference, and the product bit-identical.
* :class:`FunctionalSddmmPlan` holds the expanded gather rows/cols for
  the chunked dot-product.

:func:`expand_vector_rows` lives here (canonically — the kernels layer
re-exports it) because both the plan compilers and the interpreted
references need the same expansion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .core import cached_plan

__all__ = [
    "expand_vector_rows",
    "FunctionalSpmmPlan",
    "FunctionalSddmmPlan",
    "functional_spmm_plan",
    "functional_sddmm_plan",
]


def expand_vector_rows(cvse) -> Tuple[np.ndarray, np.ndarray]:
    """(scalar_row, col) pairs of every stored scalar, in storage order."""
    v = cvse.vector_length
    vrows = np.repeat(np.arange(cvse.num_vector_rows), cvse.vector_row_nnz())
    rows = (vrows[:, None] * v + np.arange(v)[None, :]).reshape(-1)
    # storage order is (vector, lane): interleave accordingly
    cols = np.repeat(cvse.col_idx[:, None], v, axis=1).reshape(-1)
    return rows, cols


@dataclass(frozen=True)
class FunctionalSpmmPlan:
    """CSR skeleton over the expanded scalar rows of a CVSE structure."""

    perm: np.ndarray      #: stable storage-order -> CSR-order permutation
    indices: np.ndarray   #: CSR column indices (post-permutation)
    indptr: np.ndarray    #: CSR row pointers over the scalar rows


@dataclass(frozen=True)
class FunctionalSddmmPlan:
    """Expanded (scalar_row, col) gather pairs for the chunked SDDMM."""

    rows: np.ndarray
    cols: np.ndarray


def _compile_functional_spmm(a) -> FunctionalSpmmPlan:
    rows, cols = expand_vector_rows(a)
    perm = np.argsort(rows, kind="stable")
    counts = np.bincount(rows, minlength=a.shape[0])
    indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return FunctionalSpmmPlan(perm=perm, indices=cols[perm], indptr=indptr)


def functional_spmm_plan(a) -> FunctionalSpmmPlan:
    """Cached CSR-skeleton plan for ``spmm_functional`` on ``a``."""
    return cached_plan("functional-spmm", None, a, (), lambda: _compile_functional_spmm(a))


def _compile_functional_sddmm(mask) -> FunctionalSddmmPlan:
    rows, cols = expand_vector_rows(mask)
    return FunctionalSddmmPlan(rows=rows, cols=cols)


def functional_sddmm_plan(mask) -> FunctionalSddmmPlan:
    """Cached expansion plan for ``sddmm_functional`` on ``mask``."""
    return cached_plan(
        "functional-sddmm", None, mask, (), lambda: _compile_functional_sddmm(mask)
    )
