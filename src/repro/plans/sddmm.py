"""Compiled execution plans for the simulated SDDMM kernels.

Same split as :mod:`repro.plans.spmm`: the compiler flattens the
interpreted per-row walk into slot/gather arrays once, the executor
issues a single batched tensor-core call for the whole structure and
scatters the padded accumulators back through the slot map.  SDDMM
outputs are *assigned* (the references write ``out_vals[lo:hi] = ...``
into a zero buffer), so the plan path scatters with ``=`` — unlike
the SpMM side, where ``+=`` is load-bearing for signed-zero parity.

The k dimension is uniform across rows (every row pads K the same
way), so the k-slice accumulation needs no masking — only the
column-group dimension is ragged and goes through the slot map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..hardware.tensor_core import TensorCoreStats, mma_m8n8k4_batched
from .core import cached_plan
from .layout import GroupLayout, group_layout, row_of_group

__all__ = [
    "SddmmOctetPlan",
    "SddmmWmmaPlan",
    "sddmm_octet_plan",
    "sddmm_wmma_plan",
    "execute_sddmm_octet",
    "execute_sddmm_wmma",
]


@dataclass(frozen=True)
class SddmmOctetPlan:
    """Flattened octet-tiling SDDMM schedule (8-column sub-steps)."""

    vector_length: int
    num_vector_rows: int
    k_pad: int                #: K padded to a multiple of 4
    layout: GroupLayout
    #: active-row position owning each flat sub-step
    row_of_substep: np.ndarray


@dataclass(frozen=True)
class SddmmWmmaPlan:
    """Flattened warp-tiling SDDMM schedule (32-column wmma tiles)."""

    vector_length: int
    num_vector_rows: int
    k_pad: int                #: K padded to a multiple of 16
    layout: GroupLayout
    row_of_tile: np.ndarray


def _compile_sddmm_octet(kern, mask, k: int) -> SddmmOctetPlan:
    layout = group_layout(mask.vector_row_nnz(), 8)
    return SddmmOctetPlan(
        vector_length=mask.vector_length,
        num_vector_rows=mask.num_vector_rows,
        k_pad=-(-k // 4) * 4,
        layout=layout,
        row_of_substep=row_of_group(layout),
    )


def sddmm_octet_plan(kern, mask, k: int) -> SddmmOctetPlan:
    """Cached octet SDDMM plan for ``kern`` on ``mask`` with inner dim ``k``."""
    return cached_plan(
        "sddmm-octet", kern, mask, (int(k),), lambda: _compile_sddmm_octet(kern, mask, k)
    )


def _compile_sddmm_wmma(kern, mask, k: int) -> SddmmWmmaPlan:
    layout = group_layout(mask.vector_row_nnz(), 32)
    return SddmmWmmaPlan(
        vector_length=mask.vector_length,
        num_vector_rows=mask.num_vector_rows,
        k_pad=-(-k // 16) * 16,
        layout=layout,
        row_of_tile=row_of_group(layout),
    )


def sddmm_wmma_plan(kern, mask, k: int) -> SddmmWmmaPlan:
    """Cached wmma SDDMM plan for ``kern`` on ``mask`` with inner dim ``k``."""
    return cached_plan(
        "sddmm-wmma", kern, mask, (int(k),), lambda: _compile_sddmm_wmma(kern, mask, k)
    )


def _padded_operands(a16, b16, k_pad: int) -> Tuple[np.ndarray, np.ndarray]:
    m, k = a16.shape
    a_pad = np.zeros((m, k_pad), dtype=np.float16)
    a_pad[:, :k] = a16
    b_pad = np.zeros((k_pad, b16.shape[1]), dtype=np.float16)
    b_pad[:k] = b16
    return a_pad, b_pad


def execute_sddmm_octet(
    plan: SddmmOctetPlan,
    a16: np.ndarray,
    b16: np.ndarray,
    mask,
    sim_kwargs: Dict,
) -> Tuple[np.ndarray, TensorCoreStats]:
    """Run an octet SDDMM plan; returns FP32 values and TCU stats.

    ``sim_kwargs`` carries the variant's SWITCH discipline (the
    ``arch`` flags) straight into the batched call — variant semantics
    stay at execution time, never inside the cached plan.
    """
    v = plan.vector_length
    tc = TensorCoreStats()
    out_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
    lay = plan.layout
    T = lay.num_groups
    if T == 0:
        return out_vals, tc
    k4 = plan.k_pad // 4
    a_pad, b_pad = _padded_operands(a16, b16, plan.k_pad)
    R = lay.rows_act.size
    # switched-RHS fragments per active row: (R, k4, 4, 8)
    a3 = a_pad.reshape(plan.num_vector_rows, v, plan.k_pad)[lay.rows_act]
    frag_a = np.zeros((R, k4, 4, 8), dtype=np.float16)
    frag_a[..., :v] = a3.transpose(0, 2, 1).reshape(R, k4, 4, v)
    # switched-LHS fragments: compacted B columns through the slot map
    b_sel = np.zeros((T * 8, plan.k_pad), dtype=np.float16)
    b_sel[lay.slots] = b_pad[:, mask.col_idx].T
    batch_b = b_sel.reshape(T, 8, k4, 4).transpose(0, 2, 1, 3).reshape(-1, 8, 4)
    batch_a = frag_a[plan.row_of_substep].reshape(T * k4, 4, 8)
    partial = mma_m8n8k4_batched(batch_b, batch_a, stats=tc, **sim_kwargs)
    partial = partial.reshape(T, k4, 8, 8)
    accs = np.zeros((T, 8, 8), dtype=np.float32)
    for j in range(k4):  # serial k accumulation, reference loop order
        accs += partial[:, j]
    out_vals[:] = accs.reshape(T * 8, 8)[lay.slots][:, :v]
    return out_vals, tc


def execute_sddmm_wmma(
    plan: SddmmWmmaPlan, a16: np.ndarray, b16: np.ndarray, mask
) -> Tuple[np.ndarray, TensorCoreStats]:
    """Run a wmma SDDMM plan; returns FP32 values and TCU stats."""
    v = plan.vector_length
    tc = TensorCoreStats()
    out_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
    lay = plan.layout
    T = lay.num_groups
    if T == 0:
        return out_vals, tc
    k16 = plan.k_pad // 16
    a_pad, b_pad = _padded_operands(a16, b16, plan.k_pad)
    R = lay.rows_act.size
    # Mat_a fragments per active row and k-step: (R, k16, j, 8, 4)
    a3 = a_pad.reshape(plan.num_vector_rows, v, plan.k_pad)[lay.rows_act]
    a_steps = np.zeros((R, k16, 8, 16), dtype=np.float16)
    a_steps[:, :, :v, :] = a3.reshape(R, v, k16, 16).transpose(0, 2, 1, 3)
    a_frags = a_steps.reshape(R, k16, 8, 4, 4).transpose(0, 1, 3, 2, 4)
    batch_a = np.tile(a_frags[plan.row_of_tile], (1, 1, 4, 1, 1)).reshape(-1, 8, 4)
    # Mat_b fragments: compacted columns through the slot map, ordered
    # (tile, k-step, octet, k-slice) to match the wmma decomposition
    b_sel = np.zeros((T * 32, plan.k_pad), dtype=np.float16)
    b_sel[lay.slots] = b_pad[:, mask.col_idx].T
    bt = b_sel.reshape(T, 4, 8, k16, 4, 4)
    batch_b = bt.transpose(0, 3, 1, 4, 5, 2).reshape(-1, 4, 8)
    partial = mma_m8n8k4_batched(batch_a, batch_b, stats=tc)
    partial = partial.reshape(T, k16, 4, 4, 8, 8)      # [t, k-step, octet, j]
    acc = np.zeros((T, 4, 8, 8), dtype=np.float32)     # [t, octet, 8-row, 8-col]
    for kk in range(k16):  # serial wmma calls, then k-slices within
        for j in range(4):
            acc += partial[:, kk, :, j]
    out_vals[:] = acc.transpose(0, 1, 3, 2).reshape(T * 32, 8)[lay.slots][:, :v]
    return out_vals, tc
