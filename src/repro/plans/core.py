"""Plan-cache core: the ``REPRO_PLANS`` gate and content-addressed lookup.

A *plan* is the schedule half of a kernel execution — precomputed
gather/scatter index arrays and fragment batch descriptors derived
from a sparsity structure and a kernel's tile configuration, never
from operand values.  Compiling one costs a per-row Python walk (the
thing the plan exists to amortise), so plans are cached in the
checksummed ``plan`` region of :mod:`repro.perfmodel.memo`, keyed on

* an operation tag (``"spmm-octet"``, ``"functional-sddmm"``, ...),
* :func:`~repro.perfmodel.memo.kernel_fingerprint` of the kernel
  instance (class + uppercase tile constants + scalar attributes), so
  changing a tile config invalidates the plan, and
* :func:`~repro.perfmodel.memo.signature` of the sparse structure
  (shape, vector length, topology digest — values excluded), plus any
  runtime extras (e.g. the SDDMM inner dimension).

The blob storage gives plans the same corruption semantics as the
stats/latency regions: a tampered entry is detected by its BLAKE2b
digest and recompiled, never executed.  Because unpickling always
materialises a fresh object, executors may treat cached plans as
immutable without a defensive copy.

``REPRO_PLANS=0`` (or :func:`set_enabled`\\ ``(False)``) routes every
kernel back to its interpreted ``*_reference`` twin — the A/B switch
the parity tests and ``benchmarks/bench_codegen.py`` rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from .. import envgates
from ..perfmodel import memo

__all__ = ["enabled", "set_enabled", "plan_key", "cached_plan"]

_enabled_override: Optional[bool] = None


def enabled() -> bool:
    """Whether compiled execution plans are active (override > env > on)."""
    if _enabled_override is not None:
        return _enabled_override
    return envgates.flag("REPRO_PLANS")


def set_enabled(flag: Optional[bool]) -> None:
    """Force plans on (True), off (False), or defer to ``REPRO_PLANS`` (None)."""
    global _enabled_override
    _enabled_override = flag


def plan_key(op: str, kern: Any, structure: Any, *extras) -> Tuple:
    """Content address of a plan (see the module docstring for parts).

    ``kern`` may be ``None`` for kernel-independent plans (the
    functional layer has no tile config).  Raises :class:`TypeError`
    when the kernel instance carries unfingerprintable attributes —
    the caller then compiles fresh rather than risk serving another
    configuration's schedule.
    """
    fp = None if kern is None else memo.kernel_fingerprint(kern)
    return (op, fp, memo.signature(structure)) + tuple(extras)


def cached_plan(op: str, kern: Any, structure: Any, extras: Tuple, compute: Callable[[], Any]):
    """Fetch (or compile and store) a plan through the ``plan`` region.

    Misses run ``compute`` inside the memo layer's ``memo.miss.plan``
    tracing span; hits re-verify the stored blob's digest before
    unpickling.  Falls back to a fresh compile when memoisation is
    disabled or the key cannot be formed.
    """
    if not memo.enabled():
        return compute()
    try:
        key = plan_key(op, kern, structure, *extras)
    except TypeError:
        return compute()
    return memo.memoise("plan", key, compute, copy_result=False)
