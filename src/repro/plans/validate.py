"""Ownership validation of compiled execution plans.

A plan is a scatter/gather schedule; if it is wrong the executor does
not crash — it silently mis-attributes fragments, the exact failure
family the sanitizer's ownership checker exists for.  This pass
re-derives the schedule contract from the structure and checks the
plan against it:

* the active-row set and per-row counts match the structure;
* the group extents tile the flat fragment space exactly once
  (monotone offsets, consistent totals);
* the slot map is a within-bounds, order-preserving injection that
  packs each row's stored vectors contiguously from its first group
  slot (every pad slot is owned by *no* entry — the executor's
  zero-fill contract);
* the accumulation levels visit every group exactly once (SpMM), and
  the flat group->row map matches the group extents (SDDMM);
* the functional plans' permutation / expansion arrays reproduce the
  storage-order expansion.

``validate_plan`` returns human-readable finding strings;
:mod:`repro.sanitizer.plancheck` wraps them into ownership findings.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .functional import FunctionalSddmmPlan, FunctionalSpmmPlan, expand_vector_rows
from .layout import GroupLayout
from .sddmm import SddmmOctetPlan, SddmmWmmaPlan
from .spmm import SpmmOctetPlan, SpmmWmmaPlan

__all__ = ["validate_plan"]


def _layout_findings(lay: GroupLayout, row_nnz: np.ndarray, group: int) -> List[str]:
    out: List[str] = []
    if lay.group != group:
        out.append(f"group size {lay.group} != kernel group size {group}")
        return out
    expect_rows = np.flatnonzero(row_nnz)
    if not np.array_equal(lay.rows_act, expect_rows):
        out.append("active-row set does not match the structure's nonzero rows")
        return out
    if not np.array_equal(lay.counts, row_nnz[expect_rows]):
        out.append("per-row stored-vector counts do not match the structure")
        return out
    expect_groups = -(-lay.counts // group)
    if not np.array_equal(lay.groups, expect_groups):
        out.append("per-row group counts are not ceil(count / group)")
    if lay.offsets[0] != 0 or not np.array_equal(np.diff(lay.offsets), lay.groups):
        out.append("group offsets are not the exclusive cumsum of the group counts")
    if lay.num_groups != int(lay.offsets[-1]):
        out.append("total group count disagrees with the offsets")
    expect_slots = np.repeat(lay.offsets[:-1] * group, lay.counts) + (
        np.arange(int(lay.counts.sum()), dtype=np.int64)
        - np.repeat(np.concatenate(([0], np.cumsum(lay.counts)))[:-1], lay.counts)
    )
    if lay.slots.shape != expect_slots.shape:
        out.append("slot map size does not match the stored-vector count")
    elif not np.array_equal(lay.slots, expect_slots):
        out.append(
            "slot map does not pack each row contiguously from its first "
            "group slot (an entry owns a pad slot or two entries collide)"
        )
    return out


def _level_findings(levels, lay: GroupLayout) -> List[str]:
    out: List[str] = []
    gidx_all = (
        np.concatenate([g for _, g in levels])
        if levels
        else np.empty(0, dtype=np.int64)
    )
    if not np.array_equal(np.sort(gidx_all), np.arange(lay.num_groups)):
        out.append("accumulation levels do not visit every k-group exactly once")
    for depth, (sel, gidx) in enumerate(levels):
        if sel.size != gidx.size:
            out.append(f"level {depth}: sel/gidx length mismatch")
            break
        if sel.size and (sel.min() < 0 or sel.max() >= lay.rows_act.size):
            out.append(f"level {depth}: row selector out of range")
            break
        if not np.array_equal(gidx, lay.offsets[sel] + depth):
            out.append(f"level {depth}: gathered groups are not the rows' depth-{depth} groups")
            break
    return out


def _scalar_findings(plan, structure) -> List[str]:
    out: List[str] = []
    if plan.vector_length != structure.vector_length:
        out.append("vector length baked into the plan differs from the structure")
    if plan.num_vector_rows != structure.num_vector_rows:
        out.append("vector-row count baked into the plan differs from the structure")
    return out


def _kpad_findings(plan, step: int, k: Optional[int]) -> List[str]:
    if plan.k_pad % step:
        return [f"k_pad {plan.k_pad} is not a multiple of the {step}-deep k step"]
    if k is not None and plan.k_pad != -(-k // step) * step:
        return [f"k_pad {plan.k_pad} does not pad K={k} to the next multiple of {step}"]
    return []


def validate_plan(plan, structure, k: Optional[int] = None) -> List[str]:
    """Findings (empty when clean) for ``plan`` against ``structure``.

    ``k`` is the SDDMM inner dimension when known; the SpMM and
    functional plans ignore it.
    """
    row_nnz = structure.vector_row_nnz()
    if isinstance(plan, SpmmOctetPlan):
        return (
            _scalar_findings(plan, structure)
            + _layout_findings(plan.layout, row_nnz, 4)
            + _level_findings(plan.levels, plan.layout)
        )
    if isinstance(plan, SpmmWmmaPlan):
        return (
            _scalar_findings(plan, structure)
            + _layout_findings(plan.layout, row_nnz, 16)
            + _level_findings(plan.levels, plan.layout)
        )
    if isinstance(plan, (SddmmOctetPlan, SddmmWmmaPlan)):
        group, step = (8, 4) if isinstance(plan, SddmmOctetPlan) else (32, 16)
        row_map = plan.row_of_substep if isinstance(plan, SddmmOctetPlan) else plan.row_of_tile
        out = (
            _scalar_findings(plan, structure)
            + _layout_findings(plan.layout, row_nnz, group)
            + _kpad_findings(plan, step, k)
        )
        lay = plan.layout
        expect = np.repeat(np.arange(lay.rows_act.size, dtype=np.int64), lay.groups)
        if not np.array_equal(row_map, expect):
            out.append("flat group->row map does not match the group extents")
        return out
    if isinstance(plan, FunctionalSpmmPlan):
        out = []
        rows, cols = expand_vector_rows(structure)
        if plan.perm.shape != rows.shape or not np.array_equal(
            np.sort(plan.perm), np.arange(rows.size)
        ):
            out.append("perm is not a permutation of the expanded entries")
            return out
        sorted_rows = rows[plan.perm]
        if np.any(np.diff(sorted_rows) < 0):
            out.append("perm does not sort the expanded entries by scalar row")
        same_row = np.diff(sorted_rows) == 0
        if np.any(same_row & (np.diff(plan.perm) <= 0)):
            out.append("perm is not stable within a scalar row (storage order lost)")
        if not np.array_equal(plan.indices, cols[plan.perm]):
            out.append("CSR indices do not match the permuted expansion columns")
        counts = np.bincount(rows, minlength=structure.shape[0])
        indptr = np.zeros(structure.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if not np.array_equal(plan.indptr, indptr):
            out.append("CSR indptr does not match the expanded per-row counts")
        return out
    if isinstance(plan, FunctionalSddmmPlan):
        rows, cols = expand_vector_rows(structure)
        if not (np.array_equal(plan.rows, rows) and np.array_equal(plan.cols, cols)):
            return ["expanded (row, col) gather pairs do not match the structure"]
        return []
    return [f"unknown plan type {type(plan).__qualname__}"]
