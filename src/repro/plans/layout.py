"""Row-group layout shared by the compiled kernel schedules.

Every simulated tensor-core kernel walks a CVSE structure the same
way: the nonzeros of each vector row are padded up to whole *groups*
of a fixed size (4 vectors per ``mma.m8n8k4`` k-group, 8 output
columns per SDDMM sub-step, 16 vectors per ``wmma`` k-step, 32
columns per wmma SDDMM tile) and each group becomes one fragment of
a flat batch.  :func:`group_layout` flattens that walk once: it
assigns every stored vector its *slot* in the padded group space and
records the per-row group extents, from which the per-kernel
compilers derive their gather/scatter indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["GroupLayout", "group_layout", "accumulation_levels", "row_of_group"]


@dataclass(frozen=True)
class GroupLayout:
    """Padded group layout of a CVSE structure for one group size.

    ``slots`` is the heart of the plan: stored vector ``i`` (in
    storage order) lands at padded position ``slots[i]`` of the flat
    ``(num_groups * group)`` fragment space; the pad positions no
    stored vector owns stay zero-filled by the executor.
    """

    group: int                #: vectors per group (4 / 8 / 16 / 32)
    rows_act: np.ndarray      #: (R,) active vector rows, ascending
    counts: np.ndarray        #: (R,) stored vectors per active row
    groups: np.ndarray        #: (R,) ceil(counts / group)
    offsets: np.ndarray       #: (R+1,) exclusive cumsum of ``groups``
    slots: np.ndarray         #: (nnz,) padded slot of each stored vector
    num_groups: int           #: total groups across active rows


def group_layout(row_nnz: np.ndarray, group: int) -> GroupLayout:
    """Flatten the per-row group walk of a structure with ``row_nnz``.

    ``row_nnz`` is the stored-vector count of every vector row (zeros
    included — empty rows are dropped here, exactly as the interpreted
    walks ``continue`` past them).
    """
    row_nnz = np.asarray(row_nnz, dtype=np.int64)
    rows_act = np.flatnonzero(row_nnz)
    counts = row_nnz[rows_act]
    groups = -(-counts // group)  # ceil division
    offsets = np.zeros(rows_act.size + 1, dtype=np.int64)
    np.cumsum(groups, out=offsets[1:])
    starts = np.zeros(rows_act.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    within = np.arange(int(starts[-1]), dtype=np.int64) - np.repeat(starts[:-1], counts)
    slots = np.repeat(offsets[:-1] * group, counts) + within
    return GroupLayout(
        group=group,
        rows_act=rows_act,
        counts=counts,
        groups=groups,
        offsets=offsets,
        slots=slots,
        num_groups=int(offsets[-1]),
    )


def accumulation_levels(layout: GroupLayout) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Per-depth gather indices for serial group accumulation.

    Level ``d`` pairs ``(sel, gidx)``: the active-row positions whose
    row has more than ``d`` groups, and the flat index of each such
    row's ``d``-th group.  Accumulating ``acc[sel] += partial[gidx]``
    level by level reproduces the interpreted walk's serial in-row
    FP32 accumulation order exactly (including which rows add nothing
    at deeper levels — padding never contributes a spurious ``+0.0``,
    which would flip a ``-0.0`` accumulator and break bit parity).
    """
    depth = int(layout.groups.max()) if layout.groups.size else 0
    levels = []
    for d in range(depth):
        sel = np.flatnonzero(layout.groups > d)
        levels.append((sel, layout.offsets[sel] + d))
    return tuple(levels)


def row_of_group(layout: GroupLayout) -> np.ndarray:
    """Active-row position owning each flat group, in group order."""
    return np.repeat(np.arange(layout.rows_act.size, dtype=np.int64), layout.groups)
