"""Execution-plan codegen for the sparse kernel layer.

PyOP2-style split of *plan construction* from *plan execution*: the
simulated octet/wmma kernels and the shared functional paths used to
re-derive their tiling schedule (vector-row walk, k-group/octet
fragment gather, output-tile scatter) in interpreted Python on every
call.  This package compiles that schedule once per (kernel
fingerprint, structure signature) into flattened NumPy index arrays —
a *plan* — cached in the checksummed ``plan`` memo region, and
executes it with a handful of vectorised array ops and zero per-octet
Python control flow.

Contracts:

* **bit parity** — plan execution is bit-for-bit the interpreted
  ``*_reference`` twin it replaces (outputs via uint16 views, issue
  accounting totals), enforced by the parity tests and the sanitizer
  ownership pass (:mod:`repro.sanitizer.plancheck`);
* **schedule only** — plans hold index arrays derived from topology
  and tile config, never operand values, fault payloads, or spans;
  fault-injection sites and obs spans fire at execution time;
* **A/B switch** — ``REPRO_PLANS=0`` / :func:`set_enabled` routes all
  paths back to the interpreted references.
"""

from .core import cached_plan, enabled, plan_key, set_enabled
from .functional import (
    FunctionalSddmmPlan,
    FunctionalSpmmPlan,
    expand_vector_rows,
    functional_sddmm_plan,
    functional_spmm_plan,
)
from .layout import GroupLayout, accumulation_levels, group_layout, row_of_group
from .sddmm import (
    SddmmOctetPlan,
    SddmmWmmaPlan,
    execute_sddmm_octet,
    execute_sddmm_wmma,
    sddmm_octet_plan,
    sddmm_wmma_plan,
)
from .spmm import (
    SpmmOctetPlan,
    SpmmWmmaPlan,
    execute_spmm_octet,
    execute_spmm_wmma,
    spmm_octet_plan,
    spmm_wmma_plan,
)
from .validate import validate_plan

__all__ = [
    "enabled",
    "set_enabled",
    "plan_key",
    "cached_plan",
    "GroupLayout",
    "group_layout",
    "accumulation_levels",
    "row_of_group",
    "SpmmOctetPlan",
    "SpmmWmmaPlan",
    "spmm_octet_plan",
    "spmm_wmma_plan",
    "execute_spmm_octet",
    "execute_spmm_wmma",
    "SddmmOctetPlan",
    "SddmmWmmaPlan",
    "sddmm_octet_plan",
    "sddmm_wmma_plan",
    "execute_sddmm_octet",
    "execute_sddmm_wmma",
    "FunctionalSpmmPlan",
    "FunctionalSddmmPlan",
    "expand_vector_rows",
    "functional_spmm_plan",
    "functional_sddmm_plan",
    "validate_plan",
]
