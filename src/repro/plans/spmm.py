"""Compiled execution plans for the simulated SpMM kernels.

Each compiler flattens the per-row interpreted walk of its kernel's
``_execute_simulated_reference`` into index arrays once per
(kernel fingerprint, structure signature); the matching executor then
issues the whole structure as a handful of vectorised gathers, one
batched tensor-core call per output tile, and a masked level-by-level
accumulation that replays the reference's serial FP32 order — the
outputs and issue accounting are bit-for-bit those of the reference
(pinned by the parity tests).

Scatter discipline: SpMM outputs accumulate with ``+=`` into a
zero-initialised buffer, exactly like the references — assignment
would lose the ``+0.0 + (-0.0) = +0.0`` rounding of the add and break
uint16-view parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..hardware.tensor_core import TensorCoreStats, mma_m8n8k4_batched
from .core import cached_plan
from .layout import GroupLayout, accumulation_levels, group_layout

__all__ = [
    "SpmmOctetPlan",
    "SpmmWmmaPlan",
    "spmm_octet_plan",
    "spmm_wmma_plan",
    "execute_spmm_octet",
    "execute_spmm_wmma",
]


@dataclass(frozen=True)
class SpmmOctetPlan:
    """Flattened octet-tiling SpMM schedule (4-vector k-groups)."""

    vector_length: int
    num_vector_rows: int
    tile_n: int
    layout: GroupLayout
    #: per-depth (sel, gidx) gathers for serial k-group accumulation
    levels: Tuple[Tuple[np.ndarray, np.ndarray], ...]


@dataclass(frozen=True)
class SpmmWmmaPlan:
    """Flattened warp-tiling SpMM schedule (16-vector k-steps)."""

    vector_length: int
    num_vector_rows: int
    tile_n: int
    layout: GroupLayout
    levels: Tuple[Tuple[np.ndarray, np.ndarray], ...]


def _compile_spmm_octet(kern, a) -> SpmmOctetPlan:
    layout = group_layout(a.vector_row_nnz(), 4)
    return SpmmOctetPlan(
        vector_length=a.vector_length,
        num_vector_rows=a.num_vector_rows,
        tile_n=int(kern.TILE_N),
        layout=layout,
        levels=accumulation_levels(layout),
    )


def spmm_octet_plan(kern, a) -> SpmmOctetPlan:
    """Cached octet SpMM plan for ``kern`` on structure ``a``."""
    return cached_plan("spmm-octet", kern, a, (), lambda: _compile_spmm_octet(kern, a))


def _compile_spmm_wmma(kern, a) -> SpmmWmmaPlan:
    layout = group_layout(a.vector_row_nnz(), 16)
    return SpmmWmmaPlan(
        vector_length=a.vector_length,
        num_vector_rows=a.num_vector_rows,
        tile_n=int(kern.TILE_N),
        layout=layout,
        levels=accumulation_levels(layout),
    )


def spmm_wmma_plan(kern, a) -> SpmmWmmaPlan:
    """Cached wmma SpMM plan for ``kern`` on structure ``a``."""
    return cached_plan("spmm-wmma", kern, a, (), lambda: _compile_spmm_wmma(kern, a))


def execute_spmm_octet(
    plan: SpmmOctetPlan, a, b16: np.ndarray
) -> Tuple[np.ndarray, TensorCoreStats]:
    """Run an octet SpMM plan; returns the FP32 output and TCU stats.

    One :func:`mma_m8n8k4_batched` call per N tile covers every
    k-group of every row; the caller applies the fp16 rounding and
    the fault-injection site (plans carry schedule only — sites fire
    at execution time, in the kernel wrapper).
    """
    v = plan.vector_length
    m = plan.num_vector_rows * v
    n = b16.shape[1]
    tc = TensorCoreStats()
    out = np.zeros((m, n), dtype=np.float32)
    lay = plan.layout
    G = lay.num_groups
    if G == 0 or n == 0:
        return out, tc
    # switched-RHS fragments: values gathered once, reused per tile
    a_flat = np.zeros((G * 4, 8), dtype=np.float16)
    a_flat[lay.slots, :v] = a.values
    batch_a = np.repeat(a_flat.reshape(G, 4, 8), 8, axis=0)
    out3 = out.reshape(plan.num_vector_rows, v, n)
    R = lay.rows_act.size
    for n0 in range(0, n, plan.tile_n):
        n1 = min(n, n0 + plan.tile_n)
        # switched-LHS fragments: every k-group's B rows in one gather
        b_flat = np.zeros((G * 4, plan.tile_n), dtype=np.float16)
        b_flat[lay.slots, : n1 - n0] = b16[a.col_idx, n0:n1]
        batch_b = b_flat.reshape(G, 4, plan.tile_n).transpose(0, 2, 1).reshape(G * 8, 8, 4)
        partial = mma_m8n8k4_batched(batch_b, batch_a, stats=tc)
        partial = partial.reshape(G, plan.tile_n, 8)
        acc = np.zeros((R, plan.tile_n, 8), dtype=np.float32)
        for sel, gidx in plan.levels:  # serial k-group accumulation
            acc[sel] += partial[gidx]
        out3[lay.rows_act, :, n0:n1] += acc[:, : n1 - n0, :v].transpose(0, 2, 1)
    return out, tc


def execute_spmm_wmma(
    plan: SpmmWmmaPlan, a, b16: np.ndarray
) -> Tuple[np.ndarray, TensorCoreStats]:
    """Run a wmma SpMM plan; returns the FP32 output and TCU stats.

    The wmma.m8n32k16 decomposition is replayed flat: per N-tile half,
    one batched call issues every (k-step, octet, k-slice) fragment in
    the order :func:`~repro.hardware.tensor_core.wmma_m8n32k16` uses
    internally, and the (k-step, k-slice)-ordered masked accumulation
    reproduces its serial per-octet adds.
    """
    v = plan.vector_length
    m = plan.num_vector_rows * v
    n = b16.shape[1]
    tc = TensorCoreStats()
    out = np.zeros((m, n), dtype=np.float32)
    lay = plan.layout
    G = lay.num_groups
    if G == 0 or n == 0:
        return out, tc
    # Mat_a fragments: (G, j) -> (8, 4), j indexing the 4-deep k-slices
    v_flat = np.zeros((G * 16, 8), dtype=np.float16)
    v_flat[lay.slots, :v] = a.values
    a_steps = v_flat.reshape(G, 16, 8).transpose(0, 2, 1)              # (G, 8, 16)
    a_frags = a_steps.reshape(G, 8, 4, 4).transpose(0, 2, 1, 3)        # (G, 4, 8, 4)
    batch_a = np.tile(a_frags, (1, 4, 1, 1)).reshape(-1, 8, 4)         # (G*16, 8, 4)
    out3 = out.reshape(plan.num_vector_rows, v, n)
    R = lay.rows_act.size
    for n0 in range(0, n, plan.tile_n):
        n1 = min(n, n0 + plan.tile_n)
        b_flat = np.zeros((G * 16, plan.tile_n), dtype=np.float16)
        b_flat[lay.slots, : n1 - n0] = b16[a.col_idx, n0:n1]
        b3 = b_flat.reshape(G, 16, plan.tile_n)
        # accumulator indexed [row, half, octet, 8-row, 8-col]
        halves = plan.tile_n // 32
        acc = np.zeros((R, halves, 4, 8, 8), dtype=np.float32)
        for half in range(halves):
            sub = b3[:, :, half * 32 : (half + 1) * 32]
            # Mat_b fragments in the wmma-internal (octet, k-slice) order
            batch_b = (
                sub.reshape(G, 4, 4, 4, 8).transpose(0, 3, 1, 2, 4).reshape(-1, 4, 8)
            )
            partial = mma_m8n8k4_batched(batch_a, batch_b, stats=tc)
            partial = partial.reshape(G, 4, 4, 8, 8)                   # [g, octet, j, ...]
            for sel, gidx in plan.levels:  # serial k-steps, then k-slices
                for j in range(4):
                    acc[sel, half] += partial[gidx][:, :, j]
        acc_full = acc.transpose(0, 3, 1, 2, 4).reshape(R, 8, plan.tile_n)
        out3[lay.rows_act, :, n0:n1] += acc_full[:, :v, : n1 - n0]
    return out, tc
