"""SDC campaigns: measure the sanitizer's detection coverage.

A campaign sweeps seeded injections over the declared sites
(injections x kernel x checker) and scores each: did the checker that
owns the corrupted artifact actually report a finding?  Coverage is
aggregated per checker and compared against the documented floors
(``docs/ROBUSTNESS.md``), so a sanitizer regression that silently
stops detecting corruption fails ``repro.cli faults`` the same way a
dirty kernel fails ``repro.cli sanitize``.

Two campaigns are registered:

* ``smoke``   — only the *guaranteed-detection* fault classes (bit
  flips caught by the bit-exact ownership differential, out-of-extent
  sectors, unphysical counters, memo blob corruption).  Floor: 100%
  per checker; runs in CI.
* ``default`` — adds the *subtle* classes (low-bit sector flips that
  stay in bounds, few-percent counter scalings, tolerance-checked
  functional outputs), where escapes are expected and the measured
  floors document how much silent corruption the sanitizer family
  provably catches.
* ``serving-overload`` — the serving layer's fault sites (worker
  stalls, latency spikes, corrupted batch results) scored for
  detection *and* recovery under seeded overload: corruption never
  served, hedges recover stalled batches, SLOs hold through spikes,
  degradation sheds with typed outcomes and a replayable ledger.

Determinism: every injection derives its seed from the campaign seed,
the target index and the repetition index; corruption choices all flow
through ``np.random.default_rng``.  Two runs with the same seed yield
identical records — pinned by ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..kernels.functional import spmm_functional
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..perfmodel import memo, sharedmemo, trace
from ..perfmodel.profiler import format_table
from ..sanitizer import memcheck, racecheck, statcheck
from .injector import FaultInjector

__all__ = [
    "InjectionRecord",
    "CampaignResult",
    "CampaignSpec",
    "CAMPAIGNS",
    "run_campaign",
]


# --------------------------------------------------------------------- #
# seeded problems (small: a campaign runs hundreds of kernel executions)
# --------------------------------------------------------------------- #
def _spmm_problem(seed: int, v: int = 4, m: int = 32, k: int = 64, n: int = 128):
    rng = np.random.default_rng(seed)
    keep = rng.random((m // v, k)) < 0.4
    keep[:, 0] = True  # every vector row live: no all-zero output rows
    d = (rng.uniform(-1, 1, (m // v, v, k)) * keep[:, None, :]).reshape(m, k)
    a = ColumnVectorSparseMatrix.from_dense(d.astype(np.float16), v)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    return a, b, n


def _sddmm_problem(seed: int, v: int = 4, m: int = 32, k: int = 64, n: int = 96):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (m, k)).astype(np.float16)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float16)
    grp = rng.random((m // v, n)) < 0.3
    grp[:, 0] = True
    mask = ColumnVectorSparseMatrix.mask_from_dense(np.repeat(grp, v, axis=0), v)
    return a, b, mask


# --------------------------------------------------------------------- #
# per-target runners: (seed, skip) -> (detected, detail)
# --------------------------------------------------------------------- #
def _spmm_ownership(seed: int, skip: int) -> Tuple[bool, str]:
    a, b, _n = _spmm_problem(seed)
    kern = OctetSpmmKernel(simulate=True)
    inj = FaultInjector("spmm_octet.acc", "bitflip16", seed, skip=skip)
    with inj.armed():
        findings, _ = racecheck.check_spmm_octet_ownership(kern, a, b)
    return inj.fired and bool(findings), inj.detail


def _sddmm_ownership(seed: int, skip: int) -> Tuple[bool, str]:
    a, b, mask = _sddmm_problem(seed)
    kern = OctetSddmmKernel(variant="reg", simulate=True)
    inj = FaultInjector("sddmm_octet.acc", "bitflip16", seed, skip=skip)
    with inj.armed():
        findings, _ = racecheck.check_sddmm_octet_ownership(kern, a, b, mask)
    return inj.fired and bool(findings), inj.detail


def _functional_spmm(seed: int, skip: int) -> Tuple[bool, str]:
    """Tolerance-based differential over the functional SpMM: a flip in
    a low mantissa bit hides inside fp16 noise — the measured escape
    rate of checking with an epsilon instead of bit-exactly."""
    a, b, _n = _spmm_problem(seed)
    clean = np.asarray(spmm_functional(a, b), dtype=np.float32)
    inj = FaultInjector("functional.spmm.out", "bitflip16", seed, skip=skip)
    with inj.armed():
        dirty = np.asarray(spmm_functional(a, b), dtype=np.float32)
    with np.errstate(invalid="ignore"):
        detected = not np.allclose(dirty, clean, rtol=2e-2, atol=2e-3, equal_nan=False)
    return inj.fired and detected, inj.detail


def _trace_memcheck(kind: str):
    def runner(seed: int, skip: int) -> Tuple[bool, str]:
        a, _b, n = _spmm_problem(seed)
        amap = memcheck.spmm_octet_address_map(a, n)
        inj = FaultInjector("trace.octet_spmm.ops", kind, seed, skip=skip)
        with inj.armed():
            findings, _ = memcheck.check_stream(trace.octet_spmm_cta_sectors(a, n), amap)
        return inj.fired and bool(findings), inj.detail

    return runner


def _stats_statcheck(kind: str):
    def runner(seed: int, skip: int) -> Tuple[bool, str]:
        a, _b, n = _spmm_problem(seed)
        kern = OctetSpmmKernel()
        inj = FaultInjector("stats.final", kind, seed, skip=skip)
        with inj.armed():
            stats = kern.stats_for(a, n)
        findings, _ = statcheck.check_stats(stats, spec=kern.spec)
        return inj.fired and bool(findings), inj.detail

    return runner


def _memo_integrity(seed: int, skip: int) -> Tuple[bool, str]:
    """Corrupt a checksummed memo blob and require the store to (a)
    notice and (b) serve the recomputed — bit-identical — stats, never
    the corrupt entry."""
    a, _b, n = _spmm_problem(seed)
    kern = OctetSpmmKernel()
    rng = np.random.default_rng(seed)
    memo.set_enabled(True)
    memo.set_checksum(True)
    state = memo.snapshot()  # noqa: F841 — forces region init before clear
    memo.clear()
    try:
        clean = kern.stats_for(a, n)
        ref_sig = memo.stats_signature(clean)
        before = memo.integrity_failures()
        flip = int(rng.integers(200))
        if not memo.tamper_entry("stats", index=0, flip_byte=flip):
            return False, "tamper_entry found no blob entry"
        served = kern.stats_for(a, n)
        caught = memo.integrity_failures() - before == 1
        never_served = memo.stats_signature(served) == ref_sig
        return caught and never_served, f"memo blob byte {flip} flipped; caught={caught}"
    finally:
        memo.set_enabled(None)
        memo.set_checksum(None)
        memo.clear()


def _shared_integrity(seed: int, skip: int) -> Tuple[bool, str]:
    """Corrupt a shared-tier segment record on disk and require the
    cross-process store to (a) fail the blob checksum on the next
    lookup, (b) fall through to a recompute, and (c) serve the
    bit-identical recomputed stats — the corrupt bytes must never
    reach a caller."""
    import shutil
    import tempfile

    a, _b, n = _spmm_problem(seed)
    kern = OctetSpmmKernel()
    rng = np.random.default_rng(seed)
    tmp = tempfile.mkdtemp(prefix="repro-sharedmemo-fault-")
    memo.set_enabled(True)
    memo.set_checksum(True)
    memo.clear()
    sharedmemo.reset()
    sharedmemo.set_dir(tmp)
    sharedmemo.set_enabled(True)
    try:
        clean = kern.stats_for(a, n)
        ref_sig = memo.stats_signature(clean)
        flip = int(rng.integers(200))
        if not sharedmemo.tamper_entry("stats", index=0, flip_byte=flip):
            return False, "tamper_entry found no shared entry"
        # drop the local tier so the next call must go through the
        # shared segment (whose bytes no longer match their digest)
        memo.clear()
        before = sharedmemo.integrity_failures()
        served = kern.stats_for(a, n)
        caught = sharedmemo.integrity_failures() - before == 1
        never_served = memo.stats_signature(served) == ref_sig
        return (caught and never_served,
                f"shared segment byte {flip} flipped; caught={caught}")
    finally:
        memo.set_enabled(None)
        memo.set_checksum(None)
        memo.clear()
        sharedmemo.reset()
        sharedmemo.set_enabled(None)
        sharedmemo.set_dir(None)
        shutil.rmtree(tmp, ignore_errors=True)


# --------------------------------------------------------------------- #
# serving-layer runners: score detection *and* recovery of the serving
# fault sites (serving.worker.stall / serving.worker.latency /
# serving.batch.result) under seeded overload.  The serving package is
# imported lazily: campaigns that never touch it stay light.
# --------------------------------------------------------------------- #
def _serving_corrupt_detect(seed: int, skip: int) -> Tuple[bool, str]:
    """Inject corrupted batch results (serving.batch.result) at a
    corruption-dense rate and require detection, retry, and that
    nothing corrupt is ever served to a caller."""
    from ..serving import report, simulate
    from ..serving.workload import FaultProfile, Scenario, get_scenario

    base = get_scenario("overload")
    sc = Scenario("corrupt-detect", "campaign: dense TCU result corruption",
                  base.tenants, load=base.load,
                  faults=FaultProfile(corrupt_prob=0.25))
    res = simulate(sc, 4000, seed, verify=True)
    doc = report(res)
    injected = res.counters["faults_injected"]
    detected = res.counters["faults_detected"]
    served = doc["outcomes"]["corrupt-served"]
    ok = detected >= 1 and served == 0
    return ok, (f"corruptions detected={detected:.0f} of injected faults="
                f"{injected:.0f}; corrupt-served={served}")


def _serving_stall_recover(seed: int, skip: int) -> Tuple[bool, str]:
    """Stall workers mid-batch (serving.worker.stall) at moderate load
    and require hedged re-dispatch to recover: hedges fire and the
    cluster keeps completing the bulk of admitted requests."""
    from ..serving import report, simulate
    from ..serving.workload import FaultProfile, Scenario, get_scenario

    base = get_scenario("steady")
    sc = Scenario("stall-recover", "campaign: heavy stalls at 0.5x load",
                  base.tenants, load=0.5,
                  faults=FaultProfile(stall_rate_per_s=30.0,
                                      stall_us=80_000.0))
    res = simulate(sc, 6000, seed)
    doc = report(res)
    stalls = res.counters["stalls_applied"]
    hedges = res.counters["hedges"]
    completed = doc["outcomes"]["completed"]
    frac = completed / doc["requests"]
    ok = stalls >= 1 and hedges >= 1 and frac >= 0.5
    return ok, (f"stalls={stalls:.0f} hedges={hedges:.0f} "
                f"completed={completed}/{doc['requests']}")


def _serving_spike_recover(seed: int, skip: int) -> Tuple[bool, str]:
    """Latency-spike windows (serving.worker.latency) at a spike-dense
    rate: the guardrail must keep every tenant's admitted p99 inside
    its SLO while spiked executions actually happened."""
    from ..serving import report, simulate
    from ..serving.workload import FaultProfile, Scenario, get_scenario

    base = get_scenario("steady")
    sc = Scenario("spike-recover", "campaign: dense latency spikes at 0.6x",
                  base.tenants, load=0.6,
                  faults=FaultProfile(spike_rate_per_s=25.0,
                                      spike_us=12_000.0, spike_factor=2.2))
    res = simulate(sc, 6000, seed)
    doc = report(res)
    spiked = res.counters["spiked_execs"]
    worst = max(r["p99_slo_ratio"] for r in doc["per_tenant"])
    ok = spiked >= 1 and worst <= 1.0
    return ok, f"spiked_execs={spiked:.0f} worst p99/slo={worst:.3f}"


def _serving_overload_shed(seed: int, skip: int) -> Tuple[bool, str]:
    """2.2x offered load: degradation must be graceful — typed sheds,
    a complete ledger (every request terminal), admitted p99 within
    SLO, goodput bounded below by the capacity share — and the ledger
    must replay bit-identically under the same seed."""
    from ..serving import report, simulate
    from ..serving.workload import get_scenario

    sc = get_scenario("overload")
    res = simulate(sc, 4000, seed)
    doc = report(res)
    shed = (doc["outcomes"]["shed-admission"] + doc["outcomes"]["shed-queue"])
    worst = max(r["p99_slo_ratio"] for r in doc["per_tenant"])
    accounted = sum(doc["outcomes"].values()) == doc["requests"]
    no_pending = doc["outcomes"]["pending"] == 0
    bounded = doc["goodput_fraction"] >= 0.15
    replay = simulate(sc, 4000, seed).ledger_digest() == res.ledger_digest()
    ok = (shed >= 1 and accounted and no_pending and worst <= 1.0
          and bounded and replay)
    return ok, (f"shed={shed} worst p99/slo={worst:.3f} goodput="
                f"{doc['goodput_fraction']:.3f} replay={replay}")


# --------------------------------------------------------------------- #
# campaign registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Target:
    name: str
    site: str
    kind: str
    checker: str          # ownership | memcheck | statcheck | memocheck
    runner: Callable[[int, int], Tuple[bool, str]]
    subtle: bool = False  # expected-escape class: excluded from smoke
    spread: bool = False  # site visited many times: spread skip over reps


_TARGETS: Tuple[Target, ...] = (
    Target("spmm-acc-bitflip", "spmm_octet.acc", "bitflip16", "ownership",
           _spmm_ownership),
    Target("sddmm-acc-bitflip", "sddmm_octet.acc", "bitflip16", "ownership",
           _sddmm_ownership),
    Target("func-spmm-bitflip", "functional.spmm.out", "bitflip16", "ownership",
           _functional_spmm, subtle=True),
    Target("trace-sector-oob", "trace.octet_spmm.ops", "sector", "memcheck",
           _trace_memcheck("sector"), spread=True),
    Target("trace-sector-low", "trace.octet_spmm.ops", "sector-low", "memcheck",
           _trace_memcheck("sector-low"), subtle=True, spread=True),
    Target("stats-negate", "stats.final", "stats-negate", "statcheck",
           _stats_statcheck("stats-negate")),
    Target("stats-roofline", "stats.final", "stats-roofline", "statcheck",
           _stats_statcheck("stats-roofline")),
    Target("stats-subtle", "stats.final", "stats-subtle", "statcheck",
           _stats_statcheck("stats-subtle"), subtle=True),
    Target("memo-blob-corrupt", "memo[stats]", "byteflip", "memocheck",
           _memo_integrity),
    Target("sharedmemo-segment-corrupt", "sharedmemo[stats]", "byteflip",
           "memocheck", _shared_integrity),
)

#: serving-layer targets: one per declared serving fault site, plus
#: the end-to-end overload/degradation gate (its own campaign — the
#: kernel campaigns stay unchanged)
_SERVING_TARGETS: Tuple[Target, ...] = (
    Target("serving-corrupt-detect", "serving.batch.result", "corrupt",
           "serving", _serving_corrupt_detect),
    Target("serving-stall-recover", "serving.worker.stall", "stall",
           "serving", _serving_stall_recover),
    Target("serving-spike-recover", "serving.worker.latency", "spike",
           "serving", _serving_spike_recover),
    Target("serving-overload-shed", "serving.*", "overload",
           "serving", _serving_overload_shed),
)


@dataclass(frozen=True)
class CampaignSpec:
    name: str
    targets: Tuple[Target, ...]
    injections: int                  # repetitions per target
    floors: Dict[str, float]         # checker -> required coverage


#: documented coverage floors; the default-campaign numbers are
#: measured (see docs/ROBUSTNESS.md) and set one escape below the
#: observed coverage so a real detector regression trips them.
CAMPAIGNS: Dict[str, CampaignSpec] = {
    "smoke": CampaignSpec(
        name="smoke",
        targets=tuple(t for t in _TARGETS if not t.subtle),
        injections=2,
        floors={"ownership": 1.0, "memcheck": 1.0, "statcheck": 1.0,
                "memocheck": 1.0},
    ),
    "default": CampaignSpec(
        name="default",
        targets=_TARGETS,
        injections=6,
        floors={"ownership": 0.75, "memcheck": 0.50, "statcheck": 0.65,
                "memocheck": 1.0},
    ),
    "serving-overload": CampaignSpec(
        name="serving-overload",
        targets=_SERVING_TARGETS,
        injections=2,
        floors={"serving": 1.0},
    ),
}


@dataclass
class InjectionRecord:
    target: str
    site: str
    kind: str
    checker: str
    seed: int
    detected: bool
    detail: str


@dataclass
class CampaignResult:
    name: str
    records: List[InjectionRecord] = field(default_factory=list)
    floors: Dict[str, float] = field(default_factory=dict)

    def coverage(self) -> Dict[str, Tuple[int, int]]:
        """``{checker: (detected, injected)}``."""
        cov: Dict[str, List[int]] = {}
        for r in self.records:
            d, t = cov.setdefault(r.checker, [0, 0])
            cov[r.checker] = [d + (1 if r.detected else 0), t + 1]
        return {k: (v[0], v[1]) for k, v in sorted(cov.items())}

    @property
    def passed(self) -> bool:
        cov = self.coverage()
        for checker, floor in self.floors.items():
            detected, total = cov.get(checker, (0, 0))
            if total == 0 or detected / total < floor:
                return False
        return True

    def to_text(self, verbose: bool = False) -> str:
        lines = [f"== fault-injection campaign: {self.name} "
                 f"({len(self.records)} injections) =="]
        per_target: Dict[str, List[InjectionRecord]] = {}
        for r in self.records:
            per_target.setdefault(r.target, []).append(r)
        rows = []
        for target, recs in per_target.items():
            det = sum(r.detected for r in recs)
            rows.append({
                "Target": target,
                "Site": recs[0].site,
                "Kind": recs[0].kind,
                "Checker": recs[0].checker,
                "Detected": f"{det}/{len(recs)}",
            })
        lines.append(format_table(rows))
        lines.append("")
        cov_rows = []
        for checker, (det, tot) in self.coverage().items():
            floor = self.floors.get(checker, 0.0)
            rate = det / tot if tot else 0.0
            cov_rows.append({
                "Checker": checker,
                "Coverage": f"{100.0 * rate:.0f}% ({det}/{tot})",
                "Floor": f"{100.0 * floor:.0f}%",
                "Verdict": "ok" if rate >= floor else "BELOW FLOOR",
            })
        lines.append(format_table(cov_rows))
        if verbose:
            lines.append("")
            for r in self.records:
                mark = "DET " if r.detected else "esc "
                lines.append(f"  {mark} {r.target:20s} seed={r.seed} {r.detail}")
        return "\n".join(lines)


def run_campaign(name: str = "default", seed: int = 1234) -> CampaignResult:
    """Run the named campaign; raises :class:`ValueError` (listing the
    valid choices) for unknown names, matching the CLI convention."""
    spec = CAMPAIGNS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown campaign: {name!r}; valid choices: {sorted(CAMPAIGNS)}"
        )
    result = CampaignResult(name=spec.name, floors=dict(spec.floors))
    with obs_tracing.span("faults.campaign", campaign=spec.name, seed=seed) as sp:
        for t_i, target in enumerate(spec.targets):
            for rep in range(spec.injections):
                inj_seed = seed + 1009 * t_i + rep
                skip = rep if target.spread else 0
                detected, detail = target.runner(inj_seed, skip)
                result.records.append(InjectionRecord(
                    target=target.name, site=target.site, kind=target.kind,
                    checker=target.checker, seed=inj_seed,
                    detected=detected, detail=detail,
                ))
        sp.set(injections=len(result.records),
               detected=sum(r.detected for r in result.records))
    if obs_metrics.enabled():
        obs_metrics.counter_add("faults.injections", len(result.records))
        obs_metrics.counter_add("faults.detected",
                                sum(r.detected for r in result.records))
    return result
