"""Seeded, single-shot fault injector over declared kernel sites.

The simulated kernels call :func:`site` at the points where a real GPU
could silently corrupt state — accumulator writebacks, sector-address
generation, stats accounting.  With no injector armed the call is a
``None`` check and a return (the hot paths stay hot); with one armed,
the first matching visit replaces the payload with a corrupted *copy*
(inputs are never mutated — the kernels' no-input-mutation contract
lint also covers these sites) and the injector records what it did.

Determinism: every corruption choice is drawn from
``np.random.default_rng(seed)``; the same ``(site, kind, seed)`` always
flips the same bit of the same element, so campaigns are replayable
finding-for-finding.

Declared sites (see ``docs/ROBUSTNESS.md`` for the catalogue):

=========================  ====================================  ==============
site                       payload                               kinds
=========================  ====================================  ==============
``spmm_octet.acc``         fp16 output tile of the simulated     ``bitflip16``
                           octet SpMM
``sddmm_octet.acc``        fp16 value vectors of the simulated   ``bitflip16``
                           octet SDDMM
``functional.spmm.out``    fp16 output of the functional SpMM    ``bitflip16``
``functional.sddmm.out``   fp16 values of the functional SDDMM   ``bitflip16``
``trace.octet_spmm.ops``   one CTA's sector-id arrays            ``sector``
``stats.final``            a finished ``KernelStats``            ``stats-*``
=========================  ====================================  ==============

(The memo store is corrupted through
:func:`repro.perfmodel.memo.tamper_entry`, not a site: its integrity
layer checksums stored bytes, so the fault lives below the object
surface these sites expose.)
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = ["site", "active", "FaultInjector", "FAULT_KINDS"]

#: the corruption models the injector knows how to apply
FAULT_KINDS = (
    "bitflip16",     # flip one bit of one element of a float payload
    "sector",        # flip a high bit of one sector id (lands out of extent)
    "sector-low",    # flip a low bit of one sector id (stays plausible)
    "stats-negate",  # drive one stats counter negative (unphysical)
    "stats-roofline",# inflate claimed FLOPs 64x past the instruction mix
    "stats-subtle",  # scale one traffic counter by a few percent
)

_ACTIVE: Optional["FaultInjector"] = None


def site(name: str, payload: Any) -> Any:
    """Declared fault-injection site: returns ``payload`` untouched
    unless an armed injector targets ``name`` (then a corrupted copy)."""
    if _ACTIVE is None:
        return payload
    return _ACTIVE._visit(name, payload)


def active() -> bool:
    """Whether an injector is currently armed."""
    return _ACTIVE is not None


#: KernelStats scalar counters eligible for stats faults, as
#: (sub-object attr or None, field) paths
_STATS_PATHS: Tuple[Tuple[Optional[str], str], ...] = (
    ("global_mem", "load_sectors"),
    ("global_mem", "bytes_l2_to_l1"),
    ("global_mem", "bytes_dram_to_l2"),
    ("shared_mem", "load_requests"),
    (None, "flops"),
    (None, "ilp"),
    (None, "work_imbalance"),
)


class FaultInjector:
    """Single-shot corruption of one declared site.

    ``skip`` passes over the first N matching visits before firing, so
    a campaign can spread injections across a kernel's CTAs/tiles
    instead of always hitting the first one.
    """

    def __init__(self, target_site: str, kind: str, seed: int, skip: int = 0) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        self.target_site = target_site
        self.kind = kind
        self.seed = seed
        self.skip = skip
        self.rng = np.random.default_rng(seed)
        self.fired = False
        self.visits = 0          # matching visits seen (fired or not)
        self.detail = ""         # human-readable record of the corruption

    @contextmanager
    def armed(self):
        """Arm this injector for the duration of the block (one at a
        time — nesting is a usage bug and raises)."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a FaultInjector is already armed")
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = None

    # ------------------------------------------------------------- #
    def _visit(self, name: str, payload: Any) -> Any:
        if self.fired or name != self.target_site:
            return payload
        self.visits += 1
        if self.visits <= self.skip:
            return payload
        corrupted, applied = self._corrupt(payload)
        if applied:
            self.fired = True
            return corrupted
        return payload

    def _corrupt(self, payload: Any) -> Tuple[Any, bool]:
        if self.kind == "bitflip16":
            return self._flip_float(payload)
        if self.kind in ("sector", "sector-low"):
            return self._flip_sector(payload)
        return self._perturb_stats(payload)

    # -- float payloads ------------------------------------------- #
    def _flip_float(self, arr: np.ndarray) -> Tuple[np.ndarray, bool]:
        arr = np.asarray(arr)
        if arr.size == 0 or arr.dtype.kind != "f":
            return arr, False
        out = arr.copy()
        bits = 8 * out.dtype.itemsize
        view = out.view(f"u{out.dtype.itemsize}").reshape(-1)
        idx = int(self.rng.integers(view.size))
        bit = int(self.rng.integers(bits))
        # a sign flip of +/-0.0 is architecturally masked (no checker
        # can or should see it) — redraw; bounded and seed-deterministic
        for _ in range(16):
            if not (bit == bits - 1 and view[idx] in (0, 1 << (bits - 1))):
                break
            idx = int(self.rng.integers(view.size))
            bit = int(self.rng.integers(bits))
        view[idx] ^= view.dtype.type(1 << bit)
        self.detail = f"bitflip16: elem {idx}, bit {bit} of {arr.dtype.name}[{arr.size}]"
        return out, True

    # -- sector-id payloads --------------------------------------- #
    def _flip_sector(self, ops: List[np.ndarray]) -> Tuple[List[np.ndarray], bool]:
        nonempty = [i for i, op in enumerate(ops) if np.asarray(op).size]
        if not nonempty:
            return ops, False
        out = [np.array(op, copy=True) for op in ops]
        oi = nonempty[int(self.rng.integers(len(nonempty)))]
        ei = int(self.rng.integers(out[oi].size))
        if self.kind == "sector":
            # a high bit: the sector lands megabytes outside any operand
            bit = 16 + int(self.rng.integers(8))
        else:
            # a low bit: the sector stays plausible but breaks the
            # LDG.128 whole-transaction shape (when the geometry has it)
            bit = int(self.rng.integers(4))
        out[oi][ei] = int(out[oi][ei]) ^ (1 << bit)
        self.detail = f"{self.kind}: op {oi}, elem {ei}, bit {bit}"
        return out, True

    # -- KernelStats payloads ------------------------------------- #
    def _perturb_stats(self, stats: Any) -> Tuple[Any, bool]:
        st = copy.deepcopy(stats)
        if self.kind == "stats-roofline":
            if float(st.flops) <= 0:
                return stats, False
            st.flops = float(st.flops) * 64.0
            self.detail = "stats-roofline: flops x64"
            return st, True
        sub_name, field = _STATS_PATHS[int(self.rng.integers(len(_STATS_PATHS)))]
        obj = getattr(st, sub_name) if sub_name else st
        value = float(getattr(obj, field))
        if self.kind == "stats-negate":
            setattr(obj, field, -abs(value) - 1.0)
            self.detail = f"stats-negate: {sub_name or 'stats'}.{field} -> {getattr(obj, field)}"
        else:  # stats-subtle
            factor = 1.0 + float(self.rng.integers(2, 9)) / 100.0
            setattr(obj, field, value * factor)
            self.detail = f"stats-subtle: {sub_name or 'stats'}.{field} x{factor:.2f}"
        return st, True
