"""Deterministic fault injection for the simulated hardware.

The sanitizer (PR 3) proves the kernels are clean; this package proves
the sanitizer would *notice* if they weren't.  :mod:`injector` arms a
seeded single-shot corruptor over declared sites in the functional
kernels, trace generators, stats pipeline and memo store;
:mod:`campaign` sweeps injections across (site x kind x checker) and
measures detection coverage — the ``repro.cli faults`` subcommand.

Only the injector is imported eagerly: the kernels themselves import
:func:`site`, so pulling the campaign (which imports the kernels) in
at package-import time would be circular.  The campaign surface is
re-exported lazily.
"""

from .injector import FaultInjector, active, site

__all__ = [
    "FaultInjector",
    "site",
    "active",
    "run_campaign",
    "CampaignResult",
    "InjectionRecord",
    "CAMPAIGNS",
]

_CAMPAIGN_NAMES = {"run_campaign", "CampaignResult", "InjectionRecord", "CAMPAIGNS"}


def __getattr__(name):
    if name in _CAMPAIGN_NAMES:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
