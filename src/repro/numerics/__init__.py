"""Reduced-precision numerics analysis (the §3.1 accumulation argument)."""

from .accumulation import AccumulationError, dot_fp16, dot_fp32, dot_tcu, error_study

__all__ = ["AccumulationError", "dot_fp16", "dot_fp32", "dot_tcu", "error_study"]
