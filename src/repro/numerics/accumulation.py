"""Accumulation-error analysis for reduced-precision dot products.

§3.1 observes that Sputnik "uses the FPU and additional instructions to
convert the result to single precision to reduce accumulation error",
and every tensor-core path in the paper is ``...F32.F32`` — fp16
operands, fp32 accumulation.  This module quantifies *why*: it
implements the three accumulation strategies the kernels embody and
measures their error against an fp64 reference,

* :func:`dot_fp16` — naive fp16 running sum (what half-precision FMA
  without conversions would do): error grows ~linearly in K and the
  sum saturates outright near 65504;
* :func:`dot_fp32` — fp16 products accumulated in fp32 (Sputnik's
  HMUL + FADD-f32 path);
* :func:`dot_tcu` — the HMMA schedule: exact fp32 4-term dot units
  chained in fp32 (one per ``mma.m8n8k4`` k-slice).

Used by ``tests/test_numerics.py`` to pin the ordering
``err(fp16) >> err(fp32) ~= err(tcu)`` and by the accuracy discussion
in the Table 4 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "dot_fp16",
    "dot_fp32",
    "dot_tcu",
    "AccumulationError",
    "error_study",
]


def dot_fp16(a: np.ndarray, b: np.ndarray) -> float:
    """Sequential fp16 multiply + fp16 running sum."""
    a16 = np.asarray(a, dtype=np.float16)
    b16 = np.asarray(b, dtype=np.float16)
    acc = np.float16(0.0)
    for x, y in zip(a16, b16):
        acc = np.float16(acc + np.float16(x * y))
    return float(acc)


def dot_fp32(a: np.ndarray, b: np.ndarray) -> float:
    """fp16 products (exact in fp32) accumulated sequentially in fp32."""
    a32 = np.asarray(a, dtype=np.float16).astype(np.float32)
    b32 = np.asarray(b, dtype=np.float16).astype(np.float32)
    acc = np.float32(0.0)
    for x, y in zip(a32, b32):
        acc = np.float32(acc + np.float32(x * y))
    return float(acc)


def dot_tcu(a: np.ndarray, b: np.ndarray, unit: int = 4) -> float:
    """The HMMA schedule: exact ``unit``-wide dot products, fp32 chain.

    Volta's tensor core computes each 4-term inner product with full
    precision before the single fp32 add into the accumulator, so the
    rounding count per output is K/4 instead of K.
    """
    a32 = np.asarray(a, dtype=np.float16).astype(np.float64)
    b32 = np.asarray(b, dtype=np.float16).astype(np.float64)
    k = a32.size
    acc = np.float32(0.0)
    for i in range(0, k, unit):
        partial = np.float32(np.dot(a32[i : i + unit], b32[i : i + unit]))
        acc = np.float32(acc + partial)
    return float(acc)


@dataclass
class AccumulationError:
    """Relative errors of the three strategies at one dot length."""

    k: int
    err_fp16: float
    err_fp32: float
    err_tcu: float

    def as_row(self) -> Dict[str, object]:
        return {
            "K": self.k,
            "fp16 accumulate": f"{self.err_fp16:.2e}",
            "fp32 accumulate": f"{self.err_fp32:.2e}",
            "tcu (4-wide)": f"{self.err_tcu:.2e}",
        }


def error_study(
    ks: Sequence[int] = (64, 256, 1024, 4096),
    trials: int = 16,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
) -> List[AccumulationError]:
    """Mean relative error vs an fp64 reference, per strategy and K."""
    rng = rng or np.random.default_rng(0)
    out: List[AccumulationError] = []
    for k in ks:
        errs = np.zeros(3)
        for _ in range(trials):
            a = (rng.uniform(0.1, 1.0, k) * scale).astype(np.float16)
            b = rng.uniform(0.1, 1.0, k).astype(np.float16)
            ref = float(np.dot(a.astype(np.float64), b.astype(np.float64)))
            for i, fn in enumerate((dot_fp16, dot_fp32, dot_tcu)):
                errs[i] += abs(fn(a, b) - ref) / abs(ref)
        errs /= trials
        out.append(AccumulationError(k, *errs))
    return out
