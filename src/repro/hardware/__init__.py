"""Simulated Volta-class GPU substrate.

The paper's kernels are SASS-level CUDA; this package substitutes the
hardware with a functional + performance model:

* :mod:`~repro.hardware.config` — the device description (V100);
* :mod:`~repro.hardware.thread_hierarchy` — grid/CTA/warp/group/octet
  arithmetic (paper §2.1);
* :mod:`~repro.hardware.memory` — coalescing, sectors, 128B transactions;
* :mod:`~repro.hardware.cache` — L1/L2 sector-cache simulator;
* :mod:`~repro.hardware.shared_memory` — banked shared memory;
* :mod:`~repro.hardware.register_file` — occupancy calculator;
* :mod:`~repro.hardware.icache` — L0 instruction-cache stall model;
* :mod:`~repro.hardware.instructions` — warp-level instruction mixes;
* :mod:`~repro.hardware.tensor_core` — functional HMMA.884 / WMMA model
  including the proposed SWITCH extension (paper Fig. 15).
"""

from .config import AMPERE_A100, GPUSpec, VOLTA_V100, default_spec
from .thread_hierarchy import (
    LaunchConfig,
    ceil_div,
    group_lanes,
    is_high_group,
    lane_to_group,
    lane_to_octet,
    octet_lanes,
)
from .memory import AccessSummary, WarpAccess, coalesce, ldg_width, sectors_touched, transactions_128b
from .cache import CacheHierarchy, CacheStats, SectorCache, VectorSectorCache
from .shared_memory import SharedMemoryModel, SharedMemoryStats, bank_conflicts
from .register_file import KernelResources, Occupancy, compute_occupancy
from .icache import ICacheModel, icache_stall_fraction
from .instructions import InstrClass, InstructionMix, PIPE_OF
from .work_distributor import ScheduleResult, simulate_schedule
from .tensor_core import (
    OctetFragments,
    TensorCoreStats,
    hmma_step,
    mma_m8n8k4,
    wmma_m8n32k16,
)

__all__ = [
    "AMPERE_A100",
    "GPUSpec",
    "VOLTA_V100",
    "default_spec",
    "LaunchConfig",
    "ceil_div",
    "group_lanes",
    "is_high_group",
    "lane_to_group",
    "lane_to_octet",
    "octet_lanes",
    "AccessSummary",
    "WarpAccess",
    "coalesce",
    "ldg_width",
    "sectors_touched",
    "transactions_128b",
    "CacheHierarchy",
    "CacheStats",
    "SectorCache",
    "VectorSectorCache",
    "SharedMemoryModel",
    "SharedMemoryStats",
    "bank_conflicts",
    "KernelResources",
    "Occupancy",
    "compute_occupancy",
    "ICacheModel",
    "icache_stall_fraction",
    "InstrClass",
    "InstructionMix",
    "PIPE_OF",
    "ScheduleResult",
    "simulate_schedule",
    "OctetFragments",
    "TensorCoreStats",
    "hmma_step",
    "mma_m8n8k4",
    "wmma_m8n32k16",
]
