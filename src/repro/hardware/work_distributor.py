"""Discrete-event CTA scheduling across SMs.

The latency model approximates load imbalance with a closed-form factor
(:func:`repro.perfmodel.reuse.work_imbalance`).  This module provides
the ground truth it approximates: an event-driven simulation of the GPU
work distributor — CTAs dispatched in launch order to the SM with a
free slot, each SM running up to ``ctas_per_sm`` CTAs concurrently —
returning the device makespan and per-SM busy times for arbitrary
per-CTA durations.

Used by the tests to bound the closed-form factor, and available to
users who want wave-level timelines for their own workloads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import GPUSpec, default_spec

__all__ = ["ScheduleResult", "simulate_schedule"]


@dataclass
class ScheduleResult:
    """Outcome of scheduling one grid."""

    makespan: float                 # time until the last CTA retires
    sm_busy: np.ndarray             # total busy time per SM
    waves: int                      # ceil(grid / concurrent slots)

    processors: int = 1

    @property
    def mean_busy(self) -> float:
        return float(self.sm_busy.mean())

    @property
    def imbalance(self) -> float:
        """makespan / perfectly-balanced runtime (>= 1).

        The balanced runtime spreads the total serial work over every
        processor; wave quantisation and heavy tails push above it.
        """
        total = float(self.sm_busy.sum())
        if total <= 0:
            return 1.0
        ideal = total / max(1, self.processors)
        return max(1.0, self.makespan / max(1e-12, ideal))


def simulate_schedule(
    cta_durations: Sequence[float],
    ctas_per_sm: int = 1,
    spec: GPUSpec | None = None,
) -> ScheduleResult:
    """Greedy list scheduling: the hardware work distributor's policy.

    ``cta_durations`` are each CTA's *exclusive* execution time on one
    SM slot.  With the default ``ctas_per_sm=1`` the SMs behave as
    work-conserving processors (the regime the latency model's
    imbalance factor approximates); larger values expose multiple slots
    per SM (co-residency) — the per-slot durations are then assumed to
    already include the intra-SM sharing slowdown.

    CTAs launch in order onto the earliest-free slot (ties broken by
    slot id, matching the breadth-first initial assignment).
    """
    spec = spec or default_spec()
    durations = np.asarray(cta_durations, dtype=np.float64).ravel()
    num_sms = spec.num_sms
    slots = num_sms * max(1, ctas_per_sm)
    if durations.size == 0:
        return ScheduleResult(0.0, np.zeros(num_sms), 0, processors=slots)

    # heap of (free_time, slot_id); slot s belongs to SM s % num_sms,
    # so the initial pops assign CTA i to SM i % num_sms.
    heap = [(0.0, s) for s in range(min(slots, durations.size) or 1)]
    heapq.heapify(heap)
    busy = np.zeros(num_sms, dtype=np.float64)
    makespan = 0.0
    for d in durations:
        free_at, slot = heapq.heappop(heap)
        end = free_at + float(d)
        busy[slot % num_sms] += float(d)
        makespan = max(makespan, end)
        heapq.heappush(heap, (end, slot))
    waves = -(-durations.size // slots)
    return ScheduleResult(makespan=makespan, sm_busy=busy, waves=waves, processors=slots)
