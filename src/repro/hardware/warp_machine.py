"""Instruction-level warp-scheduler simulation.

The interval model (:mod:`repro.perfmodel.latency`) works from
aggregate instruction mixes.  This module executes *actual instruction
sequences* through a scoreboarded multi-warp scheduler, so the model's
stall taxonomy can be grounded on micro-examples — in particular the
§5.4 register trick: issuing all ``TileK/4`` RHS loads *before* the
``__threadfence_block()`` and the HMMAs after it, versus the
compiler's register-reusing interleave where every mma waits for its
own load.

The machine is deliberately small: one scheduler, one instruction per
cycle, per-pipe issue reservation, register-based true dependences
with fixed or memory latencies.  It is a validation instrument, not
the production latency model.

Example (see ``tests/test_warp_machine.py``)::

    prog_fenced  = octet_inner_loop(tile_k=32, batched=True)
    prog_reused  = octet_inner_loop(tile_k=32, batched=False)
    run_warps([prog_fenced] * 8).cycles  <  run_warps([prog_reused] * 8).cycles
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .config import GPUSpec, default_spec
from .instructions import InstrClass

__all__ = ["Instr", "MachineResult", "run_warps", "octet_inner_loop"]


@dataclass(frozen=True)
class Instr:
    """One warp instruction: sources, destination, class."""

    op: InstrClass
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()

    def latency(self, spec: GPUSpec) -> int:
        table = {
            InstrClass.HMMA: spec.lat_hmma,
            InstrClass.LDG128: spec.lat_l2,   # assume L2 hits for the micro test
            InstrClass.LDG64: spec.lat_l2,
            InstrClass.LDG32: spec.lat_l2,
            InstrClass.LDS: spec.lat_shared,
            InstrClass.STS: 2.0,
            InstrClass.SHFL: spec.lat_shuffle,
            InstrClass.MEMBAR: 4.0,
            InstrClass.BAR: spec.lat_barrier,
        }
        return int(table.get(self.op, spec.lat_alu))


WarpProgram = List[Instr]


@dataclass
class MachineResult:
    """Cycle-accurate outcome of running N warps to completion."""

    cycles: int
    issued: int
    stall_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.issued / self.cycles if self.cycles else 0.0

    def stall_fraction(self, reason: str) -> float:
        return self.stall_cycles.get(reason, 0) / self.cycles if self.cycles else 0.0


def _stall_reason(op: InstrClass) -> str:
    if op in (InstrClass.LDS,):
        return "short_scoreboard"
    if op in (InstrClass.LDG32, InstrClass.LDG64, InstrClass.LDG128):
        return "long_scoreboard"
    return "wait"


def run_warps(
    programs: Sequence[WarpProgram],
    spec: GPUSpec | None = None,
    max_cycles: int = 2_000_000,
) -> MachineResult:
    """Run warps round-robin on one scheduler (1 issue/cycle).

    A warp is ready when its next instruction's sources have all been
    produced; pipes accept one instruction per cycle each (structural
    hazards beyond that are ignored — the micro tests target
    dependence behaviour).
    """
    spec = spec or default_spec()
    n = len(programs)
    pc = [0] * n
    # reg -> cycle at which the value becomes available, per warp
    ready_at: List[Dict[str, int]] = [dict() for _ in range(n)]
    done = [len(p) == 0 for p in programs]
    issued = 0
    stall_cycles: Dict[str, int] = {}
    cycle = 0
    rr = 0
    while not all(done) and cycle < max_cycles:
        issued_this_cycle = False
        blocked_reason = None
        for k in range(n):
            w = (rr + k) % n
            if done[w]:
                continue
            ins = programs[w][pc[w]]
            waits = [ready_at[w].get(s, 0) for s in ins.srcs]
            if all(cycle >= t for t in waits):
                # issue
                if ins.dst is not None:
                    ready_at[w][ins.dst] = cycle + ins.latency(spec)
                pc[w] += 1
                if pc[w] == len(programs[w]):
                    done[w] = True
                issued += 1
                issued_this_cycle = True
                rr = w + 1
                break
            if blocked_reason is None:
                # attribute the potential stall to the latest producer
                blocking_src = max(
                    (s for s in ins.srcs if ready_at[w].get(s, 0) > cycle),
                    key=lambda s: ready_at[w][s],
                )
                blocked_reason = _stall_reason(
                    _producer_class(programs[w], pc[w], blocking_src)
                )
        if not issued_this_cycle:
            reason = blocked_reason or "wait"
            stall_cycles[reason] = stall_cycles.get(reason, 0) + 1
        cycle += 1
    return MachineResult(cycles=cycle, issued=issued, stall_cycles=stall_cycles)


def _producer_class(program: WarpProgram, upto: int, reg: str) -> InstrClass:
    for ins in reversed(program[:upto]):
        if ins.dst == reg:
            return ins.op
    return InstrClass.MISC


def octet_inner_loop(tile_k: int = 32, batched: bool = True) -> WarpProgram:
    """The §5.4 SpMM inner loop over one TileK stride.

    ``batched=True`` — the paper's trick: all ``TileK/4`` LDG.128s
    issue back-to-back into distinct registers, a memory fence, then
    the mma stream (each mma = 2 warp-wide issues of 4 HMMA steps).

    ``batched=False`` — the compiler's register-reusing schedule: one
    register set, so each load waits for the previous mma group and
    each mma group waits for its load.
    """
    steps = tile_k // 4
    prog: WarpProgram = []
    if batched:
        for i in range(steps):
            prog.append(Instr(InstrClass.LDG128, dst=f"rhs{i}"))
        prog.append(Instr(InstrClass.MEMBAR))
        for i in range(steps):
            prog.append(Instr(InstrClass.LDS, dst=f"lhs{i}"))
            for half in range(2):
                prog.append(
                    Instr(InstrClass.HMMA, dst=f"acc{i}_{half}",
                          srcs=(f"rhs{i}", f"lhs{i}"))
                )
    else:
        for i in range(steps):
            # same register reused: the load depends on the previous
            # consumer, serialising the chain
            srcs = ("acc",) if i else ()
            prog.append(Instr(InstrClass.LDG128, dst="rhs", srcs=srcs))
            prog.append(Instr(InstrClass.LDS, dst="lhs"))
            for half in range(2):
                prog.append(Instr(InstrClass.HMMA, dst="acc", srcs=("rhs", "lhs")))
    return prog
