"""Global-memory access modelling: coalescing, sectors and transactions.

The performance arguments in the paper (guideline V, the "Sectors/Req"
column of Tables 2 and 3) are all about how a warp's 32 per-lane
addresses map onto 32-byte *sectors* and 128-byte L1<->L2 transactions.
This module provides the address-level machinery:

* :func:`coalesce` — given the byte addresses and access width of every
  lane in a warp, compute the set of unique sectors touched and the
  number of L1 requests/wavefronts;
* :class:`WarpAccess` — a summarised warp-level memory instruction, the
  unit consumed by the cache simulator and the event counters;
* :func:`ldg_width` — the widest vector load (LDG.32/64/128) usable for
  a per-lane contiguous run of bytes.

Everything is NumPy-vectorised so that traces with millions of accesses
stay tractable (guide: vectorise the hot loops, avoid Python-level
iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from .config import GPUSpec, default_spec

__all__ = [
    "WarpAccess",
    "coalesce",
    "ldg_width",
    "sectors_touched",
    "transactions_128b",
    "AccessSummary",
]


def ldg_width(bytes_per_lane: int) -> int:
    """Vector memory width (bits) for a per-lane contiguous access.

    Returns 32, 64 or 128 — the LDG.{32,64,128} family.  Loads wider
    than 16 bytes per lane must be split by the caller.
    """
    if bytes_per_lane <= 0:
        raise ValueError("access width must be positive")
    if bytes_per_lane > 16:
        raise ValueError(
            f"per-lane access of {bytes_per_lane}B exceeds LDG.128; split it first"
        )
    if bytes_per_lane > 8:
        return 128
    if bytes_per_lane > 4:
        return 64
    return 32


def sectors_touched(addresses: np.ndarray, widths: np.ndarray, sector_bytes: int = 32) -> np.ndarray:
    """Unique sector ids covered by byte ranges ``[addr, addr+width)``.

    ``addresses``/``widths`` may be any matching shape; inactive lanes
    should be removed beforehand.
    """
    addresses = np.asarray(addresses, dtype=np.int64).ravel()
    widths = np.asarray(widths, dtype=np.int64).ravel()
    if addresses.shape != widths.shape:
        raise ValueError("addresses and widths must have the same shape")
    if addresses.size == 0:
        return np.empty(0, dtype=np.int64)
    first = addresses // sector_bytes
    last = (addresses + widths - 1) // sector_bytes
    span = last - first + 1
    if np.all(span == 1):
        return np.unique(first)
    # Expand multi-sector accesses (rare: misaligned wide loads).
    reps = span
    starts = np.repeat(first, reps)
    offsets = np.concatenate([np.arange(s) for s in span])
    return np.unique(starts + offsets)


def transactions_128b(sector_ids: np.ndarray, sectors_per_line: int = 4) -> int:
    """Number of 128B L1<->L2 transactions covering the given sectors."""
    if sector_ids.size == 0:
        return 0
    return int(np.unique(np.asarray(sector_ids, dtype=np.int64) // sectors_per_line).size)


@dataclass
class WarpAccess:
    """One warp-level global memory instruction, pre-coalesced.

    Attributes
    ----------
    space:
        ``"global"`` or ``"shared"``.
    is_store:
        Stores count transactions but have no load-to-use latency.
    lane_addresses / lane_widths:
        Byte address and width per active lane.
    """

    space: str
    is_store: bool
    lane_addresses: np.ndarray
    lane_widths: np.ndarray

    def __post_init__(self) -> None:
        self.lane_addresses = np.asarray(self.lane_addresses, dtype=np.int64)
        self.lane_widths = np.asarray(self.lane_widths, dtype=np.int64)
        if self.lane_addresses.shape != self.lane_widths.shape:
            raise ValueError("per-lane addresses and widths must match")
        if self.space not in ("global", "shared"):
            raise ValueError(f"unknown address space {self.space!r}")

    @property
    def active_lanes(self) -> int:
        return int(self.lane_addresses.size)

    def sectors(self, spec: GPUSpec | None = None) -> np.ndarray:
        spec = spec or default_spec()
        return sectors_touched(self.lane_addresses, self.lane_widths, spec.sector_bytes)

    def sectors_per_request(self, spec: GPUSpec | None = None) -> float:
        """The Nsight "Sectors/Req" metric for this single request."""
        return float(self.sectors(spec).size)

    def bytes_requested(self) -> int:
        return int(self.lane_widths.sum())


@dataclass
class AccessSummary:
    """Aggregate coalescing statistics over a stream of warp accesses."""

    requests: int = 0
    sectors: int = 0
    transactions: int = 0
    bytes_requested: int = 0
    bytes_transferred: int = 0

    @property
    def sectors_per_request(self) -> float:
        """Average sectors per L1 request (Tables 2/3 report this)."""
        return self.sectors / self.requests if self.requests else 0.0

    @property
    def bus_utilization(self) -> float:
        """Requested bytes / transferred bytes (1.0 = perfectly coalesced)."""
        return self.bytes_requested / self.bytes_transferred if self.bytes_transferred else 0.0

    def add(self, other: "AccessSummary") -> None:
        self.requests += other.requests
        self.sectors += other.sectors
        self.transactions += other.transactions
        self.bytes_requested += other.bytes_requested
        self.bytes_transferred += other.bytes_transferred


def coalesce(accesses: Iterable[WarpAccess], spec: GPUSpec | None = None) -> AccessSummary:
    """Coalesce a stream of warp accesses into sector/transaction counts."""
    spec = spec or default_spec()
    out = AccessSummary()
    for acc in accesses:
        sect = acc.sectors(spec)
        out.requests += 1
        out.sectors += int(sect.size)
        out.transactions += transactions_128b(sect, spec.sectors_per_line)
        out.bytes_requested += acc.bytes_requested()
        out.bytes_transferred += int(sect.size) * spec.sector_bytes
    return out


def rowwise_accesses(
    base: int,
    row_stride_bytes: int,
    rows: Sequence[int],
    start_col_byte: int,
    bytes_per_lane: int,
    lanes_per_row: int,
) -> List[WarpAccess]:
    """Build the warp accesses for reading ``lanes_per_row`` contiguous
    per-lane chunks from each of several matrix rows.

    This is the canonical pattern of both tilings in the paper: e.g. the
    octet SpMM loads a row of 64 consecutive halves with 8 lanes x 16B
    (LDG.128); the classic WMMA mapping loads 4 registers per lane
    (LDG.64) from 8 separate rows.
    """
    out: List[WarpAccess] = []
    lanes_total = 0
    addrs: List[int] = []
    for r in rows:
        row_base = base + r * row_stride_bytes + start_col_byte
        for lane in range(lanes_per_row):
            addrs.append(row_base + lane * bytes_per_lane)
            lanes_total += 1
            if lanes_total == 32:
                out.append(
                    WarpAccess(
                        space="global",
                        is_store=False,
                        lane_addresses=np.array(addrs),
                        lane_widths=np.full(len(addrs), bytes_per_lane),
                    )
                )
                addrs = []
                lanes_total = 0
    if addrs:
        out.append(
            WarpAccess(
                space="global",
                is_store=False,
                lane_addresses=np.array(addrs),
                lane_widths=np.full(len(addrs), bytes_per_lane),
            )
        )
    return out
