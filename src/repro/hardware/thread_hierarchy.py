"""Thread-hierarchy arithmetic: grids, CTAs, warps, thread groups, octets.

Section 2.1 of the paper defines the vocabulary this module implements:

* consecutive 32 threads of a CTA form a *warp*;
* consecutive 4 threads of a warp form a *thread group*
  (``group_id = lane // 4``);
* thread group ``i`` and ``i + 4`` together form *octet* ``i``
  (``i in {0,1,2,3}``); group ``i`` is the *low group* and ``i + 4`` the
  *high group* of the octet.

These helpers are used both by the functional tensor-core model (which
must place fragments in the registers of the correct lanes) and by the
performance model (which reasons about per-octet and per-group memory
requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .config import GPUSpec, default_spec

__all__ = [
    "LaunchConfig",
    "lane_to_group",
    "lane_to_octet",
    "is_high_group",
    "octet_lanes",
    "group_lanes",
    "ceil_div",
]


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative integers."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def lane_to_group(lane: int | np.ndarray) -> int | np.ndarray:
    """Thread-group id of a lane: ``lane // 4`` (paper §2.1)."""
    return lane // 4


def lane_to_octet(lane: int | np.ndarray) -> int | np.ndarray:
    """Octet id of a lane: group ``i`` and ``i+4`` form octet ``i``."""
    return (lane // 4) % 4


def is_high_group(lane: int | np.ndarray):
    """True when the lane belongs to the high group of its octet."""
    return (lane // 4) >= 4


def group_lanes(group: int) -> np.ndarray:
    """The four lanes of thread group ``group`` (0..7)."""
    if not 0 <= group < 8:
        raise ValueError(f"thread group must be in [0, 8), got {group}")
    return np.arange(4 * group, 4 * group + 4)


def octet_lanes(octet: int) -> np.ndarray:
    """The eight lanes of octet ``octet``: low group then high group."""
    if not 0 <= octet < 4:
        raise ValueError(f"octet must be in [0, 4), got {octet}")
    return np.concatenate([group_lanes(octet), group_lanes(octet + 4)])


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch: grid of CTAs, each with ``cta_size`` threads.

    ``grid_x``/``grid_y`` mirror the 2-D grids used by the paper's
    kernels (output row-tile by output column-tile).
    """

    grid_x: int
    grid_y: int = 1
    cta_size: int = 32

    def __post_init__(self) -> None:
        if self.grid_x <= 0 or self.grid_y <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.cta_size <= 0 or self.cta_size % 32 != 0:
            raise ValueError(f"CTA size must be a positive multiple of 32, got {self.cta_size}")
        if self.cta_size > 1024:
            raise ValueError("CTA size may not exceed 1024 threads")

    @property
    def num_ctas(self) -> int:
        return self.grid_x * self.grid_y

    @property
    def warps_per_cta(self) -> int:
        return self.cta_size // 32

    @property
    def total_warps(self) -> int:
        return self.num_ctas * self.warps_per_cta

    @property
    def total_threads(self) -> int:
        return self.num_ctas * self.cta_size

    def cta_ids(self) -> Iterator[Tuple[int, int]]:
        """Iterate (bx, by) CTA coordinates in launch order."""
        for by in range(self.grid_y):
            for bx in range(self.grid_x):
                yield bx, by

    def waves(self, ctas_per_sm: int, spec: GPUSpec | None = None) -> int:
        """Number of full device waves needed to run the grid.

        ``ctas_per_sm`` is the occupancy-limited number of concurrently
        resident CTAs per SM (see :mod:`repro.hardware.register_file`).
        """
        spec = spec or default_spec()
        concurrent = max(1, ctas_per_sm) * spec.num_sms
        return ceil_div(self.num_ctas, concurrent)

    def tail_utilization(self, ctas_per_sm: int, spec: GPUSpec | None = None) -> float:
        """Fraction of the last wave's CTA slots actually occupied.

        A grid barely larger than one wave wastes most of its second
        wave; guideline II (increase grid size) exists partly because of
        this quantization.
        """
        spec = spec or default_spec()
        concurrent = max(1, ctas_per_sm) * spec.num_sms
        full, rem = divmod(self.num_ctas, concurrent)
        if rem == 0:
            return 1.0
        return (full * concurrent + rem) / ((full + 1) * concurrent)
