"""Register-file allocation and SM occupancy.

Guideline II of the paper ("increase the grid size to hide the latency
through TLP") and the SDDMM register-pressure discussion (§6.1: V=8,
TileN=32 needs 256 accumulator registers per thread and spills) both
reduce to occupancy arithmetic: how many CTAs fit on an SM given their
register, shared-memory and thread demands, and hence how many warps
each scheduler can interleave to hide latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GPUSpec, default_spec
from .thread_hierarchy import ceil_div

__all__ = ["KernelResources", "Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class KernelResources:
    """Per-CTA resource demand of a kernel."""

    cta_size: int
    registers_per_thread: int
    shared_bytes_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.cta_size <= 0 or self.cta_size % 32:
            raise ValueError("CTA size must be a positive multiple of 32")
        if self.registers_per_thread <= 0:
            raise ValueError("registers per thread must be positive")

    @property
    def spills(self) -> bool:
        """True when the per-thread demand exceeds the architectural cap.

        Spilled registers live in local memory (DRAM-backed); the
        latency model charges extra traffic for them.
        """
        return self.registers_per_thread > 255

    @property
    def effective_registers(self) -> int:
        return min(self.registers_per_thread, 255)

    @property
    def spilled_registers(self) -> int:
        return max(0, self.registers_per_thread - 255)


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of a kernel on one SM."""

    ctas_per_sm: int
    warps_per_sm: int
    limiter: str

    @property
    def warps_per_scheduler(self) -> float:
        return self.warps_per_sm / 4.0

    @property
    def occupancy_fraction(self) -> float:
        return self.warps_per_sm / 64.0


def compute_occupancy(res: KernelResources, spec: GPUSpec | None = None) -> Occupancy:
    """CUDA-occupancy-calculator logic for the simulated device."""
    spec = spec or default_spec()
    warps_per_cta = res.cta_size // 32

    limits = {}
    limits["threads"] = spec.max_threads_per_sm // res.cta_size
    limits["ctas"] = spec.max_ctas_per_sm
    # register allocation is per-warp, rounded to the allocation unit
    regs_per_warp = ceil_div(res.effective_registers * 32, spec.register_alloc_unit) * spec.register_alloc_unit
    regs_per_cta = regs_per_warp * warps_per_cta
    limits["registers"] = spec.registers_per_sm // regs_per_cta if regs_per_cta else spec.max_ctas_per_sm
    if res.shared_bytes_per_cta:
        limits["shared"] = spec.max_shared_per_sm // res.shared_bytes_per_cta
    limits["warps"] = spec.max_warps_per_sm // warps_per_cta

    limiter = min(limits, key=limits.get)
    ctas = max(0, min(limits.values()))
    if ctas == 0:
        raise ValueError(f"kernel does not fit on an SM (limited by {limiter})")
    return Occupancy(ctas_per_sm=ctas, warps_per_sm=ctas * warps_per_cta, limiter=limiter)
