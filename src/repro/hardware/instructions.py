"""Warp-level instruction classes and dynamic instruction mixes.

Every kernel in :mod:`repro.kernels` reports the warp-level instructions
it *would* issue on the simulated device as an :class:`InstructionMix`.
The latency model maps each class onto an execution pipe
(:mod:`repro.hardware.config`), and the profiler reproduces the
paper's instruction statistics (e.g. §7.2.2: the FPU SpMM executes
3.4M HMUL+FADD while the octet kernel executes 429K/215K HMMA).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["InstrClass", "InstructionMix", "PIPE_OF"]


class InstrClass(str, enum.Enum):
    """Warp-level instruction classes relevant to the paper's kernels."""

    HMMA = "HMMA"          # tensor-core matrix multiply-accumulate step
    HMUL2 = "HMUL2"        # packed half multiply (2 ops / lane)
    HFMA2 = "HFMA2"        # packed half fused multiply-add
    FADD = "FADD"          # fp32 add (Sputnik-style fp32 accumulation)
    FFMA = "FFMA"          # fp32 fused multiply-add
    F2F = "F2F"            # precision conversion
    IMAD = "IMAD"          # integer multiply-add (addressing)
    IADD3 = "IADD3"        # 3-input integer add (addressing)
    LOP3 = "LOP3"          # logic ops (predicates, masks)
    LDG32 = "LDG.32"       # global loads by vector width
    LDG64 = "LDG.64"
    LDG128 = "LDG.128"
    STG = "STG"            # global store
    LDS = "LDS"            # shared-memory load
    STS = "STS"            # shared-memory store
    LDL = "LDL"            # local-memory load (register spills)
    STL = "STL"
    SHFL = "SHFL"          # warp shuffle
    BAR = "BAR"            # __syncthreads
    MEMBAR = "MEMBAR"      # __threadfence_block
    EXP = "EXP"            # MUFU.EX2 (softmax)
    BRANCH = "BRA"
    MISC = "MISC"          # MOV, SEL, predicate setup, ...


#: Execution pipe used by each class (see GPUSpec rates).
PIPE_OF: Dict[InstrClass, str] = {
    InstrClass.HMMA: "tensor",
    InstrClass.HMUL2: "fma16",
    InstrClass.HFMA2: "fma16",
    InstrClass.FADD: "fma32",
    InstrClass.FFMA: "fma32",
    InstrClass.F2F: "fma32",
    InstrClass.IMAD: "alu",
    InstrClass.IADD3: "alu",
    InstrClass.LOP3: "alu",
    InstrClass.LDG32: "lsu",
    InstrClass.LDG64: "lsu",
    InstrClass.LDG128: "lsu",
    InstrClass.STG: "lsu",
    InstrClass.LDS: "lsu",
    InstrClass.STS: "lsu",
    InstrClass.LDL: "lsu",
    InstrClass.STL: "lsu",
    InstrClass.SHFL: "shuffle",
    InstrClass.BAR: "misc",
    InstrClass.MEMBAR: "misc",
    InstrClass.EXP: "sfu",
    InstrClass.BRANCH: "misc",
    InstrClass.MISC: "misc",
}

_MATH_CLASSES = {
    InstrClass.HMMA,
    InstrClass.HMUL2,
    InstrClass.HFMA2,
    InstrClass.FADD,
    InstrClass.FFMA,
}

_LDG_CLASSES = {InstrClass.LDG32, InstrClass.LDG64, InstrClass.LDG128}


@dataclass
class InstructionMix:
    """Dynamic warp-level instruction counts for one kernel launch."""

    counts: Counter = field(default_factory=Counter)

    def add(self, cls: InstrClass, n: float = 1) -> None:
        if n < 0:
            raise ValueError("instruction count increments must be non-negative")
        self.counts[cls] += n

    def merge(self, other: "InstructionMix") -> None:
        self.counts.update(other.counts)

    def scaled(self, factor: float) -> "InstructionMix":
        out = InstructionMix()
        for k, v in self.counts.items():
            out.counts[k] = v * factor
        return out

    def __getitem__(self, cls: InstrClass) -> float:
        return self.counts.get(cls, 0)

    @property
    def total(self) -> float:
        return float(sum(self.counts.values()))

    @property
    def math_instructions(self) -> float:
        """Figure 5's "Math Instructions Executed" metric."""
        return float(sum(v for k, v in self.counts.items() if k in _MATH_CLASSES))

    @property
    def global_load_requests(self) -> float:
        return float(sum(v for k, v in self.counts.items() if k in _LDG_CLASSES))

    @property
    def shared_load_requests(self) -> float:
        return float(self.counts.get(InstrClass.LDS, 0))

    @property
    def shared_to_global_load_ratio(self) -> float:
        """§3.2's "# shared mem load requests / # global load requests"."""
        g = self.global_load_requests
        return self.shared_load_requests / g if g else 0.0

    @property
    def integer_fraction(self) -> float:
        """Share of IMAD+IADD3 (addressing) — drives the "Wait" stall."""
        if not self.total:
            return 0.0
        ints = self.counts.get(InstrClass.IMAD, 0) + self.counts.get(InstrClass.IADD3, 0)
        return float(ints) / self.total

    def by_pipe(self) -> Dict[str, float]:
        """Aggregate counts per execution pipe."""
        out: Dict[str, float] = {}
        for cls, n in self.counts.items():
            pipe = PIPE_OF[cls]
            out[pipe] = out.get(pipe, 0.0) + n
        return out

    def as_dict(self) -> Dict[str, float]:
        return {k.value: float(v) for k, v in sorted(self.counts.items(), key=lambda kv: kv[0].value)}
