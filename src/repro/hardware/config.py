"""Hardware configuration for the simulated Volta-class GPU.

The paper evaluates on an NVIDIA V100 (Volta).  All architectural
constants used by the functional and performance models live here so
that a single :class:`GPUSpec` instance threads through the whole
simulator.  Numbers follow the Volta whitepaper [NVIDIA17]_ and the
microbenchmark study of Jia et al. [Jia18]_ that the paper cites for the
L0 instruction-cache capacity and memory-hierarchy organisation.

.. [NVIDIA17] "V100 GPU Architecture: The world's most advanced
   datacenter GPU", NVIDIA, 2017.
.. [Jia18] Jia, Maggioni, Staiger, Scarpazza, "Dissecting the NVIDIA
   Volta GPU architecture via microbenchmarking", arXiv:1804.06826.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of the simulated GPU.

    All throughput figures are *per SM per cycle* unless stated
    otherwise; the latency model multiplies by ``num_sms`` and the clock
    to obtain device-level figures.
    """

    name: str = "V100-SXM2-16GB"

    # --- chip organisation -------------------------------------------------
    num_sms: int = 80
    subcores_per_sm: int = 4
    clock_ghz: float = 1.53          # boost clock used for peak numbers

    # --- thread hierarchy limits -------------------------------------------
    warp_size: int = 32
    threads_per_group: int = 4       # "thread group" = 4 consecutive lanes
    groups_per_warp: int = 8         # -> 2 octets control 1 TCU, 4 octets/warp
    max_threads_per_cta: int = 1024
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_ctas_per_sm: int = 32

    # --- register file ------------------------------------------------------
    registers_per_sm: int = 65536    # 32-bit registers
    max_registers_per_thread: int = 255
    register_alloc_unit: int = 256   # per-warp allocation granularity

    # --- memory hierarchy ----------------------------------------------------
    dram_bytes: int = 16 * 2**30
    dram_bandwidth_gbs: float = 900.0
    l2_bytes: int = 6 * 2**20
    l2_bandwidth_gbs: float = 2700.0   # read-heavy sectored streams; Jia et al.
                                       # measure 2.15 TB/s with mixed patterns,
                                       # pure reads run ~25% higher
    l1_bytes_per_sm: int = 128 * 2**10  # unified L1/shared
    max_shared_per_sm: int = 96 * 2**10
    sector_bytes: int = 32             # L1/L2 sector granularity
    line_bytes: int = 128              # cache line = 4 sectors, 128B transaction
    l1_ways: int = 4
    shared_banks: int = 32
    shared_bank_bytes: int = 4
    # peak shared-memory bandwidth: 128 B/cycle/SM (one 32x4B conflict-free
    # wavefront per cycle)
    shared_bytes_per_cycle: float = 128.0
    # L1 <-> core: four 32B sectors per cycle per SM
    l1_bytes_per_cycle: float = 128.0

    # --- instruction delivery -------------------------------------------------
    instr_bytes: int = 16              # Volta: one 128-bit word per instruction
    l0_icache_bytes: int = 12 * 2**10  # per sub-core; 768 instructions
    l1_icache_bytes: int = 128 * 2**10 # per SM (approx.; shared among subcores)
    icache_miss_penalty_cycles: float = 30.0

    # --- execution pipes (warp-instruction throughput per SM per cycle) -------
    issue_rate: float = 4.0            # 4 schedulers, 1 instr/cycle each
    fma_fp32_rate: float = 2.0         # 64 FP32 lanes -> 2 warp FFMA/cycle
    fma_fp16_rate: float = 2.0         # packed half2 pipe shares FP32 lanes
    alu_int_rate: float = 2.0          # IMAD/IADD3 use the FMA pipe on Volta
    tensor_hmma_rate: float = 2.0      # 8 TCs/SM -> 2 warp-wide HMMA.884/cycle
    lsu_rate: float = 1.0              # one LD/ST warp instruction per cycle
    sfu_rate: float = 0.25
    shuffle_rate: float = 1.0          # SHFL shares the LSU datapath

    # --- instruction latencies (cycles) ---------------------------------------
    lat_fma: float = 4.0
    lat_alu: float = 4.0               # IMAD dependent-issue latency ~4-5
    lat_hmma: float = 8.0              # back-to-back dependent HMMA
    lat_shared: float = 25.0           # LDS load-to-use
    lat_l1: float = 32.0
    lat_l2: float = 190.0
    lat_dram: float = 440.0
    lat_shuffle: float = 25.0
    lat_barrier: float = 30.0

    # --- kernel launch --------------------------------------------------------
    launch_overhead_us: float = 2.2

    # ----- derived helpers ----------------------------------------------------
    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes

    @property
    def l0_icache_instrs(self) -> int:
        """Instructions resident in the per-sub-core L0 i-cache (768 on Volta)."""
        return self.l0_icache_bytes // self.instr_bytes

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        return self.dram_bandwidth_gbs / (self.clock_ghz * self.num_sms)

    @property
    def l2_bytes_per_cycle_per_sm(self) -> float:
        return self.l2_bandwidth_gbs / (self.clock_ghz * self.num_sms)

    @property
    def octets_per_warp(self) -> int:
        return self.groups_per_warp // 2

    def peak_tensor_tflops(self) -> float:
        """Peak FP16 tensor-core throughput in TFLOP/s.

        2 warp HMMA/cycle/SM x 256 MAC/HMMA x 2 FLOP/MAC.
        """
        macs = self.tensor_hmma_rate * 256.0
        return 2.0 * macs * self.num_sms * self.clock_ghz / 1e3

    def peak_fp32_tflops(self) -> float:
        """Peak FP32 FMA throughput in TFLOP/s."""
        return 2.0 * self.fma_fp32_rate * self.warp_size * self.num_sms * self.clock_ghz / 1e3

    def peak_fp16_tflops(self) -> float:
        """Peak packed-FP16 FMA (non-tensor) throughput in TFLOP/s."""
        return 2.0 * self.peak_fp32_tflops()

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Default device used throughout the library.
VOLTA_V100 = GPUSpec()

#: Ampere extrapolation (A100-SXM4-40GB).  The paper targets Volta; this
#: spec lets the model answer the natural follow-up — on Ampere the
#: dense tensor pipes and bandwidth both roughly double, so the sparse
#: crossovers shift (see examples/design_space_sweep.py and the
#: portability discussion in docs/PERFMODEL.md).  The HMMA abstraction
#: (one warp instruction = 256 MACs) is kept; Ampere's mma.m16n8k16
#: issues fewer, bigger instructions, which the doubled tensor rate
#: absorbs to first order.
AMPERE_A100 = GPUSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    clock_ghz=1.41,
    dram_bytes=40 * 2**30,
    dram_bandwidth_gbs=1555.0,
    l2_bytes=40 * 2**20,
    l2_bandwidth_gbs=4500.0,
    l1_bytes_per_sm=192 * 2**10,
    max_shared_per_sm=164 * 2**10,
    tensor_hmma_rate=4.0,       # 312 TFLOPS fp16 dense
    l0_icache_bytes=16 * 2**10,
    launch_overhead_us=2.0,
)


def default_spec() -> GPUSpec:
    """The GPU the paper evaluates on (V100)."""
    return VOLTA_V100
