"""Functional model of the Volta Tensor Core Unit (TCU).

This module reproduces, at register-ownership granularity, the
``mma.m8n8k4`` semantics the paper's kernels are built on (Figures 1,
2 and 15):

* a warp drives two TCUs; each TCU is controlled by two *octets*;
* each octet (thread groups ``i`` and ``i+4``) computes an
  ``(8x4)·(4x8)`` FP16 matrix product with FP32 accumulation;
* the product is issued as four ``HMMA.884.F32.F32.STEP{0..3}``
  instructions.  Steps 0 and 1 produce the *left* four output columns,
  steps 2 and 3 the right four; the shared ``Mat_b`` buffer is fed from
  the low thread group in steps 0-1 and from the high group in steps
  2-3 (the multiplexer in Figure 1);
* the paper's proposed architecture extension (Figure 15) adds a
  ``SWITCH`` flag that swaps the ``Mat_a`` sources of the two thread
  groups and XORs the ``Mat_b`` mux control, enabling the SDDMM octet
  tiling without shuffle instructions or extra accumulators.

Data-layout convention used throughout (documented here once, asserted
by the unit tests):

* ``Mat_a`` (8x4, row-major rows of the octet's LHS): the low group
  holds rows 0-3 (one row per thread), the high group rows 4-7;
* ``Mat_b`` (4x8, columns of the RHS): the low group holds columns 0-3
  (one column per thread), the high group columns 4-7;
* accumulators (8x8 FP32): the low group holds rows 0-3, the high
  group rows 4-7, each thread owning one full row of eight values.

Step semantics under this convention::

    STEP0:  acc[0:4, 0:4] += A[0:4] @ B[:, 0:4]   (low  rows, low  cols)
    STEP1:  acc[4:8, 0:4] += A[4:8] @ B[:, 0:4]   (high rows, low  cols)
    STEP2:  acc[0:4, 4:8] += A[0:4] @ B[:, 4:8]   (low  rows, high cols)
    STEP3:  acc[4:8, 4:8] += A[4:8] @ B[:, 4:8]   (high rows, high cols)

so skipping steps 2-3 yields exactly the left four output columns —
the optimisation the octet tilings expose for vector length V <= 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..obs import metrics as _obs_metrics

__all__ = [
    "OctetFragments",
    "hmma_step",
    "mma_m8n8k4",
    "mma_m8n8k4_batched",
    "wmma_m8n32k16",
    "TensorCoreStats",
]

_F16 = np.float16
_F32 = np.float32


@dataclass
class TensorCoreStats:
    """HMMA issue accounting for one simulated TCU stream."""

    hmma_steps: int = 0
    mma_instructions: int = 0
    switch_steps: int = 0

    def merge(self, other: "TensorCoreStats") -> None:
        self.hmma_steps += other.hmma_steps
        self.mma_instructions += other.mma_instructions
        self.switch_steps += other.switch_steps


@dataclass
class OctetFragments:
    """Register state of one octet around a tensor-core operation.

    ``a_low``/``a_high``: (4, 4) FP16 — rows 0-3 / 4-7 of the 8x4 LHS.
    ``b_low``/``b_high``: (4, 4) FP16 — columns 0-3 / 4-7 of the 4x8
    RHS, stored column-per-thread, i.e. ``b_low[t]`` is column ``t``.
    ``acc_low``/``acc_high``: (4, 8) FP32 accumulator rows.
    """

    a_low: np.ndarray
    a_high: np.ndarray
    b_low: np.ndarray
    b_high: np.ndarray
    acc_low: np.ndarray
    acc_high: np.ndarray

    @classmethod
    def zeros(cls) -> "OctetFragments":
        return cls(
            a_low=np.zeros((4, 4), dtype=_F16),
            a_high=np.zeros((4, 4), dtype=_F16),
            b_low=np.zeros((4, 4), dtype=_F16),
            b_high=np.zeros((4, 4), dtype=_F16),
            acc_low=np.zeros((4, 8), dtype=_F32),
            acc_high=np.zeros((4, 8), dtype=_F32),
        )

    @classmethod
    def from_matrices(cls, a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None) -> "OctetFragments":
        """Distribute full (8x4), (4x8), (8x8) matrices into fragments."""
        a = np.asarray(a, dtype=_F16)
        b = np.asarray(b, dtype=_F16)
        if a.shape != (8, 4) or b.shape != (4, 8):
            raise ValueError(f"expected (8,4)x(4,8), got {a.shape} x {b.shape}")
        if c is None:
            c = np.zeros((8, 8), dtype=_F32)
        c = np.asarray(c, dtype=_F32)
        if c.shape != (8, 8):
            raise ValueError(f"accumulator must be (8,8), got {c.shape}")
        return cls(
            a_low=a[0:4].copy(),
            a_high=a[4:8].copy(),
            # b_low[t] = column t  -> transpose the column slices
            b_low=b[:, 0:4].T.copy(),
            b_high=b[:, 4:8].T.copy(),
            acc_low=c[0:4].copy(),
            acc_high=c[4:8].copy(),
        )

    def a_matrix(self) -> np.ndarray:
        return np.vstack([self.a_low, self.a_high])

    def b_matrix(self) -> np.ndarray:
        return np.hstack([self.b_low.T, self.b_high.T])

    def acc_matrix(self) -> np.ndarray:
        return np.vstack([self.acc_low, self.acc_high])


def _dot_f32(a_rows: np.ndarray, b_cols: np.ndarray) -> np.ndarray:
    """``(..., 4, 4)·(..., 4, 4)`` with FP16 inputs, FP32 multiply-accumulate.

    HMMA forms exact FP32 products of FP16 operands and accumulates in
    FP32; fp32 multiply-accumulate over FP16-valued inputs reproduces
    this (11-bit mantissas square exactly into 24 bits).  The k=4
    contraction is spelled out as four elementwise products summed left
    to right — not ``@``/einsum, whose BLAS/SIMD kernels pick different
    accumulation orders for different strides and batch shapes — so the
    per-element rounding is identical no matter how the call is batched,
    which is what makes :func:`mma_m8n8k4_batched` bit-identical to the
    per-octet loop.
    """
    a32 = np.asarray(a_rows, dtype=_F32)
    b32 = np.asarray(b_cols, dtype=_F32)
    out = np.multiply(a32[..., :, 0:1], b32[..., 0:1, :])
    tmp = np.empty_like(out)
    for j in range(1, a32.shape[-1]):
        # same serial left-to-right fp32 chain; out=/+= only removes
        # the temporaries, it cannot reassociate the per-element sums
        np.multiply(a32[..., :, j : j + 1], b32[..., j : j + 1, :], out=tmp)
        out += tmp
    return out


def hmma_step(
    frags: OctetFragments,
    step: int,
    switch: bool = False,
    stats: TensorCoreStats | None = None,
) -> None:
    """Execute one ``HMMA.884.F32.F32.STEP<step>[.SWITCH]`` in place.

    ``switch=True`` models the paper's proposed extension (Figure 15):
    the ``Mat_a`` buffers of the low and high groups swap sources, and
    the ``Mat_b`` mux control is XORed — so a SWITCH step computes the
    *other* group's row block against the *other* group's column block
    while writing into the original group's accumulator.
    """
    if step not in (0, 1, 2, 3):
        raise ValueError(f"HMMA step must be 0..3, got {step}")

    use_high_rows = step in (1, 3)
    use_high_cols = step in (2, 3)
    if switch:
        use_high_rows = not use_high_rows
        use_high_cols = not use_high_cols

    a = frags.a_high if use_high_rows else frags.a_low
    b = frags.b_high if use_high_cols else frags.b_low
    # b fragments are column-per-thread: stack back to (4 rows x 4 cols)
    b_cols = b.T

    partial = _dot_f32(a, b_cols)  # (4 rows, 4 cols)

    # Accumulator ownership never moves: steps 0/2 write the low group's
    # Acc buffer, steps 1/3 the high group's — also under SWITCH (that
    # is precisely what makes the inverted pattern disappear).
    acc = frags.acc_high if step in (1, 3) else frags.acc_low
    col0 = 4 if step in (2, 3) else 0
    acc[:, col0 : col0 + 4] += partial

    if stats is not None:
        stats.hmma_steps += 1
        if switch:
            stats.switch_steps += 1


def mma_m8n8k4(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    steps: Tuple[int, ...] = (0, 1, 2, 3),
    switch_steps: Tuple[int, ...] = (),
    invert_groups: bool = False,
    stats: TensorCoreStats | None = None,
) -> np.ndarray:
    """One octet's ``mma.m8n8k4``: returns ``a @ b + c`` as (8, 8) FP32.

    ``steps`` allows modelling the removal of STEP2/3 when the useful
    output is only 4 columns wide (V <= 4 in the octet tilings); the
    returned right half is then exactly ``c``'s right half.

    ``invert_groups=True`` models operands that arrive with the octet
    SDDMM's *inverted pattern* (§6.3): after the High Group Switch, the
    low thread group holds the rows/columns the high group canonically
    owns and vice versa.  Issuing every step with the proposed SWITCH
    flag (``switch_steps=(0, 1, 2, 3)``) re-pairs the operands inside
    the TCU, so ``invert_groups + full SWITCH`` reproduces the
    canonical product exactly — the identity the paper's "mma (arch)"
    kernel relies on.
    """
    frags = OctetFragments.from_matrices(a, b, c)
    if invert_groups:
        frags.a_low, frags.a_high = frags.a_high, frags.a_low
        frags.b_low, frags.b_high = frags.b_high, frags.b_low
    for s in steps:
        hmma_step(frags, s, switch=s in switch_steps, stats=stats)
    if stats is not None:
        stats.mma_instructions += 1
    return frags.acc_matrix()


def mma_m8n8k4_batched(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    steps: Tuple[int, ...] = (0, 1, 2, 3),
    switch_steps: Tuple[int, ...] = (),
    invert_groups: bool = False,
    stats: TensorCoreStats | None = None,
) -> np.ndarray:
    """A batch of independent octet ``mma.m8n8k4`` operations at once.

    ``a`` is ``(batch, 8, 4)``, ``b`` is ``(batch, 4, 8)`` — or ``(4, 8)``
    to broadcast one RHS across the batch (the SpMM octet tiling feeds
    all eight octets of a k-group the same switched-RHS fragment) —
    and ``c`` is ``(batch, 8, 8)`` FP32 or ``None`` for zeros.

    Semantics are element-for-element those of running
    :func:`mma_m8n8k4` on every batch item: the same four-step
    quadrant schedule, the same SWITCH/invert-groups register
    re-pairing, the same FP32 accumulation order (both paths contract
    k=4 through the einsum in :func:`_dot_f32`), so the result is
    bit-identical to the per-octet loop — the batched-parity tests pin
    this.  ``stats`` aggregates across the batch: ``batch`` mma
    instructions, ``batch x len(steps)`` HMMA steps.
    """
    a = np.asarray(a, dtype=_F16)
    b = np.asarray(b, dtype=_F16)
    if a.ndim != 3 or a.shape[1:] != (8, 4):
        raise ValueError(f"batched Mat_a must be (batch, 8, 4), got {a.shape}")
    batch = a.shape[0]
    _obs_metrics.observe("hmma.batch_size", batch)
    if b.shape == (4, 8):
        b = np.broadcast_to(b, (batch, 4, 8))
    if b.shape != (batch, 4, 8):
        raise ValueError(f"batched Mat_b must be ({batch}, 4, 8), got {b.shape}")
    if c is None:
        acc = np.zeros((batch, 8, 8), dtype=_F32)
    else:
        acc = np.asarray(c, dtype=_F32).copy()
        if acc.shape != (batch, 8, 8):
            raise ValueError(f"batched accumulator must be ({batch}, 8, 8), got {acc.shape}")

    # promote once: fp16 -> fp32 is exact, so converting before the
    # half/step slicing is bit-identical to converting inside each step
    a = np.ascontiguousarray(a, dtype=_F32)
    b = np.ascontiguousarray(b, dtype=_F32)

    # Fast path: the four quadrant steps partition the 8x8 output, each
    # element computed by exactly one step through the same serial k=4
    # chain — so the full-step schedule equals one whole-tile product.
    # That also covers invert_groups + all-SWITCH (the arch identity:
    # the double swap restores the canonical pairing element for
    # element).  Partial schedules and mixed SWITCH patterns keep the
    # explicit per-step walk below.  Only large batches take it: the
    # whole-tile pass trades four quadrant kernels for seven full-width
    # broadcast passes, which pays off once the batch amortises the
    # wider temporaries (the compiled-plan executors issue thousands of
    # tiles per call; per-row walks issue 8-16).
    full = tuple(steps) == (0, 1, 2, 3)
    sw = set(switch_steps) & {0, 1, 2, 3}
    if (
        batch >= 32
        and full
        and ((not sw and not invert_groups) or (sw == {0, 1, 2, 3} and invert_groups))
    ):
        acc += _dot_f32(a, b)
        if stats is not None:
            stats.mma_instructions += batch
            stats.hmma_steps += batch * 4
            stats.switch_steps += batch * (4 if invert_groups else 0)
        return acc

    a_low, a_high = a[:, 0:4], a[:, 4:8]
    b_low, b_high = b[:, :, 0:4], b[:, :, 4:8]
    if invert_groups:
        a_low, a_high = a_high, a_low
        b_low, b_high = b_high, b_low

    switched = 0
    for s in steps:
        if s not in (0, 1, 2, 3):
            raise ValueError(f"HMMA step must be 0..3, got {s}")
        switch = s in switch_steps
        use_high_rows = s in (1, 3)
        use_high_cols = s in (2, 3)
        if switch:
            switched += 1
            use_high_rows = not use_high_rows
            use_high_cols = not use_high_cols
        rows = a_high if use_high_rows else a_low
        cols = b_high if use_high_cols else b_low
        partial = _dot_f32(rows, cols)  # (batch, 4, 4)
        # accumulator ownership is by step, not by switch (see hmma_step)
        r0 = 4 if s in (1, 3) else 0
        c0 = 4 if s in (2, 3) else 0
        acc[:, r0 : r0 + 4, c0 : c0 + 4] += partial

    if stats is not None:
        stats.mma_instructions += batch
        stats.hmma_steps += batch * len(steps)
        stats.switch_steps += batch * switched
    return acc


def wmma_m8n32k16(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    stats: TensorCoreStats | None = None,
) -> np.ndarray:
    """Warp-level ``wmma.m8n32k16``: (8x16)·(16x32) + (8x32) in FP32.

    Decomposed into ``mma.m8n8k4`` octet operations exactly as the
    Volta compiler does: 4 octets x 4 k-slices = 16 HMMA steps per
    k-slice group (64 HMMA steps per wmma in total, 16 per octet) —
    issued as one 16-item batch, with the per-octet k-slice partials
    accumulated serially in the compiler's order.
    """
    a = np.asarray(a, dtype=_F16)
    b = np.asarray(b, dtype=_F16)
    if a.shape != (8, 16) or b.shape != (16, 32):
        raise ValueError(f"expected (8,16)x(16,32), got {a.shape} x {b.shape}")
    out = np.zeros((8, 32), dtype=_F32) if c is None else np.asarray(c, dtype=_F32).copy()
    # fragment batch in (octet, k-slice) order
    a_frags = np.stack([a[:, k0 : k0 + 4] for k0 in range(0, 16, 4)])           # (4, 8, 4)
    b_frags = np.stack(
        [
            b[k0 : k0 + 4, n0 : n0 + 8]
            for n0 in range(0, 32, 8)
            for k0 in range(0, 16, 4)
        ]
    )                                                                            # (16, 4, 8)
    partial = mma_m8n8k4_batched(np.tile(a_frags, (4, 1, 1)), b_frags, stats=stats)
    for octet in range(4):
        n0 = octet * 8
        for j in range(4):  # serial k-slice accumulation per octet
            out[:, n0 : n0 + 8] += partial[octet * 4 + j]
    return out
