"""Set-associative sector-cache simulator for the L1/L2 hierarchy.

Volta caches allocate 128-byte lines but fill and transfer 32-byte
*sectors* (guide V of the paper: "exploit the 128B transaction between
L1 and L2 caches").  The experiments in Figures 5 and 18 report
*missed sectors* and *bytes moved L2 -> L1*, so the simulator tracks
both line residency and per-sector validity.

Two entry points:

* :class:`SectorCache` — one cache level, fed with sector-id streams;
* :class:`CacheHierarchy` — an L1 (per-SM) in front of a shared L2,
  returning a :class:`CacheStats` per level.

The tag check is NumPy-vectorised per request batch; the replacement
loop only touches misses, which keeps multi-million-access traces
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from .config import GPUSpec, default_spec

__all__ = ["CacheStats", "SectorCache", "CacheHierarchy"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache level (sector granularity)."""

    sector_accesses: int = 0
    sector_hits: int = 0
    line_fills: int = 0

    @property
    def sector_misses(self) -> int:
        return self.sector_accesses - self.sector_hits

    @property
    def hit_rate(self) -> float:
        return self.sector_hits / self.sector_accesses if self.sector_accesses else 0.0

    @property
    def bytes_filled(self) -> int:
        """Bytes moved in from the next level (32 B per missed sector)."""
        return self.sector_misses * 32

    def merge(self, other: "CacheStats") -> None:
        self.sector_accesses += other.sector_accesses
        self.sector_hits += other.sector_hits
        self.line_fills += other.line_fills


class SectorCache:
    """LRU set-associative cache with sectored lines.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes / sector_bytes:
        Line (tag) and sector (fill) granularity; Volta uses 128/32.
    ways:
        Associativity.  Capacity/line/ways determine the set count.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
    ) -> None:
        if capacity_bytes % (line_bytes * ways) != 0:
            raise ValueError("capacity must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # tags[set, way] = line id (or -1), valid[set, way, sector] = bool
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._valid = np.zeros((self.num_sets, ways, self.sectors_per_line), dtype=bool)
        self._lru = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags.fill(-1)
        self._valid.fill(False)
        self._lru.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access_sectors(self, sector_ids: np.ndarray, is_store: bool = False) -> np.ndarray:
        """Access a batch of sector ids *in order*; return the missed ones.

        Stores are modelled write-allocate/write-back at the same
        granularity (the kernels in the paper stream their outputs, so
        store behaviour barely affects the reported metrics).
        """
        sector_ids = np.asarray(sector_ids, dtype=np.int64).ravel()
        missed: list[int] = []
        tags = self._tags
        valid = self._valid
        lru = self._lru
        spl = self.sectors_per_line
        nsets = self.num_sets
        for sid in sector_ids:
            line = sid // spl
            sub = sid % spl
            s = line % nsets
            self._clock += 1
            self.stats.sector_accesses += 1
            row = tags[s]
            hit_ways = np.nonzero(row == line)[0]
            if hit_ways.size:
                w = int(hit_ways[0])
                if valid[s, w, sub]:
                    self.stats.sector_hits += 1
                else:
                    valid[s, w, sub] = True
                    missed.append(sid)
                lru[s, w] = self._clock
            else:
                w = int(np.argmin(lru[s]))
                tags[s, w] = line
                valid[s, w] = False
                valid[s, w, sub] = True
                lru[s, w] = self._clock
                self.stats.line_fills += 1
                missed.append(sid)
        return np.asarray(missed, dtype=np.int64)


class CacheHierarchy:
    """An L1 sector cache in front of a shared L2.

    ``access`` feeds a warp's sector footprint through L1; L1 misses
    propagate to L2; L2 misses count as DRAM sectors.  The three levels'
    stats reproduce the Figure 5 ("L1$ Missed Sectors") and Figure 18
    ("Bytes L2$ -> L1$") measurements.
    """

    def __init__(self, spec: GPUSpec | None = None, l1_data_bytes: int | None = None) -> None:
        spec = spec or default_spec()
        self.spec = spec
        l1_bytes = l1_data_bytes if l1_data_bytes is not None else spec.l1_bytes_per_sm
        self.l1 = SectorCache(l1_bytes, spec.line_bytes, spec.sector_bytes, spec.l1_ways)
        self.l2 = SectorCache(spec.l2_bytes, spec.line_bytes, spec.sector_bytes, ways=16)
        self.dram_sectors = 0

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.dram_sectors = 0

    def access(self, sector_ids: np.ndarray, is_store: bool = False) -> None:
        l1_misses = self.l1.access_sectors(sector_ids, is_store)
        if l1_misses.size:
            l2_misses = self.l2.access_sectors(l1_misses, is_store)
            self.dram_sectors += int(l2_misses.size)

    @property
    def bytes_l2_to_l1(self) -> int:
        return self.l1.stats.bytes_filled

    @property
    def bytes_dram_to_l2(self) -> int:
        return self.dram_sectors * self.spec.sector_bytes

    def summary(self) -> Dict[str, float]:
        return {
            "l1_sector_accesses": self.l1.stats.sector_accesses,
            "l1_missed_sectors": self.l1.stats.sector_misses,
            "l1_hit_rate": self.l1.stats.hit_rate,
            "l2_missed_sectors": self.l2.stats.sector_misses,
            "bytes_l2_to_l1": self.bytes_l2_to_l1,
            "bytes_dram_to_l2": self.bytes_dram_to_l2,
        }
