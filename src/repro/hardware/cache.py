"""Set-associative sector-cache simulators for the L1/L2 hierarchy.

Volta caches allocate 128-byte lines but fill and transfer 32-byte
*sectors* (guide V of the paper: "exploit the 128B transaction between
L1 and L2 caches").  The experiments in Figures 5 and 18 report
*missed sectors* and *bytes moved L2 -> L1*, so the simulator tracks
both line residency and per-sector validity.

Two engines implement the same contract:

* :class:`SectorCache` — the pinned scalar reference: one Python-loop
  iteration per sector access.  Slow, obviously correct; the parity
  tests and the trace benchmark baseline run against it.
* :class:`VectorSectorCache` — the batch engine the experiments use.
  Each ``access_sectors`` batch is partitioned by cache set (sets are
  independent), consecutive same-line accesses within a set are
  collapsed into *runs*, and the per-set run sequences are resolved in
  lock-step *rounds* of NumPy array ops (at most one run per set per
  round), so the Python iteration count is the deepest per-set run
  sequence of the batch rather than the batch length.  Bit-identical
  to the scalar reference — same :class:`CacheStats`, same
  missed-sector stream, stores included — enforced by
  ``tests/test_cache_vector.py``.

Stores are write-allocate (fetch-on-write at sector granularity) and
write-back: a store miss fetches the sector exactly like a load miss
(it appears in the missed stream and in ``bytes_filled``) and marks it
dirty; evicting a line with dirty sectors counts them in
``writeback_sectors``.  Writeback traffic is *accounted*, not replayed
into the next level — the kernels in the paper stream their outputs,
so store behaviour barely affects the reported load-side metrics.

:class:`CacheHierarchy` puts an L1 (per-SM) in front of a shared L2
and returns a :class:`CacheStats` per level; ``engine`` selects the
cache class ("vector" by default, "scalar" for the reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..obs import metrics as _metrics
from .config import GPUSpec, default_spec

__all__ = ["CacheStats", "SectorCache", "VectorSectorCache", "CacheHierarchy",
           "record_metrics"]


def record_metrics(level: str, stats: "CacheStats") -> None:
    """Fold one cache's counters into the observability registry.

    ``level`` is the metric namespace ("l1"/"l2"); callers invoke this
    once per finished simulation (trace replay, hierarchy runs) — never
    per access — so the disabled path costs one boolean check.  The
    registry derives ``cache.<level>.hit_rate`` from these at snapshot
    time (``repro.obs.metrics.cache_table``).
    """
    if not _metrics.enabled():
        return
    _metrics.counter_add(f"cache.{level}.sector_accesses", stats.sector_accesses)
    _metrics.counter_add(f"cache.{level}.sector_hits", stats.sector_hits)
    _metrics.counter_add(f"cache.{level}.line_fills", stats.line_fills)
    _metrics.counter_add(f"cache.{level}.writeback_sectors", stats.writeback_sectors)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache level (sector granularity)."""

    sector_accesses: int = 0
    sector_hits: int = 0
    line_fills: int = 0
    store_accesses: int = 0
    writeback_sectors: int = 0

    @property
    def sector_misses(self) -> int:
        return self.sector_accesses - self.sector_hits

    @property
    def hit_rate(self) -> float:
        return self.sector_hits / self.sector_accesses if self.sector_accesses else 0.0

    @property
    def bytes_filled(self) -> int:
        """Bytes moved in from the next level (32 B per missed sector)."""
        return self.sector_misses * 32

    @property
    def bytes_written_back(self) -> int:
        """Bytes moved out to the next level by dirty evictions."""
        return self.writeback_sectors * 32

    def merge(self, other: "CacheStats") -> None:
        self.sector_accesses += other.sector_accesses
        self.sector_hits += other.sector_hits
        self.line_fills += other.line_fills
        self.store_accesses += other.store_accesses
        self.writeback_sectors += other.writeback_sectors


class _SectorCacheBase:
    """Shared geometry/state for the scalar and vectorised engines.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes / sector_bytes:
        Line (tag) and sector (fill) granularity; Volta uses 128/32.
    ways:
        Associativity.  Capacity/line/ways determine the set count.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 128,
        sector_bytes: int = 32,
        ways: int = 4,
    ) -> None:
        if capacity_bytes % (line_bytes * ways) != 0:
            raise ValueError("capacity must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # tags[set, way] = line id (or -1), valid[set, way, sector] = bool
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._valid = np.zeros((self.num_sets, ways, self.sectors_per_line), dtype=bool)
        self._dirty = np.zeros_like(self._valid)
        self._lru = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags.fill(-1)
        self._valid.fill(False)
        self._dirty.fill(False)
        self._lru.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access_sectors(self, sector_ids: np.ndarray, is_store: bool = False) -> np.ndarray:
        raise NotImplementedError


class SectorCache(_SectorCacheBase):
    """LRU set-associative sectored cache — the scalar reference engine.

    One Python-loop iteration per sector access; every architectural
    decision (first matching way on a hit, ``argmin`` LRU victim on a
    miss, sector-granular fills, dirty-eviction writebacks) is spelled
    out sequentially.  :class:`VectorSectorCache` must reproduce this
    engine bit for bit.
    """

    def access_sectors(self, sector_ids: np.ndarray, is_store: bool = False) -> np.ndarray:
        """Access a batch of sector ids *in order*; return the missed ones.

        ``is_store`` marks the whole batch as stores: allocation and
        fills behave exactly like loads (write-allocate, fetch on
        write), the touched sectors are additionally marked dirty, and
        ``stats.store_accesses`` counts the batch.
        """
        sector_ids = np.asarray(sector_ids, dtype=np.int64).ravel()
        missed: list[int] = []
        tags = self._tags
        valid = self._valid
        dirty = self._dirty
        lru = self._lru
        spl = self.sectors_per_line
        nsets = self.num_sets
        if is_store:
            self.stats.store_accesses += int(sector_ids.size)
        for sid in sector_ids:
            line = sid // spl
            sub = sid % spl
            s = line % nsets
            self._clock += 1
            self.stats.sector_accesses += 1
            row = tags[s]
            hit_ways = np.nonzero(row == line)[0]
            if hit_ways.size:
                w = int(hit_ways[0])
                if valid[s, w, sub]:
                    self.stats.sector_hits += 1
                else:
                    valid[s, w, sub] = True
                    missed.append(sid)
                if is_store:
                    dirty[s, w, sub] = True
                lru[s, w] = self._clock
            else:
                w = int(np.argmin(lru[s]))
                self.stats.writeback_sectors += int(dirty[s, w].sum())
                tags[s, w] = line
                valid[s, w] = False
                valid[s, w, sub] = True
                dirty[s, w] = False
                if is_store:
                    dirty[s, w, sub] = True
                lru[s, w] = self._clock
                self.stats.line_fills += 1
                missed.append(sid)
        return np.asarray(missed, dtype=np.int64)


class VectorSectorCache(_SectorCacheBase):
    """The vectorised batch engine — bit-identical to :class:`SectorCache`.

    ``access_sectors`` resolves a whole batch with NumPy array ops:

    1. stable-sort the accesses by set (in-set order preserved) and
       collapse consecutive same-line accesses into runs — a line
       cannot be evicted between two back-to-back touches, so only a
       run's first access can miss the line;
    2. rank the runs within their set; round ``r`` applies every set's
       rank-``r`` run at once (distinct sets never conflict), doing the
       tag match, first-way hit selection, LRU-victim ``argmin``,
       sector fill, and dirty/writeback accounting as array ops;
    3. recover the per-access sector hits from the per-run line
       outcome plus first-touch flags, and scatter back to the original
       access order — so the returned missed-sector stream is ordered
       exactly as the scalar engine's.

    The Python-level iteration count is the deepest per-set run
    sequence in the batch (worst case, a single-set thrash, degrades to
    the scalar engine's; typical kernel streams spread over hundreds of
    sets and collapse multi-sector segments into single runs).
    """

    def access_sectors(self, sector_ids: np.ndarray, is_store: bool = False) -> np.ndarray:
        ids = np.asarray(sector_ids, dtype=np.int64).ravel()
        n = ids.size
        if n == 0:
            return np.empty(0, dtype=np.int64)
        spl = self.sectors_per_line
        lines = ids // spl
        subs = ids % spl
        sets = lines % self.num_sets
        clock0 = self._clock

        # -- group by set, preserving in-set access order ----------------
        order = np.argsort(sets, kind="stable")
        s_sorted = sets[order]
        l_sorted = lines[order]
        subs_sorted = subs[order]

        # -- collapse consecutive same-line accesses into runs -----------
        new_set = np.empty(n, dtype=bool)
        new_set[0] = True
        np.not_equal(s_sorted[1:], s_sorted[:-1], out=new_set[1:])
        new_run = new_set.copy()
        new_run[1:] |= l_sorted[1:] != l_sorted[:-1]
        run_id = np.cumsum(new_run) - 1
        nruns = int(run_id[-1]) + 1
        run_start = np.flatnonzero(new_run)
        run_end = np.empty(nruns, dtype=np.int64)
        run_end[:-1] = run_start[1:] - 1
        run_end[-1] = n - 1
        run_set = s_sorted[run_start]
        run_line = l_sorted[run_start]
        # a way's LRU stamp is the clock of the *last* access to its
        # line; within a run the sorted order is the original order, so
        # the run's last element carries the stamp
        run_t = clock0 + 1 + order[run_end]

        # sectors the run touches, as a per-run boolean mask
        run_mask = np.zeros((nruns, spl), dtype=bool)
        run_mask[run_id, subs_sorted] = True

        # first touch of each (run, sector) pair — only these can miss
        key = run_id * spl + subs_sorted
        korder = np.argsort(key, kind="stable")
        ks = key[korder]
        kfirst = np.empty(n, dtype=bool)
        kfirst[0] = True
        np.not_equal(ks[1:], ks[:-1], out=kfirst[1:])
        first_touch = np.empty(n, dtype=bool)
        first_touch[korder] = kfirst

        # rank of each run within its set -> lock-step rounds
        run_idx = np.arange(nruns)
        first_run_of_set = np.maximum.accumulate(np.where(new_set[run_start], run_idx, 0))
        run_rank = run_idx - first_run_of_set
        rank_order = np.argsort(run_rank, kind="stable")
        counts = np.bincount(run_rank)
        offsets = np.concatenate(([0], np.cumsum(counts)))

        line_hit_run = np.zeros(nruns, dtype=bool)
        valid_before = np.zeros((nruns, spl), dtype=bool)
        tags, valid, dirty, lru = self._tags, self._valid, self._dirty, self._lru
        fills = 0
        writebacks = 0
        for r in range(counts.size):
            ridx = rank_order[offsets[r]: offsets[r + 1]]
            s = run_set[ridx]
            l = run_line[ridx]
            masks = run_mask[ridx]
            hit = (tags[s] == l[:, None]).any(axis=1)
            hi = np.flatnonzero(hit)
            if hi.size:
                sh = s[hi]
                wh = (tags[sh] == l[hi, None]).argmax(axis=1)
                line_hit_run[ridx[hi]] = True
                valid_before[ridx[hi]] = valid[sh, wh]
                valid[sh, wh] |= masks[hi]
                if is_store:
                    dirty[sh, wh] |= masks[hi]
                lru[sh, wh] = run_t[ridx[hi]]
            mi = np.flatnonzero(~hit)
            if mi.size:
                sm = s[mi]
                wv = lru[sm].argmin(axis=1)
                writebacks += int(dirty[sm, wv].sum())
                tags[sm, wv] = l[mi]
                valid[sm, wv] = masks[mi]
                dirty[sm, wv] = masks[mi] if is_store else False
                lru[sm, wv] = run_t[ridx[mi]]
                fills += mi.size

        # -- per-access outcome, back in original order -------------------
        sector_hit_sorted = np.where(
            first_touch,
            line_hit_run[run_id] & valid_before[run_id, subs_sorted],
            True,
        )
        sector_hit = np.empty(n, dtype=bool)
        sector_hit[order] = sector_hit_sorted

        self._clock = clock0 + n
        self.stats.sector_accesses += n
        self.stats.sector_hits += int(sector_hit.sum())
        self.stats.line_fills += fills
        self.stats.writeback_sectors += writebacks
        if is_store:
            self.stats.store_accesses += n
        return ids[~sector_hit]


#: engine name -> cache class, for :class:`CacheHierarchy` and the replay
ENGINES = {"scalar": SectorCache, "vector": VectorSectorCache}


class CacheHierarchy:
    """An L1 sector cache in front of a shared L2.

    ``access`` feeds a warp's sector footprint through L1; L1 misses
    propagate to L2 *as one batch*; L2 misses count as DRAM sectors.
    The three levels' stats reproduce the Figure 5 ("L1$ Missed
    Sectors") and Figure 18 ("Bytes L2$ -> L1$") measurements.
    ``engine`` selects :class:`VectorSectorCache` (default) or the
    scalar reference for both levels.
    """

    def __init__(
        self,
        spec: GPUSpec | None = None,
        l1_data_bytes: int | None = None,
        engine: str = "vector",
    ) -> None:
        spec = spec or default_spec()
        self.spec = spec
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {sorted(ENGINES)}, got {engine!r}")
        self.engine = engine
        cache_cls = ENGINES[engine]
        l1_bytes = l1_data_bytes if l1_data_bytes is not None else spec.l1_bytes_per_sm
        self.l1 = cache_cls(l1_bytes, spec.line_bytes, spec.sector_bytes, spec.l1_ways)
        self.l2 = cache_cls(spec.l2_bytes, spec.line_bytes, spec.sector_bytes, ways=16)
        self.dram_sectors = 0

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.dram_sectors = 0

    def access(self, sector_ids: np.ndarray, is_store: bool = False) -> np.ndarray:
        """Run a batch through L1 and propagate; returns the L1 misses."""
        l1_misses = self.l1.access_sectors(sector_ids, is_store)
        if l1_misses.size:
            l2_misses = self.l2.access_sectors(l1_misses, is_store)
            self.dram_sectors += int(l2_misses.size)
        return l1_misses

    @property
    def bytes_l2_to_l1(self) -> int:
        return self.l1.stats.bytes_filled

    @property
    def bytes_dram_to_l2(self) -> int:
        return self.dram_sectors * self.spec.sector_bytes

    def record_metrics(self) -> None:
        """Fold both levels' counters into the observability registry."""
        record_metrics("l1", self.l1.stats)
        record_metrics("l2", self.l2.stats)

    def summary(self) -> Dict[str, float]:
        return {
            "l1_sector_accesses": self.l1.stats.sector_accesses,
            "l1_missed_sectors": self.l1.stats.sector_misses,
            "l1_hit_rate": self.l1.stats.hit_rate,
            "l2_missed_sectors": self.l2.stats.sector_misses,
            "bytes_l2_to_l1": self.bytes_l2_to_l1,
            "bytes_dram_to_l2": self.bytes_dram_to_l2,
            "bytes_l1_writeback": self.l1.stats.bytes_written_back,
            "bytes_l2_writeback": self.l2.stats.bytes_written_back,
        }
