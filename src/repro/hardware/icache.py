"""L0 instruction-cache model.

Section 3.2: "Volta uses one 128-bit word to encode each instruction,
and each sub-core has a 12 KiB L0 instruction cache, so the L0 can only
store 768 instructions.  When block size is 4, the [Blocked-ELL] SASS
code has 4600 lines, so the 'No Instruction' stall is majorly caused by
L0 capacity misses."

Two fetch regimes are modelled:

* **streaming** (``loop_back=False``) — a big unrolled straight-line
  body executed front-to-back per tile (the FPU kernels): sequential
  prefetch keeps up most of the time; the stall share grows smoothly
  with the overflow ratio.  Calibrated through the paper's measured
  pairs (3776 lines -> 11.0%, 6968 lines -> 52.2%, Table 2).
* **loop-back** (``loop_back=True``) — a loop body larger than L0
  re-executed every iteration (the Blocked-ELL kernel): with LRU the
  whole body misses every trip, so the stall share approaches the
  saturation level directly (4600 lines -> 42.6%, Table 1).

Kernels whose working set fits the 768-entry L0 (the octet kernels at
384-416 lines) see only the ~1% residual of cold misses and branch
resteers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import GPUSpec, default_spec

__all__ = ["ICacheModel", "icache_stall_fraction"]

#: Saturation level of the "No Instruction" stall share.
_SATURATION = 0.55
#: Logistic fit through (3776, 0.110) and (6968, 0.522) in log-overflow.
_LOGISTIC_K = 6.91
_LOGISTIC_X0 = 1.792


@dataclass(frozen=True)
class ICacheModel:
    """Static program-size information for a kernel."""

    sass_lines: int                    # total static instructions
    hot_loop_lines: int | None = None  # steady-state loop body, if smaller
    loop_back: bool = False            # body re-fetched every iteration

    @property
    def working_set(self) -> int:
        return self.hot_loop_lines if self.hot_loop_lines else self.sass_lines


def icache_stall_fraction(model: ICacheModel, spec: GPUSpec | None = None) -> float:
    """Estimated fraction of scheduler cycles stalled on "No Instruction"."""
    spec = spec or default_spec()
    cap = spec.l0_icache_instrs
    ws = model.working_set
    if ws <= cap:
        return 0.01
    overflow = ws / cap
    if model.loop_back:
        # every loop trip re-misses the body beyond capacity
        frac = _SATURATION * (1.0 - cap / ws)
    else:
        x = math.log(overflow)
        frac = _SATURATION / (1.0 + math.exp(-(x - _LOGISTIC_X0) * _LOGISTIC_K))
    return max(0.01, min(_SATURATION, frac))
