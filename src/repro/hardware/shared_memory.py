"""Banked shared-memory model.

Shared memory on Volta has 32 banks of 4 bytes.  A warp-level LDS/STS is
serviced in as many conflict-free *wavefronts* as the worst per-bank
collision count; each wavefront moves up to 128 B.  The "Short
Scoreboard" stall reason the paper profiles (Table 1) is the warp
waiting on shared-memory returns, so the latency model needs both the
wavefront count (bandwidth) and the request count (latency events).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import GPUSpec, default_spec

__all__ = ["SharedMemoryStats", "bank_conflicts", "SharedMemoryModel"]


def bank_conflicts(
    lane_addresses: np.ndarray,
    bytes_per_lane: int = 4,
    spec: GPUSpec | None = None,
) -> int:
    """Wavefronts needed to service one warp shared-memory access.

    Wide accesses are issued the way the hardware does it: LDS.64
    serves half-warps and LDS.128 quarter-warps, each phase moving up
    to 128 B.  Within a phase the conflict degree is the worst per-bank
    count of *distinct* 4-byte words (lanes reading the same word
    broadcast for free).
    """
    spec = spec or default_spec()
    lane_addresses = np.asarray(lane_addresses, dtype=np.int64).ravel()
    if lane_addresses.size == 0:
        return 0
    words_per_lane = max(1, bytes_per_lane // spec.shared_bank_bytes)
    lanes_per_phase = max(1, 32 // words_per_lane)
    total = 0
    for lo in range(0, lane_addresses.size, lanes_per_phase):
        lanes = lane_addresses[lo : lo + lanes_per_phase]
        # expand each lane to its consecutive 4B words
        words = (
            lanes[:, None] // spec.shared_bank_bytes + np.arange(words_per_lane)[None, :]
        ).ravel()
        banks = words % spec.shared_banks
        uniq = np.unique(np.stack([banks, words], axis=1), axis=0)
        counts = np.bincount(uniq[:, 0].astype(np.int64), minlength=spec.shared_banks)
        total += int(counts.max()) if counts.size else 1
    return total


@dataclass
class SharedMemoryStats:
    """Aggregate shared-memory traffic for a kernel."""

    load_requests: int = 0
    store_requests: int = 0
    load_wavefronts: int = 0
    store_wavefronts: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    @property
    def requests(self) -> int:
        return self.load_requests + self.store_requests

    @property
    def wavefronts(self) -> int:
        return self.load_wavefronts + self.store_wavefronts

    def merge(self, other: "SharedMemoryStats") -> None:
        self.load_requests += other.load_requests
        self.store_requests += other.store_requests
        self.load_wavefronts += other.load_wavefronts
        self.store_wavefronts += other.store_wavefronts
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored

    def bulk(
        self,
        requests: int,
        wavefronts_per_request: float,
        bytes_per_request: int,
        is_store: bool = False,
    ) -> None:
        """Record many identical warp accesses at once (analytic path)."""
        waves = int(round(requests * wavefronts_per_request))
        nbytes = requests * bytes_per_request
        if is_store:
            self.store_requests += requests
            self.store_wavefronts += waves
            self.bytes_stored += nbytes
        else:
            self.load_requests += requests
            self.load_wavefronts += waves
            self.bytes_loaded += nbytes


class SharedMemoryModel:
    """Counts warp-level shared-memory traffic for the latency model."""

    def __init__(self, spec: GPUSpec | None = None) -> None:
        self.spec = spec or default_spec()
        self.stats = SharedMemoryStats()

    def request(
        self,
        lane_addresses: np.ndarray,
        bytes_per_lane: int,
        is_store: bool = False,
    ) -> int:
        """Record one warp access; returns its wavefront count."""
        waves = bank_conflicts(lane_addresses, bytes_per_lane, self.spec)
        nbytes = int(np.asarray(lane_addresses).size) * bytes_per_lane
        if is_store:
            self.stats.store_requests += 1
            self.stats.store_wavefronts += waves
            self.stats.bytes_stored += nbytes
        else:
            self.stats.load_requests += 1
            self.stats.load_wavefronts += waves
            self.stats.bytes_loaded += nbytes
        return waves

    def bulk(self, requests: int, wavefronts_per_request: float, bytes_per_request: int, is_store: bool = False) -> None:
        """Record many identical accesses at once (analytic path)."""
        waves = int(round(requests * wavefronts_per_request))
        nbytes = requests * bytes_per_request
        if is_store:
            self.stats.store_requests += requests
            self.stats.store_wavefronts += waves
            self.stats.bytes_stored += nbytes
        else:
            self.stats.load_requests += requests
            self.stats.load_wavefronts += waves
            self.stats.bytes_loaded += nbytes
