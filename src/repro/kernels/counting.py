"""Shared instruction/traffic counting helpers for the kernel models.

The derivations below are referenced by the per-kernel ``_stats``
implementations; keeping them here makes the per-kernel code read like
the paper's own accounting.

Conventions
-----------
* All instruction counts are *warp-level issued* instructions (what
  Nsight's ``inst_executed`` reports divided by warp).
* ``ldg128_count(bytes)`` — warp instructions needed to move ``bytes``
  with 16 B per lane: one LDG.128 covers 512 B per warp.
* A perfectly 128B-coalesced LDG.128 touches 16 sectors in 4
  transactions (Sectors/Req = 16); an LDG.32 over 32 consecutive
  4-byte lanes touches 4 sectors (Sectors/Req = 4) — exactly the two
  regimes contrasted in Table 2.
"""

from __future__ import annotations

import math

import numpy as np


__all__ = [
    "ldg_instructions",
    "sectors_for",
    "segment_lengths",
    "sputnik_sass_lines",
    "warp_reduce_steps",
]


def ldg_instructions(bytes_per_warp_op: float, lane_bytes: int) -> float:
    """Warp-level load instructions to move ``bytes`` at ``lane_bytes``/lane."""
    per_instr = 32 * lane_bytes
    return bytes_per_warp_op / per_instr


def sectors_for(nbytes: float, contiguous: bool = True, lane_bytes: int = 4) -> float:
    """Sectors requested when loading ``nbytes``.

    ``contiguous`` — the warp's lanes cover a dense byte range: sectors
    = bytes / 32.  Non-contiguous per-lane strided accesses touch one
    sector per lane chunk (worst case used for scattered index loads).
    """
    if contiguous:
        return nbytes / 32.0
    return nbytes / lane_bytes  # one sector per lane element


def segment_lengths(row_ptr: np.ndarray) -> np.ndarray:
    """Per-row nonzero counts from a CSR row pointer."""
    return np.diff(np.asarray(row_ptr, dtype=np.int64))


def sputnik_sass_lines(vector_length: int) -> int:
    """Static SASS size of the FPU (Sputnik-extended) kernels.

    §7.2.2 reports 3776 lines for V=4 and 6968 for V=8 — the fully
    unrolled V x TileK x TileN loops.  The sizes are linear in V; we
    interpolate/extrapolate the measured pair.
    """
    return int(round(584 + 798 * vector_length))


def warp_reduce_steps(participants: int) -> int:
    """SHFL rounds of a butterfly reduction across ``participants``."""
    if participants <= 1:
        return 0
    return int(math.ceil(math.log2(participants)))
