"""Shared workload analysis for the SDDMM kernels.

All three SDDMM tilings launch a dense grid of ``ceil(M/V) x
ceil(N/TileN)`` CTAs (§6.4: "⌈M/V⌉ x ⌈N/32⌉ CTAs will be launched,
each processes an V x 32 output tile"); a CTA gathers only the nonzero
output vectors whose columns fall inside its window and exits
immediately when the window is empty.  The per-window occupancy
therefore drives every kernel's work, and is computed here once,
vectorised over the whole mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix

__all__ = ["WindowProfile", "analyze_windows"]


@dataclass
class WindowProfile:
    """Occupancy of the (vector-row x column-window) grid."""

    num_vector_rows: int
    num_windows: int
    window_cols: int
    #: nonzero vectors in each occupied window
    occupied_counts: np.ndarray
    total_vectors: int

    @property
    def num_ctas_total(self) -> int:
        """Launched CTAs (dense grid)."""
        return self.num_vector_rows * self.num_windows

    @property
    def num_ctas_active(self) -> int:
        """CTAs that find at least one nonzero vector."""
        return int(self.occupied_counts.size)

    def substeps(self, vectors_per_substep: int) -> float:
        """Total compacted sub-steps: sum of ceil(count / group)."""
        if self.occupied_counts.size == 0:
            return 0.0
        return float(np.ceil(self.occupied_counts / vectors_per_substep).sum())


def analyze_windows(mask: ColumnVectorSparseMatrix, window_cols: int) -> WindowProfile:
    """Count nonzero vectors per (vector row, column window) cell."""
    n_vr = mask.num_vector_rows
    n_win = -(-mask.shape[1] // window_cols)
    vrows = np.repeat(np.arange(n_vr, dtype=np.int64), mask.vector_row_nnz())
    wins = mask.col_idx // window_cols
    keys = vrows * n_win + wins
    counts = np.bincount(keys, minlength=n_vr * n_win)
    occupied = counts[counts > 0]
    return WindowProfile(
        num_vector_rows=n_vr,
        num_windows=n_win,
        window_cols=window_cols,
        occupied_counts=occupied,
        total_vectors=mask.nnz_vectors,
    )
