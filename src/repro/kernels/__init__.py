"""Kernel implementations: the paper's designs plus every baseline.

SpMM (``C = A_sparse @ B``, A in CVSE):

* :class:`OctetSpmmKernel` — TCU-based 1-D Octet Tiling (§5.3-5.4);
* :class:`FpuSpmmKernel` — FPU 1-D subwarp tiling, Sputnik-extended (§5.1);
* :class:`WmmaSpmmKernel` — TCU 1-D warp tiling, classic mapping (§5.2);
* :class:`BlockedEllSpmmKernel` — cuSPARSE Blocked-ELL analog (§3.2);
* :class:`CusparseCsrSpmmKernel` — cuSPARSE fine-grained CSR analog.

SDDMM (``C = (A @ B) ∘ D``, D a CVSE mask):

* :class:`OctetSddmmKernel` — TCU-based 1-D Octet Tiling with the
  ``reg``/``shfl``/``arch`` inverted-pattern variants (§6.3-6.4);
* :class:`FpuSddmmKernel` — FPU 1-D subwarp tiling (§6.1);
* :class:`WmmaSddmmKernel` — TCU 1-D warp tiling (§6.2);
* :class:`CusparseSddmmKernel` — cuSPARSE fine-grained analog.

Plus :class:`DenseGemmKernel` (cublasHgemm/Sgemm analogs) and
:class:`SparseSoftmaxKernel` (§7.4).  The convenience wrappers
:func:`spmm` / :func:`sddmm` / :func:`sparse_softmax` /
:func:`dense_gemm` pick kernels by name.
"""

from .base import Kernel, KernelResult, Precision
from .batched import batched_sddmm, batched_spmm
from .cusparse import BlockedEllSpmmKernel, CusparseCsrSpmmKernel, CusparseSddmmKernel
from .dispatch import SDDMM_KERNELS, SPMM_KERNELS, dense_gemm, sddmm, sparse_softmax, spmm
from .functional import sddmm_functional, spmm_functional
from .gemm import DenseGemmKernel
from .sddmm_common import WindowProfile, analyze_windows
from .sddmm_fpu import FpuSddmmKernel
from .sddmm_octet import SDDMM_VARIANTS, OctetSddmmKernel
from .sddmm_wmma import WmmaSddmmKernel
from .softmax_sparse import SparseSoftmaxKernel
from .spmm_fpu import FpuSpmmKernel
from .spmm_octet import OctetSpmmKernel
from .spmm_wmma import WmmaSpmmKernel

__all__ = [
    "Kernel",
    "KernelResult",
    "Precision",
    "BlockedEllSpmmKernel",
    "CusparseCsrSpmmKernel",
    "CusparseSddmmKernel",
    "DenseGemmKernel",
    "FpuSddmmKernel",
    "FpuSpmmKernel",
    "OctetSddmmKernel",
    "OctetSpmmKernel",
    "SDDMM_VARIANTS",
    "SDDMM_KERNELS",
    "SPMM_KERNELS",
    "SparseSoftmaxKernel",
    "WindowProfile",
    "WmmaSddmmKernel",
    "WmmaSpmmKernel",
    "analyze_windows",
    "batched_sddmm",
    "batched_spmm",
    "dense_gemm",
    "sddmm",
    "sddmm_functional",
    "sparse_softmax",
    "spmm",
    "spmm_functional",
]
