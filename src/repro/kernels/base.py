"""Kernel abstraction shared by all dense/sparse kernels.

A *kernel* here is the pair of (a) a functional computation on NumPy
arrays with the same numeric semantics as the CUDA original (fp16
operands, fp32 accumulation where the original accumulates in fp32) and
(b) an analytic :class:`~repro.perfmodel.events.KernelStats` describing
what the original would execute on the simulated device.  The two are
produced together by :meth:`Kernel.run`.

``precision`` selects the operand width ("half" = 2-byte operands, the
paper's focus; "single" = 4-byte, used by the Figure 4 baselines).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..hardware.config import GPUSpec, default_spec
from ..perfmodel.events import KernelStats
from ..perfmodel.latency import LatencyEstimate, LatencyModel

__all__ = ["KernelResult", "Kernel", "Precision", "elem_bytes", "as_compute"]

Precision = str  # "half" | "single"


def elem_bytes(precision: Precision) -> int:
    """Operand width in bytes (half = 2, single = 4)."""
    if precision == "half":
        return 2
    if precision == "single":
        return 4
    raise ValueError(f"unknown precision {precision!r}")


def as_compute(x: np.ndarray, precision: Precision) -> np.ndarray:
    """Round operands to the storage precision, return fp32 for math.

    fp32 multiply-accumulate over fp16-valued inputs matches the HMMA
    and HMUL+FADD paths; for "single" the operands are already fp32.
    """
    if precision == "half":
        return x.astype(np.float16).astype(np.float32)
    return x.astype(np.float32)


@dataclass
class KernelResult:
    """Output of one kernel execution."""

    output: Any
    stats: KernelStats
    latency: LatencyEstimate

    @property
    def time_us(self) -> float:
        return self.latency.time_us

    def speedup_over(self, other: "KernelResult") -> float:
        return other.time_us / self.time_us


class Kernel(abc.ABC):
    """Base class: subclasses implement ``_execute`` and ``_stats``."""

    #: human-readable kernel family name (used in reports)
    name: str = "kernel"
    #: relative throughput calibration (fraction of modelled peak the
    #: real kernel achieves; fit once against the paper's measurements)
    efficiency: float = 0.75

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "half") -> None:
        self.spec = spec or default_spec()
        self.precision = precision
        if precision not in ("half", "single"):
            raise ValueError(f"unknown precision {precision!r}")
        self._model = LatencyModel(self.spec, efficiency=self.efficiency)

    # subclasses override -------------------------------------------------- #
    @abc.abstractmethod
    def _execute(self, *args, **kwargs):
        """Functional computation; returns the output object."""

    @abc.abstractmethod
    def _stats(self, *args, **kwargs) -> KernelStats:
        """Analytic device statistics for the same launch."""

    # public API ------------------------------------------------------------ #
    def run(self, *args, **kwargs) -> KernelResult:
        """Execute the kernel: numerics + modelled latency together."""
        out = self._execute(*args, **kwargs)
        stats = self._stats(*args, **kwargs)
        latency = self._model.estimate(stats)
        return KernelResult(output=out, stats=stats, latency=latency)

    def estimate(self, *args, **kwargs) -> LatencyEstimate:
        """Latency without executing the math (cheap parameter sweeps)."""
        return self._model.estimate(self._stats(*args, **kwargs))
