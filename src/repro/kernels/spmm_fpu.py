"""FPU-based 1-D Subwarp Tiling SpMM — the Sputnik-extended baseline (§5.1).

The original Sputnik kernel (V = 1, fine-grained) is the same design;
the extension handles column vectors of length V.  The configuration
modelled is the paper's *tuned* one (§7.2.2): "#Subwarp = 1 to improve
the grid size ... at the cost of using shorter vector memory
operations" — one 32-thread subwarp per CTA, ``TileN = 64``, each lane
owning two output columns, so RHS loads are LDG.32 over 32 consecutive
4-byte lanes (Sectors/Req ~= 4, the red entry in Table 2).

Performance character (why the octet kernel beats it):

* the fully unrolled V x TileK x TileN loops blow the SASS size past
  the L0 i-cache (3776 lines at V=4, 6968 at V=8 — §7.2.2), causing
  "No Instruction" stalls;
* every multiply-accumulate is an HMUL2 + two FADDs (fp32
  accumulation to control error) plus the IMAD/IADD3 addressing
  chains — the "Wait" stalls of Table 2;
* under single precision (the Figure 4 Sputnik baseline) the math is
  FFMA and operands are twice as wide.
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes, work_imbalance
from .base import Kernel, Precision, elem_bytes
from .counting import sputnik_sass_lines
from .functional import spmm_functional

__all__ = ["FpuSpmmKernel"]


class FpuSpmmKernel(Kernel):
    """SpMM on the FPU with 1-D subwarp tiling (extended Sputnik)."""

    TILE_N = 64
    TILE_K = 32
    CTA_SIZE = 32        # tuned: one subwarp per CTA

    efficiency = 0.70

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "half") -> None:
        super().__init__(spec, precision)
        self.name = "spmm-fpu-subwarp" if precision == "half" else "sputnik-spmm-sp"

    # ------------------------------------------------------------------ #
    def _execute(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        out_dtype = np.float16 if self.precision == "half" else np.float32
        return spmm_functional(a, b, self.precision, out_dtype=out_dtype)

    # ------------------------------------------------------------------ #
    def _stats(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> KernelStats:
        return self.stats_for(a, np.asarray(b).shape[1])

    @memo.memoised_stats
    def stats_for(self, a: ColumnVectorSparseMatrix, n: int) -> KernelStats:
        spec = self.spec
        eb = elem_bytes(self.precision)
        v = a.vector_length
        m, k = a.shape
        row_nnz = a.vector_row_nnz().astype(np.float64)
        n_tiles = ceil_div(n, self.TILE_N)
        launch = LaunchConfig(grid_x=a.num_vector_rows, grid_y=n_tiles, cta_size=self.CTA_SIZE)

        nnz_total = float(row_nnz.sum()) * n_tiles
        strides_total = float(np.ceil(row_nnz / self.TILE_K).sum()) * n_tiles

        cols_per_lane = self.TILE_N // 32  # 2 output columns per lane
        mix = InstructionMix()
        # math per nonzero vector: V x TileN MACs; per lane V x 2.
        if self.precision == "half":
            # packed HMUL2 (2 columns at once) + fp32 FADD per MAC + the
            # F2F conversions Sputnik inserts to accumulate in fp32 (§3.1)
            mix.add(InstrClass.HMUL2, nnz_total * v)
            mix.add(InstrClass.FADD, nnz_total * v * cols_per_lane)
            mix.add(InstrClass.F2F, nnz_total * v * 0.5)
        else:
            mix.add(InstrClass.FFMA, nnz_total * v * cols_per_lane)
        # RHS: per vector, each lane loads its 2 columns: 32 lanes x 4B
        # = one LDG.32 (half) / two LDG.32 (single) — 128B coalesced.
        mix.add(InstrClass.LDG32, nnz_total * (1.0 if eb == 2 else 2.0))
        # LHS values + indices staged to shared per stride
        lhs_bytes = self.TILE_K * v * eb
        mix.add(InstrClass.LDG128, strides_total * max(1.0, lhs_bytes / 512.0))
        mix.add(InstrClass.LDG32, strides_total)  # column indices
        mix.add(InstrClass.STS, strides_total * max(1.0, lhs_bytes / 512.0))
        mix.add(InstrClass.LDS, nnz_total)        # re-read value + index per vector
        mix.add(InstrClass.BAR, strides_total)
        # addressing: per-vector offset math is the kernel's Achilles heel
        mix.add(InstrClass.IMAD, nnz_total * 2.0)
        mix.add(InstrClass.IADD3, nnz_total * 1.0)
        mix.add(InstrClass.MISC, strides_total * 4.0 + launch.num_ctas * 10.0)
        mix.add(InstrClass.BRANCH, strides_total)
        out_bytes_per_cta = v * self.TILE_N * eb
        mix.add(InstrClass.STG, launch.num_ctas * max(1.0, out_bytes_per_cta / 512.0))

        gm = GlobalTraffic()
        gm.load_requests = float(
            mix[InstrClass.LDG32] + mix[InstrClass.LDG64] + mix[InstrClass.LDG128]
        )
        gm.store_requests = float(mix[InstrClass.STG])
        # each per-vector RHS request covers 128 B = 4 sectors (the
        # Sectors/Req ~ 4 row of Table 2)
        gm.load_sectors = nnz_total * (128.0 * (1 if eb == 2 else 2)) / 32.0 + strides_total * (
            (lhs_bytes + self.TILE_K * 4) / 32.0
        )
        gm.store_sectors = launch.num_ctas * out_bytes_per_cta / 32.0
        gm.bytes_requested = (
            nnz_total * self.TILE_N * eb
            + nnz_total * (v * eb + 4.0) / max(1, n_tiles) * n_tiles
            + launch.num_ctas * out_bytes_per_cta
        )
        # same small-CTA inter-CTA L1 sharing as the octet kernel —
        # memory-side the FPU design is healthy (its losses are
        # instruction-side, §7.2.2)
        coresident = 32
        b_requested = nnz_total * self.TILE_N * eb
        density = min(1.0, float(row_nnz.mean()) / k) if k else 1.0
        b_fetched = coresident_reuse_bytes(
            b_requested,
            num_groups=max(1, launch.num_ctas // coresident),
            density=density,
            group_rows=coresident,
            # Sputnik configures a large shared-memory carveout for
            # its double-buffered staging, leaving ~32 KiB of data L1 —
            # which is why §3.1 finds its miss-rate benefit from
            # reduced precision "limited" (48.8% vs GEMM's 77%).
            l1_effective_bytes=32 * 1024,
        )
        stream_bytes = nnz_total * (v * eb + 4.0) + launch.num_ctas * out_bytes_per_cta
        gm.bytes_l2_to_l1 = b_fetched + stream_bytes
        unique = a.memory_bytes() + k * n * eb + m * n * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        # registers: V x 2 fp32 accumulators + unrolled operand buffers
        regs = 28 + 2 * v * cols_per_lane + 2 * v
        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=min(regs, 255),
                shared_bytes_per_cta=lhs_bytes + self.TILE_K * 4,
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=sputnik_sass_lines(v)),
            flops=2.0 * nnz_total * v * self.TILE_N,
            ilp=2.0,  # the compiler serialises the unrolled MAC chains
            stall_correlation=0.35,  # per-stride barriers around the LHS stage
            work_imbalance=work_imbalance(np.tile(row_nnz, n_tiles), spec.num_sms),
        )
        stats.shared_mem.bulk(
            requests=int(nnz_total), wavefronts_per_request=1.0, bytes_per_request=v * eb + 4
        )
        stats.shared_mem.bulk(
            requests=int(strides_total),
            wavefronts_per_request=1.0,
            bytes_per_request=lhs_bytes,
            is_store=True,
        )
        return stats
