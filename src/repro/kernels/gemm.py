"""Dense GEMM baselines: analogs of ``cublasHgemm``/``cublasSgemm``.

The dense baseline only appears as the denominator of every speedup in
the paper, so what matters is that its model captures the two effects
§3.1 profiles:

* **HGEMM** uses the TCU (FMA-pipe utilisation drops from 88% to a 15%
  tensor-pipe load, 92% fewer math instructions) and benefits doubly
  from reduced precision because the same shared-memory bytes hold
  twice the operands — its per-tile data reuse follows the
  I/O lower bound Q ~= 2mnk / sqrt(S/b) of Kwasniewski et al.;
* **SGEMM** runs on the FP32 FMA pipe and is compute-bound at these
  shapes.

Both are modelled as the classic 128x128 CTA-tile kernel with
double-buffered shared-memory staging (the access pattern behind the
"#shared loads / #global loads = 4.17" figure of §3.2).
"""

from __future__ import annotations

import numpy as np

from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from .base import Kernel, Precision, as_compute, elem_bytes

__all__ = ["DenseGemmKernel"]


class DenseGemmKernel(Kernel):
    """``C[MxN] = A[MxK] @ B[KxN]`` at the given precision.

    Parameters
    ----------
    precision:
        "half" -> cublasHgemm analog (TCU); "single" -> cublasSgemm
        (FP32 FMA pipe).
    """

    TILE_M = 128
    TILE_N = 128
    TILE_K = 32
    CTA_SIZE = 256

    #: measured cuBLAS efficiency on V100 for mid-size GEMMs
    efficiency = 0.72

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "half") -> None:
        super().__init__(spec, precision)
        self.name = "cublasHgemm" if precision == "half" else "cublasSgemm"

    # ------------------------------------------------------------------ #
    def _execute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a32 = as_compute(np.asarray(a), self.precision)
        b32 = as_compute(np.asarray(b), self.precision)
        if a32.shape[1] != b32.shape[0]:
            raise ValueError(f"inner dims mismatch: {a32.shape} @ {b32.shape}")
        out = a32 @ b32
        return out.astype(np.float16) if self.precision == "half" else out

    # ------------------------------------------------------------------ #
    def _stats(self, a: np.ndarray, b: np.ndarray) -> KernelStats:
        m, k = np.asarray(a).shape
        k2, n = np.asarray(b).shape
        return self.stats_for_shape(m, k, n)

    #: tile candidates cuBLAS's heuristic chooses from, largest first;
    #: smaller tiles trade reuse for grid size on skinny problems.
    TILE_CANDIDATES = ((128, 128, 256), (128, 64, 256), (64, 64, 128), (64, 32, 128), (32, 32, 64))

    def _pick_tile(self, m: int, n: int) -> tuple:
        """Prefer big tiles, but keep at least ~1.5 CTAs per SM."""
        target = int(1.5 * self.spec.num_sms)
        for tm, tn, cta in self.TILE_CANDIDATES:
            if ceil_div(m, tm) * ceil_div(n, tn) >= target:
                return tm, tn, cta
        return self.TILE_CANDIDATES[-1]

    @memo.memoised_stats
    def stats_for_shape(self, m: int, k: int, n: int) -> KernelStats:
        """Analytic stats from the problem shape alone."""
        eb = elem_bytes(self.precision)
        spec = self.spec
        tile_m, tile_n, cta_size = self._pick_tile(m, n)
        grid_x = ceil_div(m, tile_m)
        grid_y = ceil_div(n, tile_n)
        launch = LaunchConfig(grid_x=grid_x, grid_y=grid_y, cta_size=cta_size)
        warps = launch.total_warps

        mix = InstructionMix()
        macs = float(m) * n * k
        if self.precision == "half":
            # one warp-wide HMMA.884 step = 256 MACs
            mix.add(InstrClass.HMMA, macs / 256.0)
            regs = 128
        else:
            # one warp FFMA = 32 MACs
            mix.add(InstrClass.FFMA, macs / 32.0)
            regs = 96

        # global loads: each CTA stages its A and B tiles once per K step
        k_steps = ceil_div(k, self.TILE_K)
        tile_bytes = (tile_m + tile_n) * self.TILE_K * eb
        bytes_staged = launch.num_ctas * k_steps * tile_bytes
        ldg = bytes_staged / (32 * 16)  # LDG.128 all the way
        mix.add(InstrClass.LDG128, ldg)
        mix.add(InstrClass.STS, ldg)
        # shared reloads: operands are re-read from shared for every MAC
        # column/row of the register tile; cuBLAS shows ~4.17 LDS per LDG.
        lds = ldg * 4.17
        mix.add(InstrClass.LDS, lds)
        mix.add(InstrClass.BAR, launch.num_ctas * k_steps * (cta_size // 32))
        # epilogue stores
        out_bytes = float(m) * n * eb
        mix.add(InstrClass.STG, out_bytes / (32 * 16))
        # addressing: a handful per K step per warp (well-optimised SASS)
        mix.add(InstrClass.IMAD, warps * k_steps * 4.0)
        mix.add(InstrClass.MISC, warps * k_steps * 4.0)

        gm = GlobalTraffic()
        gm.load_requests = ldg
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = bytes_staged / 32.0
        gm.store_sectors = out_bytes / 32.0
        gm.bytes_requested = bytes_staged + out_bytes
        # per-CTA compulsory footprint: its A and B stripes (L1/shared
        # capture all intra-CTA reuse in this kernel).  Kwasniewski et
        # al.'s I/O lower bound Q = b·2mnk/sqrt(S/b) scales as b^1.5:
        # halving the operand width lets cuBLAS deepen its tiles in the
        # same fast memory, so traffic drops by sqrt(2) *beyond* the
        # byte-count halving (the -77% of Figure 5, vs -49% for SpMM).
        # measured reductions run ahead of the bound (cuBLAS also
        # doubles its half-precision tile depth): scale ~ b^2 overall
        io_bound_scale = eb / 4.0
        per_cta = (tile_m * k + tile_n * k) * eb * io_bound_scale
        gm.bytes_l2_to_l1 = launch.num_ctas * per_cta + out_bytes
        unique = (m * k + k * n + m * n) * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        shared = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=cta_size,
                registers_per_thread=regs,
                shared_bytes_per_cta=2 * tile_bytes,  # double buffered
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=640, hot_loop_lines=420),
            flops=2.0 * macs,
            ilp=6.0,  # cuBLAS keeps long independent chains in flight
            stall_correlation=0.15,  # double buffering decouples the warps
        )
        shared.shared_mem.bulk(
            requests=int(lds), wavefronts_per_request=1.0, bytes_per_request=32 * eb
        )
        shared.shared_mem.bulk(
            requests=int(ldg), wavefronts_per_request=1.0, bytes_per_request=32 * 16, is_store=True
        )
        return shared
