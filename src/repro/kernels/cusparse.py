"""cuSPARSE analogs: Blocked-ELL SpMM and fine-grained CSR SpMM/SDDMM.

``BlockedEllSpmmKernel`` models the TCU kernel behind
``cusparseSpMM`` on Blocked-ELL input (§3.2), the paper's structured
TCU baseline ("blocked-ELL" in Figures 6/17, Tables 1/2).  Its three
measured pathologies are modelled explicitly:

* a ~4600-line SASS body that thrashes the 768-entry L0 i-cache
  ("No Instruction" 42.6% at block 4);
* heavy IMAD/IADD3 tile-address arithmetic ("Wait" 21.0%);
* both operands staged through shared memory behind barriers with
  little reuse (shared/global load ratio 0.87, "Short Scoreboard"
  11.9%) — which also shrinks the usable L1;
* at block sizes below the native wmma grain the TCU computes padded
  tiles: the waste factor is 8x at B=4, 2x at B=8, 1x at B=16 — the
  shape of Figure 6.

``CusparseCsrSpmmKernel`` / ``CusparseSddmmKernel`` model the
fine-grained CSR kernels used in Figure 4.  They share the Sputnik
dataflow but with scalar (non-vector) loads and heavier per-nonzero
index processing — cuSPARSE targets >= 95% sparsity and is slower than
Sputnik below that (§2.3), except SDDMM at single precision where
v11.2.2 is ahead (§3.1 footnote).
"""

from __future__ import annotations

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.csr import CSRMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes
from .base import Kernel, Precision, as_compute, elem_bytes

__all__ = ["BlockedEllSpmmKernel", "CusparseCsrSpmmKernel", "CusparseSddmmKernel"]


def _tcu_waste(block: int) -> float:
    """HMMA padding waste of the wmma-based Blocked-ELL kernel."""
    if block >= 16:
        return 1.0
    if block >= 8:
        return 2.0
    return 8.0  # B=4: k padded 4x, m padded 2x


class BlockedEllSpmmKernel(Kernel):
    """cusparseSpMM on Blocked-ELL input (half precision, TCU)."""

    TILE_N = 128
    CTA_SIZE = 128

    efficiency = 0.70

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "half") -> None:
        if precision != "half":
            raise ValueError("the Blocked-ELL SpMM of §3.2 is the half-precision TCU path")
        super().__init__(spec, precision)
        self.name = "cusparse-blocked-ell"

    def _execute(self, a: BlockedEllMatrix, b: np.ndarray) -> np.ndarray:
        a32 = as_compute(a.to_dense(np.float32), self.precision)
        b32 = as_compute(np.asarray(b), self.precision)
        return (a32 @ b32).astype(np.float16)

    def _stats(self, a: BlockedEllMatrix, b: np.ndarray) -> KernelStats:
        return self.stats_for(a, np.asarray(b).shape[1])

    @memo.memoised_stats
    def stats_for(self, a: BlockedEllMatrix, n: int) -> KernelStats:
        spec = self.spec
        eb = 2
        bsz = a.block_size
        m, k = a.shape
        n_tiles = ceil_div(n, self.TILE_N)
        launch = LaunchConfig(grid_x=a.num_block_rows, grid_y=n_tiles, cta_size=self.CTA_SIZE)
        warps = launch.total_warps

        blocks_total = float(a.col_blocks.shape[0] * a.ell_width) * n_tiles  # incl. padding
        nnz_scalars = blocks_total * bsz * bsz

        mix = InstructionMix()
        macs = nnz_scalars * self.TILE_N
        mix.add(InstrClass.HMMA, macs * _tcu_waste(bsz) / 256.0)
        # both operands staged through shared memory (guideline IV violated)
        a_bytes = nnz_scalars * eb
        b_bytes = blocks_total * bsz * self.TILE_N * eb
        ldg = (a_bytes + b_bytes) / (32 * 16)
        mix.add(InstrClass.LDG128, ldg)
        mix.add(InstrClass.STS, ldg)
        mix.add(InstrClass.LDS, ldg * 0.87)  # the measured reuse-starved ratio
        mix.add(InstrClass.BAR, blocks_total / max(1.0, a.ell_width) * 2.0 + blocks_total * 0.5)
        # tile-address arithmetic: the IMAD/IADD3-heavy SASS (27.4% of
        # executed instructions at block 4, §3.2)
        addr = (mix.total) * 0.38
        mix.add(InstrClass.IMAD, addr * 0.7)
        mix.add(InstrClass.IADD3, addr * 0.3)
        mix.add(InstrClass.MISC, blocks_total * 2.0 + warps * 10.0)
        out_bytes = float(m) * n * eb
        mix.add(InstrClass.STG, out_bytes / (32 * 16))

        gm = GlobalTraffic()
        gm.load_requests = ldg
        gm.store_requests = float(mix[InstrClass.STG])
        # ideal wide loads: one 32 B sector per 32 useful bytes (a
        # sector count *below* the delivered bytes is unphysical — the
        # near-ideal coalescing shows up as 16 sectors/request, not as
        # sub-byte sectors)
        gm.load_sectors = (a_bytes + b_bytes) / 32.0
        gm.store_sectors = out_bytes / 32.0
        gm.bytes_requested = a_bytes + b_bytes + out_bytes
        # inter-CTA reuse is poor: only ~4 big CTAs fit per SM (their
        # 24 KiB staging buffers), and the shared-memory carveout
        # leaves little L1 for implicit reuse (§3.2's last point).
        coresident = 4
        l1_eff = max(16 * 1024, spec.l1_bytes_per_sm - coresident * 24 * 1024)
        density = min(1.0, a.ell_width / max(1, k // bsz))
        b_fetched = coresident_reuse_bytes(
            b_bytes,
            num_groups=max(1, launch.num_ctas // coresident),
            density=density,
            group_rows=coresident,
            l1_effective_bytes=l1_eff,
        )
        gm.bytes_l2_to_l1 = a_bytes + b_fetched + out_bytes
        unique = a.memory_bytes() + k * n * eb + out_bytes
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=64,
                shared_bytes_per_cta=24 * 1024,  # large staging buffers
            ),
            instructions=mix,
            global_mem=gm,
            # §3.2: 4600 SASS lines at block 4, re-fetched every main-loop
            # trip; larger blocks specialise to shorter bodies
            program=ICacheModel(
                sass_lines=4600 if bsz <= 4 else (2400 if bsz <= 8 else 700),
                loop_back=True,
            ),
            flops=2.0 * nnz_scalars * self.TILE_N,
            ilp=2.0,  # barrier-separated stages serialise load/compute
            stall_correlation=0.85,  # warps stall in lockstep at barriers
        )
        stats.shared_mem.bulk(
            requests=int(mix[InstrClass.LDS]), wavefronts_per_request=1.2, bytes_per_request=32 * 4
        )
        stats.shared_mem.bulk(
            requests=int(ldg), wavefronts_per_request=1.0, bytes_per_request=32 * 16, is_store=True
        )
        return stats


class CusparseCsrSpmmKernel(Kernel):
    """cusparseSpMM on fine-grained CSR (Figure 4 baseline)."""

    TILE_N = 32
    CTA_SIZE = 64

    efficiency = 0.70

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "single") -> None:
        super().__init__(spec, precision)
        self.name = f"cusparse-csr-spmm-{'hp' if precision == 'half' else 'sp'}"

    def _execute(self, a: CSRMatrix, b: np.ndarray) -> np.ndarray:
        b32 = as_compute(np.asarray(b), self.precision)
        out = a.to_scipy().astype(np.float32) @ b32
        return out.astype(np.float16 if self.precision == "half" else np.float32)

    def _stats(self, a: CSRMatrix, b: np.ndarray) -> KernelStats:
        return self.stats_for(a, np.asarray(b).shape[1])

    @memo.memoised_stats
    def stats_for(self, a: CSRMatrix, n: int) -> KernelStats:
        spec = self.spec
        eb = elem_bytes(self.precision)
        m, k = a.shape
        n_tiles = ceil_div(n, self.TILE_N)
        rows_per_cta = self.CTA_SIZE // 32
        launch = LaunchConfig(
            grid_x=ceil_div(m, rows_per_cta), grid_y=n_tiles, cta_size=self.CTA_SIZE
        )
        nnz_total = float(a.nnz) * n_tiles
        cols_per_lane = self.TILE_N / 32.0

        mix = InstructionMix()
        mix.add(InstrClass.FFMA, nnz_total * cols_per_lane)
        if self.precision == "half":
            mix.add(InstrClass.F2F, nnz_total * cols_per_lane)  # unpack/pack halves
        # scalar gathers: value + index + B element per nonzero; the
        # merge-path bookkeeping costs ~3 integer ops per nonzero
        mix.add(InstrClass.LDG32, nnz_total * 2.0)
        mix.add(InstrClass.IMAD, nnz_total * 2.0)
        mix.add(InstrClass.IADD3, nnz_total * 1.5)
        mix.add(InstrClass.LOP3, nnz_total * 0.5)
        mix.add(InstrClass.MISC, nnz_total * 1.0 + launch.num_ctas * 12.0)
        out_bytes = float(m) * n * eb
        mix.add(InstrClass.STG, out_bytes / (32 * 4))

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG32])
        gm.store_requests = float(mix[InstrClass.STG])
        # B gathers land scattered: ~1 sector per request at high sparsity
        gm.load_sectors = nnz_total * (self.TILE_N * eb / 32.0 + 1.0)
        gm.store_sectors = out_bytes / 32.0
        gm.bytes_requested = nnz_total * (self.TILE_N * eb + eb + 4.0) + out_bytes
        gm.bytes_l2_to_l1 = nnz_total * (self.TILE_N * eb + eb + 4.0) * 0.9 + out_bytes
        unique = a.memory_bytes() + k * n * eb + out_bytes
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE, registers_per_thread=48, shared_bytes_per_cta=4096
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=980, loop_back=True),
            flops=2.0 * nnz_total * self.TILE_N,
            ilp=2.0,
            stall_correlation=0.4,
        )
        return stats


class CusparseSddmmKernel(Kernel):
    """cusparseSDDMM on fine-grained CSR (single precision only, §2.3)."""

    CTA_SIZE = 128

    efficiency = 0.70

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "single") -> None:
        if precision != "single":
            raise ValueError("cusparseSDDMM supports single or higher precision only (§2.3)")
        super().__init__(spec, precision)
        self.name = "cusparse-sddmm-sp"

    def _execute(self, a: np.ndarray, b: np.ndarray, mask: CSRMatrix) -> CSRMatrix:
        a32 = as_compute(np.asarray(a), self.precision)
        b32 = as_compute(np.asarray(b), self.precision)
        rows = np.repeat(np.arange(mask.shape[0]), mask.row_nnz())
        vals = np.einsum("ck,ck->c", a32[rows], b32.T[mask.col_idx], optimize=True)
        return CSRMatrix(mask.shape, mask.row_ptr, mask.col_idx, vals.astype(np.float32))

    def _stats(self, a: np.ndarray, b: np.ndarray, mask: CSRMatrix) -> KernelStats:
        return self.stats_for(mask, np.asarray(a).shape[1])

    @memo.memoised_stats
    def stats_for(self, mask: CSRMatrix, k: int) -> KernelStats:
        spec = self.spec
        eb = 4
        m, n = mask.shape
        launch = LaunchConfig(grid_x=ceil_div(m, 4), cta_size=self.CTA_SIZE)
        nnz = float(mask.nnz)

        mix = InstructionMix()
        # k-long dot product per output nonzero, warp-reduced
        mix.add(InstrClass.FFMA, nnz * k / 32.0)
        mix.add(InstrClass.LDG128, nnz * k * eb * 2.0 / (32 * 16))
        mix.add(InstrClass.SHFL, nnz * 5.0 / 32.0 * 32.0 / 32.0 * 5.0)  # log2(32) rounds
        mix.add(InstrClass.FADD, nnz * 5.0)
        mix.add(InstrClass.IMAD, nnz * 2.0)
        mix.add(InstrClass.IADD3, nnz * 1.0)
        mix.add(InstrClass.MISC, nnz * 1.0 + launch.num_ctas * 12.0)
        mix.add(InstrClass.STG, nnz * eb / (32 * 4))

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG128])
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = nnz * k * eb * 2.0 / 32.0
        gm.store_sectors = nnz * eb / 32.0
        gm.bytes_requested = nnz * k * eb * 2.0 + nnz * eb
        gm.bytes_l2_to_l1 = gm.bytes_requested * 0.7  # rows shared across warp
        unique = (m + n) * k * eb + nnz * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        return KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE, registers_per_thread=56, shared_bytes_per_cta=2048
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=720),
            flops=2.0 * nnz * k,
            ilp=3.0,
            stall_correlation=0.3,
        )
