"""TCU-based 1-D Warp Tiling SDDMM — the classic-mapping baseline (§6.2).

Warp tiles of ``(V x 64) · (64 x TileN)`` computed with
``wmma.m8n32k16``.  Kernel and compute efficiency are good and the
partial sums live in one copy, but:

* the classic operand layout maps 16 consecutive registers per lane, so
  direct register loads would be 16B coalesced — the kernel instead
  coalesces through shared memory (guideline IV violated), showing up
  as the "Short Scoreboard" 14.4/17.9% rows of Table 3;
* the LHS fragment is replicated 4x across thread groups (extra
  registers, lower occupancy);
* ``TileN`` must be a multiple of 32 and ``V < 8`` wastes computation.

This is also the TCU baseline of Figure 19 ("wmma").
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.tensor_core import TensorCoreStats, wmma_m8n32k16
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes
from .. import plans as _plans
from .base import Kernel, Precision
from .functional import sddmm_functional
from .sddmm_common import analyze_windows

__all__ = ["WmmaSddmmKernel"]


class WmmaSddmmKernel(Kernel):
    """SDDMM with the classic GEMM-like warp-tile-to-TCU mapping."""

    TILE_K = 64
    TILE_N = 32
    CTA_SIZE = 32

    efficiency = 0.70

    def __init__(
        self,
        spec: GPUSpec | None = None,
        precision: Precision = "half",
        simulate: bool = False,
    ) -> None:
        if precision != "half":
            raise ValueError("wmma SDDMM is a half-precision design")
        super().__init__(spec, precision)
        self.name = "sddmm-wmma-warp"
        self.simulate = simulate

    def _execute(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        if self.simulate:
            return self._execute_simulated(a, b, mask)
        return sddmm_functional(a, b, mask, self.precision)

    def _execute_simulated(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        """Compiled-plan walk: the whole structure's wmma.m8n32k16
        stream in one batched call, driven by a cached execution plan
        (:mod:`repro.plans`) — bit-for-bit the interpreted per-row walk
        kept as :meth:`_execute_simulated_reference`.
        """
        if not _plans.enabled():
            return self._execute_simulated_reference(a, b, mask)
        a16 = np.asarray(a, dtype=np.float16)
        b16 = np.asarray(b, dtype=np.float16)
        plan = _plans.sddmm_wmma_plan(self, mask, a16.shape[1])
        out_vals, tc = _plans.execute_sddmm_wmma(plan, a16, b16, mask)
        self.last_sim_stats = tc
        return mask.with_values(out_vals.astype(np.float16))

    def _execute_simulated_reference(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        """Pinned interpreted reference of the plan path: per-row walk
        issuing the classic wmma.m8n32k16 stream.

        Each window's nonzero vectors compact into padded 32-wide wmma
        tiles; every tile covers the full K with ``wmma.m8n32k16``
        k-steps (A rows in the 8-slot, V<8 rows padded — wasted
        computation the batched primitive performs and counts).  The
        issued-HMMA accounting lands on ``self.last_sim_stats``.
        """
        a16 = np.asarray(a, dtype=np.float16)
        b16 = np.asarray(b, dtype=np.float16)
        m, k = a16.shape
        v = mask.vector_length
        tc = TensorCoreStats()
        out_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
        k_pad = ceil_div(k, 16) * 16
        a_pad = np.zeros((m, k_pad), dtype=np.float16)
        a_pad[:, :k] = a16
        b_pad = np.zeros((k_pad, b16.shape[1]), dtype=np.float16)
        b_pad[:k] = b16
        for vrow in range(mask.num_vector_rows):
            cols, _ = mask.row_slice(vrow)
            if cols.size == 0:
                continue
            lo = mask.row_ptr[vrow]
            rows = slice(vrow * v, (vrow + 1) * v)
            # padded 32-wide tiles of compacted output columns
            for s0 in range(0, cols.size, 32):
                sel = cols[s0 : s0 + 32]
                acc = np.zeros((8, 32), dtype=np.float32)
                for k0 in range(0, k_pad, 16):
                    frag_a = np.zeros((8, 16), dtype=np.float16)
                    frag_a[:v] = a_pad[rows, k0 : k0 + 16]
                    frag_b = np.zeros((16, 32), dtype=np.float16)
                    frag_b[:, : sel.size] = b_pad[k0 : k0 + 16, sel]
                    acc = wmma_m8n32k16(frag_a, frag_b, acc, stats=tc)
                out_vals[lo + s0 : lo + s0 + sel.size] = acc[:v, : sel.size].T
        self.last_sim_stats = tc
        return mask.with_values(out_vals.astype(np.float16))

    def _stats(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> KernelStats:
        return self.stats_for(mask, np.asarray(a).shape[1])

    @memo.memoised_stats
    def stats_for(self, mask: ColumnVectorSparseMatrix, k: int) -> KernelStats:
        spec = self.spec
        eb = 2
        v = mask.vector_length
        m, n = mask.shape
        win = analyze_windows(mask, self.TILE_N)
        launch = LaunchConfig(
            grid_x=win.num_vector_rows, grid_y=win.num_windows, cta_size=self.CTA_SIZE
        )
        k_steps = ceil_div(k, self.TILE_K)
        nnz = float(win.total_vectors)
        active = float(win.num_ctas_active)
        # the window's nonzero vectors are compacted into 32-wide wmma
        # tiles (TileN must be a multiple of 32, §6.2, so a window with
        # 3 nonzeros still pays a padded 32-column tile); each tile
        # needs 4 wmma.m8n32k16 to cover the 64-deep k-step.
        tiles32 = win.substeps(self.TILE_N) * k_steps
        wmma_groups = tiles32 * (self.TILE_K // 16)

        mix = InstructionMix()
        # each wmma.m8n32k16 = 16 warp HMMA steps; V < 8 wastes rows
        mix.add(InstrClass.HMMA, wmma_groups * 16.0)
        # operands staged via shared memory to repair the 16B pattern
        a_bytes = active * k_steps * v * self.TILE_K * eb
        # staging gathers only the window's nonzero columns; the
        # padded 32-wide tile exists in compute, not in traffic
        b_bytes = nnz * k_steps * self.TILE_K * eb
        ldg = (a_bytes + b_bytes) / (32 * 16)
        mix.add(InstrClass.LDG128, ldg)
        mix.add(InstrClass.STS, ldg)
        # LHS fragment replicated 4x across groups -> 4 LDS streams
        mix.add(InstrClass.LDS, wmma_groups * 4.0)
        mix.add(InstrClass.BAR, active * k_steps * 2.0)
        mix.add(InstrClass.IMAD, active * k_steps * 4.0)
        mix.add(InstrClass.IADD3, active * k_steps * 2.0)
        mix.add(InstrClass.MISC, active * 12.0)
        mix.add(InstrClass.BRANCH, active * k_steps)
        mix.add(InstrClass.STG, nnz * v * eb / (32 * 4))

        gm = GlobalTraffic()
        gm.load_requests = ldg
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = (a_bytes + b_bytes) / 32.0
        gm.store_sectors = nnz * v * eb / 32.0
        gm.bytes_requested = a_bytes + b_bytes + nnz * v * eb
        mask_density = nnz / max(1.0, float(win.num_vector_rows) * n)
        b_fetched = coresident_reuse_bytes(
            b_bytes,
            num_groups=max(1, launch.num_ctas // 16),
            density=max(1e-9, mask_density),
            group_rows=16,
            l1_effective_bytes=max(
                32 * 1024,
                spec.l1_bytes_per_sm - 16 * (v + self.TILE_N) * self.TILE_K * eb,
            ),
        )
        gm.bytes_l2_to_l1 = a_bytes + b_fetched + nnz * v * eb
        unique = (m + n) * k * eb + mask.nnz * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        # LHS copied 4x: 4 x (V x 16 / 32) halves per lane + accumulators
        regs = 32 + 4 * v + 2 * v
        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=regs,
                shared_bytes_per_cta=(v + self.TILE_N) * self.TILE_K * eb,
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=460),
            flops=2.0 * nnz * v * k,
            ilp=3.0,
            stall_correlation=0.45,  # staging barriers per k-step
        )
        stats.shared_mem.bulk(
            requests=int(mix[InstrClass.LDS]), wavefronts_per_request=1.3, bytes_per_request=128
        )
        stats.shared_mem.bulk(
            requests=int(ldg), wavefronts_per_request=1.0, bytes_per_request=512, is_store=True
        )
        return stats
