"""FPU-based 1-D Subwarp Tiling SDDMM — the Sputnik-extended baseline (§6.1).

Each 1-D tile is split across a subwarp of 8 threads along ``TileK``:
thread tiles of ``(V x TileK/8) · (TileK/8 x TileN)``; partial sums are
reduced across the subwarp with warp shuffles.  With ``TileK = 64`` the
LHS rows and RHS columns load as single LDG.128s in 128B-coalesced
pattern (guidelines IV and V hold), which is why its Sectors/Req is
healthy in Table 3 — its problems are elsewhere:

* every thread holds a ``V x TileN`` fp32 partial-sum array; at
  ``V = 8, TileN = 32`` that is 256 registers and spills (§6.1) — the
  model charges local-memory traffic and occupancy for it;
* the fully unrolled loops overflow the L0 i-cache ("No Instruction");
* HMUL2 + FADD chains with per-element addressing ("Wait", 28.1% in
  Table 3).
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes
from .base import Kernel, Precision, elem_bytes
from .counting import sputnik_sass_lines, warp_reduce_steps
from .functional import sddmm_functional
from .sddmm_common import analyze_windows

__all__ = ["FpuSddmmKernel"]


class FpuSddmmKernel(Kernel):
    """SDDMM on the FPU with 1-D subwarp tiling (extended Sputnik)."""

    TILE_K = 64
    TILE_N = 32          # output columns per CTA window (V <= 4)
    SUBWARP = 8
    CTA_SIZE = 32

    def _tile_n(self, v: int) -> int:
        """Tuned TileN: keep the V x TileN partial array within 128
        registers (the paper's tuned baseline shrinks the tile rather
        than spill; untuned V=8 @ TileN=32 is the spilling case §6.1
        describes)."""
        return min(self.TILE_N, max(8, 128 // v))

    efficiency = 0.70

    def __init__(self, spec: GPUSpec | None = None, precision: Precision = "half") -> None:
        super().__init__(spec, precision)
        self.name = "sddmm-fpu-subwarp" if precision == "half" else "sputnik-sddmm-sp"

    # ------------------------------------------------------------------ #
    def _execute(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        out_dtype = np.float16 if self.precision == "half" else np.float32
        return sddmm_functional(a, b, mask, self.precision, out_dtype=out_dtype)

    # ------------------------------------------------------------------ #
    def _stats(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> KernelStats:
        return self.stats_for(mask, np.asarray(a).shape[1])

    @memo.memoised_stats
    def stats_for(self, mask: ColumnVectorSparseMatrix, k: int) -> KernelStats:
        spec = self.spec
        eb = elem_bytes(self.precision)
        v = mask.vector_length
        m, n = mask.shape
        tile_n = self._tile_n(v)
        win = analyze_windows(mask, tile_n)
        launch = LaunchConfig(
            grid_x=win.num_vector_rows, grid_y=win.num_windows, cta_size=self.CTA_SIZE
        )
        k_steps = ceil_div(k, self.TILE_K)
        nnz = float(win.total_vectors)
        active = float(win.num_ctas_active)

        mix = InstructionMix()
        # math: V x K MACs per output vector, spread over 32 lanes
        macs = nnz * v * k
        if self.precision == "half":
            mix.add(InstrClass.HMUL2, macs / 64.0)   # packed pairs per lane
            mix.add(InstrClass.FADD, macs / 32.0)    # fp32 accumulation
            mix.add(InstrClass.F2F, macs / 128.0)
        else:
            mix.add(InstrClass.FFMA, macs / 32.0)
        # loads (both straight to registers):
        # A rows: V x TileK halves per k-step per active CTA
        a_bytes = active * k_steps * v * self.TILE_K * eb
        # B columns: TileK halves per k-step per nonzero vector
        b_bytes = nnz * k_steps * self.TILE_K * eb
        mix.add(InstrClass.LDG128, (a_bytes + b_bytes) / (32 * 16))
        mix.add(InstrClass.LDG32, active)  # window indices
        # subwarp reduction: log2(8) = 3 shuffle+add rounds per partial row
        red = warp_reduce_steps(self.SUBWARP)
        mix.add(InstrClass.SHFL, nnz * v * red / 4.0)
        mix.add(InstrClass.FADD, nnz * v * red / 4.0)
        # per-element addressing of the unrolled loops
        mix.add(InstrClass.IMAD, nnz * k_steps * 2.0)
        mix.add(InstrClass.IADD3, nnz * k_steps * 1.5)
        mix.add(InstrClass.MISC, active * 14.0 + nnz * 1.0)
        mix.add(InstrClass.BRANCH, active * k_steps)
        mix.add(InstrClass.STG, nnz * v * eb / (32 * 4))

        # register pressure (§6.1): every subwarp thread statically
        # allocates the full V x TileN fp32 partial-sum array (the
        # subwarp splits K, not the output) — 256 registers at V=8,
        # which spills to local memory and throttles occupancy.
        partial_regs = v * tile_n
        regs = 24 + partial_regs + 2 * v
        spilled = max(0, regs - 255)
        if spilled:
            spill_ops = nnz * k_steps * spilled / 8.0
            mix.add(InstrClass.LDL, spill_ops)
            mix.add(InstrClass.STL, spill_ops)

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG128] + mix[InstrClass.LDG32])
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = (a_bytes + b_bytes) / 32.0
        gm.store_sectors = nnz * v * eb / 32.0
        gm.bytes_requested = a_bytes + b_bytes + nnz * v * eb
        mask_density = nnz / max(1.0, float(win.num_vector_rows) * n)
        b_fetched = coresident_reuse_bytes(
            b_bytes,
            num_groups=max(1, launch.num_ctas // 32),
            density=max(1e-9, mask_density),
            group_rows=32,
            l1_effective_bytes=spec.l1_bytes_per_sm,
        )
        gm.bytes_l2_to_l1 = a_bytes + b_fetched + nnz * v * eb
        gm.local_bytes = float(mix[InstrClass.LDL] + mix[InstrClass.STL]) * 32 * 4
        unique = (m + n) * k * eb + mask.nnz * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        return KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=min(regs, 255),
                shared_bytes_per_cta=256,
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=sputnik_sass_lines(v)),
            flops=2.0 * macs,
            ilp=2.0,
            stall_correlation=0.3,
        )
