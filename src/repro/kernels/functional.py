"""Shared functional numerics for the sparse kernels.

All kernel variants of one operation are numerically equivalent (fp16
operands, fp32 accumulation) and differ only in their device mapping,
so the functional layer is shared: SpMM via a scipy CSR product, SDDMM
via a chunked gathered dot-product.  The register-level tensor-core
path (:mod:`repro.hardware.tensor_core`) is exercised by the slow
``simulate``-mode implementations in the octet kernels and by the unit
tests; its outputs agree with these fast paths to fp32-reassociation
tolerance.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..faults.injector import site as fault_site
from ..formats.cvse import ColumnVectorSparseMatrix
from .base import Precision, as_compute

__all__ = ["spmm_functional", "sddmm_functional", "expand_vector_rows"]


def expand_vector_rows(cvse: ColumnVectorSparseMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """(scalar_row, col) pairs of every stored scalar, in storage order."""
    v = cvse.vector_length
    vrows = np.repeat(np.arange(cvse.num_vector_rows), cvse.vector_row_nnz())
    rows = (vrows[:, None] * v + np.arange(v)[None, :]).reshape(-1)
    # storage order is (vector, lane): interleave accordingly
    cols = np.repeat(cvse.col_idx[:, None], v, axis=1).reshape(-1)
    return rows, cols


def spmm_functional(
    a: ColumnVectorSparseMatrix,
    b: np.ndarray,
    precision: Precision = "half",
    out_dtype=np.float16,
) -> np.ndarray:
    """``C = A @ B`` with fp32 accumulation; A in CVSE."""
    if a.values is None:
        raise ValueError("SpMM needs values; got a mask-only encoding")
    if b.shape[0] != a.shape[1]:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    b32 = as_compute(np.asarray(b), precision)
    v = a.vector_length
    # scalar CSR over the expanded rows, preserving explicit zeros
    vrows = np.repeat(np.arange(a.num_vector_rows), a.vector_row_nnz())
    rows = (vrows[:, None] * v + np.arange(v)[None, :]).reshape(-1)
    cols = np.repeat(a.col_idx[:, None], v, axis=1).reshape(-1)
    vals = as_compute(a.values, precision).reshape(-1)
    mat = sp.csr_matrix((vals, (rows, cols)), shape=a.shape, dtype=np.float32)
    out = mat @ b32
    # declared fault-injection site: functional output SDC
    return fault_site("functional.spmm.out", out.astype(out_dtype))


def sddmm_functional(
    a: np.ndarray,
    b: np.ndarray,
    mask: ColumnVectorSparseMatrix,
    precision: Precision = "half",
    out_dtype=np.float16,
    chunk: int = 1 << 18,
) -> ColumnVectorSparseMatrix:
    """``C = (A @ B) .* D`` with D a CVSE mask; returns CVSE with values.

    ``A`` is (M, K) row-major; ``B`` is (K, N) (the paper stores it
    column-major to stand in for B^T — a layout, not a math, choice).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    if mask.shape != (m, n):
        raise ValueError(f"mask shape {mask.shape} != output shape {(m, n)}")
    a32 = as_compute(a, precision)
    bt32 = as_compute(b, precision).T.copy()  # (N, K) rows = B columns
    v = mask.vector_length
    vrows = np.repeat(np.arange(mask.num_vector_rows), mask.vector_row_nnz())
    rows = (vrows[:, None] * v + np.arange(v)[None, :]).reshape(-1)
    cols = np.repeat(mask.col_idx[:, None], v, axis=1).reshape(-1)
    out = np.empty(rows.size, dtype=np.float32)
    for lo in range(0, rows.size, chunk):
        hi = min(rows.size, lo + chunk)
        out[lo:hi] = np.einsum(
            "ck,ck->c", a32[rows[lo:hi]], bt32[cols[lo:hi]], optimize=True
        )
    values = out.reshape(mask.nnz_vectors, v).astype(out_dtype)
    # declared fault-injection site: functional output SDC
    return mask.with_values(fault_site("functional.sddmm.out", values))
