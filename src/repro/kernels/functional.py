"""Shared functional numerics for the sparse kernels.

All kernel variants of one operation are numerically equivalent (fp16
operands, fp32 accumulation) and differ only in their device mapping,
so the functional layer is shared: SpMM via a scipy CSR product, SDDMM
via a chunked gathered dot-product.  The register-level tensor-core
path (:mod:`repro.hardware.tensor_core`) is exercised by the slow
``simulate``-mode implementations in the octet kernels and by the unit
tests; its outputs agree with these fast paths to fp32-reassociation
tolerance.

Both entry points run a compiled-plan path by default — the topology
expansion and CSR skeleton come from the cached plans of
:mod:`repro.plans.functional` — with the interpreted expansion kept as
pinned ``*_reference`` twins.  The plan path is bit-for-bit the
reference: the CSR skeleton's stable permutation reproduces the COO
round trip entry for entry, and the SDDMM gather pairs are the same
arrays the reference recomputes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .. import plans as _plans
from ..faults.injector import site as fault_site
from ..formats.cvse import ColumnVectorSparseMatrix
from ..plans.functional import expand_vector_rows
from .base import Precision, as_compute

__all__ = [
    "spmm_functional",
    "sddmm_functional",
    "spmm_functional_reference",
    "sddmm_functional_reference",
    "expand_vector_rows",
]


def _check_spmm_args(a: ColumnVectorSparseMatrix, b: np.ndarray) -> None:
    if a.values is None:
        raise ValueError("SpMM needs values; got a mask-only encoding")
    if b.shape[0] != a.shape[1]:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")


def spmm_functional(
    a: ColumnVectorSparseMatrix,
    b: np.ndarray,
    precision: Precision = "half",
    out_dtype=np.float16,
) -> np.ndarray:
    """``C = A @ B`` with fp32 accumulation; A in CVSE.

    Uses the cached CSR-skeleton plan when plans are enabled; the
    interpreted expansion is :func:`spmm_functional_reference`.
    """
    if not _plans.enabled():
        return spmm_functional_reference(a, b, precision, out_dtype)
    _check_spmm_args(a, np.asarray(b))
    b32 = as_compute(np.asarray(b), precision)
    plan = _plans.functional_spmm_plan(a)
    vals = as_compute(a.values, precision).reshape(-1)
    mat = sp.csr_matrix(
        (vals[plan.perm], plan.indices, plan.indptr), shape=a.shape, dtype=np.float32
    )
    out = mat @ b32
    # declared fault-injection site: functional output SDC
    return fault_site("functional.spmm.out", out.astype(out_dtype))


def spmm_functional_reference(
    a: ColumnVectorSparseMatrix,
    b: np.ndarray,
    precision: Precision = "half",
    out_dtype=np.float16,
) -> np.ndarray:
    """Pinned interpreted twin of :func:`spmm_functional`: expands the
    topology on every call and builds the CSR via the COO round trip."""
    _check_spmm_args(a, np.asarray(b))
    b32 = as_compute(np.asarray(b), precision)
    # scalar CSR over the expanded rows, preserving explicit zeros
    rows, cols = expand_vector_rows(a)
    vals = as_compute(a.values, precision).reshape(-1)
    mat = sp.csr_matrix((vals, (rows, cols)), shape=a.shape, dtype=np.float32)
    out = mat @ b32
    # declared fault-injection site: functional output SDC
    return fault_site("functional.spmm.out", out.astype(out_dtype))


def _check_sddmm_args(
    a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
) -> None:
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    if mask.shape != (m, n):
        raise ValueError(f"mask shape {mask.shape} != output shape {(m, n)}")


def _sddmm_gathered_dot(
    a32: np.ndarray,
    bt32: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    chunk: int,
) -> np.ndarray:
    out = np.empty(rows.size, dtype=np.float32)
    for lo in range(0, rows.size, chunk):
        hi = min(rows.size, lo + chunk)
        out[lo:hi] = np.einsum(
            "ck,ck->c", a32[rows[lo:hi]], bt32[cols[lo:hi]], optimize=True
        )
    return out


def sddmm_functional(
    a: np.ndarray,
    b: np.ndarray,
    mask: ColumnVectorSparseMatrix,
    precision: Precision = "half",
    out_dtype=np.float16,
    chunk: int = 1 << 18,
) -> ColumnVectorSparseMatrix:
    """``C = (A @ B) .* D`` with D a CVSE mask; returns CVSE with values.

    ``A`` is (M, K) row-major; ``B`` is (K, N) (the paper stores it
    column-major to stand in for B^T — a layout, not a math, choice).
    Uses the cached expansion plan when plans are enabled; the
    interpreted expansion is :func:`sddmm_functional_reference`.
    """
    if not _plans.enabled():
        return sddmm_functional_reference(a, b, mask, precision, out_dtype, chunk)
    a = np.asarray(a)
    b = np.asarray(b)
    _check_sddmm_args(a, b, mask)
    a32 = as_compute(a, precision)
    bt32 = as_compute(b, precision).T.copy()  # (N, K) rows = B columns
    plan = _plans.functional_sddmm_plan(mask)
    out = _sddmm_gathered_dot(a32, bt32, plan.rows, plan.cols, chunk)
    values = out.reshape(mask.nnz_vectors, mask.vector_length).astype(out_dtype)
    # declared fault-injection site: functional output SDC
    return mask.with_values(fault_site("functional.sddmm.out", values))


def sddmm_functional_reference(
    a: np.ndarray,
    b: np.ndarray,
    mask: ColumnVectorSparseMatrix,
    precision: Precision = "half",
    out_dtype=np.float16,
    chunk: int = 1 << 18,
) -> ColumnVectorSparseMatrix:
    """Pinned interpreted twin of :func:`sddmm_functional`: expands the
    gather pairs on every call."""
    a = np.asarray(a)
    b = np.asarray(b)
    _check_sddmm_args(a, b, mask)
    a32 = as_compute(a, precision)
    bt32 = as_compute(b, precision).T.copy()  # (N, K) rows = B columns
    rows, cols = expand_vector_rows(mask)
    out = _sddmm_gathered_dot(a32, bt32, rows, cols, chunk)
    values = out.reshape(mask.nnz_vectors, mask.vector_length).astype(out_dtype)
    # declared fault-injection site: functional output SDC
    return mask.with_values(fault_site("functional.sddmm.out", values))
