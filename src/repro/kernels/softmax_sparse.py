"""Sparse softmax over column-vector sparse encoding (§7.4).

"We also implement a custom softmax kernel that works on column vector
sparse encoding."  In the sparse-attention pipeline the SDDMM output
``(QK^T ∘ C) / sqrt(k)`` is already in CVSE; the softmax normalises
each *scalar row* over that row's stored entries (masked-out positions
are -inf and contribute nothing).

Kernel model: one warp per vector row; the row's values stream through
registers (LDG.128), the max/sum reductions run as warp shuffles, and
the exponentials use the SFU (MUFU.EX2).
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.thread_hierarchy import LaunchConfig
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from .base import Kernel, Precision

__all__ = ["SparseSoftmaxKernel"]


class SparseSoftmaxKernel(Kernel):
    """Row-wise numerically-stable softmax over a CVSE matrix."""

    CTA_SIZE = 32

    efficiency = 0.70

    def __init__(
        self,
        spec: GPUSpec | None = None,
        precision: Precision = "half",
        scale: float = 1.0,
    ) -> None:
        super().__init__(spec, precision)
        self.name = "softmax-cvse"
        self.scale = scale

    # ------------------------------------------------------------------ #
    def _execute(self, a: ColumnVectorSparseMatrix) -> ColumnVectorSparseMatrix:
        if a.values is None:
            raise ValueError("softmax needs values")
        v = a.vector_length
        vals = a.values.astype(np.float32) * self.scale
        out = np.empty_like(vals)
        # segment-wise stable softmax per scalar row: rows sharing a
        # vector row have identical segment boundaries.
        ptr = a.row_ptr
        for lane in range(v):
            col = vals[:, lane]
            # segmented max / sum via reduceat (empty rows guarded)
            seg_max = np.full(a.num_vector_rows, -np.inf, dtype=np.float32)
            lengths = np.diff(ptr)
            nonempty = lengths > 0
            if np.any(nonempty):
                maxes = np.maximum.reduceat(col, ptr[:-1][nonempty])
                seg_max[nonempty] = maxes
            shifted = col - np.repeat(np.where(np.isfinite(seg_max), seg_max, 0.0), lengths)
            ex = np.exp(shifted)
            seg_sum = np.zeros(a.num_vector_rows, dtype=np.float32)
            if np.any(nonempty):
                seg_sum[nonempty] = np.add.reduceat(ex, ptr[:-1][nonempty])
            denom = np.repeat(np.where(seg_sum > 0, seg_sum, 1.0), lengths)
            out[:, lane] = ex / denom
        return a.with_values(out.astype(a.values.dtype))

    # ------------------------------------------------------------------ #
    def _stats(self, a: ColumnVectorSparseMatrix) -> KernelStats:
        return self.stats_for(a)

    @memo.memoised_stats
    def stats_for(self, a: ColumnVectorSparseMatrix) -> KernelStats:
        spec = self.spec
        eb = 2 if self.precision == "half" else 4
        v = a.vector_length
        nnz = float(a.nnz)
        launch = LaunchConfig(grid_x=max(1, a.num_vector_rows), cta_size=self.CTA_SIZE)
        row_nnz = a.vector_row_nnz().astype(np.float64)
        chunks = float(np.ceil(row_nnz * v / 32.0).sum())  # warp-wide passes per row

        mix = InstructionMix()
        bytes_stream = nnz * eb
        mix.add(InstrClass.LDG128, bytes_stream / (32 * 16))
        mix.add(InstrClass.EXP, nnz / 32.0)
        mix.add(InstrClass.HMUL2, nnz / 64.0)      # scale + normalise
        mix.add(InstrClass.FADD, nnz / 32.0)
        mix.add(InstrClass.F2F, nnz / 32.0)
        mix.add(InstrClass.SHFL, chunks * 10.0)     # 2 x log2(32) reduction rounds
        mix.add(InstrClass.FADD, chunks * 10.0)
        mix.add(InstrClass.IMAD, chunks * 2.0)
        mix.add(InstrClass.MISC, launch.num_ctas * 8.0)
        mix.add(InstrClass.STG, bytes_stream / (32 * 16))

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG128])
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = bytes_stream / 32.0
        gm.store_sectors = bytes_stream / 32.0
        gm.bytes_requested = 2 * bytes_stream
        gm.bytes_l2_to_l1 = 2 * bytes_stream
        gm.bytes_dram_to_l2 = estimate_dram_bytes(2 * bytes_stream, 2 * bytes_stream, spec.l2_bytes)

        return KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE, registers_per_thread=32, shared_bytes_per_cta=0
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=220),
            flops=4.0 * nnz,
            ilp=3.0,
            stall_correlation=0.2,
        )
