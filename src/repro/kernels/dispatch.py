"""High-level operation API: ``spmm`` / ``sddmm`` / ``sparse_softmax``.

The public entry points pick a kernel by name (default: the paper's
octet designs) and return a :class:`~repro.kernels.base.KernelResult`
carrying both the numeric output and the simulated-device timing.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .base import Kernel, KernelResult, Precision
from .gemm import DenseGemmKernel
from .sddmm_fpu import FpuSddmmKernel
from .sddmm_octet import OctetSddmmKernel
from .sddmm_wmma import WmmaSddmmKernel
from .softmax_sparse import SparseSoftmaxKernel
from .spmm_fpu import FpuSpmmKernel
from .spmm_octet import OctetSpmmKernel
from .spmm_wmma import WmmaSpmmKernel

__all__ = ["spmm", "sddmm", "sparse_softmax", "dense_gemm", "SPMM_KERNELS", "SDDMM_KERNELS"]

SPMM_KERNELS: Dict[str, Type[Kernel]] = {
    "octet": OctetSpmmKernel,
    "mma": OctetSpmmKernel,
    "fpu": FpuSpmmKernel,
    "wmma": WmmaSpmmKernel,
}

SDDMM_KERNELS: Dict[str, Type[Kernel]] = {
    "octet": OctetSddmmKernel,
    "mma": OctetSddmmKernel,
    "fpu": FpuSddmmKernel,
    "wmma": WmmaSddmmKernel,
}


def spmm(
    a: ColumnVectorSparseMatrix,
    b: np.ndarray,
    kernel: str = "octet",
    spec: Optional[GPUSpec] = None,
    precision: Precision = "half",
    **kwargs,
) -> KernelResult:
    """``C = A @ B`` with A in column-vector sparse encoding.

    ``kernel`` in {"octet" (default, §5.3), "fpu" (§5.1), "wmma"
    (§5.2)}.
    """
    try:
        cls = SPMM_KERNELS[kernel]
    except KeyError:
        raise ValueError(f"unknown SpMM kernel {kernel!r}; choose from {sorted(SPMM_KERNELS)}")
    obs_metrics.counter_add("kernel.dispatch.spmm")
    with obs_tracing.span("kernel.spmm", kernel=kernel,
                          m=a.shape[0], k=a.shape[1], n=b.shape[1]):
        return cls(spec=spec, precision=precision, **kwargs).run(a, b)


def sddmm(
    a: np.ndarray,
    b: np.ndarray,
    mask: ColumnVectorSparseMatrix,
    kernel: str = "octet",
    spec: Optional[GPUSpec] = None,
    precision: Precision = "half",
    **kwargs,
) -> KernelResult:
    """``C = (A @ B) ∘ D`` with D a CVSE mask; returns CVSE output.

    ``kernel`` in {"octet" (default, §6.3; pass ``variant`` =
    reg/shfl/arch), "fpu" (§6.1), "wmma" (§6.2)}.
    """
    try:
        cls = SDDMM_KERNELS[kernel]
    except KeyError:
        raise ValueError(f"unknown SDDMM kernel {kernel!r}; choose from {sorted(SDDMM_KERNELS)}")
    obs_metrics.counter_add("kernel.dispatch.sddmm")
    with obs_tracing.span("kernel.sddmm", kernel=kernel,
                          m=a.shape[0], k=a.shape[1], n=b.shape[1]):
        return cls(spec=spec, precision=precision, **kwargs).run(a, b, mask)


def sparse_softmax(
    a: ColumnVectorSparseMatrix,
    scale: float = 1.0,
    spec: Optional[GPUSpec] = None,
    precision: Precision = "half",
) -> KernelResult:
    """Row-wise softmax over a CVSE matrix (the §7.4 custom kernel)."""
    obs_metrics.counter_add("kernel.dispatch.sparse_softmax")
    with obs_tracing.span("kernel.sparse_softmax", m=a.shape[0], n=a.shape[1]):
        return SparseSoftmaxKernel(spec=spec, precision=precision, scale=scale).run(a)


def dense_gemm(
    a: np.ndarray,
    b: np.ndarray,
    spec: Optional[GPUSpec] = None,
    precision: Precision = "half",
) -> KernelResult:
    """cuBLAS-analog dense GEMM (the paper's dense baseline)."""
    obs_metrics.counter_add("kernel.dispatch.dense_gemm")
    with obs_tracing.span("kernel.dense_gemm",
                          m=a.shape[0], k=a.shape[1], n=b.shape[1]):
        return DenseGemmKernel(spec=spec, precision=precision).run(a, b)
