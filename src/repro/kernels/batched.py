"""Batched kernel execution: many problems, one launch.

Attention layers dispatch heads x batch problems as a single batched
launch (cf. :func:`repro.perfmodel.events.scale_batch`); this module
provides the functional counterpart — run every problem's numerics and
model the *combined* launch, paying one launch overhead and filling the
machine with the merged grid.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..perfmodel.events import KernelStats, scale_batch
from ..perfmodel.latency import LatencyEstimate
from .base import Kernel
from .sddmm_octet import OctetSddmmKernel
from .spmm_octet import OctetSpmmKernel

__all__ = ["batched_spmm", "batched_sddmm"]


def _merge_stats(kernel: Kernel, stats_list: Sequence[KernelStats]) -> KernelStats:
    """Merge per-problem stats into one batched-launch stats object.

    Counts and traffic accumulate; the grid concatenates along its
    column dimension (each sub-problem keeps its own row extent — the
    scheduler only cares about the CTA total); the worst per-problem
    imbalance carries over.
    """
    if len(stats_list) == 1:
        return stats_list[0]
    from ..hardware.thread_hierarchy import LaunchConfig

    base = stats_list[0]
    total_ctas = sum(s.launch.num_ctas for s in stats_list)
    grid_x = base.launch.grid_x
    out = KernelStats(
        name=f"{base.name} xB{len(stats_list)}",
        launch=LaunchConfig(
            grid_x=grid_x,
            grid_y=max(1, -(-total_ctas // grid_x)),
            cta_size=base.launch.cta_size,
        ),
        resources=base.resources,
        program=base.program,
        ilp=base.ilp,
        stall_correlation=base.stall_correlation,
        work_imbalance=max(s.work_imbalance for s in stats_list),
    )
    for s in stats_list:
        out.instructions.merge(s.instructions)
        out.global_mem.merge(s.global_mem)
        out.shared_mem.merge(s.shared_mem)
        out.flops += s.flops
    return out


def batched_spmm(
    problems: Sequence[Tuple[ColumnVectorSparseMatrix, np.ndarray]],
    kernel: OctetSpmmKernel | None = None,
) -> Tuple[List[np.ndarray], LatencyEstimate]:
    """Run many SpMM problems as one batched launch.

    Returns per-problem outputs and the single combined latency.
    """
    if not problems:
        raise ValueError("empty batch")
    kernel = kernel or OctetSpmmKernel()
    outputs = [kernel._execute(a, b) for a, b in problems]
    stats = [kernel.stats_for(a, np.asarray(b).shape[1]) for a, b in problems]
    merged = _merge_stats(kernel, stats)
    return outputs, kernel._model.estimate(merged)


def batched_sddmm(
    problems: Sequence[Tuple[np.ndarray, np.ndarray, ColumnVectorSparseMatrix]],
    kernel: OctetSddmmKernel | None = None,
) -> Tuple[List[ColumnVectorSparseMatrix], LatencyEstimate]:
    """Run many SDDMM problems as one batched launch."""
    if not problems:
        raise ValueError("empty batch")
    kernel = kernel or OctetSddmmKernel()
    outputs = [kernel._execute(a, b, m) for a, b, m in problems]
    stats = [kernel.stats_for(m, np.asarray(a).shape[1]) for a, b, m in problems]
    merged = _merge_stats(kernel, stats)
    return outputs, kernel._model.estimate(merged)
