"""TCU-based 1-D Octet Tiling SDDMM — the paper's primary SDDMM kernel (§6.3-6.4).

Launch shape (§6.4): ``TileK = 64``, ``TileN = 32``, CTA = 32, grid
``ceil(M/V) x ceil(N/32)``; each CTA owns a ``V x 32`` output tile and
traverses K with stride 64, gathering only the nonzero output vectors
of its window (empty windows exit immediately).

Per k-step the warp runs ``TileN/8`` sub-steps; each sub-step is an
``(8 x 64) · (64 x V)`` tile (after the LHS/RHS switch).  Both switched
fragments load with LDG.128 into registers — eight 128B-coalesced
transactions (guidelines IV + V) — but land with mismatched register
indices between thread group ``i`` and ``i+4``; the **High Group
Switch** (swap register ``j`` and ``(j+8) mod 16`` in the high groups)
repairs that, at the price of an *inverted pattern* in the last two
HMMA steps.  Three remedies, all modelled (Figure 19's ``mma``
variants):

* ``reg``  — a second accumulator set for steps 3-4, merged at the end
  (extra registers -> lower occupancy);
* ``shfl`` — shuffle operands between group ``i`` and ``i+4`` before
  each mma (extra SHFL instructions);
* ``arch`` — the proposed ``HMMA...SWITCH`` instruction (Figure 15)
  swaps the Mat_a sources and XORs the Mat_b mux inside the TCU:
  no shuffles, no extra registers.  §7.3.2: 33% fewer registers,
  21.3% more active warps/scheduler, 10.4% fewer instructions than
  ``reg``.

After K is exhausted, the four octets' partial sums (each octet owns a
16-wide k-slice) are combined with warp shuffles — the reduction whose
fixed cost dominates at small K (§7.3.2: SHFL+FADD is 29.5% of
instructions at K=64, 17.2% at K=256).
"""

from __future__ import annotations

import numpy as np

from ..faults.injector import site as fault_site
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.tensor_core import TensorCoreStats, mma_m8n8k4, mma_m8n8k4_batched
from ..perfmodel import memo
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes
from .. import plans as _plans
from .base import Kernel, Precision
from .counting import warp_reduce_steps
from .functional import sddmm_functional
from .sddmm_common import analyze_windows

__all__ = ["OctetSddmmKernel", "SDDMM_VARIANTS"]

SDDMM_VARIANTS = ("reg", "shfl", "arch")


class OctetSddmmKernel(Kernel):
    """SDDMM with the octet tiling; ``variant`` picks the inverted-pattern fix."""

    TILE_K = 64
    TILE_N = 32
    CTA_SIZE = 32

    efficiency = 0.70

    def __init__(
        self,
        spec: GPUSpec | None = None,
        precision: Precision = "half",
        variant: str = "reg",
        simulate: bool = False,
    ) -> None:
        if precision != "half":
            raise ValueError("the octet kernel is a half-precision design (HMMA.884)")
        if variant not in SDDMM_VARIANTS:
            raise ValueError(f"variant must be one of {SDDMM_VARIANTS}, got {variant!r}")
        super().__init__(spec, precision)
        self.variant = variant
        self.name = f"sddmm-mma-octet-{variant}"
        self.simulate = simulate

    # ------------------------------------------------------------------ #
    def _execute(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        if self.simulate:
            return self._execute_simulated(a, b, mask)
        return sddmm_functional(a, b, mask, self.precision)

    def _execute_simulated(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        """Compiled-plan walk: the whole structure's (sub-step, k-slice)
        octet stream in one batched call, driven by a cached execution
        plan (:mod:`repro.plans`) — bit-for-bit the interpreted per-row
        walk kept as :meth:`_execute_simulated_reference`.  The variant's
        SWITCH discipline is applied at execution time, never baked into
        the cached plan.
        """
        if not _plans.enabled():
            return self._execute_simulated_reference(a, b, mask)
        a16 = np.asarray(a, dtype=np.float16)
        b16 = np.asarray(b, dtype=np.float16)
        sim_kwargs = (
            dict(invert_groups=True, switch_steps=(0, 1, 2, 3))
            if self.variant == "arch"
            else {}
        )
        plan = _plans.sddmm_octet_plan(self, mask, a16.shape[1])
        out_vals, tc = _plans.execute_sddmm_octet(plan, a16, b16, mask, sim_kwargs)
        self.last_sim_stats = tc
        # declared fault-injection site: accumulator writeback SDC
        return mask.with_values(fault_site("sddmm_octet.acc", out_vals.astype(np.float16)))

    def _execute_simulated_reference(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        """Pinned interpreted reference of the plan path: per-row walk
        issuing real mma.m8n8k4 octet streams.

        The ``arch`` variant issues SWITCH steps (which the functional
        TCU honours); the others issue plain steps after an explicit
        operand rearrangement — all three produce identical values, as
        the paper's three implementations must.

        The whole CTA's fragment stream — every (sub-step, k-slice)
        octet operation of a vector row — is issued as one
        :func:`mma_m8n8k4_batched` call, bit-identical to the per-octet
        loop kept in :meth:`_execute_simulated_loop`.  The issued-HMMA
        accounting of the last run is kept on ``self.last_sim_stats``.
        """
        a16 = np.asarray(a, dtype=np.float16)
        b16 = np.asarray(b, dtype=np.float16)
        m, k = a16.shape
        v = mask.vector_length
        tc = TensorCoreStats()
        out_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
        k_pad = ceil_div(k, 4) * 4
        k4 = k_pad // 4
        a_pad = np.zeros((m, k_pad), dtype=np.float16)
        a_pad[:, :k] = a16
        b_pad = np.zeros((k_pad, b16.shape[1]), dtype=np.float16)
        b_pad[:k] = b16
        sim_kwargs = (
            dict(invert_groups=True, switch_steps=(0, 1, 2, 3))
            if self.variant == "arch"
            else {}
        )
        for vrow in range(mask.num_vector_rows):
            cols, _ = mask.row_slice(vrow)
            if cols.size == 0:
                continue
            lo = mask.row_ptr[vrow]
            rows = slice(vrow * v, (vrow + 1) * v)
            substeps = ceil_div(cols.size, 8)
            # switched-RHS fragments: one (4 x 8) per k-slice, shared by
            # every sub-step of the row
            frag_a = np.zeros((k4, 4, 8), dtype=np.float16)
            frag_a[:, :, :v] = a_pad[rows].T.reshape(k4, 4, v)
            # switched-LHS fragments: the compacted B columns, padded to
            # a whole number of 8-column sub-steps
            bsel = np.zeros((substeps * 8, k_pad), dtype=np.float16)
            bsel[: cols.size] = b_pad[:, cols].T
            # (sub-step, k-slice)-major fragment batch
            batch_b = bsel.reshape(substeps, 8, k4, 4).transpose(0, 2, 1, 3).reshape(-1, 8, 4)
            batch_a = np.tile(frag_a, (substeps, 1, 1))
            partial = mma_m8n8k4_batched(batch_b, batch_a, stats=tc, **sim_kwargs)
            partial = partial.reshape(substeps, k4, 8, 8)
            accs = np.zeros((substeps, 8, 8), dtype=np.float32)
            for j in range(k4):  # serial k accumulation, loop order
                accs += partial[:, j]
            out_vals[lo : lo + cols.size] = accs.reshape(substeps * 8, 8)[: cols.size, :v]
        self.last_sim_stats = tc
        # declared fault-injection site: accumulator writeback SDC
        return mask.with_values(fault_site("sddmm_octet.acc", out_vals.astype(np.float16)))

    def _execute_simulated_loop(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> ColumnVectorSparseMatrix:
        """Reference per-octet walk (one Python-level :func:`mma_m8n8k4`
        per sub-step and k-slice) — the batched path must match it bit
        for bit."""
        a16 = np.asarray(a, dtype=np.float16)
        b16 = np.asarray(b, dtype=np.float16)
        m, k = a16.shape
        v = mask.vector_length
        tc = TensorCoreStats()
        out_vals = np.zeros((mask.nnz_vectors, v), dtype=np.float32)
        k_pad = ceil_div(k, 4) * 4
        a_pad = np.zeros((m, k_pad), dtype=np.float16)
        a_pad[:, :k] = a16
        b_pad = np.zeros((k_pad, b16.shape[1]), dtype=np.float16)
        b_pad[:k] = b16
        for vrow in range(mask.num_vector_rows):
            cols, _ = mask.row_slice(vrow)
            if cols.size == 0:
                continue
            lo = mask.row_ptr[vrow]
            rows = slice(vrow * v, (vrow + 1) * v)
            # sub-steps of 8 compacted output columns
            for s0 in range(0, cols.size, 8):
                sel = cols[s0 : s0 + 8]
                acc = np.zeros((8, 8), dtype=np.float32)  # switched: rows = out cols
                for k0 in range(0, k_pad, 4):
                    # switched-LHS: (8 x 4) slice of B columns
                    frag_b = np.zeros((8, 4), dtype=np.float16)
                    frag_b[: sel.size] = b_pad[k0 : k0 + 4, sel].T
                    # switched-RHS: (4 x V) slice of A rows
                    frag_a = np.zeros((4, 8), dtype=np.float16)
                    frag_a[:, :v] = a_pad[rows, k0 : k0 + 4].T
                    if self.variant == "arch":
                        # High-Group-Switched operands arrive inverted;
                        # the SWITCH flag re-pairs them inside the TCU
                        # (identity pinned in the tensor-core tests).
                        acc = mma_m8n8k4(
                            frag_b, frag_a, acc,
                            invert_groups=True, switch_steps=(0, 1, 2, 3), stats=tc,
                        )
                    else:
                        # `shfl` repairs the inversion with warp
                        # shuffles before the mma; `reg` accumulates the
                        # inverted halves separately and merges at the
                        # end — both are data-movement identities, so
                        # the canonical mma reproduces their math.
                        acc = mma_m8n8k4(frag_b, frag_a, acc, stats=tc)
                out_vals[lo + s0 : lo + s0 + sel.size] = acc[: sel.size, :v]
        self.last_sim_stats = tc
        return mask.with_values(out_vals.astype(np.float16))

    # ------------------------------------------------------------------ #
    def _stats(
        self, a: np.ndarray, b: np.ndarray, mask: ColumnVectorSparseMatrix
    ) -> KernelStats:
        return self.stats_for(mask, np.asarray(a).shape[1])

    @memo.memoised_stats
    def stats_for(self, mask: ColumnVectorSparseMatrix, k: int) -> KernelStats:
        """Analytic device statistics for the masked ``(M x k)·(k x N)``."""
        spec = self.spec
        eb = 2
        v = mask.vector_length
        m, n = mask.shape
        win = analyze_windows(mask, self.TILE_N)
        launch = LaunchConfig(
            grid_x=win.num_vector_rows, grid_y=win.num_windows, cta_size=self.CTA_SIZE
        )
        k_steps = ceil_div(k, self.TILE_K)
        nnz = float(win.total_vectors)
        active = float(win.num_ctas_active)
        # compacted sub-steps: ceil(window occupancy / 8) per k-step
        substeps = win.substeps(8) * k_steps

        mix = InstructionMix()
        # per sub-step the 4 octets split k = 64 into 16-wide slices:
        # each octet runs its (8x16)·(16x8) tile as 4 serial mma.m8n8k4,
        # so the warp issues 4 warp-wide mma = 16 HMMA steps per
        # sub-step (the per-octet partial sums are merged by the
        # end-of-K shuffle reduction below).
        mma_per_substep = 4.0
        mix.add(InstrClass.HMMA, substeps * mma_per_substep * 4.0)
        if self.variant == "shfl":
            # operand shuffles between group i and i+4 before each mma
            mix.add(InstrClass.SHFL, substeps * mma_per_substep * 2.0)
        # loads: switched-LHS (up to 8 compacted B columns x 64 halves,
        # one column per 128B transaction — B is column-major so any 8
        # nonzero columns coalesce; lanes of absent columns predicate
        # off) + switched-RHS (V x 64 A halves per k-step)
        b_bytes = nnz * k_steps * self.TILE_K * eb
        a_bytes = active * k_steps * v * self.TILE_K * eb
        mix.add(InstrClass.LDG128, substeps * 2.0 + a_bytes / (32 * 16))
        mix.add(InstrClass.LDG32, active)  # window index metadata
        # cross-octet reduction at the end of K (fixed per-CTA cost):
        # 2 butterfly rounds across 4 octets for each of the V x 32/32
        # per-lane outputs, plus the inverted-pattern merge for `reg`.
        red_rounds = warp_reduce_steps(4)
        red_ops = active * red_rounds * max(1.0, v * self.TILE_N / 32.0)
        mix.add(InstrClass.SHFL, red_ops)
        mix.add(InstrClass.FADD, red_ops)
        if self.variant == "reg":
            mix.add(InstrClass.FADD, active * max(1.0, v * self.TILE_N / 32.0))
        # fixed-pattern addressing (guideline III)
        mix.add(InstrClass.IMAD, active * k_steps * 3.0 + substeps)
        mix.add(InstrClass.IADD3, active * k_steps * 1.0)
        misc = active * 10.0 + substeps * 1.0
        if self.variant == "arch":
            misc *= 0.6  # §7.3.2: ~10% fewer total instructions vs reg
        mix.add(InstrClass.MISC, misc)
        mix.add(InstrClass.BRANCH, active * k_steps)
        mix.add(InstrClass.STG, nnz * v * eb / (32 * 4))

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG128] + mix[InstrClass.LDG32])
        gm.store_requests = float(mix[InstrClass.STG])
        gm.load_sectors = (a_bytes + b_bytes) / 32.0
        gm.store_sectors = nnz * v * eb / 32.0
        gm.bytes_requested = a_bytes + b_bytes + nnz * v * eb
        # the ~32 co-resident CTAs cover consecutive vector rows of the
        # same column window, so their B-column fetches share the L1
        mask_density = nnz / max(1.0, float(win.num_vector_rows) * n)
        b_fetched = coresident_reuse_bytes(
            b_bytes,
            num_groups=max(1, launch.num_ctas // 32),
            density=max(1e-9, mask_density),
            group_rows=32,
            l1_effective_bytes=spec.l1_bytes_per_sm,
        )
        gm.bytes_l2_to_l1 = a_bytes + b_fetched + nnz * v * eb
        unique = (m + n) * k * eb + mask.nnz * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        # registers (§6.4/§7.3.2): the octet's single partial-sum set
        # plus the pipelined operand slices; `reg` carries a second
        # accumulator set for the inverted steps (the paper measures
        # 33% more registers and 21.3% fewer active warps/scheduler vs
        # `arch`), `shfl` needs staging registers for the swaps.
        regs = {"arch": 46, "shfl": 52, "reg": 72}[self.variant]
        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=regs,
                shared_bytes_per_cta=0,  # guideline IV: registers only
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=392 if self.variant != "shfl" else 440),
            flops=2.0 * nnz * v * k,
            ilp=4.0,
            stall_correlation=0.1,  # register-only dataflow, no barriers
        )
        return stats
