"""TCU-based 1-D Warp Tiling SpMM — the classic-mapping baseline (§5.2).

Good kernel/compute efficiency (CTA-level 1-D tiles, wmma.m8n32k16),
but a sub-optimal memory path: the classic warp-tile-to-TCU mapping
leaves each lane holding 4 registers per RHS row, so direct loads are
LDG.64 at best and only 64B coalesced (guideline V violated), and
``TileK`` must be a multiple of 16, inflating residue handling.  When
``V < 8`` part of every wmma is wasted computation.

Used as an ablation point between the FPU baseline and the octet
kernel (DESIGN.md ablation index).
"""

from __future__ import annotations

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.tensor_core import TensorCoreStats, wmma_m8n32k16
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel import memo
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes, work_imbalance
from .. import plans as _plans
from .base import Kernel, Precision
from .functional import spmm_functional

__all__ = ["WmmaSpmmKernel"]


class WmmaSpmmKernel(Kernel):
    """SpMM with the classic GEMM-like warp-tile-to-TCU mapping."""

    TILE_N = 64
    TILE_K = 16          # wmma.m8n32k16 step granularity
    CTA_SIZE = 32

    efficiency = 0.70

    def __init__(
        self,
        spec: GPUSpec | None = None,
        precision: Precision = "half",
        simulate: bool = False,
    ) -> None:
        if precision != "half":
            raise ValueError("wmma baseline is a half-precision design")
        super().__init__(spec, precision)
        self.name = "spmm-wmma-warp"
        self.simulate = simulate

    def _execute(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        if self.simulate:
            return self._execute_simulated(a, b)
        return spmm_functional(a, b, self.precision)

    def _execute_simulated(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        """Compiled-plan walk: the whole structure's wmma.m8n32k16
        stream in one batched call per N tile, driven by a cached
        execution plan (:mod:`repro.plans`) — bit-for-bit the
        interpreted per-row walk kept as
        :meth:`_execute_simulated_reference`.
        """
        if not _plans.enabled():
            return self._execute_simulated_reference(a, b)
        b16 = np.asarray(b, dtype=np.float16)
        plan = _plans.spmm_wmma_plan(self, a)
        out, tc = _plans.execute_spmm_wmma(plan, a, b16)
        self.last_sim_stats = tc
        return out.astype(np.float16)

    def _execute_simulated_reference(
        self, a: ColumnVectorSparseMatrix, b: np.ndarray
    ) -> np.ndarray:
        """Pinned interpreted reference of the plan path: per-row walk
        issuing the classic wmma.m8n32k16 stream.

        Each vector row pads its compacted nonzeros to 16-vector k-steps
        (the ``TileK`` multiple-of-16 constraint) and runs two
        ``wmma.m8n32k16`` per k-step across the 64-wide n-tile; the V<8
        row slots are padded with zeros — wasted computation the batched
        primitive performs (and counts) like the hardware would.  The
        issued-HMMA accounting lands on ``self.last_sim_stats``.
        """
        b16 = np.asarray(b, dtype=np.float16)
        m, k = a.shape
        n = b16.shape[1]
        v = a.vector_length
        tc = TensorCoreStats()
        out = np.zeros((m, n), dtype=np.float32)
        for vrow in range(a.num_vector_rows):
            cols, vals = a.row_slice(vrow)
            if cols.size == 0:
                continue
            k_steps = ceil_div(cols.size, 16)
            vals_pad = np.zeros((k_steps * 16, v), dtype=np.float16)
            vals_pad[: cols.size] = vals
            for n0 in range(0, n, self.TILE_N):
                n1 = min(n0 + self.TILE_N, n)
                rhs = np.zeros((k_steps * 16, self.TILE_N), dtype=np.float16)
                rhs[: cols.size, : n1 - n0] = b16[cols, n0:n1]
                acc_lo = np.zeros((8, 32), dtype=np.float32)
                acc_hi = np.zeros((8, 32), dtype=np.float32)
                for g in range(k_steps):
                    frag_a = np.zeros((8, 16), dtype=np.float16)
                    frag_a[:v] = vals_pad[g * 16 : (g + 1) * 16].T
                    frag_b = rhs[g * 16 : (g + 1) * 16]
                    acc_lo = wmma_m8n32k16(frag_a, frag_b[:, :32], acc_lo, stats=tc)
                    acc_hi = wmma_m8n32k16(frag_a, frag_b[:, 32:], acc_hi, stats=tc)
                acc = np.concatenate([acc_lo, acc_hi], axis=1)
                out[vrow * v : (vrow + 1) * v, n0:n1] += acc[:v, : n1 - n0]
        self.last_sim_stats = tc
        return out.astype(np.float16)

    def _stats(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> KernelStats:
        return self.stats_for(a, np.asarray(b).shape[1])

    @memo.memoised_stats
    def stats_for(self, a: ColumnVectorSparseMatrix, n: int) -> KernelStats:
        spec = self.spec
        eb = 2
        v = a.vector_length
        m, k = a.shape
        row_nnz = a.vector_row_nnz().astype(np.float64)
        n_tiles = ceil_div(n, self.TILE_N)
        launch = LaunchConfig(grid_x=a.num_vector_rows, grid_y=n_tiles, cta_size=self.CTA_SIZE)

        # TileK must be a multiple of 16: rows round up to 16-vector steps
        k_steps = np.ceil(row_nnz / 16.0)
        steps_total = float(k_steps.sum()) * n_tiles
        nnz_total = float(row_nnz.sum()) * n_tiles

        mix = InstructionMix()
        # wmma.m8n32k16 computes an (8x16)·(16x32) tile = 16 warp HMMA
        # steps; the 64-wide warp tile needs 2 per k-step.  For V < 8
        # the 8-row slot is padded: computation is wasted, instructions
        # are not removed.
        wmma_per_step = 2.0
        mix.add(InstrClass.HMMA, steps_total * wmma_per_step * 16.0)
        # RHS fragment: per k-step, 16 rows x 64 halves loaded LDG.64,
        # 64B coalesced -> 2x the requests of the octet design
        rhs_bytes_per_step = 16 * self.TILE_N * eb
        mix.add(InstrClass.LDG64, steps_total * rhs_bytes_per_step / (32 * 8))
        # LHS values + indices via shared
        lhs_bytes = 16.0 * v * eb
        mix.add(InstrClass.LDG128, steps_total * max(1.0, lhs_bytes / 512.0))
        mix.add(InstrClass.LDG32, steps_total)
        mix.add(InstrClass.STS, steps_total * max(1.0, lhs_bytes / 512.0))
        mix.add(InstrClass.LDS, steps_total * 2.0)
        mix.add(InstrClass.BAR, steps_total)
        mix.add(InstrClass.IMAD, steps_total * 6.0)
        mix.add(InstrClass.IADD3, steps_total * 2.0)
        mix.add(InstrClass.MISC, steps_total * 4.0 + launch.num_ctas * 12.0)
        mix.add(InstrClass.BRANCH, steps_total)
        out_bytes_per_cta = v * self.TILE_N * eb
        mix.add(InstrClass.STG, launch.num_ctas * max(1.0, out_bytes_per_cta / 512.0))

        gm = GlobalTraffic()
        gm.load_requests = float(
            mix[InstrClass.LDG32] + mix[InstrClass.LDG64] + mix[InstrClass.LDG128]
        )
        gm.store_requests = float(mix[InstrClass.STG])
        # LDG.64 over 8 lanes/row: 64B coalesced -> 8 sectors per request
        gm.load_sectors = steps_total * rhs_bytes_per_step / 32.0 + steps_total * (
            (lhs_bytes + 64.0) / 32.0
        )
        gm.store_sectors = launch.num_ctas * out_bytes_per_cta / 32.0
        # padded k-steps fetch B rows for padding lanes too
        gm.bytes_requested = steps_total * rhs_bytes_per_step + nnz_total * (v * eb + 4.0)
        coresident = 32
        b_requested = steps_total * rhs_bytes_per_step
        density = min(1.0, float(row_nnz.mean()) / k) if k else 1.0
        b_fetched = coresident_reuse_bytes(
            b_requested,
            num_groups=max(1, launch.num_ctas // coresident),
            density=density,
            group_rows=coresident,
            l1_effective_bytes=spec.l1_bytes_per_sm - (int(lhs_bytes) + 64) * coresident,
        )
        stream = nnz_total * (v * eb + 4.0) + launch.num_ctas * out_bytes_per_cta
        gm.bytes_l2_to_l1 = b_fetched + stream
        unique = a.memory_bytes() + k * n * eb + m * n * eb
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        regs = 40 + 2 * v
        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=regs,
                shared_bytes_per_cta=int(lhs_bytes) + 64,
            ),
            instructions=mix,
            global_mem=gm,
            program=ICacheModel(sass_lines=520),
            flops=2.0 * nnz_total * v * self.TILE_N,
            ilp=3.0,
            stall_correlation=0.5,  # per-step barriers around the staging
            work_imbalance=work_imbalance(np.tile(row_nnz, n_tiles), spec.num_sms),
        )
        stats.shared_mem.bulk(
            requests=int(steps_total * 2), wavefronts_per_request=1.0, bytes_per_request=int(lhs_bytes)
        )
        return stats
