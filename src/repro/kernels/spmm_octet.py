"""TCU-based 1-D Octet Tiling SpMM — the paper's primary SpMM kernel (§5.3-5.4).

Launch shape (§5.4): ``TileN = 64``, CTA = 32 threads (one warp), grid
``ceil(M/V) x ceil(N/64)``; each CTA produces one ``V x 64`` output
tile.

Per ``TileK`` stride over the vector row's nonzeros:

* the **LHS fragment** (the ``TileK`` nonzero V-vectors, Figure 11 (1))
  is staged to shared memory cooperatively — it is reused by all four
  octets, so guideline IV sends it through shared memory;
* per ``mma.m8n8k4`` (which consumes 4 nonzero vectors), each thread
  group loads its share of the ``64 x 4`` **RHS fragment** (Figure 11
  (2)) straight into registers with a single ``LDG.128`` — 8 lanes per
  column of 64 consecutive halves, four 128B-coalesced transactions
  (guidelines IV + V);
* the warp then issues the HMMA steps with the LHS/RHS roles *switched*
  so that V lies along the TCU's output columns; when ``V <= 4`` steps
  2-3 produce unused columns (removable only with a SASS assembler —
  §7.1.3 keeps them, and so does this model);
* all ``TileK/4`` loads are issued before a ``__threadfence_block()``
  and the HMMAs after it, preventing register reuse from serialising
  the chain (§5.4) — modelled as a high ``ilp``.

The ``simulate`` mode walks CTAs and issues real
:func:`~repro.hardware.tensor_core.mma_m8n8k4` octet operations on the
switched fragments; it is bit-compatible with the fast functional path
up to fp32 reassociation and is used by the tests to pin the mapping.
"""

from __future__ import annotations

import numpy as np

from ..faults.injector import site as fault_site
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstrClass, InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.tensor_core import TensorCoreStats, mma_m8n8k4, mma_m8n8k4_batched
from ..perfmodel import memo
from ..hardware.thread_hierarchy import LaunchConfig, ceil_div
from ..perfmodel.events import GlobalTraffic, KernelStats, estimate_dram_bytes
from ..perfmodel.reuse import coresident_reuse_bytes, work_imbalance
from .. import plans as _plans
from .base import Kernel, Precision
from .functional import spmm_functional

__all__ = ["OctetSpmmKernel"]


class OctetSpmmKernel(Kernel):
    """SpMM with column-vector sparse encoding on the octet tiling."""

    TILE_N = 64
    TILE_K = 32          # nonzero vectors per shared-memory stage
    CTA_SIZE = 32

    efficiency = 0.70

    def __init__(
        self,
        spec: GPUSpec | None = None,
        precision: Precision = "half",
        simulate: bool = False,
    ) -> None:
        if precision != "half":
            raise ValueError("the octet kernel is a half-precision design (HMMA.884)")
        super().__init__(spec, precision)
        self.name = "spmm-mma-octet"
        self.simulate = simulate

    # ------------------------------------------------------------------ #
    def _execute(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        if self.simulate:
            return self._execute_simulated(a, b)
        return spmm_functional(a, b, self.precision)

    def _execute_simulated(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        """Compiled-plan walk: the whole structure's mma.m8n8k4 stream
        in one batched call per N tile, driven by a cached execution
        plan (:mod:`repro.plans`) — bit-for-bit the interpreted
        per-row walk kept as :meth:`_execute_simulated_reference`.
        The issued-HMMA accounting of the last run is kept on
        ``self.last_sim_stats``.
        """
        v = a.vector_length
        if v > 8:
            raise ValueError("octet tiling supports V <= 8 (one TCU output tile)")
        if not _plans.enabled():
            return self._execute_simulated_reference(a, b)
        b16 = np.asarray(b, dtype=np.float16)
        plan = _plans.spmm_octet_plan(self, a)
        out, tc_stats = _plans.execute_spmm_octet(plan, a, b16)
        self.last_sim_stats = tc_stats
        # declared fault-injection site: accumulator writeback SDC
        return fault_site("spmm_octet.acc", out.astype(np.float16))

    def _execute_simulated_reference(
        self, a: ColumnVectorSparseMatrix, b: np.ndarray
    ) -> np.ndarray:
        """Pinned interpreted reference of the plan path: per-row walk
        with every CTA's octet fragments batched into one
        :func:`mma_m8n8k4_batched` call per (vector row, N tile) —
        itself bit-for-bit the per-octet loop
        (:meth:`_execute_simulated_loop`, pinned by the parity tests).
        """
        v = a.vector_length
        if v > 8:
            raise ValueError("octet tiling supports V <= 8 (one TCU output tile)")
        m, k = a.shape
        b16 = np.asarray(b, dtype=np.float16)
        n = b16.shape[1]
        out = np.zeros((m, n), dtype=np.float32)
        n_tiles = ceil_div(n, self.TILE_N)
        tc_stats = TensorCoreStats()
        for vrow in range(a.num_vector_rows):
            cols, vals = a.row_slice(vrow)
            if cols.size == 0:
                continue
            q = ceil_div(cols.size, 4)  # k-groups of 4 nonzero vectors
            # switched-RHS fragments, one (4 x 8) per k-group
            vals_pad = np.zeros((q * 4, v), dtype=np.float16)
            vals_pad[: cols.size] = vals
            frag_a = np.zeros((q, 4, 8), dtype=np.float16)
            frag_a[:, :, :v] = vals_pad.reshape(q, 4, v)
            for jt in range(n_tiles):
                n0 = jt * self.TILE_N
                n1 = min(n, n0 + self.TILE_N)
                # switched-LHS fragments: gather the k-groups' B rows
                # (padding k-slots and tile columns land on zeros)
                rhs = np.zeros((q * 4, self.TILE_N), dtype=np.float16)
                rhs[: cols.size, : n1 - n0] = b16[cols, n0:n1]
                frag_b = rhs.reshape(q, 4, self.TILE_N).transpose(0, 2, 1)  # (q, 64, 4)
                # whole-CTA fragment batch: (k-group, octet)-major order,
                # each octet owning 8 of the 64 switched-LHS rows
                batch_b = frag_b.reshape(q * 8, 8, 4)
                batch_a = np.repeat(frag_a, 8, axis=0)
                partial = mma_m8n8k4_batched(batch_b, batch_a, stats=tc_stats)
                partial = partial.reshape(q, self.TILE_N, 8)
                acc = np.zeros((self.TILE_N, 8), dtype=np.float32)  # switched: rows = N
                for g in range(q):  # serial k-group accumulation, loop order
                    acc += partial[g]
                out[vrow * v : (vrow + 1) * v, n0:n1] += acc[: n1 - n0, :v].T
        self.last_sim_stats = tc_stats
        # declared fault-injection site: accumulator writeback SDC
        return fault_site("spmm_octet.acc", out.astype(np.float16))

    def _execute_simulated_loop(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> np.ndarray:
        """Reference per-octet walk (one Python-level :func:`mma_m8n8k4`
        per octet) — the batched path above must match it bit for bit."""
        v = a.vector_length
        if v > 8:
            raise ValueError("octet tiling supports V <= 8 (one TCU output tile)")
        m, k = a.shape
        b16 = np.asarray(b, dtype=np.float16)
        n = b16.shape[1]
        out = np.zeros((m, n), dtype=np.float32)
        n_tiles = ceil_div(n, self.TILE_N)
        tc_stats = TensorCoreStats()
        for vrow in range(a.num_vector_rows):
            cols, vals = a.row_slice(vrow)
            if cols.size == 0:
                continue
            for jt in range(n_tiles):
                n0 = jt * self.TILE_N
                n1 = min(n, n0 + self.TILE_N)
                acc = np.zeros((self.TILE_N, 8), dtype=np.float32)  # switched: rows = N
                # process 4 nonzero vectors per mma.m8n8k4
                for s0 in range(0, cols.size, 4):
                    s1 = min(cols.size, s0 + 4)
                    # switched-LHS: the (64 x 4) B fragment (rows = output cols)
                    frag_b = np.zeros((self.TILE_N, 4), dtype=np.float16)
                    frag_b[: n1 - n0, : s1 - s0] = b16[cols[s0:s1], n0:n1].T
                    # switched-RHS: the (4 x V) vector values
                    frag_a = np.zeros((4, 8), dtype=np.float16)
                    frag_a[: s1 - s0, :v] = vals[s0:s1]
                    # each octet owns 8 of the 64 switched-LHS rows
                    for octet in range(8):  # 64 rows / 8-row octet tiles
                        r0 = octet * 8
                        acc[r0 : r0 + 8] = mma_m8n8k4(
                            frag_b[r0 : r0 + 8], frag_a, acc[r0 : r0 + 8], stats=tc_stats
                        )
                out[vrow * v : (vrow + 1) * v, n0:n1] += acc[: n1 - n0, :v].T
        self.last_sim_stats = tc_stats
        return out.astype(np.float16)

    # ------------------------------------------------------------------ #
    def _stats(self, a: ColumnVectorSparseMatrix, b: np.ndarray) -> KernelStats:
        n = np.asarray(b).shape[1]
        return self.stats_for(a, n)

    @memo.memoised_stats
    def stats_for(self, a: ColumnVectorSparseMatrix, n: int) -> KernelStats:
        """Analytic device statistics for ``A[CVSE] @ B[K x n]``."""
        spec = self.spec
        eb = 2  # half precision
        v = a.vector_length
        m, k = a.shape
        row_nnz = a.vector_row_nnz().astype(np.float64)
        n_tiles = ceil_div(n, self.TILE_N)
        launch = LaunchConfig(grid_x=a.num_vector_rows, grid_y=n_tiles, cta_size=self.CTA_SIZE)

        # per vector-row counts (vectorised over rows, then summed).
        # Each group of 4 nonzero vectors is one (64x4)·(4xV) step; a
        # warp-wide mma.m8n8k4 covers 32 of the 64 switched-LHS rows
        # (4 octets x 8 rows), so each group issues 2 mma instructions
        # = 8 HMMA steps — this reproduces the paper's measured HMMA
        # counts (429,504 for V=4 / 215,104 for V=8 on the §7.2.2
        # benchmark, vs 421K/211K modelled).
        quad_groups_per_row = np.ceil(row_nnz / 4.0)
        strides_per_row = np.ceil(row_nnz / self.TILE_K)
        quad_groups = float(quad_groups_per_row.sum()) * n_tiles
        mma_total = 2.0 * quad_groups
        strides_total = float(strides_per_row.sum()) * n_tiles
        nnz_total = float(row_nnz.sum()) * n_tiles

        mix = InstructionMix()
        mix.add(InstrClass.HMMA, 4.0 * mma_total)          # 4 steps, none removed (§7.1.3)
        mix.add(InstrClass.LDG128, quad_groups)            # 64x4 RHS fragment: 512B = 1 LDG.128
        # LHS stage: TileK vectors of V halves + TileK column indices
        lhs_bytes_per_stride = self.TILE_K * (v * eb)
        idx_bytes_per_stride = self.TILE_K * 4
        mix.add(InstrClass.LDG128, strides_total * max(1.0, lhs_bytes_per_stride / 512.0))
        mix.add(InstrClass.LDG32, strides_total)           # indices: 32 lanes x 4B
        mix.add(InstrClass.STS, strides_total * max(1.0, lhs_bytes_per_stride / 512.0))
        mix.add(InstrClass.LDS, mma_total)                 # A fragment per mma
        mix.add(InstrClass.MEMBAR, strides_total)          # the ILP fence (§5.4)
        # addressing: the fixed TCU pattern removes most index math (guideline III)
        mix.add(InstrClass.IMAD, strides_total * 4.0 + mma_total)
        mix.add(InstrClass.IADD3, strides_total * 2.0)
        mix.add(InstrClass.MISC, strides_total * 3.0 + launch.num_ctas * 12.0)
        mix.add(InstrClass.BRANCH, strides_total)
        # epilogue: shuffle-reorganised vector stores (§5.4)
        out_bytes_per_cta = v * self.TILE_N * eb
        mix.add(InstrClass.SHFL, launch.num_ctas * max(2.0, v / 2.0))
        mix.add(InstrClass.STG, launch.num_ctas * max(1.0, out_bytes_per_cta / 512.0))

        gm = GlobalTraffic()
        gm.load_requests = float(mix[InstrClass.LDG128] + mix[InstrClass.LDG32])
        gm.store_requests = float(mix[InstrClass.STG])
        # RHS fragments: 512B over 16 sectors; LHS/idx: contiguous
        gm.load_sectors = (
            quad_groups * 16.0
            + strides_total * (lhs_bytes_per_stride / 32.0 + idx_bytes_per_stride / 32.0)
        )
        gm.store_sectors = launch.num_ctas * out_bytes_per_cta / 32.0
        gm.bytes_requested = (
            nnz_total * (self.TILE_N * eb)            # B rows
            + nnz_total * (v * eb + 4) / n_tiles * n_tiles  # values + indices
            + launch.num_ctas * out_bytes_per_cta
        )
        # B-row re-fetches are served by the L1 shared across the ~32
        # co-resident 32-thread CTAs (consecutive vector rows of the
        # same column tile): the inter-CTA reuse that gives this kernel
        # GEMM-like cache behaviour (Figures 5/18).
        coresident = 32  # register-limited occupancy caps at the CTA limit
        b_requested = nnz_total * self.TILE_N * eb
        density = min(1.0, float(row_nnz.mean()) / k) if k else 1.0
        b_fetched = coresident_reuse_bytes(
            b_requested,
            num_groups=max(1, launch.num_ctas // coresident),
            density=density,
            group_rows=coresident,
            l1_effective_bytes=spec.l1_bytes_per_sm - self.TILE_K * v * eb * coresident,
        )
        stream_bytes = nnz_total * (v * eb + 4.0) + launch.num_ctas * out_bytes_per_cta
        gm.bytes_l2_to_l1 = b_fetched + stream_bytes
        unique = (a.memory_bytes() + k * n * eb + m * n * eb)
        gm.bytes_dram_to_l2 = estimate_dram_bytes(unique, gm.bytes_l2_to_l1, spec.l2_bytes)

        # registers: V x 64 fp32 accumulators / 32 lanes = 2V, plus the
        # deliberately-unreused operand registers of the TileK/4 batch
        regs = 26 + 2 * v + self.TILE_K // 4
        stats = KernelStats(
            name=self.name,
            launch=launch,
            resources=KernelResources(
                cta_size=self.CTA_SIZE,
                registers_per_thread=regs,
                shared_bytes_per_cta=self.TILE_K * v * eb,
            ),
            instructions=mix,
            global_mem=gm,
            # §7.2.2: 384 lines (V=4), 416 (V=8): short, fits L0 easily
            program=ICacheModel(sass_lines=352 + 8 * v),
            flops=2.0 * nnz_total * v * self.TILE_N,
            ilp=float(self.TILE_K // 4),  # batched loads before the fence
            stall_correlation=0.15,       # no barriers, only the membar fence
            work_imbalance=work_imbalance(np.tile(row_nnz, n_tiles), spec.num_sms),
        )
        stats.shared_mem.bulk(
            requests=int(mma_total), wavefronts_per_request=1.0, bytes_per_request=4 * v * eb * 8
        )
        stats.shared_mem.bulk(
            requests=int(strides_total),
            wavefronts_per_request=1.0,
            bytes_per_request=lhs_bytes_per_stride,
            is_store=True,
        )
        return stats
