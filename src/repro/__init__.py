"""vectorSparse reproduction: tensor-core kernels for structured sparsity.

Reproduction of Chen, Qu, Ding, Liu, Xie, "Efficient Tensor Core-Based
GPU Kernels for Structured Sparsity under Reduced Precision" (SC '21),
on a simulated Volta-class GPU (see DESIGN.md for the substitution
inventory).

Public API highlights:

* :class:`~repro.formats.ColumnVectorSparseMatrix` — the paper's
  column-vector sparse encoding (§4);
* :func:`~repro.kernels.spmm` / :func:`~repro.kernels.sddmm` /
  :func:`~repro.kernels.sparse_softmax` — the operations, defaulting to
  the TCU-based 1-D Octet Tiling kernels (§5-6);
* :mod:`repro.transformer` — the sparse-transformer application (§7.4);
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .formats import (
    BlockSparseMatrix,
    BlockedEllMatrix,
    CSRMatrix,
    ColumnVectorSparseMatrix,
    RowVectorSparseMatrix,
    blocked_ell_matching,
    cvse_from_csr_topology,
)
from .hardware import GPUSpec, VOLTA_V100, default_spec
from .kernels import (
    KernelResult,
    dense_gemm,
    sddmm,
    sparse_softmax,
    spmm,
)
from .perfmodel import LatencyEstimate, LatencyModel, profile_kernel

__version__ = "1.0.0"

__all__ = [
    "BlockSparseMatrix",
    "BlockedEllMatrix",
    "CSRMatrix",
    "ColumnVectorSparseMatrix",
    "RowVectorSparseMatrix",
    "GPUSpec",
    "VOLTA_V100",
    "KernelResult",
    "LatencyEstimate",
    "LatencyModel",
    "blocked_ell_matching",
    "cvse_from_csr_topology",
    "default_spec",
    "dense_gemm",
    "profile_kernel",
    "sddmm",
    "sparse_softmax",
    "spmm",
    "__version__",
]
