"""Tagged-union schema for the ``BENCH_simulator.json`` trajectory.

The benchmark trajectory accumulated one record shape per bench script
— five heterogeneous ad-hoc dicts.  This module pins each shape as a
tagged union: the tag is the ``benchmark``/``bench`` field (the legacy
wallclock records are untagged and recognised by their
``baseline_serial_memo_off_s`` key), and every kind requires the common
provenance fields (``timestamp``/``python``/``machine``/``cpus``) plus
its own payload keys.  Extra keys are allowed — the schema pins what a
record *must* carry, not everything it may.

``tools/check_bench_schema.py`` validates the checked-in trajectory in
CI, and every ``benchmarks/bench_*.py`` appends through
:func:`append_bench_record`, so an unvalidated shape can no longer
land in the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

__all__ = [
    "COMMON_FIELDS",
    "KINDS",
    "kind_of",
    "validate_record",
    "validate_trajectory",
    "append_bench_record",
]

#: provenance every record carries regardless of kind
COMMON_FIELDS = ["timestamp", "python", "machine", "cpus"]

#: kind tag -> required payload fields.  ``benchmark:*`` / ``bench:*``
#: tags come from the record's own discriminator field; ``wallclock``
#: is the untagged legacy shape.
KINDS: Dict[str, List[str]] = {
    "wallclock": [
        "baseline_serial_memo_off_s", "fast_jobs_memo_on_s", "jobs",
        "speedup", "repeats", "experiments", "outputs_identical",
    ],
    "benchmark:trace_replay": [
        "problem", "streams", "sampled_sectors", "scalar_reference_s",
        "vector_engine_s", "speedup", "repeats", "outputs_identical",
    ],
    "benchmark:obs-overhead": [
        "disabled_s", "enabled_s", "enabled_mode_delta_pct",
        "projected_disabled_overhead_pct", "overhead_gate_pct",
        "gate_passed", "noop_span_ns", "noop_counter_ns", "enabled_spans",
        "chrome_schema_valid", "repeats", "experiments",
    ],
    "benchmark:plan_codegen": [
        "problem", "kernels", "speedup", "min_simulated_speedup",
        "repeats", "outputs_identical",
    ],
    "bench:resilience": [
        "memo_checksum_off_s", "memo_checksum_on_s",
        "checksum_overhead_pct", "smoke_campaign_s",
        "smoke_campaign_passed", "sweep", "repeats", "outputs_identical",
    ],
    "bench:sharedmemo": [
        "cold_s", "warm_s", "shared_off_s", "warm_speedup",
        "warm_hit_rate", "warm_shared_hits", "warm_shared_misses",
        "sweep", "repeats", "outputs_identical",
    ],
    "bench:serving": [
        "scenario", "requests", "seed", "wall_s", "simulated_s",
        "requests_per_s", "goodput_fraction", "worst_p99_slo_ratio",
        "corrupt_served", "corrupt_detected", "shed", "final_level",
        "ledger_digest", "outputs_identical",
    ],
}


def kind_of(record: Dict[str, object]) -> str:
    """The record's tag (raises ``ValueError`` for unrecognised shapes)."""
    if not isinstance(record, dict):
        raise ValueError("bench record is not an object")
    if "benchmark" in record:
        return f"benchmark:{record['benchmark']}"
    if "bench" in record:
        return f"bench:{record['bench']}"
    if "baseline_serial_memo_off_s" in record:
        return "wallclock"
    raise ValueError(
        "record has no benchmark/bench tag and is not a wallclock shape; "
        f"keys: {sorted(record)}")


def validate_record(record: Dict[str, object]) -> List[str]:
    """Schema problems of one record (empty list = valid)."""
    try:
        kind = kind_of(record)
    except ValueError as exc:
        return [str(exc)]
    if kind not in KINDS:
        return [f"unknown record kind {kind!r}; valid: {sorted(KINDS)}"]
    missing = [k for k in COMMON_FIELDS + KINDS[kind] if k not in record]
    return [f"{kind} record missing field {k!r}" for k in missing]


def validate_trajectory(records: object) -> List[str]:
    """Schema problems of a whole trajectory, prefixed by record index."""
    if not isinstance(records, list):
        return ["trajectory is not a JSON array"]
    problems: List[str] = []
    for i, record in enumerate(records):
        problems.extend(f"record {i}: {p}" for p in validate_record(record))
    return problems


def append_bench_record(path: Path, record: Dict[str, object]) -> None:
    """Validate ``record``, then append it to the trajectory at ``path``.

    The write idiom (load-append-rewrite, ``indent=2`` + trailing
    newline) matches what every bench script used to do inline; an
    invalid record raises before anything is touched.
    """
    problems = validate_record(record)
    if problems:
        raise ValueError(f"refusing to append invalid bench record: {problems}")
    path = Path(path)
    trajectory = json.loads(path.read_text()) if path.exists() else []
    if not isinstance(trajectory, list):
        raise ValueError(f"{path} does not hold a JSON array")
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
