"""General block-sparse (BSR-like) matrices.

Section 4.1 phrases SpMM/SDDMM over ``m x k`` (resp. ``m x n``) nonzero
blocks; §4.2 then observes that CVSE "can also cover the cases of
general block sparse matrix by encoding each column vector separately",
and §8 Case 1 needs *square* blocks so that both ``W`` and ``W^T`` are
CVSE-encodable.  This module provides the general block format plus the
per-column CVSE expansion that realises those claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .cvse import ColumnVectorSparseMatrix

__all__ = ["BlockSparseMatrix"]


@dataclass
class BlockSparseMatrix:
    """Sparse matrix of dense ``block_rows x block_cols`` blocks (CSR order).

    Attributes
    ----------
    shape:
        Logical dense shape.
    block_shape:
        ``(m, k)`` block grain.
    row_ptr / col_idx:
        CSR over the block grid; ``col_idx`` holds *block*-column ids.
    values:
        ``(nnz_blocks, m, k)``.
    """

    shape: Tuple[int, int]
    block_shape: Tuple[int, int]
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        M, K = self.shape
        bm, bk = self.block_shape
        if bm <= 0 or bk <= 0 or M % bm or K % bk:
            raise ValueError(f"shape {self.shape} not divisible by block {self.block_shape}")
        self.row_ptr = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        self.values = np.ascontiguousarray(self.values)
        if self.row_ptr.shape != (M // bm + 1,):
            raise ValueError("row_ptr length mismatch")
        if self.row_ptr[-1] != self.col_idx.size:
            raise ValueError("row_ptr must end at nnz_blocks")
        if self.values.shape != (self.col_idx.size, bm, bk):
            raise ValueError("values must be (nnz_blocks, bm, bk)")
        if self.col_idx.size and self.col_idx.max() >= K // bk:
            raise ValueError("block column out of range")

    @property
    def nnz_blocks(self) -> int:
        return int(self.col_idx.size)

    @property
    def nnz(self) -> int:
        return self.nnz_blocks * self.block_shape[0] * self.block_shape[1]

    @property
    def sparsity(self) -> float:
        M, K = self.shape
        return 1.0 - self.nnz / (M * K)

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        shape: Tuple[int, int],
        block_shape: Tuple[int, int],
        sparsity: float,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float16,
    ) -> "BlockSparseMatrix":
        rng = rng or np.random.default_rng(0)
        M, K = shape
        bm, bk = block_shape
        rows_b, cols_b = M // bm, K // bk
        per_row = max(0, min(cols_b, int(round(cols_b * (1.0 - sparsity)))))
        row_ptr = np.arange(rows_b + 1, dtype=np.int64) * per_row
        col_idx = np.concatenate(
            [np.sort(rng.choice(cols_b, size=per_row, replace=False)) for _ in range(rows_b)]
        ) if per_row else np.empty(0, dtype=np.int64)
        values = rng.uniform(-1.0, 1.0, size=(col_idx.size, bm, bk)).astype(dtype)
        return cls(shape, block_shape, row_ptr, col_idx.astype(np.int64), values)

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, block_shape: Tuple[int, int], dtype=np.float16
    ) -> "BlockSparseMatrix":
        dense = np.asarray(dense)
        M, K = dense.shape
        bm, bk = block_shape
        if M % bm or K % bk:
            raise ValueError(f"shape {dense.shape} not divisible by block {block_shape}")
        rows_b, cols_b = M // bm, K // bk
        blocks = dense.reshape(rows_b, bm, cols_b, bk).transpose(0, 2, 1, 3)
        nz = np.any(blocks != 0, axis=(2, 3))
        counts = nz.sum(axis=1)
        row_ptr = np.zeros(rows_b + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        r_idx, c_idx = np.nonzero(nz)
        values = blocks[r_idx, c_idx].astype(dtype)
        return cls(dense.shape, block_shape, row_ptr, c_idx.astype(np.int64), values)

    def to_dense(self, dtype=None) -> np.ndarray:
        dtype = dtype or self.values.dtype
        M, K = self.shape
        bm, bk = self.block_shape
        out = np.zeros((M // bm, K // bk, bm, bk), dtype=dtype)
        rows = np.repeat(np.arange(M // bm), np.diff(self.row_ptr))
        out[rows, self.col_idx] = self.values.astype(dtype)
        return out.transpose(0, 2, 1, 3).reshape(M, K)

    def to_cvse(self) -> ColumnVectorSparseMatrix:
        """Encode each block column separately as a CVSE vector (§4.2).

        A ``bm x bk`` nonzero block becomes ``bk`` column vectors of
        length ``V = bm`` with consecutive column indices; the resulting
        CVSE matrix is numerically identical and directly consumable by
        the octet kernels.
        """
        bm, bk = self.block_shape
        M, K = self.shape
        # expand: block (row, col) -> bk vectors at columns col*bk + j
        n_vec = self.nnz_blocks * bk
        col_idx = (self.col_idx[:, None] * bk + np.arange(bk)[None, :]).reshape(-1)
        # values: (nnz_blocks, bm, bk) -> (nnz_blocks * bk, bm)
        values = self.values.transpose(0, 2, 1).reshape(n_vec, bm)
        counts = np.diff(self.row_ptr) * bk
        row_ptr = np.zeros(M // bm + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return ColumnVectorSparseMatrix(
            shape=(M, K),
            vector_length=bm,
            row_ptr=row_ptr,
            col_idx=col_idx.astype(np.int64),
            values=np.ascontiguousarray(values),
        )

    def transpose(self) -> "BlockSparseMatrix":
        """Block-transpose; needs square-ish handling only via from_dense."""
        return BlockSparseMatrix.from_dense(
            self.to_dense(dtype=np.float32).T,
            (self.block_shape[1], self.block_shape[0]),
            dtype=self.values.dtype,
        )

    def memory_bytes(self) -> int:
        return self.row_ptr.nbytes + self.col_idx.nbytes + self.values.nbytes
