"""Cross-format conversions and topology utilities.

The benchmark harness needs to build *matched* instances of every
format from one topology (paper §7.1.1): a DLMC CSR topology becomes a
CVSE matrix directly, and a Blocked-ELL matrix with the same sparsity
and problem size.  These helpers centralise that construction plus the
generic dense round-trips used by the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .blocked_ell import BlockedEllMatrix
from .csr import CSRMatrix
from .cvse import ColumnVectorSparseMatrix
from ..perfmodel import memo

__all__ = [
    "cvse_from_csr_topology",
    "blocked_ell_matching",
    "csr_from_cvse",
    "pad_rows",
    "effective_sparsity",
]


def pad_rows(dense: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad the row count up to a multiple (CVSE needs M % V == 0)."""
    m = dense.shape[0]
    rem = m % multiple
    if rem == 0:
        return dense
    pad = multiple - rem
    return np.vstack([dense, np.zeros((pad, dense.shape[1]), dtype=dense.dtype)])


@memo.memoised_rng("format")
def cvse_from_csr_topology(
    csr: CSRMatrix,
    vector_length: int,
    rng: Optional[np.random.Generator] = None,
) -> ColumnVectorSparseMatrix:
    """§7.1.1: reuse csrRowPtr/csrColInd, draw a random V-vector per index.

    The resulting matrix has ``csr.rows * V`` logical rows: each scalar
    row of the topology becomes one *vector row*.
    """
    return ColumnVectorSparseMatrix.from_topology(
        row_ptr=csr.row_ptr,
        col_idx=csr.col_idx,
        vector_length=vector_length,
        num_cols=csr.shape[1],
        rng=rng,
    )


@memo.memoised_rng("format")
def blocked_ell_matching(
    cvse: ColumnVectorSparseMatrix,
    rng: Optional[np.random.Generator] = None,
) -> BlockedEllMatrix:
    """Blocked-ELL benchmark matched to a CVSE instance (§7.1.1).

    Block size = V; blocks per block-row chosen so the two formats have
    the same sparsity and problem size; block columns uniform at random.
    """
    m, k = cvse.shape
    v = cvse.vector_length
    if k % v:
        # pad K up so the block grid exists; padding columns stay zero.
        k = ((k + v - 1) // v) * v
    return BlockedEllMatrix.random(
        (m, k), block_size=v, sparsity=cvse.sparsity, rng=rng or np.random.default_rng(1)
    )


def csr_from_cvse(cvse: ColumnVectorSparseMatrix) -> CSRMatrix:
    """Scalar-CSR expansion, keeping explicit in-vector zeros out."""
    return cvse.to_csr()


def effective_sparsity(mat) -> float:
    """Uniform accessor for the ``sparsity`` of any format object."""
    return float(mat.sparsity)
