"""Blocked-ELL format (cuSPARSE's structured-sparse SpMM input).

cuSPARSE v11.2.1 introduced a Blocked-ELL SpMM (§2.3/§3.2): the matrix
is partitioned into ``B x B`` blocks; every block row stores the *same*
number of (column-indexed) nonzero blocks, padding with zero blocks
where needed.  The paper constructs its Blocked-ELL benchmarks (§7.1.1)
by matching sparsity and problem size with the CVSE benchmarks:
block size = V, blocks per row = ``round(K/B * (1 - S))``, column
indices uniform at random.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["BlockedEllMatrix"]


@dataclass
class BlockedEllMatrix:
    """An ``(M, K)`` matrix stored as Blocked-ELL with ``B x B`` blocks.

    Attributes
    ----------
    shape:
        Logical dense shape; both dims divisible by ``block_size``.
    block_size:
        ``B``.
    col_blocks:
        ``(M/B, ell_width)`` int64: block-column index of each stored
        block, or ``-1`` for padding blocks.
    values:
        ``(M/B, ell_width, B, B)`` float16 block payloads (zeros for
        padding entries).
    """

    shape: Tuple[int, int]
    block_size: int
    col_blocks: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        m, k = self.shape
        b = self.block_size
        if b <= 0 or m % b or k % b:
            raise ValueError(f"shape {self.shape} not divisible by block size {b}")
        self.col_blocks = np.ascontiguousarray(self.col_blocks, dtype=np.int64)
        self.values = np.ascontiguousarray(self.values)
        rows_b = m // b
        if self.col_blocks.ndim != 2 or self.col_blocks.shape[0] != rows_b:
            raise ValueError("col_blocks must be (M/B, ell_width)")
        if self.values.shape != (*self.col_blocks.shape, b, b):
            raise ValueError("values must be (M/B, ell_width, B, B)")
        valid = self.col_blocks >= 0
        if np.any(self.col_blocks[valid] >= k // b):
            raise ValueError("block column index out of range")

    # ------------------------------------------------------------------ #
    @property
    def ell_width(self) -> int:
        """Stored blocks per block row (including padding)."""
        return int(self.col_blocks.shape[1])

    @property
    def num_block_rows(self) -> int:
        return self.shape[0] // self.block_size

    @property
    def nnz_blocks(self) -> int:
        return int((self.col_blocks >= 0).sum())

    @property
    def nnz(self) -> int:
        """Stored scalars in non-padding blocks."""
        return self.nnz_blocks * self.block_size * self.block_size

    @property
    def sparsity(self) -> float:
        m, k = self.shape
        return 1.0 - self.nnz / (m * k)

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        shape: Tuple[int, int],
        block_size: int,
        sparsity: float,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float16,
    ) -> "BlockedEllMatrix":
        """§7.1.1 construction: uniform block columns at matched sparsity."""
        rng = rng or np.random.default_rng(0)
        m, k = shape
        b = block_size
        if m % b or k % b:
            raise ValueError(f"shape {shape} not divisible by block size {b}")
        kb = k // b
        width = int(round(kb * (1.0 - sparsity)))
        width = max(0, min(kb, width))
        rows_b = m // b
        col_blocks = np.empty((rows_b, width), dtype=np.int64)
        for r in range(rows_b):  # sample w/o replacement per block row
            col_blocks[r] = np.sort(rng.choice(kb, size=width, replace=False))
        values = rng.uniform(-1.0, 1.0, size=(rows_b, width, b, b)).astype(dtype)
        return cls(shape, b, col_blocks, values)

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int, dtype=np.float16) -> "BlockedEllMatrix":
        """Encode a dense matrix; ELL width = max nonzero blocks per row."""
        dense = np.asarray(dense)
        m, k = dense.shape
        b = block_size
        if m % b or k % b:
            raise ValueError(f"shape {dense.shape} not divisible by block size {b}")
        rows_b, cols_b = m // b, k // b
        blocks = dense.reshape(rows_b, b, cols_b, b).transpose(0, 2, 1, 3)
        nz = np.any(blocks != 0, axis=(2, 3))  # (rows_b, cols_b)
        width = int(nz.sum(axis=1).max()) if rows_b else 0
        col_blocks = np.full((rows_b, width), -1, dtype=np.int64)
        values = np.zeros((rows_b, width, b, b), dtype=dtype)
        for r in range(rows_b):
            cols = np.nonzero(nz[r])[0]
            col_blocks[r, : cols.size] = cols
            values[r, : cols.size] = blocks[r, cols].astype(dtype)
        return cls(dense.shape, b, col_blocks, values)

    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialise the logical dense matrix (padding blocks stay zero)."""
        dtype = dtype or self.values.dtype
        m, k = self.shape
        b = self.block_size
        out = np.zeros((m // b, k // b, b, b), dtype=dtype)
        rows, slots = np.nonzero(self.col_blocks >= 0)
        cols = self.col_blocks[rows, slots]
        # later duplicates of the same (row, col) overwrite; random()
        # samples without replacement so duplicates never arise there.
        out[rows, cols] = self.values[rows, slots].astype(dtype)
        return out.transpose(0, 2, 1, 3).reshape(m, k)

    def memory_bytes(self) -> int:
        """Bytes of the encoded representation."""
        return self.col_blocks.nbytes + self.values.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockedEllMatrix(shape={self.shape}, B={self.block_size}, "
            f"ell_width={self.ell_width}, sparsity={self.sparsity:.3f})"
        )
