"""Compressed Sparse Row matrices (the fine-grained baseline format).

The paper's fine-grained baselines (Sputnik, cusparseSpMM on CSR)
operate on standard CSR; the column-vector sparse encoding (§4) is
"inspired by the commonly used CSR encoding, except that each index now
corresponds to a nonzero column vector".  This module provides a small,
NumPy-native CSR with the exact accessors the kernels need, plus
scipy interop for testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """A CSR sparse matrix with explicit dtype control.

    Attributes
    ----------
    shape:
        ``(rows, cols)``.
    row_ptr:
        ``(rows + 1,)`` int64 offsets into ``col_idx``/``values``.
    col_idx:
        ``(nnz,)`` int64 column indices, sorted within each row.
    values:
        ``(nnz,)`` values (typically ``float16`` in this library).
    """

    shape: Tuple[int, int]
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        rows, cols = self.shape
        self.row_ptr = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        self.values = np.ascontiguousarray(self.values)
        if rows < 0 or cols < 0:
            raise ValueError(f"invalid shape {self.shape}")
        if self.row_ptr.shape != (rows + 1,):
            raise ValueError(f"row_ptr must have {rows + 1} entries, got {self.row_ptr.shape}")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.col_idx.size:
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if self.col_idx.size != self.values.size:
            raise ValueError("col_idx and values must have equal length")
        if self.col_idx.size and (self.col_idx.min() < 0 or self.col_idx.max() >= cols):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.col_idx.size)

    @property
    def density(self) -> float:
        rows, cols = self.shape
        total = rows * cols
        return self.nnz / total if total else 0.0

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row — the load-balance statistic of DLMC rows."""
        return np.diff(self.row_ptr)

    def row_slice(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        """(col_idx, values) of row ``r`` as views."""
        lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
        return self.col_idx[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype=np.float16) -> "CSRMatrix":
        """Encode the nonzeros of a dense matrix."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = dense != 0
        rows, cols = dense.shape
        row_nnz = mask.sum(axis=1)
        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=row_ptr[1:])
        r_idx, c_idx = np.nonzero(mask)
        return cls(
            shape=(rows, cols),
            row_ptr=row_ptr,
            col_idx=c_idx.astype(np.int64),
            values=dense[r_idx, c_idx].astype(dtype),
        )

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix, dtype=np.float16) -> "CSRMatrix":
        """Convert any scipy sparse matrix."""
        csr = sp.csr_matrix(mat)
        csr.sort_indices()
        return cls(
            shape=csr.shape,
            row_ptr=csr.indptr.astype(np.int64),
            col_idx=csr.indices.astype(np.int64),
            values=csr.data.astype(dtype),
        )

    def to_scipy(self) -> sp.csr_matrix:
        """View as a float64 scipy CSR (for reference math)."""
        return sp.csr_matrix(
            (self.values.astype(np.float64), self.col_idx, self.row_ptr), shape=self.shape
        )

    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialise the logical dense matrix."""
        dtype = dtype or self.values.dtype
        out = np.zeros(self.shape, dtype=dtype)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        out[rows, self.col_idx] = self.values.astype(dtype)
        return out

    def astype(self, dtype) -> "CSRMatrix":
        """Copy with values converted to ``dtype``."""
        return CSRMatrix(self.shape, self.row_ptr, self.col_idx, self.values.astype(dtype))

    def transpose(self) -> "CSRMatrix":
        """CSC of self reinterpreted as CSR of the transpose."""
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr(), dtype=self.values.dtype)

    def memory_bytes(self) -> int:
        """Bytes of the encoded representation (for peak-memory accounting)."""
        return self.row_ptr.nbytes + self.col_idx.nbytes + self.values.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"sparsity={self.sparsity:.3f}, dtype={self.values.dtype})"
        )
