"""Column-vector sparse encoding (CVSE) — the paper's first contribution.

Section 4.2: "Our encoding is equivalent with replacing each nonzero
scalar in the CSR sparse matrix with a nonzero column vector, i.e.
``half2`` for V=2, ``half4`` for V=4, and ``float4`` for V=8.  The
elements within each nonzero column vector are stored in consecutive
addresses, and the consecutive vectors in the same row are also
consecutive in the memory space."

A matrix of shape ``(M, K)`` with vector length ``V`` is therefore a
CSR over ``M / V`` *vector rows*: ``row_ptr``/``col_idx`` index nonzero
``V x 1`` column vectors, and ``values[i]`` holds the ``V`` scalars of
vector ``i``.

The same object doubles as the binary *output mask* for SDDMM (§6.4):
``mask_only=True`` keeps the topology without materialised values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["ColumnVectorSparseMatrix", "RowVectorSparseMatrix"]

#: Vector lengths with native vector-type loads on the paper's device
#: (half2 / half4 / float4).  Other positive lengths are accepted but
#: map onto multiple loads.
NATIVE_VECTOR_LENGTHS = (1, 2, 4, 8)


@dataclass
class ColumnVectorSparseMatrix:
    """A sparse matrix encoded as nonzero ``V x 1`` column vectors.

    Attributes
    ----------
    shape:
        Logical dense shape ``(M, K)``; ``M`` must be divisible by ``V``.
    vector_length:
        ``V`` — the grain height (1 degenerates to plain CSR).
    row_ptr:
        ``(M/V + 1,)`` offsets into ``col_idx`` per vector row.
    col_idx:
        ``(nnz_vectors,)`` column of each nonzero vector, sorted within
        each vector row.
    values:
        ``(nnz_vectors, V)`` float16 — or ``None`` for a topology-only
        mask (SDDMM output pattern).
    """

    shape: Tuple[int, int]
    vector_length: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        m, k = self.shape
        v = self.vector_length
        if v <= 0:
            raise ValueError(f"vector length must be positive, got {v}")
        if m % v != 0:
            raise ValueError(f"rows {m} not divisible by vector length {v}")
        self.row_ptr = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int64)
        if self.row_ptr.shape != (m // v + 1,):
            raise ValueError(
                f"row_ptr must have M/V+1 = {m // v + 1} entries, got {self.row_ptr.shape}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.col_idx.size:
            raise ValueError("row_ptr must start at 0 and end at the vector count")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if self.col_idx.size and (self.col_idx.min() < 0 or self.col_idx.max() >= k):
            raise ValueError("column index out of range")
        if self.values is not None:
            self.values = np.ascontiguousarray(self.values)
            if self.values.shape != (self.col_idx.size, v):
                raise ValueError(
                    f"values must be (nnz_vectors, V) = ({self.col_idx.size}, {v}), "
                    f"got {self.values.shape}"
                )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vector_rows(self) -> int:
        return self.shape[0] // self.vector_length

    @property
    def nnz_vectors(self) -> int:
        return int(self.col_idx.size)

    @property
    def nnz(self) -> int:
        """Stored scalars (vector count x V)."""
        return self.nnz_vectors * self.vector_length

    @property
    def density(self) -> float:
        m, k = self.shape
        return self.nnz / (m * k) if m * k else 0.0

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    @property
    def is_mask(self) -> bool:
        return self.values is None

    def vector_row_nnz(self) -> np.ndarray:
        """Nonzero vectors per vector row (kernel workload per CTA row)."""
        return np.diff(self.row_ptr)

    def row_slice(self, vrow: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """(col_idx, values) of vector row ``vrow`` as views."""
        lo, hi = self.row_ptr[vrow], self.row_ptr[vrow + 1]
        vals = None if self.values is None else self.values[lo:hi]
        return self.col_idx[lo:hi], vals

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, vector_length: int, dtype=np.float16
    ) -> "ColumnVectorSparseMatrix":
        """Encode every column vector containing at least one nonzero.

        Zero scalars *inside* a nonzero vector are stored explicitly —
        that is the format's storage overhead relative to fine-grained
        CSR, and exactly what the paper's kernels compute on.
        """
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        m, k = dense.shape
        v = vector_length
        if m % v:
            raise ValueError(f"rows {m} not divisible by V={v}")
        # view as (M/V, V, K) and find nonzero (vrow, col) pairs
        blocks = dense.reshape(m // v, v, k)
        nz_mask = np.any(blocks != 0, axis=1)  # (M/V, K)
        vrows, cols = np.nonzero(nz_mask)
        row_counts = nz_mask.sum(axis=1)
        row_ptr = np.zeros(m // v + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_ptr[1:])
        values = blocks[vrows, :, cols].astype(dtype)  # (nnz, V)
        return cls((m, k), v, row_ptr, cols.astype(np.int64), values)

    @classmethod
    def from_topology(
        cls,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        vector_length: int,
        num_cols: int,
        values: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float16,
    ) -> "ColumnVectorSparseMatrix":
        """Benchmark construction of §7.1.1.

        "We use the csrRowPtr and csrColInd of the [DLMC] sparse
        matrices, and randomly generate a nonzero vector with length V
        for each indexed position."  The logical row count becomes
        ``(len(row_ptr) - 1) * V``.
        """
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        v = vector_length
        m = (row_ptr.size - 1) * v
        if values is None:
            rng = rng or np.random.default_rng(0)
            # uniform in [-1, 1) scaled: keeps fp16 accumulation benign
            values = rng.uniform(-1.0, 1.0, size=(col_idx.size, v)).astype(dtype)
            # guarantee "nonzero vector": flush any all-zero rounding victim
            dead = ~np.any(values != 0, axis=1)
            if np.any(dead):
                values[dead, 0] = dtype(0.5)
        return cls((m, num_cols), v, row_ptr, col_idx, np.asarray(values, dtype=dtype))

    @classmethod
    def mask_from_dense(cls, mask: np.ndarray, vector_length: int) -> "ColumnVectorSparseMatrix":
        """Topology-only encoding of a boolean mask (SDDMM output pattern)."""
        enc = cls.from_dense(np.asarray(mask, dtype=np.float32), vector_length)
        return cls(enc.shape, enc.vector_length, enc.row_ptr, enc.col_idx, None)

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialise the logical dense matrix."""
        if self.values is None:
            raise ValueError("mask-only encoding has no values; use mask_dense()")
        dtype = dtype or self.values.dtype
        m, k = self.shape
        v = self.vector_length
        out = np.zeros((m // v, v, k), dtype=dtype)
        vrows = np.repeat(np.arange(m // v), np.diff(self.row_ptr))
        out[vrows, :, self.col_idx] = self.values.astype(dtype)
        return out.reshape(m, k)

    def mask_dense(self) -> np.ndarray:
        """Dense boolean mask of the stored (vector-granular) topology."""
        m, k = self.shape
        v = self.vector_length
        out = np.zeros((m // v, k), dtype=bool)
        vrows = np.repeat(np.arange(m // v), np.diff(self.row_ptr))
        out[vrows, self.col_idx] = True
        return np.repeat(out, v, axis=0)

    def to_csr(self) -> CSRMatrix:
        """Expand to scalar CSR (explicit zeros inside vectors dropped)."""
        return CSRMatrix.from_dense(self.to_dense(), dtype=self.values.dtype)

    def with_values(self, values: np.ndarray) -> "ColumnVectorSparseMatrix":
        """Same topology, new values (used by SDDMM to build its output)."""
        return ColumnVectorSparseMatrix(
            self.shape, self.vector_length, self.row_ptr, self.col_idx, values
        )

    def transpose(self) -> "RowVectorSparseMatrix":
        """§8: the transpose is a *row*-vector encoding in CSC order."""
        return RowVectorSparseMatrix(
            shape=(self.shape[1], self.shape[0]),
            vector_length=self.vector_length,
            col_ptr=self.row_ptr,
            row_idx=self.col_idx,
            values=self.values,
        )

    def memory_bytes(self) -> int:
        """Bytes of the encoded representation (indices + values)."""
        nbytes = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.values is not None:
            nbytes += self.values.nbytes
        return nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "mask" if self.is_mask else str(None if self.values is None else self.values.dtype)
        return (
            f"ColumnVectorSparseMatrix(shape={self.shape}, V={self.vector_length}, "
            f"nnz_vectors={self.nnz_vectors}, sparsity={self.sparsity:.3f}, values={kind})"
        )


@dataclass
class RowVectorSparseMatrix:
    """Transpose view of a CVSE matrix (paper §8, Discussion).

    "C^T is a transposed sparse matrix under column-vector sparse
    encoding, which can be viewed as 'row vector sparse encoding' that
    is composed of short row vectors aligned along the horizontal
    dimension.  The position of these short row vectors are encoded in
    compressed sparse column (CSC)."
    """

    shape: Tuple[int, int]
    vector_length: int
    col_ptr: np.ndarray
    row_idx: np.ndarray
    values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        m, k = self.shape
        v = self.vector_length
        if k % v != 0:
            raise ValueError(f"cols {k} not divisible by vector length {v}")
        self.col_ptr = np.ascontiguousarray(self.col_ptr, dtype=np.int64)
        self.row_idx = np.ascontiguousarray(self.row_idx, dtype=np.int64)
        if self.col_ptr.shape != (k // v + 1,):
            raise ValueError("col_ptr has wrong length")

    @property
    def nnz_vectors(self) -> int:
        return int(self.row_idx.size)

    def to_dense(self, dtype=None) -> np.ndarray:
        if self.values is None:
            raise ValueError("mask-only encoding has no values")
        return self.transpose().to_dense(dtype).T

    def transpose(self) -> ColumnVectorSparseMatrix:
        return ColumnVectorSparseMatrix(
            shape=(self.shape[1], self.shape[0]),
            vector_length=self.vector_length,
            row_ptr=self.col_ptr,
            col_idx=self.row_idx,
            values=self.values,
        )
