"""Sparse matrix formats.

* :class:`~repro.formats.csr.CSRMatrix` — fine-grained baseline format;
* :class:`~repro.formats.cvse.ColumnVectorSparseMatrix` — the paper's
  column-vector sparse encoding (§4), plus its transposed
  :class:`~repro.formats.cvse.RowVectorSparseMatrix` view (§8);
* :class:`~repro.formats.blocked_ell.BlockedEllMatrix` — cuSPARSE's
  Blocked-ELL input (§3.2);
* :class:`~repro.formats.block_sparse.BlockSparseMatrix` — general
  block sparsity with per-column CVSE expansion (§4.2, §8 Case 1).
"""

from .csr import CSRMatrix
from .cvse import ColumnVectorSparseMatrix, RowVectorSparseMatrix
from .blocked_ell import BlockedEllMatrix
from .block_sparse import BlockSparseMatrix
from .io import load_cvse, read_smtx, save_cvse, write_smtx
from .conversions import (
    blocked_ell_matching,
    csr_from_cvse,
    cvse_from_csr_topology,
    effective_sparsity,
    pad_rows,
)

__all__ = [
    "CSRMatrix",
    "ColumnVectorSparseMatrix",
    "RowVectorSparseMatrix",
    "BlockedEllMatrix",
    "BlockSparseMatrix",
    "blocked_ell_matching",
    "csr_from_cvse",
    "cvse_from_csr_topology",
    "effective_sparsity",
    "pad_rows",
    "load_cvse",
    "read_smtx",
    "save_cvse",
    "write_smtx",
]
