"""Sparse-matrix file I/O.

Two formats:

* **``.smtx``** — the text format the real DLMC dataset [22] ships in
  (``nrows, ncols, nnz`` header, then the CSR ``row_ptr`` and
  ``col_idx`` lines).  Reading one gives exactly the topology the
  paper's benchmark construction consumes, so users with the real
  collection can drop it in for the synthetic generator.
* **``.npz``** — a lossless container for CVSE matrices (values
  included), for checkpointing pruned models.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .csr import CSRMatrix
from .cvse import ColumnVectorSparseMatrix

__all__ = ["read_smtx", "write_smtx", "save_cvse", "load_cvse"]

PathLike = Union[str, Path]


def read_smtx(path: PathLike) -> CSRMatrix:
    """Read a DLMC ``.smtx`` topology (values initialised to ones)."""
    text = Path(path).read_text().strip().splitlines()
    if len(text) < 2:
        raise ValueError(f"{path}: expected header + row_ptr (+ col_idx) lines")
    header = text[0].replace(",", " ").split()
    if len(header) != 3:
        raise ValueError(f"{path}: header must be 'nrows, ncols, nnz', got {text[0]!r}")
    rows, cols, nnz = (int(x) for x in header)
    row_ptr = np.array(text[1].split(), dtype=np.int64)
    if nnz > 0:
        if len(text) < 3:
            raise ValueError(f"{path}: missing col_idx line for nnz={nnz}")
        col_idx = np.array(text[2].split(), dtype=np.int64)
    else:
        col_idx = np.empty(0, dtype=np.int64)
    if row_ptr.size != rows + 1:
        raise ValueError(f"{path}: row_ptr has {row_ptr.size} entries, expected {rows + 1}")
    if col_idx.size != nnz:
        raise ValueError(f"{path}: col_idx has {col_idx.size} entries, expected {nnz}")
    return CSRMatrix(
        shape=(rows, cols),
        row_ptr=row_ptr,
        col_idx=col_idx,
        values=np.ones(nnz, dtype=np.float16),
    )


def write_smtx(path: PathLike, mat: CSRMatrix) -> None:
    """Write a CSR topology in DLMC ``.smtx`` layout (values dropped)."""
    rows, cols = mat.shape
    with open(path, "w") as f:
        f.write(f"{rows}, {cols}, {mat.nnz}\n")
        f.write(" ".join(str(int(x)) for x in mat.row_ptr) + "\n")
        f.write(" ".join(str(int(x)) for x in mat.col_idx) + "\n")


def save_cvse(path: PathLike, mat: ColumnVectorSparseMatrix) -> None:
    """Lossless CVSE checkpoint (topology + values + metadata)."""
    np.savez_compressed(
        path,
        shape=np.asarray(mat.shape, dtype=np.int64),
        vector_length=np.int64(mat.vector_length),
        row_ptr=mat.row_ptr,
        col_idx=mat.col_idx,
        has_values=np.bool_(mat.values is not None),
        values=mat.values if mat.values is not None else np.zeros((0, mat.vector_length), np.float16),
    )


def load_cvse(path: PathLike) -> ColumnVectorSparseMatrix:
    """Load a CVSE checkpoint written by :func:`save_cvse`."""
    with np.load(path) as z:
        values = z["values"] if bool(z["has_values"]) else None
        return ColumnVectorSparseMatrix(
            shape=tuple(int(x) for x in z["shape"]),
            vector_length=int(z["vector_length"]),
            row_ptr=z["row_ptr"],
            col_idx=z["col_idx"],
            values=values,
        )
