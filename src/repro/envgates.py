"""Central registry of ``REPRO_*`` environment gates.

Every environment variable the system reads is declared here exactly once,
with its default and a docstring; readers go through :func:`flag` /
:func:`raw` with a *literal* gate name.  The ``env-gate-registry`` analysis
rule enforces the round trip: no direct ``os.environ`` read of a
``REPRO_*`` name outside this module, no accessor call with an undeclared
name, and no declared gate that nothing reads.

Flag semantics (shared by every boolean gate):

* unset or blank -> the declared default;
* default-on gates ("1") are disabled only by an explicit
  ``0``/``off``/``false``/``no`` — unknown junk keeps them on;
* default-off gates ("0") are enabled only by an explicit
  ``1``/``on``/``true``/``yes`` — unknown junk keeps them off.

This matches the historical per-module parsers these gates grew up with,
so converting readers to the registry changed no observable behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

__all__ = ["EnvGate", "GATES", "declared", "flag", "raw"]

_TRUTHY = ("1", "on", "true", "yes")
_FALSY = ("0", "off", "false", "no")


@dataclass(frozen=True)
class EnvGate:
    """One declared environment variable: name, default, kind, doc."""

    name: str
    default: str
    kind: str  # "flag" | "value"
    doc: str


def _registry(*gates: EnvGate) -> Dict[str, EnvGate]:
    out: Dict[str, EnvGate] = {}
    for gate in gates:
        if gate.name in out:
            raise ValueError(f"duplicate gate {gate.name}")
        if gate.kind not in ("flag", "value"):
            raise ValueError(f"bad gate kind {gate.kind!r}")
        out[gate.name] = gate
    return out


GATES: Dict[str, EnvGate] = _registry(
    EnvGate("REPRO_MEMO", "1", "flag",
            "In-process content-addressed memo regions (stats/latency/trace/"
            "suite/plan). Default on; set 0 to force every compute fresh."),
    EnvGate("REPRO_MEMO_CHECKSUM", "1", "flag",
            "blake2b integrity checksums on memo blobs; corrupt entries are "
            "recomputed, never served. Default on."),
    EnvGate("REPRO_MEMO_SHARED", "0", "flag",
            "Cross-process shared memo tier (append-only segment store "
            "layered as L2 under the in-process regions). Default off."),
    EnvGate("REPRO_MEMO_SHARED_DIR", "", "value",
            "Directory backing the shared memo store; blank means the "
            "default .repro-memo next to the working directory."),
    EnvGate("REPRO_PLANS", "1", "flag",
            "Compiled execution plans for the simulated kernel layer; set 0 "
            "to fall back to the interpreted *_reference twins. Default on."),
    EnvGate("REPRO_TRACE", "0", "flag",
            "Span tracer master switch (Chrome-trace export, cli obs). "
            "Default off; the disabled path is a no-op check."),
    EnvGate("REPRO_CHAOS", "", "value",
            "Chaos-testing spec for the experiment runner, e.g. crash:fig5 "
            "to kill that experiment's worker mid-sweep. Blank disables."),
    EnvGate("REPRO_SERVING_VERIFY", "1", "flag",
            "Batch-result verification in the serving simulator; detected "
            "corruptions are retried, never served. Default on; set 0 to "
            "model an unprotected cluster (corrupt-served outcomes)."),
    EnvGate("REPRO_SERVING_TIMELINE", "", "value",
            "Cap on exported serving-timeline events (cli serve "
            "--trace-out). Blank means the default 20000; the cap keeps "
            "the earliest events and is reported, never silent."),
)


def declared(name: str) -> EnvGate:
    """The registry entry for ``name`` (KeyError on undeclared gates)."""

    return GATES[name]


def raw(name: str) -> str:
    """The raw string value of a declared gate (default when unset)."""

    gate = GATES[name]
    value = os.environ.get(name)
    return gate.default if value is None else value


def flag(name: str) -> bool:
    """Boolean value of a declared flag gate under the shared semantics."""

    gate = GATES[name]
    if gate.kind != "flag":
        raise ValueError(f"{name} is a value gate, not a flag")
    value = os.environ.get(name)
    if value is None or not value.strip():
        value = gate.default
    value = value.strip().lower()
    if gate.default not in ("", "0"):
        return value not in _FALSY
    return value in _TRUTHY
