"""Counter derivation: one kernel launch -> an Nsight-analog profile.

:func:`derive_profile` fuses the three evidence sources the simulator
already produces —

* the kernel's authored :class:`~repro.perfmodel.events.KernelStats`
  (instruction mix, analytic byte flows, launch/resources),
* the interval model's resolved :class:`~repro.perfmodel.latency.
  LatencyEstimate` (time, per-bound cycles, limiter, occupancy),
* an optional trace-replay :class:`~repro.perfmodel.trace.TraceResult`
  (measured L1 sector hit rate from the sector-cache simulator)

— into one :class:`KernelProfile` of derived counters: arithmetic
intensity, achieved vs peak FLOP/s and DRAM/L2 bandwidth against the
:mod:`repro.hardware` V100 ceilings, sector hit rates, HMMA issue
efficiency, roofline classification, and ranked bottleneck
attribution.  Counters a kernel genuinely lacks are ``None`` (rendered
``n/a``), never a misleading zero — the same convention as
:mod:`repro.perfmodel.profiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hardware.instructions import InstrClass
from ..perfmodel.events import KernelStats
from ..perfmodel.latency import LatencyModel
from ..perfmodel.trace import TraceResult
from .roofline import (
    attribution,
    classify,
    dominant_math_pipe,
    pipe_peak_tflops,
    ridge_point,
    roofline_bound,
)

__all__ = ["KernelProfile", "derive_profile"]


@dataclass
class KernelProfile:
    """Derived per-launch counters in Nsight Compute vocabulary.

    ``l1_sector_hit_rate`` comes from trace replay and is ``None`` for
    kernels without a registered sector stream; ``hmma_issue_efficiency``
    is ``None`` for kernels that issue no tensor-core instructions;
    ``sectors_per_request`` is ``None`` when no global requests exist.
    """

    name: str
    config: str
    classification: str            # compute | memory | latency
    roofline_bound: str            # compute | memory (two-ceiling model)
    limiter: str                   # raw interval-model bound name
    time_us: float
    cycles_per_sm: float
    flops: float
    achieved_tflops: float
    peak_tflops: float
    compute_pipe: str              # pipe the peak refers to
    compute_throughput_pct: float  # achieved / peak, %
    dram_bytes: float
    achieved_dram_gbs: float
    dram_utilization_pct: float
    l2_bytes: float
    achieved_l2_gbs: float
    l2_utilization_pct: float
    arithmetic_intensity: float    # FLOPs per DRAM byte
    arithmetic_intensity_l2: float
    ridge_flops_per_byte: float
    sectors_per_request: Optional[float]
    l1_sector_hit_rate: Optional[float]
    l2_sector_hit_rate: Optional[float]
    hmma_issue_efficiency: Optional[float]
    occupancy_pct: float
    thread_blocks: int
    bottlenecks: List[Dict[str, object]] = field(default_factory=list)

    def counters(self) -> Dict[str, object]:
        """Flat, JSON-ready counter record (history/baseline payload).

        Keys are sorted by construction; floats are already rounded by
        :func:`derive_profile`, so the record is bit-stable across
        identical runs.
        """
        return {
            "achieved_dram_gbs": self.achieved_dram_gbs,
            "achieved_l2_gbs": self.achieved_l2_gbs,
            "achieved_tflops": self.achieved_tflops,
            "arithmetic_intensity": self.arithmetic_intensity,
            "arithmetic_intensity_l2": self.arithmetic_intensity_l2,
            "classification": self.classification,
            "compute_pipe": self.compute_pipe,
            "compute_throughput_pct": self.compute_throughput_pct,
            "dram_bytes": self.dram_bytes,
            "dram_utilization_pct": self.dram_utilization_pct,
            "flops": self.flops,
            "hmma_issue_efficiency": self.hmma_issue_efficiency,
            "l1_sector_hit_rate": self.l1_sector_hit_rate,
            "l2_bytes": self.l2_bytes,
            "l2_sector_hit_rate": self.l2_sector_hit_rate,
            "l2_utilization_pct": self.l2_utilization_pct,
            "limiter": self.limiter,
            "occupancy_pct": self.occupancy_pct,
            "peak_tflops": self.peak_tflops,
            "ridge_flops_per_byte": self.ridge_flops_per_byte,
            "roofline_bound": self.roofline_bound,
            "sectors_per_request": self.sectors_per_request,
            "thread_blocks": self.thread_blocks,
            "time_us": self.time_us,
        }


def _round(x: float, digits: int = 4) -> float:
    return round(float(x), digits)


def derive_profile(
    stats: KernelStats,
    model: Optional[LatencyModel] = None,
    trace: Optional[TraceResult] = None,
    config: str = "",
    top: int = 3,
) -> KernelProfile:
    """Derive one :class:`KernelProfile` from a launch's evidence.

    ``trace`` supplies the measured L1 sector hit rate when the kernel
    has a registered sector stream; everything else is derived from the
    analytic stats and the interval model against ``model.spec``'s
    ceilings.
    """
    model = model or LatencyModel()
    spec = model.spec
    est = model.estimate(stats)
    gm = stats.global_mem
    time_s = est.time_us / 1e6

    dram_bytes = gm.bytes_dram_to_l2 + gm.local_bytes
    l2_bytes = gm.bytes_l2_to_l1 + gm.local_bytes
    achieved_dram_gbs = dram_bytes / time_s / 1e9 if time_s > 0 else 0.0
    achieved_l2_gbs = l2_bytes / time_s / 1e9 if time_s > 0 else 0.0

    pipe = dominant_math_pipe(stats)
    peak_tflops = pipe_peak_tflops(pipe, spec)
    achieved_tflops = stats.flops / time_s / 1e12 if time_s > 0 else 0.0

    cycles = max(1e-9, est.cycles_per_sm)
    hmma = stats.instructions.counts.get(InstrClass.HMMA, 0.0)
    hmma_eff: Optional[float] = None
    if hmma > 0:
        # fraction of the kernel's cycles the tensor pipe is actually
        # issuing HMMA steps: the Nsight "tensor pipe utilization" analog
        hmma_eff = _round(min(1.0, est.bounds.get("pipe:tensor", 0.0) / cycles))

    l2_hit: Optional[float] = None
    if l2_bytes > 0:
        l2_hit = _round(max(0.0, min(1.0, 1.0 - dram_bytes / l2_bytes)))

    return KernelProfile(
        name=stats.name,
        config=config,
        classification=classify(est.limiter),
        roofline_bound=roofline_bound(stats, model),
        limiter=est.limiter,
        time_us=_round(est.time_us, 3),
        cycles_per_sm=_round(est.cycles_per_sm, 1),
        flops=float(stats.flops),
        achieved_tflops=_round(achieved_tflops),
        peak_tflops=_round(peak_tflops, 2),
        compute_pipe=pipe,
        compute_throughput_pct=_round(100.0 * achieved_tflops / peak_tflops, 2),
        dram_bytes=_round(dram_bytes, 1),
        achieved_dram_gbs=_round(achieved_dram_gbs, 2),
        dram_utilization_pct=_round(100.0 * achieved_dram_gbs / spec.dram_bandwidth_gbs, 2),
        l2_bytes=_round(l2_bytes, 1),
        achieved_l2_gbs=_round(achieved_l2_gbs, 2),
        l2_utilization_pct=_round(100.0 * achieved_l2_gbs / spec.l2_bandwidth_gbs, 2),
        arithmetic_intensity=_round(stats.flops / dram_bytes if dram_bytes else 0.0),
        arithmetic_intensity_l2=_round(stats.flops / l2_bytes if l2_bytes else 0.0),
        ridge_flops_per_byte=_round(ridge_point(pipe, spec), 2),
        sectors_per_request=(_round(gm.sectors_per_request)
                             if gm.requests > 0 else None),
        l1_sector_hit_rate=(_round(trace.l1_hit_rate)
                            if trace is not None and trace.sector_accesses else None),
        l2_sector_hit_rate=l2_hit,
        hmma_issue_efficiency=hmma_eff,
        occupancy_pct=_round(100.0 * est.occupancy.occupancy_fraction, 2),
        thread_blocks=int(stats.launch.num_ctas),
        bottlenecks=attribution(est, model, top=top),
    )
