"""Roofline classification and ranked bottleneck attribution.

The paper's performance story (Figs 17/19/20) is a roofline story:
which kernels saturate the tensor pipes and which saturate the memory
system.  This module draws that boundary two independent ways and the
profiler gates on their agreement:

* :func:`classify` reads the interval model's resolved ``limiter`` —
  the argmax over *every* efficiency-scaled bound — and folds it into
  three buckets: ``compute`` (issue + execution pipes), ``memory``
  (L1/L2/DRAM/shared bandwidth), ``latency`` (exposed dependency
  chains at low occupancy, guideline II).
* :func:`roofline_bound` is the classic two-ceiling prediction: ideal
  cycles of the kernel's *dominant math pipe* against its DRAM and L2
  bandwidth cycles, nothing else.  "Can Tensor Cores Benefit
  Memory-Bound Kernels? (No!)" (PAPERS.md) is exactly the claim that
  the memory side of this boundary is TCU-proof.

The two-ceiling model only has those two roofs — it has no axis for
instruction issue, latency, L1 sector traffic or shared-memory
wavefronts, all of which put a kernel *below* both roofs.  So the
falsifiable contract is scoped to kernels the interval model resolves
onto an actual roof (:data:`ROOFLINE_APPLICABLE`): for those, the two
classifications must land on the same side of the ridge.
:func:`roofline_agreement` surfaces violations and the
``profile --smoke`` gate requires the fig20 configs to have none.

:func:`attribution` ranks the model's bounds into a "what to fix
first" list with per-bound remediation advice keyed to the paper's
five guidelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hardware.config import GPUSpec
from ..perfmodel.events import KernelStats
from ..perfmodel.latency import LatencyEstimate, LatencyModel

__all__ = [
    "MEMORY_BOUNDS",
    "MATH_PIPES",
    "ROOFLINE_APPLICABLE",
    "classify",
    "dominant_math_pipe",
    "pipe_peak_tflops",
    "roofline_bound",
    "ridge_point",
    "attribution",
    "roofline_doc",
    "roofline_agreement",
]

#: interval-model bounds that count as the memory system
MEMORY_BOUNDS = frozenset({"l1", "l2", "dram", "shared"})

#: execution pipes that do arithmetic (the roofline's compute ceiling
#: candidates); lsu/shuffle/sfu/misc move data or are negligible
MATH_PIPES = ("tensor", "fma16", "fma32", "alu")

#: limiters the two-ceiling roofline actually models — a math-pipe roof
#: or a DRAM/L2 bandwidth roof.  Kernels resolved onto any other axis
#: (issue, latency, L1, shared, transfer pipes) sit below both roofs,
#: where the roofline makes no prediction to agree or disagree with.
ROOFLINE_APPLICABLE = frozenset(
    {"dram", "l2", "pipe:tensor", "pipe:fma16", "pipe:fma32", "pipe:alu"})

#: per-bound remediation advice, ranked presentation of "what to fix
#: first" (vocabulary of the paper's five guidelines, §5)
ADVICE: Dict[str, str] = {
    "pipe:tensor": "tensor pipe saturated: fewer/denser HMMA steps (larger V, "
                   "less padding waste) or accept compute-bound",
    "pipe:fma32": "fp32 FMA pipe saturated: move MACs to the tensor cores or "
                  "halve precision (guideline I)",
    "pipe:fma16": "fp16 FMA pipe saturated: move MACs to the tensor cores "
                  "(guideline I)",
    "pipe:alu": "integer/addressing ALU saturated: hoist index arithmetic, "
                "reuse offsets across the octet (guideline IV)",
    "pipe:fma-family": "shared FMA datapath saturated: shift work to the "
                       "tensor pipe or trim addressing ALU ops",
    "pipe:lsu": "load/store pipe saturated: widen accesses (LDG.128), fewer "
                "requests per element (guideline III)",
    "pipe:shuffle": "shuffle pipe saturated: the shfl exchange is the cost — "
                    "prefer the reg/arch data paths (§5.3)",
    "pipe:sfu": "SFU saturated: batch transcendental work or approximate",
    "pipe:misc": "misc pipe pressure: reduce control instructions",
    "issue": "issue-bound: raise ILP so fewer, wider instructions retire the "
             "same work (guideline IV: load-all-then-compute)",
    "shared": "shared-memory wavefronts dominate: remove bank conflicts or "
              "bypass staging via register shuffles (guideline V)",
    "l1": "L1 sector traffic dominates: improve coalescing — lower "
          "Sectors/Req toward 16 (guideline III)",
    "l2": "L2 bandwidth dominates: increase inter-CTA reuse (larger tiles, "
          "column-vector packing)",
    "dram": "DRAM bandwidth dominates: shrink the footprint (fp16 operands) "
            "or raise L2 reuse — tensor cores will not help here",
    "latency": "latency-bound: too few resident warps hide the dependency "
               "chains — raise occupancy or batch launches (guideline II)",
}


def classify(limiter: str) -> str:
    """Fold an interval-model limiter into compute/memory/latency."""
    if limiter == "latency":
        return "latency"
    if limiter in MEMORY_BOUNDS:
        return "memory"
    return "compute"


def dominant_math_pipe(stats: KernelStats) -> str:
    """The math pipe executing most of the kernel's warp instructions
    (falls back to ``fma32`` for pipeless kernels)."""
    pipes = stats.instructions.by_pipe()
    best, best_n = "fma32", 0.0
    for pipe in MATH_PIPES:
        n = pipes.get(pipe, 0.0)
        if n > best_n:
            best, best_n = pipe, n
    return best


def pipe_peak_tflops(pipe: str, spec: GPUSpec) -> float:
    """Peak TFLOP/s of one math pipe — the compute roof the kernel's
    precision actually has access to."""
    if pipe == "tensor":
        return spec.peak_tensor_tflops()
    if pipe == "fma16":
        return spec.peak_fp16_tflops()
    return spec.peak_fp32_tflops()


def ridge_point(pipe: str, spec: GPUSpec) -> float:
    """Machine balance (FLOPs/DRAM byte) where the ``pipe`` compute
    roof meets the DRAM bandwidth roof."""
    return pipe_peak_tflops(pipe, spec) * 1e12 / (spec.dram_bandwidth_gbs * 1e9)


def roofline_bound(stats: KernelStats, model: LatencyModel) -> str:
    """The pure two-ceiling roofline prediction: ``compute`` or ``memory``.

    Ideal cycles of the dominant math pipe (efficiency-scaled, like the
    interval model's compute bounds) against the larger of the DRAM and
    L2 bandwidth cycles — no issue, latency, L1 or shared terms, which
    is what makes disagreement with :func:`classify` informative.
    """
    spec = model.spec
    pipes = stats.instructions.by_pipe()
    rate = {"tensor": spec.tensor_hmma_rate, "fma16": spec.fma_fp16_rate,
            "fma32": spec.fma_fp32_rate, "alu": spec.alu_int_rate}
    pipe = dominant_math_pipe(stats)
    compute_cycles = pipes.get(pipe, 0.0) / spec.num_sms / rate[pipe] / model.efficiency
    gm = stats.global_mem
    dram_cycles = (gm.bytes_dram_to_l2 + gm.local_bytes) / spec.num_sms / spec.dram_bytes_per_cycle_per_sm
    l2_cycles = (gm.bytes_l2_to_l1 + gm.local_bytes) / spec.num_sms / spec.l2_bytes_per_cycle_per_sm
    return "compute" if compute_cycles >= max(dram_cycles, l2_cycles) else "memory"


def attribution(est: LatencyEstimate, model: LatencyModel,
                top: int = 3) -> List[Dict[str, object]]:
    """Ranked "what to fix first" rows from the resolved bounds.

    Each row carries the bound name, its efficiency-scaled cycles, its
    share of the kernel's total cycles, and the remediation advice.
    Zero-cycle bounds are dropped; the list is sorted hardest first
    with the bound name as the deterministic tiebreak.
    """
    cycles = max(1e-9, est.cycles_per_sm)
    scaled = {
        key: b / (1.0 if key in MEMORY_BOUNDS else model.efficiency)
        for key, b in est.bounds.items()
    }
    ranked = sorted(scaled.items(), key=lambda kv: (-kv[1], kv[0]))
    rows: List[Dict[str, object]] = []
    for key, b in ranked[: max(0, top)]:
        if b <= 0.0:
            continue
        rows.append({
            "bound": key,
            "cycles": round(b, 1),
            "share": round(min(1.0, b / cycles), 4),
            "advice": ADVICE.get(key, "no specific guidance for this bound"),
        })
    return rows


def roofline_doc(profiles: Dict[str, "object"], spec: Optional[GPUSpec] = None) -> Dict[str, object]:
    """JSON roofline document: machine ceilings + one point per kernel.

    ``profiles`` maps kernel name to :class:`~repro.profiler.counters.
    KernelProfile`; the point set is sorted by kernel name so the
    document is bit-stable across runs.
    """
    from ..hardware.config import default_spec
    spec = spec or default_spec()
    points = []
    for name in sorted(profiles):
        p = profiles[name]
        points.append({
            "kernel": name,
            "arithmetic_intensity": p.arithmetic_intensity,
            "achieved_tflops": p.achieved_tflops,
            "peak_tflops": p.peak_tflops,
            "compute_pipe": p.compute_pipe,
            "ridge_flops_per_byte": p.ridge_flops_per_byte,
            "classification": p.classification,
            "roofline_bound": p.roofline_bound,
        })
    return {
        "device": spec.name,
        "ceilings": {
            "tensor_tflops": round(spec.peak_tensor_tflops(), 2),
            "fp16_tflops": round(spec.peak_fp16_tflops(), 2),
            "fp32_tflops": round(spec.peak_fp32_tflops(), 2),
            "dram_gbs": spec.dram_bandwidth_gbs,
            "l2_gbs": spec.l2_bandwidth_gbs,
        },
        "points": points,
    }


def roofline_agreement(profiles: Dict[str, "object"]) -> List[str]:
    """Kernels whose limiter classification contradicts the roofline.

    Only kernels whose limiter is in :data:`ROOFLINE_APPLICABLE` are
    judged — for everything else (issue-, latency-, L1-, shared- or
    transfer-pipe-bound) the two-ceiling model predicts neither roof.
    An empty list is the ``profile --smoke`` agreement gate.
    """
    mismatched = []
    for name in sorted(profiles):
        p = profiles[name]
        if p.limiter not in ROOFLINE_APPLICABLE:
            continue
        if (p.classification == "memory") != (p.roofline_bound == "memory"):
            mismatched.append(name)
    return mismatched
