"""Rendering: profile tables, roofline summaries, and diff views.

Everything renders through the plain-text table helper the experiment
scripts already use (:func:`repro.perfmodel.profiler.format_table`),
with ``None`` counters shown as ``n/a`` — the profiler never invents a
zero for a counter a kernel does not have.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..perfmodel.profiler import fmt_counter, format_table
from .counters import KernelProfile

__all__ = [
    "profile_table",
    "bottleneck_lines",
    "roofline_summary",
    "diff_kernels",
    "diff_records",
    "render_diff",
]


def profile_table(profiles: Dict[str, KernelProfile]) -> str:
    """The main per-kernel counter table, registry order."""
    rows = []
    for name, p in profiles.items():
        rows.append({
            "Kernel": name,
            "Bound": p.classification,
            "Roofline": p.roofline_bound,
            "Limiter": p.limiter,
            "Time us": fmt_counter(p.time_us, ".1f"),
            "AI": fmt_counter(p.arithmetic_intensity, ".2f"),
            "TFLOP/s": fmt_counter(p.achieved_tflops, ".3f"),
            "Peak%": fmt_counter(p.compute_throughput_pct, ".1f"),
            "DRAM GB/s": fmt_counter(p.achieved_dram_gbs, ".1f"),
            "DRAM%": fmt_counter(p.dram_utilization_pct, ".1f"),
            "L2%": fmt_counter(p.l2_utilization_pct, ".1f"),
            "Sec/Req": fmt_counter(p.sectors_per_request, ".1f"),
            "L1 hit": fmt_counter(p.l1_sector_hit_rate, ".3f"),
            "HMMA eff": fmt_counter(p.hmma_issue_efficiency, ".3f"),
            "Occ%": fmt_counter(p.occupancy_pct, ".1f"),
        })
    return format_table(rows)


def bottleneck_lines(profiles: Dict[str, KernelProfile]) -> List[str]:
    """Ranked "what to fix first" lines, one block per kernel."""
    lines: List[str] = []
    for name, p in profiles.items():
        lines.append(f"{name} [{p.classification}]")
        for i, row in enumerate(p.bottlenecks, 1):
            lines.append(f"  {i}. {row['bound']} "
                         f"({100.0 * float(row['share']):.0f}% of cycles): "
                         f"{row['advice']}")
    return lines


def roofline_summary(doc: Dict[str, object]) -> str:
    """One-screen text summary of a roofline document."""
    ceil = doc["ceilings"]
    lines = [
        f"device: {doc['device']}  "
        f"(tensor {ceil['tensor_tflops']} / fp16 {ceil['fp16_tflops']} / "
        f"fp32 {ceil['fp32_tflops']} TFLOP/s, DRAM {ceil['dram_gbs']} GB/s)",
    ]
    rows = []
    for pt in doc["points"]:
        side = ("left of ridge (memory side)"
                if pt["arithmetic_intensity"] < pt["ridge_flops_per_byte"]
                else "right of ridge (compute side)")
        rows.append({
            "Kernel": pt["kernel"],
            "AI": f"{pt['arithmetic_intensity']:.2f}",
            "Ridge": f"{pt['ridge_flops_per_byte']:.1f}",
            "Position": side,
            "Classified": pt["classification"],
        })
    lines.append(format_table(rows))
    return "\n".join(lines)


def _counter_diff(a: Dict[str, object], b: Dict[str, object],
                  label_a: str, label_b: str) -> List[Dict[str, object]]:
    rows = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        delta = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
            delta = f"{100.0 * (vb - va) / va:+.1f}%"
        rows.append({"Counter": key, label_a: fmt_counter_any(va),
                     label_b: fmt_counter_any(vb), "Delta": delta})
    return rows


def fmt_counter_any(value: object) -> str:
    """Render any counter value (string, number or missing) for a diff."""
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return format(value, ".4g")
    return str(value)


def diff_kernels(a: KernelProfile, b: KernelProfile) -> str:
    """Side-by-side counter diff of two kernel profiles."""
    rows = _counter_diff(a.counters(), b.counters(), a.name, b.name)
    if not rows:
        return "(profiles identical)"
    return format_table(rows)


def diff_records(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Diff two kernel-profile *history records* kernel by kernel."""
    ka = a.get("kernels", {})
    kb = b.get("kernels", {})
    blocks: List[str] = []
    for name in sorted(set(ka) | set(kb)):
        if name not in ka:
            blocks.append(f"{name}: only in run B")
            continue
        if name not in kb:
            blocks.append(f"{name}: only in run A")
            continue
        rows = _counter_diff(ka[name], kb[name], "run A", "run B")
        if rows:
            blocks.append(f"{name}\n{format_table(rows)}")
    return "\n\n".join(blocks) if blocks else "(runs identical)"


def render_diff(profiles: Dict[str, KernelProfile],
                a: str, b: str) -> Optional[str]:
    """Diff two kernels out of one profile sweep (None = unknown name)."""
    if a not in profiles or b not in profiles:
        return None
    return diff_kernels(profiles[a], profiles[b])
