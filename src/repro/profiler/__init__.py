"""Nsight-Compute-analog profiler over the simulator's obs/stats substrate.

The package turns the evidence the simulator already produces — authored
:class:`~repro.perfmodel.events.KernelStats`, interval-model latency
estimates and trace-replay sector streams — into Nsight-vocabulary
counters, a roofline classification with ranked bottleneck attribution,
an append-only run-history store and a CI perf-regression gate:

* :mod:`repro.profiler.counters` — per-launch counter derivation
  (:func:`derive_profile` -> :class:`KernelProfile`);
* :mod:`repro.profiler.roofline` — compute/memory/latency
  classification, two-ceiling roofline prediction and advice-ranked
  attribution;
* :mod:`repro.profiler.registry` — the 13 registered kernels on seeded
  fig20-style configs (:func:`profile_all`);
* :mod:`repro.profiler.history` — schema-validated
  ``results/profile_history.jsonl`` append/load/query;
* :mod:`repro.profiler.baseline` — gated-counter regression checking
  against ``tools/profile_baseline.json``;
* :mod:`repro.profiler.report` — tables, roofline summaries and diffs.

``python -m repro.cli profile`` is the front end.
"""

from .baseline import (
    GATED_COUNTERS,
    baseline_from_profiles,
    check_profiles,
    load_baseline,
    write_baseline,
)
from .counters import KernelProfile, derive_profile
from .history import (
    append_record,
    load_history,
    make_record,
    query,
    validate_record,
)
from .registry import CONFIGS, DEFAULT_CONFIG, KERNEL_NAMES, ProfileConfig, profile_all
from .roofline import (
    attribution,
    classify,
    roofline_agreement,
    roofline_bound,
    roofline_doc,
)
from .report import diff_kernels, diff_records, profile_table, roofline_summary

__all__ = [
    "KernelProfile",
    "derive_profile",
    "classify",
    "roofline_bound",
    "attribution",
    "roofline_doc",
    "roofline_agreement",
    "ProfileConfig",
    "CONFIGS",
    "DEFAULT_CONFIG",
    "KERNEL_NAMES",
    "profile_all",
    "make_record",
    "validate_record",
    "append_record",
    "load_history",
    "query",
    "GATED_COUNTERS",
    "baseline_from_profiles",
    "write_baseline",
    "load_baseline",
    "check_profiles",
    "profile_table",
    "roofline_summary",
    "diff_kernels",
    "diff_records",
]
