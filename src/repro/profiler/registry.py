"""Profile registry: the 13 registered kernels on seeded problems.

The case list mirrors the sanitizer's ``KERNEL_CASES`` name-for-name
(the contract is pinned by a test), but the problems are attention
shaped: a :class:`ProfileConfig` names a sequence length ``seq``, a
head dimension ``head``, a vector length and a vector-level density —
the fig20 geometry where SpMM is ``(seq x seq) @ (seq x head)``, SDDMM
produces the ``seq x seq`` score mask with inner dimension ``head``,
and the dense baseline is the matching cuBLAS GEMM.

Every case yields the kernel's authored stats, its calibrated latency
model, and — where a sector stream generator exists in
:mod:`repro.perfmodel.trace` — the trace-replay result that supplies
the measured L1 hit rate.  Everything is seeded and memoised, so
:func:`profile_all` is deterministic and cheap to re-run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.csr import CSRMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.thread_hierarchy import ceil_div
from ..kernels.cusparse import (
    BlockedEllSpmmKernel,
    CusparseCsrSpmmKernel,
    CusparseSddmmKernel,
)
from ..kernels.gemm import DenseGemmKernel
from ..kernels.sddmm_fpu import FpuSddmmKernel
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.sddmm_wmma import WmmaSddmmKernel
from ..kernels.softmax_sparse import SparseSoftmaxKernel
from ..kernels.spmm_fpu import FpuSpmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel
from ..kernels.spmm_wmma import WmmaSpmmKernel
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..perfmodel import trace
from ..perfmodel.events import KernelStats
from ..perfmodel.latency import LatencyModel
from ..perfmodel.trace import TraceResult
from .counters import KernelProfile, derive_profile

__all__ = ["ProfileConfig", "CONFIGS", "DEFAULT_CONFIG", "KERNEL_NAMES",
           "profile_all"]


@dataclass(frozen=True)
class ProfileConfig:
    """One seeded attention-shaped profiling problem."""

    name: str
    seq: int          # sequence length: both dims of the sparse operand
    head: int         # head dimension: SpMM N / SDDMM inner K
    v: int            # column-vector length
    density: float    # vector-level density of the sparse operand
    seed: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (the history store's config payload)."""
        return asdict(self)


#: named profile configs; the fig20 pair carries the acceptance gates
CONFIGS: Dict[str, ProfileConfig] = {
    "smoke": ProfileConfig("smoke", seq=128, head=64, v=4, density=0.25, seed=7),
    "fig20-k64": ProfileConfig("fig20-k64", seq=1024, head=64, v=8,
                               density=0.1, seed=7),
    "fig20-k256": ProfileConfig("fig20-k256", seq=1024, head=256, v=8,
                                density=0.1, seed=7),
}

DEFAULT_CONFIG = "fig20-k64"


# --------------------------------------------------------------------- #
# problem materialisation (seeded; same idiom as the sanitizer harness)
# --------------------------------------------------------------------- #
def _cvse(cfg: ProfileConfig) -> ColumnVectorSparseMatrix:
    rng = np.random.default_rng(cfg.seed)
    rows = cfg.seq // cfg.v
    keep = rng.random((rows, cfg.seq)) < cfg.density
    d = (rng.uniform(-1, 1, (rows, cfg.v, cfg.seq)) * keep[:, None, :])
    d = d.reshape(rows * cfg.v, cfg.seq)
    return ColumnVectorSparseMatrix.from_dense(d.astype(np.float16), cfg.v)


def _mask(cfg: ProfileConfig) -> ColumnVectorSparseMatrix:
    rng = np.random.default_rng(cfg.seed + 1)
    grp = rng.random((cfg.seq // cfg.v, cfg.seq)) < cfg.density
    return ColumnVectorSparseMatrix.mask_from_dense(
        np.repeat(grp, cfg.v, axis=0), cfg.v)


def _ell(cfg: ProfileConfig) -> BlockedEllMatrix:
    rng = np.random.default_rng(cfg.seed + 2)
    block = 16
    m = ceil_div(cfg.seq, block) * block
    return BlockedEllMatrix.random((m, m), block,
                                   sparsity=1.0 - cfg.density, rng=rng)


def _csr(cfg: ProfileConfig) -> CSRMatrix:
    rng = np.random.default_rng(cfg.seed + 3)
    d = rng.uniform(-1, 1, (cfg.seq, cfg.seq)) * (
        rng.random((cfg.seq, cfg.seq)) < cfg.density)
    return CSRMatrix.from_dense(d.astype(np.float16))


# --------------------------------------------------------------------- #
# cases: (stats, model, optional trace replay) per registered kernel
# --------------------------------------------------------------------- #
_Evidence = Tuple[KernelStats, LatencyModel, Optional[TraceResult]]


def _spmm_octet(cfg: ProfileConfig) -> _Evidence:
    a = _cvse(cfg)
    kern = OctetSpmmKernel()
    return kern.stats_for(a, cfg.head), kern._model, trace.trace_octet_spmm(a, cfg.head)


def _spmm_wmma(cfg: ProfileConfig) -> _Evidence:
    a = _cvse(cfg)
    kern = WmmaSpmmKernel()
    return kern.stats_for(a, cfg.head), kern._model, None


def _spmm_fpu(cfg: ProfileConfig) -> _Evidence:
    a = _cvse(cfg)
    kern = FpuSpmmKernel()
    return kern.stats_for(a, cfg.head), kern._model, None


def _spmm_ell(cfg: ProfileConfig) -> _Evidence:
    ell = _ell(cfg)
    kern = BlockedEllSpmmKernel()
    return kern.stats_for(ell, cfg.head), kern._model, trace.trace_blocked_ell(ell, cfg.head)


def _gemm(cfg: ProfileConfig) -> _Evidence:
    kern = DenseGemmKernel()
    stats = kern.stats_for_shape(cfg.seq, cfg.head, cfg.seq)
    return stats, kern._model, trace.trace_gemm(cfg.seq, cfg.head, cfg.seq)


def _sddmm_octet(variant: str) -> Callable[[ProfileConfig], _Evidence]:
    def build(cfg: ProfileConfig) -> _Evidence:
        mask = _mask(cfg)
        kern = OctetSddmmKernel(variant=variant)
        return (kern.stats_for(mask, cfg.head), kern._model,
                trace.trace_octet_sddmm(mask, cfg.head))
    return build


def _sddmm_wmma(cfg: ProfileConfig) -> _Evidence:
    mask = _mask(cfg)
    kern = WmmaSddmmKernel()
    return (kern.stats_for(mask, cfg.head), kern._model,
            trace.trace_wmma_sddmm(mask, cfg.head))


def _sddmm_fpu(cfg: ProfileConfig) -> _Evidence:
    mask = _mask(cfg)
    kern = FpuSddmmKernel()
    return kern.stats_for(mask, cfg.head), kern._model, None


def _softmax(cfg: ProfileConfig) -> _Evidence:
    a = _cvse(cfg)
    kern = SparseSoftmaxKernel()
    return kern.stats_for(a), kern._model, None


def _csr_spmm(cfg: ProfileConfig) -> _Evidence:
    csr = _csr(cfg)
    kern = CusparseCsrSpmmKernel()
    return kern.stats_for(csr, cfg.head), kern._model, None


def _csr_sddmm(cfg: ProfileConfig) -> _Evidence:
    csr = _csr(cfg)
    kern = CusparseSddmmKernel()
    return kern.stats_for(csr, cfg.head), kern._model, None


#: name -> evidence builder; names mirror the sanitizer's KERNEL_CASES
_CASES: Dict[str, Callable[[ProfileConfig], _Evidence]] = {
    "spmm-octet": _spmm_octet,
    "spmm-wmma": _spmm_wmma,
    "spmm-fpu": _spmm_fpu,
    "spmm-blocked-ell": _spmm_ell,
    "dense-gemm": _gemm,
    "sddmm-octet-reg": _sddmm_octet("reg"),
    "sddmm-octet-shfl": _sddmm_octet("shfl"),
    "sddmm-octet-arch": _sddmm_octet("arch"),
    "sddmm-wmma": _sddmm_wmma,
    "sddmm-fpu": _sddmm_fpu,
    "softmax": _softmax,
    "cusparse-csr-spmm": _csr_spmm,
    "cusparse-sddmm": _csr_sddmm,
}

#: the registered kernel names, registry order
KERNEL_NAMES: Tuple[str, ...] = tuple(_CASES)


def profile_all(config: ProfileConfig,
                kernels: Optional[List[str]] = None,
                top: int = 3) -> Dict[str, KernelProfile]:
    """Profile the registered kernels on ``config``.

    ``kernels`` restricts the run (unknown names raise ``ValueError``
    listing the valid choices); the result maps kernel name to its
    :class:`~repro.profiler.counters.KernelProfile` in registry order.
    """
    if kernels:
        unknown = sorted(set(kernels) - set(_CASES))
        if unknown:
            raise ValueError(
                f"unknown kernels: {unknown}; valid choices: {sorted(_CASES)}")
    names = [n for n in _CASES if kernels is None or n in set(kernels)]
    out: Dict[str, KernelProfile] = {}
    with obs_tracing.span("profiler.capture", config=config.name,
                          kernels=len(names)):
        for name in names:
            with obs_tracing.span(f"profiler.kernel.{name}"):
                stats, model, tr = _CASES[name](config)
                out[name] = derive_profile(stats, model, trace=tr,
                                           config=config.name, top=top)
                out[name].name = name  # registry name, not the stats label
            obs_metrics.counter_add("profiler.kernels.profiled")
    return out
