"""Append-only, schema-validated run-history store.

Every profiled run — kernel sweeps from ``cli profile``, serving
summaries from ``cli serve --profile``, experiment sweeps from the
runner's ``--profile`` — lands as one JSON line in
``results/profile_history.jsonl``.  Records are keyed by a config
digest plus the git state at capture time, and each carries a
``digest`` over its deterministic payload (the sharedmemo blake2b
checksumming idiom), so two consecutive runs of the same config are
required to append **bit-identical** payloads — the acceptance gate
``cli profile --smoke`` enforces.

The schema is deliberately small and checked in both directions:
:func:`validate_record` rejects unknown kinds, missing fields and
wrong digests, and :func:`append_record` refuses to write anything
that does not validate.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import metrics as obs_metrics

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "payload_digest",
    "git_state",
    "make_record",
    "validate_record",
    "append_record",
    "load_history",
    "query",
]

SCHEMA_VERSION = 1

#: record kind -> required keys of its payload field
KINDS: Dict[str, List[str]] = {
    "kernel-profile": ["kernels"],
    "serving": ["per_tenant", "ladder_occupancy"],
    "experiment-sweep": ["experiments"],
}

#: envelope keys every record carries
_ENVELOPE = ["schema", "kind", "timestamp", "git", "config", "config_digest",
             "digest"]


def _canonical(obj: object) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


def payload_digest(record: Dict[str, object]) -> str:
    """blake2b digest over the record's deterministic payload.

    Timestamp, git state and the digest itself are excluded, so runs of
    the same config on the same tree produce the same digest — that is
    the bit-stability contract the smoke gate checks.
    """
    payload = {k: v for k, v in record.items()
               if k not in ("timestamp", "git", "digest")}
    return hashlib.blake2b(_canonical(payload), digest_size=16).hexdigest()


def git_state(repo: Optional[Path] = None) -> Dict[str, object]:
    """Current commit + dirty flag (``unknown`` outside a work tree)."""
    cwd = str(repo) if repo else None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip()
        dirty = bool(subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True).stdout.strip())
        return {"commit": commit, "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"commit": "unknown", "dirty": False}


def make_record(kind: str, config: Dict[str, object],
                payload: Dict[str, object],
                timestamp: Optional[str] = None) -> Dict[str, object]:
    """Assemble and digest one history record.

    ``payload`` supplies the kind's required fields (see :data:`KINDS`);
    ``config`` is the run configuration the config digest is taken over.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown record kind {kind!r}; valid: {sorted(KINDS)}")
    missing = [k for k in KINDS[kind] if k not in payload]
    if missing:
        raise ValueError(f"{kind} payload missing fields: {missing}")
    record: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "timestamp": timestamp or datetime.now(timezone.utc).isoformat(),
        "git": git_state(),
        "config": config,
        "config_digest": hashlib.blake2b(
            _canonical(config), digest_size=16).hexdigest(),
    }
    record.update(payload)
    record["digest"] = payload_digest(record)
    return record


def validate_record(record: Dict[str, object]) -> List[str]:
    """Schema problems of one record (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    for key in _ENVELOPE:
        if key not in record:
            problems.append(f"missing envelope field {key!r}")
    if problems:
        return problems
    if record["schema"] != SCHEMA_VERSION:
        problems.append(f"unsupported schema version {record['schema']!r}")
    kind = record["kind"]
    if kind not in KINDS:
        problems.append(f"unknown kind {kind!r}")
    else:
        for key in KINDS[kind]:
            if key not in record:
                problems.append(f"{kind} record missing field {key!r}")
    git = record["git"]
    if not (isinstance(git, dict) and "commit" in git and "dirty" in git):
        problems.append("git field must carry commit + dirty")
    if not problems and record["digest"] != payload_digest(record):
        problems.append("digest does not match payload")
    return problems


def append_record(path: Path, record: Dict[str, object]) -> Dict[str, object]:
    """Validate ``record`` and append it as one sorted-keys JSON line."""
    problems = validate_record(record)
    if problems:
        raise ValueError(f"refusing to append invalid record: {problems}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    obs_metrics.counter_add("profiler.history.appended")
    return record


def load_history(path: Path) -> List[Dict[str, object]]:
    """All records of a history file, oldest first (missing file = [])."""
    if not path.exists():
        return []
    records = []
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: corrupt history line: {exc}") from exc
    return records


def query(records: List[Dict[str, object]],
          kind: Optional[str] = None,
          config_digest: Optional[str] = None,
          last: Optional[int] = None) -> List[Dict[str, object]]:
    """Filter history records by kind and/or config digest."""
    out = [r for r in records
           if (kind is None or r.get("kind") == kind)
           and (config_digest is None or r.get("config_digest") == config_digest)]
    if last is not None:
        out = out[-last:]
    return out
