"""Perf-regression gating against a checked-in counter baseline.

``tools/profile_baseline.json`` pins, per kernel, the gated counters of
the default fig20 config plus the expected roofline classification.
``cli profile --check`` re-derives the profiles and fails (exit 1) when
any kernel regresses more than the baseline's tolerance on a gated
counter, changes classification, or disappears — which is what turns
the profiler from a report into a CI gate.

Counters gate directionally: ``time_us`` and byte counters may not
*grow* past tolerance, throughput/hit-rate counters may not *shrink*.
Getting faster is never a regression; baselines are refreshed
deliberately via ``cli profile --update-baseline`` (workflow in
``docs/PROFILER.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .counters import KernelProfile

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE_PCT",
    "GATED_COUNTERS",
    "baseline_from_profiles",
    "write_baseline",
    "load_baseline",
    "check_profiles",
]

BASELINE_SCHEMA = 1
DEFAULT_TOLERANCE_PCT = 10.0

#: gated counter -> direction ("lower" = growth is a regression,
#: "higher" = shrinkage is a regression)
GATED_COUNTERS: Dict[str, str] = {
    "time_us": "lower",
    "dram_bytes": "lower",
    "l2_bytes": "lower",
    "achieved_tflops": "higher",
    "hmma_issue_efficiency": "higher",
    "l1_sector_hit_rate": "higher",
}


def baseline_from_profiles(profiles: Dict[str, KernelProfile],
                           config: str,
                           tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
                           ) -> Dict[str, object]:
    """Baseline document pinning the gated counters of ``profiles``."""
    kernels: Dict[str, Dict[str, object]] = {}
    for name in sorted(profiles):
        counters = profiles[name].counters()
        entry: Dict[str, object] = {
            "classification": counters["classification"],
        }
        for key in sorted(GATED_COUNTERS):
            entry[key] = counters[key]
        kernels[name] = entry
    return {
        "schema": BASELINE_SCHEMA,
        "config": config,
        "tolerance_pct": tolerance_pct,
        "kernels": kernels,
    }


def write_baseline(path: Path, baseline: Dict[str, object]) -> None:
    """Write a baseline document (stable formatting for clean diffs)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, object]:
    """Load and sanity-check a baseline document."""
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: unsupported baseline schema {doc.get('schema')!r}")
    if not isinstance(doc.get("kernels"), dict):
        raise ValueError(f"{path}: baseline has no kernels map")
    return doc


def _regressed(key: str, base: float, cur: float, tol_pct: float) -> bool:
    if GATED_COUNTERS[key] == "lower":
        return cur > base * (1.0 + tol_pct / 100.0)
    return cur < base * (1.0 - tol_pct / 100.0)


def check_profiles(profiles: Dict[str, KernelProfile],
                   baseline: Dict[str, object],
                   config: Optional[str] = None) -> List[Dict[str, object]]:
    """Regressions of ``profiles`` against ``baseline`` (empty = pass).

    Each row names the kernel, the counter (or ``classification`` /
    ``missing``), the baseline and current values, and the relative
    change in percent.  ``config`` mismatches against the baseline's
    pinned config are reported as a single ``config`` row — comparing
    counters across configs is meaningless.
    """
    regressions: List[Dict[str, object]] = []
    if config is not None and config != baseline.get("config"):
        return [{"kernel": "*", "counter": "config",
                 "baseline": baseline.get("config"), "current": config,
                 "change_pct": None}]
    tol = float(baseline.get("tolerance_pct", DEFAULT_TOLERANCE_PCT))
    for name in sorted(baseline["kernels"]):
        entry = baseline["kernels"][name]
        if name not in profiles:
            regressions.append({"kernel": name, "counter": "missing",
                                "baseline": "profiled", "current": "absent",
                                "change_pct": None})
            continue
        counters = profiles[name].counters()
        if counters["classification"] != entry.get("classification"):
            regressions.append({
                "kernel": name, "counter": "classification",
                "baseline": entry.get("classification"),
                "current": counters["classification"], "change_pct": None,
            })
        for key in sorted(GATED_COUNTERS):
            base = entry.get(key)
            cur = counters.get(key)
            if base is None or cur is None:
                continue  # counters the kernel genuinely lacks
            if base == 0:
                continue
            if _regressed(key, float(base), float(cur), tol):
                regressions.append({
                    "kernel": name, "counter": key,
                    "baseline": base, "current": cur,
                    "change_pct": round(100.0 * (float(cur) - float(base))
                                        / float(base), 2),
                })
    return regressions
