"""§8 Case 2: global-attention rows alongside the CVSE mask.

"Another extreme case is all the column vectors in the same row should
be zero or nonzero at the same time (a short and wide matrix), which is
used in the global attention in sparse transformer.  Because all the
entries are nonzero in a nonzero row, we can directly access the
entries in a for loop."

:class:`HybridAttentionMask` splits an attention pattern into

* a small set of fully-dense *global* rows (and the columns attending
  back to them), routed through the dense GEMM path, and
* the remaining band+random structure in CVSE, routed through the
  octet SDDMM/softmax/SpMM pipeline,

mirroring the Big-Bird-style layouts the paper cites [30].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..kernels.base import elem_bytes
from ..kernels.gemm import DenseGemmKernel
from ..transformer.attention import AttentionTiming, SparseAttention
from ..transformer.masks import band_random_mask, mask_to_cvse

__all__ = ["HybridAttentionMask", "hybrid_sparse_attention"]


@dataclass
class HybridAttentionMask:
    """A global-rows + CVSE split of one attention pattern."""

    seq_len: int
    num_global: int
    local_mask: ColumnVectorSparseMatrix     # CVSE part (global rows excluded)

    @classmethod
    def build(
        cls,
        seq_len: int,
        num_global: int,
        vector_length: int = 8,
        band: int = 64,
        sparsity: float = 0.9,
        rng: Optional[np.random.Generator] = None,
    ) -> "HybridAttentionMask":
        if num_global % vector_length:
            raise ValueError("num_global must align to the vector length")
        rng = rng or np.random.default_rng(0)
        local = band_random_mask(seq_len, vector_length, band, sparsity, rng)
        # zero the global rows out of the CVSE part: they go dense
        local[:num_global, :] = False
        return cls(seq_len, num_global, mask_to_cvse(local, vector_length))

    def dense_mask(self) -> np.ndarray:
        """The combined boolean pattern (for reference computation)."""
        m = self.local_mask.mask_dense().copy()
        m[: self.num_global, :] = True
        return m

    @property
    def density(self) -> float:
        return float(self.dense_mask().mean())


def hybrid_sparse_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: HybridAttentionMask,
    spec: Optional[GPUSpec] = None,
) -> Tuple[np.ndarray, AttentionTiming]:
    """Attention with dense global rows + CVSE local structure.

    Global rows compute ``softmax(q_g K^T / sqrt(d)) V`` densely (the
    "direct for loop" of §8); the rest flows through the octet
    pipeline.  Row-wise softmax makes the two halves independent, so
    the outputs stitch exactly.
    """
    q = np.asarray(q, dtype=np.float16)
    k = np.asarray(k, dtype=np.float16)
    v = np.asarray(v, dtype=np.float16)
    l, d = q.shape
    g = mask.num_global
    out = np.empty((l, d), dtype=np.float16)
    timing = AttentionTiming()

    # --- global rows: dense ------------------------------------------------
    gemm = DenseGemmKernel(spec, precision="half")
    if g:
        scores = (q[:g].astype(np.float32) @ k.astype(np.float32).T) / np.sqrt(d)
        scores -= scores.max(axis=1, keepdims=True)
        ex = np.exp(scores)
        att = ex / ex.sum(axis=1, keepdims=True)
        out[:g] = (att @ v.astype(np.float32)).astype(np.float16)
        t_qk = gemm.estimate(q[:g], k.T).time_us
        t_av = gemm.estimate(att.astype(np.float16), v).time_us
        timing.qk += t_qk
        timing.av += t_av
        eb = elem_bytes("half")
        timing.softmax += (2.0 * g * l * eb) / (
            (spec or gemm.spec).dram_bandwidth_gbs * 1e3
        ) + (spec or gemm.spec).launch_overhead_us

    # --- local structure: CVSE pipeline -------------------------------------
    sa = SparseAttention(mask.local_mask, spec)
    local_out, t_local = sa(q, k, v)
    out[g:] = local_out[g:]
    timing.add(t_local)
    timing.others += 0.0
    return out, timing
