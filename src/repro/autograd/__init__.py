"""Extension operators from the paper's Discussion (§8).

* :class:`~repro.autograd.sparse_linear.SparseLinear` — Case 1: sparse
  training with square-block CVSE weights (forward SpMM on W, input
  gradient SpMM on W^T, weight gradient SDDMM at W's topology);
* :class:`~repro.autograd.global_attention.HybridAttentionMask` /
  :func:`~repro.autograd.global_attention.hybrid_sparse_attention` —
  Case 2: fully-dense global attention rows alongside the CVSE mask.
"""

from .global_attention import HybridAttentionMask, hybrid_sparse_attention
from .sparse_linear import SparseLinear

__all__ = ["HybridAttentionMask", "SparseLinear", "hybrid_sparse_attention"]
