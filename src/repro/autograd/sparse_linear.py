"""§8 Case 1: sparse *training* with the column-vector encoding.

"When applying our method to neural network training ... we have

    Y = W X            (1)
    dL/dX = W^T dL/dY  (2)
    dL/dW = dL/dY X^T  (3)

(1) and (2) can be computed with our SpMM kernel, and the SDDMM kernel
is applicable in (3).  As both W and W^T are used, we need to have
square nonzero blocks aligned in both vertical and horizontal
dimensions, then we can encode both W and W^T with our column-vector
sparse encoding."

:class:`SparseLinear` realises exactly that: a weight matrix pruned at
``B x B`` square-block granularity, kept in *two* CVSE encodings (one
for ``W``, one for ``W^T``), with

* ``forward``  — octet SpMM on ``W``'s encoding,
* ``backward_input``  — octet SpMM on ``W^T``'s encoding,
* ``backward_weight`` — octet SDDMM sampled at ``W``'s topology,

each returning the numeric result *and* the simulated-device timing.
The square-block constraint guarantees the three encodings describe
the same nonzero set (tested), so a training step touches no dense
weight tensor at any point.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..formats.block_sparse import BlockSparseMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.config import GPUSpec
from ..kernels.base import KernelResult
from ..kernels.sddmm_octet import OctetSddmmKernel
from ..kernels.spmm_octet import OctetSpmmKernel

__all__ = ["SparseLinear"]


class SparseLinear:
    """A block-sparse linear layer trainable entirely in CVSE.

    Parameters
    ----------
    out_features / in_features:
        Both must divide by ``block_size``.
    block_size:
        Square grain ``B`` (2, 4 or 8 map onto native vector loads).
    sparsity:
        Fraction of ``B x B`` blocks pruned.
    """

    def __init__(
        self,
        out_features: int,
        in_features: int,
        block_size: int = 4,
        sparsity: float = 0.9,
        rng: Optional[np.random.Generator] = None,
        spec: Optional[GPUSpec] = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        if out_features % block_size or in_features % block_size:
            raise ValueError("features must divide by the block size")
        self.block_size = block_size
        self.shape = (out_features, in_features)
        blocks = BlockSparseMatrix.random(
            self.shape, (block_size, block_size), sparsity, rng
        )
        scale = np.float16(1.0 / np.sqrt(max(1.0, in_features * (1 - sparsity))))
        blocks.values = (blocks.values.astype(np.float32) * scale).astype(np.float16)
        self._blocks = blocks
        self.weight = blocks.to_cvse()                      # W
        self.weight_t = blocks.transpose().to_cvse()        # W^T
        #: the SDDMM mask for (3): dW is sampled at W's topology
        self.grad_mask = ColumnVectorSparseMatrix(
            self.weight.shape,
            self.weight.vector_length,
            self.weight.row_ptr,
            self.weight.col_idx,
            None,
        )
        self._spmm = OctetSpmmKernel(spec)
        self._sddmm = OctetSddmmKernel(spec, variant="arch")

    # ------------------------------------------------------------------ #
    @property
    def sparsity(self) -> float:
        return self.weight.sparsity

    def forward(self, x: np.ndarray) -> KernelResult:
        """(1): ``Y[out, batch] = W @ X[in, batch]`` (activations stored
        feature-major, §8's row-major X with n = batch)."""
        return self._spmm.run(self.weight, np.asarray(x, dtype=np.float16))

    def backward_input(self, dy: np.ndarray) -> KernelResult:
        """(2): ``dX = W^T @ dY`` through the transposed encoding."""
        return self._spmm.run(self.weight_t, np.asarray(dy, dtype=np.float16))

    def backward_weight(self, dy: np.ndarray, x: np.ndarray) -> KernelResult:
        """(3): ``dW = (dY @ X^T) ∘ topology(W)`` via SDDMM.

        ``dy`` is (out, batch), ``x`` is (in, batch); the SDDMM contracts
        over the batch dimension.
        """
        dy = np.asarray(dy, dtype=np.float16)
        x = np.asarray(x, dtype=np.float16)
        # A = dY (out x batch); B = X^T (batch x in); C sampled at W
        return self._sddmm.run(dy, np.ascontiguousarray(x.T), self.grad_mask)

    def apply_grad(self, dw: ColumnVectorSparseMatrix, lr: float) -> None:
        """SGD step directly on the CVSE value arrays (both encodings)."""
        if dw.values is None:
            raise ValueError("gradient carries no values")
        new_vals = (
            self.weight.values.astype(np.float32) - lr * dw.values.astype(np.float32)
        ).astype(np.float16)
        self.weight = self.weight.with_values(new_vals)
        # keep W^T consistent: rebuild from the updated dense view.  The
        # square-block structure guarantees the topology is unchanged.
        blocks = BlockSparseMatrix.from_dense(
            self.weight.to_dense(np.float32).astype(np.float16),
            (self.block_size, self.block_size),
        )
        self.weight_t = blocks.transpose().to_cvse()

    # ------------------------------------------------------------------ #
    def training_step_cost_us(self, batch: int) -> Tuple[float, dict]:
        """Modelled latency of one forward+backward through this layer."""
        spmm_fwd = self._spmm._model.estimate(self._spmm.stats_for(self.weight, batch))
        spmm_bwd = self._spmm._model.estimate(self._spmm.stats_for(self.weight_t, batch))
        sddmm = self._sddmm._model.estimate(self._sddmm.stats_for(self.grad_mask, batch))
        parts = {
            "forward (SpMM W)": spmm_fwd.time_us,
            "backward dX (SpMM W^T)": spmm_bwd.time_us,
            "backward dW (SDDMM)": sddmm.time_us,
        }
        return sum(parts.values()), parts
