"""Shared infrastructure for the repro static-analysis engine.

The engine is a whole-repo analyser: it loads every Python file under
``src/repro``, parses it once, builds a symbol table (module -> functions
and classes), resolves imports (absolute and relative) well enough to
answer "which function does this call refer to?", and derives a call
graph.  Rules are registered in a global registry with an ID, a severity
and a description; each rule is a function ``check(ctx) -> [Finding]``.

Interprocedural passes follow the classic summary-then-propagate shape:
compute an intraprocedural summary per function (what it mutates, what
dtype it returns, what it reads), then propagate summaries over the call
graph to a fixpoint.  The helpers here (:class:`AnalysisContext`,
:func:`reachable_from`, :func:`direct_param_mutations`) keep the passes
themselves small.

Suppressions: a finding on line N is suppressed by a trailing comment
``# repro: ignore[rule-id]`` on line N or on the line directly above it
(``# repro: ignore`` with no bracket suppresses every rule on that line).

Fingerprints: a finding's identity for baseline purposes is
``rule|path|message`` — deliberately line-number free so unrelated churn
above a grandfathered finding does not resurrect it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AnalysisContext",
    "FileInfo",
    "Finding",
    "FunctionInfo",
    "RULES",
    "Rule",
    "decorator_name",
    "direct_param_mutations",
    "dotted_call_name",
    "reachable_from",
    "rule",
    "run_analysis",
]

SEVERITIES = ("error", "warning", "note")

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")


# ---------------------------------------------------------------------------
# Findings and the rule registry
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    """One diagnostic.  ``message`` must not embed line numbers so that the
    baseline fingerprint survives unrelated line churn."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        return f"{self.rule}: {self.path}:{self.line} {self.message}"


@dataclass(frozen=True)
class Rule:
    id: str
    severity: str
    description: str
    check: Callable[["AnalysisContext"], List[Finding]]


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, severity: str = "error", description: str = ""):
    """Class-free registration decorator for rule check functions."""

    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(fn: Callable[["AnalysisContext"], List[Finding]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        doc = (fn.__doc__ or "").strip()
        desc = description or (doc.splitlines()[0] if doc else "")
        RULES[rule_id] = Rule(rule_id, severity, desc, fn)
        return fn

    return register


# ---------------------------------------------------------------------------
# Files, modules, functions
# ---------------------------------------------------------------------------


@dataclass
class FileInfo:
    path: Path
    rel: str  # posix path relative to the repo root
    module: str  # dotted module name, e.g. "repro.kernels.base"
    source: str
    tree: ast.Module
    # line -> set of suppressed rule ids ("*" means all rules)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    # local alias -> dotted module ("import numpy as np" -> {"np": "numpy"})
    imports: Dict[str, str] = field(default_factory=dict)
    # local name -> (module, attr) ("from x import y as z" -> {"z": ("x", "y")})
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    qualname: str  # "<module>:<Class>.<name>" or "<module>:<name>"
    module: str
    name: str
    cls: Optional[str]
    file: FileInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: List[str]

    @property
    def line(self) -> int:
        return self.node.lineno


def decorator_name(node: ast.expr) -> str:
    """Terminal name of a decorator: ``@memo.memoised("x")`` -> ``memoised``."""

    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def dotted_call_name(node: ast.expr) -> str:
    """Best-effort dotted rendering of a call target: ``np.random.rand``."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        ids = m.group(1)
        if ids is None:
            out[lineno] = {"*"}
        else:
            out[lineno] = {part.strip() for part in ids.split(",") if part.strip()}
    return out


def _module_name(rel: str) -> str:
    """``src/repro/kernels/base.py`` -> ``repro.kernels.base``."""

    parts = Path(rel).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class AnalysisContext:
    """Parsed view of one repository checkout.

    Loads ``src/repro/**/*.py`` eagerly (the analysed surface) and the
    ``tests/`` corpus lazily as raw text (for reference lookups like the
    parity-tests rule).  Works on the real repo and on the mini-repos the
    test corpus checks in.
    """

    def __init__(self, repo: Path):
        self.repo = Path(repo)
        self.files: List[FileInfo] = []
        self.modules: Dict[str, FileInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        # module -> {name -> class node}
        self.classes: Dict[str, Dict[str, ast.ClassDef]] = {}
        # caller qualname -> [(callee qualname, lineno)]
        self.callees: Dict[str, List[Tuple[str, int]]] = {}
        self._tests_corpus: Optional[str] = None
        self._load()
        self._index()
        self._build_call_graph()

    # -- loading ------------------------------------------------------------

    def _load(self) -> None:
        src = self.repo / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(self.repo).as_posix()
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:  # pragma: no cover - repo must parse
                raise SyntaxError(f"{rel}: {exc}") from exc
            info = FileInfo(
                path=path,
                rel=rel,
                module=_module_name(rel),
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
            self._collect_imports(info)
            self.files.append(info)
            self.modules[info.module] = info

    def _collect_imports(self, info: FileInfo) -> None:
        pkg_parts = info.module.split(".")
        if not info.rel.endswith("__init__.py"):
            pkg_parts = pkg_parts[:-1]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = pkg_parts[: len(pkg_parts) - node.level + 1]
                    prefix = ".".join(base)
                    if node.module:
                        prefix = f"{prefix}.{node.module}" if prefix else node.module
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.from_imports[local] = (prefix, alias.name)

    # -- symbol table -------------------------------------------------------

    def _index(self) -> None:
        for info in self.files:
            self.classes[info.module] = {}
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(info, node, cls=None)
                elif isinstance(node, ast.ClassDef):
                    self.classes[info.module][node.name] = node
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._add_function(info, item, cls=node.name)

    def _add_function(self, info: FileInfo, node: ast.AST, cls: Optional[str]) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = f"{info.module}:{cls}.{name}" if cls else f"{info.module}:{name}"
        args = node.args  # type: ignore[attr-defined]
        params = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            params.append(args.vararg.arg)
        params.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self.functions[qual] = FunctionInfo(
            qualname=qual,
            module=info.module,
            name=name,
            cls=cls,
            file=info,
            node=node,
            params=params,
        )

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self, info: FileInfo, node: ast.expr, cls: Optional[str] = None
    ) -> Optional[str]:
        """Resolve a call target expression to a function qualname, or None.

        Handles: local names, ``from mod import fn`` (with aliases),
        ``from pkg import mod`` + ``mod.fn``, ``import pkg.mod`` +
        ``pkg.mod.fn``, and ``self.method`` within a class (including
        same-module single-inheritance bases).
        """

        if isinstance(node, ast.Name):
            name = node.id
            qual = f"{info.module}:{name}"
            if qual in self.functions:
                return qual
            if name in info.from_imports:
                mod, attr = info.from_imports[name]
                return self._lookup(mod, attr)
            return None
        if isinstance(node, ast.Attribute):
            attr = node.attr
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "self" and cls is not None:
                    return self._lookup_method(info.module, cls, attr)
                if base.id in info.from_imports:
                    mod, sub = info.from_imports[base.id]
                    # "from pkg import mod" then mod.fn
                    return self._lookup(f"{mod}.{sub}" if mod else sub, attr)
                if base.id in info.imports:
                    return self._lookup(info.imports[base.id], attr)
                # a same-module class used as a namespace: Cls.method
                if base.id in self.classes.get(info.module, {}):
                    return self._lookup_method(info.module, base.id, attr)
                return None
            dotted = dotted_call_name(base)
            if dotted:
                head, _, rest = dotted.partition(".")
                if head in info.imports:
                    mod = info.imports[head] + (f".{rest}" if rest else "")
                    return self._lookup(mod, attr)
            return None
        return None

    def _lookup(self, module: str, name: str) -> Optional[str]:
        qual = f"{module}:{name}"
        if qual in self.functions:
            return qual
        # "from pkg import name" where name is itself a module
        sub = f"{module}.{name}"
        if sub in self.modules:
            return None
        # re-export through a package __init__
        init = self.modules.get(module)
        if init is not None and name in init.from_imports:
            mod, attr = init.from_imports[name]
            if (mod, attr) != (module, name):
                return self._lookup(mod, attr)
        return None

    def _lookup_method(self, module: str, cls: str, name: str) -> Optional[str]:
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            qual = f"{module}:{current}.{name}"
            if qual in self.functions:
                return qual
            node = self.classes.get(module, {}).get(current)
            if node is None:
                continue
            for base in node.bases:
                if isinstance(base, ast.Name):
                    stack.append(base.id)
        return None

    def _build_call_graph(self) -> None:
        for fn in self.functions.values():
            edges: List[Tuple[str, int]] = []
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(fn.file, node.func, cls=fn.cls)
                if target is not None:
                    edges.append((target, node.lineno))
            self.callees[fn.qualname] = edges

    # -- convenience --------------------------------------------------------

    @property
    def tests_corpus(self) -> str:
        if self._tests_corpus is None:
            chunks: List[str] = []
            tests = self.repo / "tests"
            if tests.is_dir():
                for path in sorted(tests.rglob("*.py")):
                    if "__pycache__" in path.parts:
                        continue
                    chunks.append(path.read_text())
            self._tests_corpus = "\n".join(chunks)
        return self._tests_corpus

    def files_under(self, *prefixes: str) -> List[FileInfo]:
        return [
            info
            for info in self.files
            if any(info.rel == p or info.rel.startswith(p.rstrip("/") + "/") for p in prefixes)
        ]

    def file_at(self, rel: str) -> Optional[FileInfo]:
        for info in self.files:
            if info.rel == rel:
                return info
        return None

    def functions_in(self, info: FileInfo) -> List[FunctionInfo]:
        return [fn for fn in self.functions.values() if fn.file is info]

    def suppressed(self, finding: Finding) -> bool:
        info = self.file_at(finding.path)
        if info is None:
            return False
        for line in (finding.line, finding.line - 1):
            ids = info.suppressions.get(line)
            if ids and ("*" in ids or finding.rule in ids):
                return True
        return False


# ---------------------------------------------------------------------------
# Shared interprocedural helpers
# ---------------------------------------------------------------------------


def reachable_from(ctx: AnalysisContext, roots: Iterable[str]) -> Dict[str, str]:
    """BFS the call graph; returns {reachable qualname: originating root}."""

    origin: Dict[str, str] = {}
    queue: List[str] = []
    for root in roots:
        if root not in origin:
            origin[root] = root
            queue.append(root)
    while queue:
        current = queue.pop()
        for callee, _line in ctx.callees.get(current, ()):
            if callee not in origin:
                origin[callee] = origin[current]
                queue.append(callee)
    return origin


_NDARRAY_MUTATORS = {"fill", "sort", "put", "setfield", "partition", "itemset"}


def store_base_name(target: ast.expr) -> Optional[str]:
    """Root ``Name`` of a subscript/attribute store target, else None."""

    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def direct_param_mutations(
    node: ast.AST, params: Sequence[str], *, include_methods: bool = False
) -> List[Tuple[str, int, str]]:
    """Direct in-place mutations of ``params`` inside one function body.

    Returns ``(param, lineno, kind)`` for subscript/attribute stores rooted
    at a parameter.  A parameter rebound by a plain ``name = ...`` assignment
    anywhere in the function is discounted entirely (later stores hit the
    local copy, not the caller's array) — the same discount the original
    contract lint applied.  With ``include_methods`` the known in-place
    ndarray methods (``fill``/``sort``/...) count as mutations too.
    """

    live = set(params)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    live.discard(target.id)

    out: List[Tuple[str, int, str]] = []

    def check_target(stmt: ast.AST, target: ast.expr) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = store_base_name(target)
            if name in live:
                kind = "subscript" if isinstance(target, ast.Subscript) else "attribute"
                out.append((name, stmt.lineno, kind))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                check_target(stmt, elt)

    def visit(stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own summaries
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                check_target(stmt, target)
        elif isinstance(stmt, ast.AugAssign):
            check_target(stmt, stmt.target)
        elif (
            include_methods
            and isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in _NDARRAY_MUTATORS
            and isinstance(stmt.func.value, ast.Name)
            and stmt.func.value.id in live
        ):
            out.append((stmt.func.value.id, stmt.lineno, f".{stmt.func.attr}()"))
        for child in ast.iter_child_nodes(stmt):
            visit(child)

    for stmt in getattr(node, "body", []):
        visit(stmt)
    return out


# ---------------------------------------------------------------------------
# Driving
# ---------------------------------------------------------------------------


def validate_rule_ids(rule_ids: Optional[Sequence[str]]) -> List[str]:
    """Sorted registry ids to run; ValueError on unknown ids (None = all)."""

    all_ids = sorted(RULES)
    if rule_ids is None:
        return all_ids
    unknown = sorted(set(rule_ids) - set(all_ids))
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(unknown)} (valid: {', '.join(all_ids)})"
        )
    # preserve registry order, deduplicate
    wanted = set(rule_ids)
    return [rid for rid in all_ids if rid in wanted]


def run_analysis(
    repo: Path,
    rule_ids: Optional[Sequence[str]] = None,
    *,
    ctx: Optional[AnalysisContext] = None,
) -> List[Finding]:
    """Run the selected rules (default: all) and return unsuppressed findings."""

    ids = validate_rule_ids(rule_ids)
    if ctx is None:
        ctx = AnalysisContext(Path(repo))
    findings: List[Finding] = []
    for rid in ids:
        spec = RULES[rid]
        for finding in spec.check(ctx):
            finding.severity = spec.severity
            findings.append(finding)
    findings = [f for f in findings if not ctx.suppressed(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
