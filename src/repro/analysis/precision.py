"""precision-flow: fp16 operands, fp32 accumulation, sanctioned casts only.

The paper's tensor-core contract (HMMA ``...F32.F32``): operands may be
half precision, but every accumulation runs in fp32 and the result is
down-cast to fp16 only at output materialisation.  This pass abstractly
interprets NumPy dtypes through ``src/repro/kernels/``, ``src/repro/plans/``
and ``src/repro/hardware/tensor_core.py`` and reports three violations:

* ``f16-matmul`` — a matrix product (``@`` / ``np.dot`` / ``np.matmul`` /
  ``np.einsum``) whose operands are both known-fp16: the accumulation
  would run in half precision;
* ``f16-accumulator`` — a loop-carried ``+=``/``-=`` into a binding whose
  initialiser is known-fp16: reduced-precision accumulation;
* ``downcast-reenters-arith`` — an ``astype(float16)`` (or
  ``np.float16(...)``) of a known-fp32/fp64 value whose result feeds back
  into arithmetic instead of being returned/stored: a silent mid-pipeline
  down-cast.

``src/repro/numerics/`` is deliberately out of scope: its fp16-accumulation
helpers exist to *measure* reduced-precision error and are the ground truth
the kernels are compared against.

The lattice is {F16, F32, F64, UNKNOWN}; inference covers dtype-literal
constructors (``np.zeros(..., dtype=...)``), ``astype``, module-level
aliases (``_F16 = np.float16``), dtype-preserving ops (transpose, reshape,
subscripts, ``copy``), binop promotion, and one level of interprocedural
return-dtype summaries for same-repo calls.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import (
    AnalysisContext,
    FileInfo,
    Finding,
    FunctionInfo,
    dotted_call_name,
    rule,
)

F16, F32, F64, UNKNOWN = "float16", "float32", "float64", "unknown"

_SCOPE = ("src/repro/kernels", "src/repro/plans", "src/repro/hardware/tensor_core.py")

_DTYPE_ATTRS = {"float16": F16, "half": F16, "float32": F32,
                "single": F32, "float64": F64, "double": F64}
_NP_NAMES = {"np", "numpy"}
_ZERO_CTORS = {"zeros", "ones", "empty", "full"}
_LIKE_CTORS = {"zeros_like", "ones_like", "empty_like", "full_like"}
_PRESERVING_METHODS = {"copy", "reshape", "transpose", "ravel", "flatten",
                       "squeeze", "conj", "clip", "round", "repeat", "take"}
_MATMUL_FUNCS = {"dot", "matmul", "einsum", "tensordot", "inner", "vdot"}


def _dtype_aliases(info: FileInfo) -> Dict[str, str]:
    """Module-level ``_F16 = np.float16`` style dtype aliases."""

    aliases: Dict[str, str] = {}
    for node in info.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        tag = _dtype_of_literal(node.value, {})
        if tag is not None:
            aliases[target.id] = tag
    return aliases


def _dtype_of_literal(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """F16/F32/F64 when ``node`` denotes a dtype, else None."""

    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name) and base.id in _NP_NAMES:
            return _DTYPE_ATTRS.get(node.attr)
        return None
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_ATTRS.get(node.value)
    return None


def _promote(a: str, b: str) -> str:
    order = {F16: 0, F32: 1, F64: 2}
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return a if order[a] >= order[b] else b


class _FunctionTyper:
    """One forward abstract-interpretation pass over a function body."""

    def __init__(
        self,
        ctx: AnalysisContext,
        fn: FunctionInfo,
        aliases: Dict[str, str],
        return_summaries: Dict[str, str],
    ):
        self.ctx = ctx
        self.fn = fn
        self.aliases = aliases
        self.return_summaries = return_summaries
        self.env: Dict[str, str] = {}
        # var name -> downcast line, for downcast-reenters-arith
        self.tainted: Dict[str, int] = {}
        self.reported_taint: Set[str] = set()
        self.findings: List[Tuple[int, str]] = []
        self.loop_depth = 0
        self.return_dtypes: List[str] = []

    # -- expression typing --------------------------------------------------

    def type_of(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Subscript):
            return self.type_of(node.value)
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                return self.type_of(node.value)
            return UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.type_of(node.operand)
        if isinstance(node, ast.BinOp):
            return self._type_binop(node)
        if isinstance(node, ast.IfExp):
            return _promote(self.type_of(node.body), self.type_of(node.orelse))
        if isinstance(node, ast.Call):
            return self._type_call(node)
        return UNKNOWN

    def _type_binop(self, node: ast.BinOp) -> str:
        left, right = self.type_of(node.left), self.type_of(node.right)
        if isinstance(node.op, ast.MatMult) and left == F16 and right == F16:
            self.findings.append(
                (node.lineno,
                 "matrix product with two known-fp16 operands — the "
                 "accumulation runs in half precision; up-cast the operands "
                 "or accumulate in fp32")
            )
        if left == UNKNOWN and right == UNKNOWN:
            return UNKNOWN
        if left == UNKNOWN:
            return right
        if right == UNKNOWN:
            return left
        return _promote(left, right)

    def _kw(self, node: ast.Call, name: str) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _type_call(self, node: ast.Call) -> str:
        func = node.func
        dotted = dotted_call_name(func)
        head = dotted.split(".", 1)[0] if dotted else ""
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""

        # dtype constructors: np.float16(x) and alias calls
        tag = _dtype_of_literal(func, self.aliases)
        if tag is not None:
            if tag == F16 and node.args:
                self._note_downcast(node, self.type_of(node.args[0]))
            return tag

        if isinstance(func, ast.Attribute):
            recv = func.value
            if func.attr == "astype" and node.args:
                target = _dtype_of_literal(node.args[0], self.aliases)
                if target is not None:
                    if target == F16:
                        self._note_downcast(node, self.type_of(recv))
                    return target
                return UNKNOWN
            if func.attr in _PRESERVING_METHODS:
                return self.type_of(recv)
            if head in _NP_NAMES:
                if tail in _ZERO_CTORS:
                    dt = self._kw(node, "dtype")
                    if dt is None and tail == "full" and len(node.args) >= 3:
                        dt = node.args[2]
                    elif dt is None and tail != "full" and len(node.args) >= 2:
                        dt = node.args[1]
                    tag = _dtype_of_literal(dt, self.aliases) if dt is not None else None
                    return tag if tag is not None else F64
                if tail in _LIKE_CTORS:
                    dt = self._kw(node, "dtype")
                    if dt is not None:
                        tag = _dtype_of_literal(dt, self.aliases)
                        return tag if tag is not None else UNKNOWN
                    return self.type_of(node.args[0]) if node.args else UNKNOWN
                if tail in ("asarray", "ascontiguousarray", "array"):
                    dt = self._kw(node, "dtype")
                    if dt is not None:
                        tag = _dtype_of_literal(dt, self.aliases)
                        return tag if tag is not None else UNKNOWN
                    return self.type_of(node.args[0]) if node.args else UNKNOWN
                if tail in _MATMUL_FUNCS and len(node.args) >= 2:
                    ops = [self.type_of(a) for a in node.args[:2]]
                    if tail == "einsum" and len(node.args) >= 3:
                        ops = [self.type_of(a) for a in node.args[1:3]]
                    if ops and all(t == F16 for t in ops):
                        self.findings.append(
                            (node.lineno,
                             f"np.{tail}() with two known-fp16 operands — "
                             "the accumulation runs in half precision; "
                             "up-cast the operands or accumulate in fp32")
                        )
                    return _promote(*ops) if len(ops) == 2 else UNKNOWN

        # same-repo call: use the callee's return-dtype summary
        target = self.ctx.resolve_call(self.fn.file, func, cls=self.fn.cls)
        if target is not None:
            return self.return_summaries.get(target, UNKNOWN)
        return UNKNOWN

    def _note_downcast(self, node: ast.Call, source: str) -> None:
        if source in (F32, F64):
            self._pending_downcast = node.lineno
        else:
            self._pending_downcast = None

    _pending_downcast: Optional[int] = None

    # -- statement walk -----------------------------------------------------

    def run(self) -> None:
        for stmt in self.fn.node.body:  # type: ignore[attr-defined]
            self.visit(stmt)

    def visit(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._pending_downcast = None
            tag = self.type_of(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = tag
                    if self._pending_downcast is not None:
                        self.tainted[target.id] = self._pending_downcast
                    else:
                        self.tainted.pop(target.id, None)
            self._check_taint_use(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._pending_downcast = None
            tag = self.type_of(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = tag
        elif isinstance(stmt, ast.AugAssign):
            self._pending_downcast = None
            value_tag = self.type_of(stmt.value)
            target_tag = UNKNOWN
            if isinstance(stmt.target, ast.Name):
                target_tag = self.env.get(stmt.target.id, UNKNOWN)
            elif isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
                target_tag = self.type_of(stmt.target)
            if (
                self.loop_depth > 0
                and isinstance(stmt.op, (ast.Add, ast.Sub))
                and target_tag == F16
            ):
                name = (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name)
                    else "accumulator"
                )
                self.findings.append(
                    (stmt.lineno,
                     f"loop-carried accumulation into known-fp16 {name!r} — "
                     "initialise the accumulator as fp32 and down-cast at "
                     "materialisation")
                )
            self._check_taint_use(stmt.value)
            if isinstance(stmt.target, ast.Name) and stmt.target.id in self.tainted:
                self._report_taint(stmt.target.id, stmt.lineno)
            del value_tag
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.loop_depth += 1
            # two passes: accumulator inits above the loop are visible, and
            # names bound late in the body resolve on the second pass
            for _ in range(2):
                for sub in stmt.body:
                    self.visit(sub)
            self.loop_depth -= 1
            for sub in stmt.orelse:
                self.visit(sub)
        elif isinstance(stmt, ast.While):
            self.loop_depth += 1
            for _ in range(2):
                for sub in stmt.body:
                    self.visit(sub)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.If):
            for sub in stmt.body:
                self.visit(sub)
            for sub in stmt.orelse:
                self.visit(sub)
        elif isinstance(stmt, ast.With):
            for sub in stmt.body:
                self.visit(sub)
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                for sub in block:
                    self.visit(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self.visit(sub)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._pending_downcast = None
                self.return_dtypes.append(self.type_of(stmt.value))
            # a downcast at return IS the sanctioned materialisation site
        elif isinstance(stmt, ast.Expr):
            self._pending_downcast = None
            self.type_of(stmt.value)
            self._check_taint_use(stmt.value)

    def _check_taint_use(self, expr: ast.expr) -> None:
        """A previously down-cast fp16 value re-entering arithmetic."""

        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp):
                for side in (node.left, node.right):
                    if isinstance(side, ast.Name) and side.id in self.tainted:
                        self._report_taint(side.id, node.lineno)

    def _report_taint(self, name: str, line: int) -> None:
        if name in self.reported_taint:
            return
        self.reported_taint.add(name)
        self.findings.append(
            (line,
             f"fp16 down-cast value {name!r} re-enters arithmetic — down-casts "
             "are sanctioned only at output materialisation")
        )

    def summary(self) -> str:
        tags = {t for t in self.return_dtypes if t != UNKNOWN}
        if len(tags) == 1:
            return tags.pop()
        return UNKNOWN


@rule("precision-flow",
      description="fp16 operands, fp32 accumulation, down-casts only at "
                  "output materialisation")
def check_precision_flow(ctx: AnalysisContext) -> List[Finding]:
    in_scope = {info.rel: info for info in ctx.files_under(*_SCOPE)}
    if not in_scope:
        return []
    alias_cache = {rel: _dtype_aliases(info) for rel, info in in_scope.items()}
    scope_fns = [fn for fn in ctx.functions.values() if fn.file.rel in in_scope]

    # two rounds: round 1 builds return-dtype summaries, round 2 types
    # every function with callee summaries available and collects findings
    summaries: Dict[str, str] = {}
    findings: List[Finding] = []
    for round_no in (1, 2):
        round_findings: List[Finding] = []
        for fn in scope_fns:
            typer = _FunctionTyper(ctx, fn, alias_cache[fn.file.rel], summaries)
            typer.run()
            summaries[fn.qualname] = typer.summary()
            if round_no == 2:
                # loop bodies are walked twice for env stability; dedupe
                seen: Set[Tuple[int, str]] = set()
                for line, message in typer.findings:
                    if (line, message) in seen:
                        continue
                    seen.add((line, message))
                    round_findings.append(
                        Finding("precision-flow", fn.file.rel, line, message)
                    )
        findings = round_findings
    return findings
