"""env-gate-registry: every ``REPRO_*`` read goes through one registry.

``src/repro/envgates.py`` declares each environment gate once (name,
default, kind, doc).  This rule enforces the round trip statically:

* no direct ``os.environ`` / ``os.getenv`` read of a ``REPRO_*`` literal
  outside the registry module;
* every ``envgates.flag(...)`` / ``envgates.raw(...)`` / ``declared(...)``
  call uses a literal name that the registry declares — so deleting a
  registry entry fails the analysis, not a production run;
* every declared gate is read by at least one accessor call somewhere, so
  the registry cannot drift into documentation fiction.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import AnalysisContext, Finding, dotted_call_name, rule

_REGISTRY_REL = "src/repro/envgates.py"
_REGISTRY_MODULE = "repro.envgates"
_ACCESSORS = {"flag", "raw", "declared"}


def _declared_gates(ctx: AnalysisContext) -> Optional[Dict[str, int]]:
    info = ctx.file_at(_REGISTRY_REL)
    if info is None:
        return None
    gates: Dict[str, int] = {}
    for node in ast.walk(info.tree):
        if (
            isinstance(node, ast.Call)
            and dotted_call_name(node.func).rsplit(".", 1)[-1] == "EnvGate"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            gates[node.args[0].value] = node.lineno
    return gates


def _is_envgates_accessor(ctx: AnalysisContext, info, node: ast.Call, cls) -> bool:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    if name not in _ACCESSORS:
        return False
    target = ctx.resolve_call(info, func, cls=cls)
    if target is not None:
        return target.startswith(f"{_REGISTRY_MODULE}:")
    # unresolved `envgates.flag(...)` through an alias the resolver missed:
    # accept when the receiver is literally named envgates
    if isinstance(func, ast.Attribute):
        dotted = dotted_call_name(func)
        return dotted.split(".")[-2:-1] == ["envgates"]
    return False


def _module_str_constants(info) -> Dict[str, str]:
    """Module-level ``_ENV_FLAG = "REPRO_X"`` style string constants."""

    out: Dict[str, str] = {}
    for node in info.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                out[target.id] = node.value.value
    return out


def _name_of(node: ast.expr, consts: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _environ_literal(node: ast.AST, consts: Dict[str, str]) -> Optional[Tuple[str, int]]:
    """(var name, line) when ``node`` reads an env var whose name is a
    literal or a module-level string constant."""

    if isinstance(node, ast.Call):
        dotted = dotted_call_name(node.func)
        if dotted.endswith("os.getenv") or dotted == "getenv" or \
                dotted.endswith("environ.get"):
            if node.args:
                name = _name_of(node.args[0], consts)
                if name is not None:
                    return name, node.lineno
    if isinstance(node, ast.Subscript):
        base = dotted_call_name(node.value)
        if base.endswith("os.environ") or base == "environ":
            name = _name_of(node.slice, consts)
            if name is not None:
                return name, node.lineno
    return None


@rule("env-gate-registry",
      description="every REPRO_* environ read is declared once in "
                  "repro.envgates and every declared gate is read")
def check_env_gates(ctx: AnalysisContext) -> List[Finding]:
    declared = _declared_gates(ctx)
    findings: List[Finding] = []
    used: Set[str] = set()

    for info in ctx.files:
        if info.rel == _REGISTRY_REL:
            continue
        fn_by_node = {fn.node: fn for fn in ctx.functions_in(info)}
        consts = _module_str_constants(info)
        for node in ast.walk(info.tree):
            read = _environ_literal(node, consts)
            if read is not None and read[0].startswith("REPRO_"):
                var, line = read
                findings.append(
                    Finding(
                        "env-gate-registry", info.rel, line,
                        f"direct os.environ read of {var} — declare it in "
                        "repro.envgates and read it through "
                        "envgates.flag()/raw()",
                    )
                )
            if not isinstance(node, ast.Call):
                continue
            # attribute chains do not tell us the enclosing class; walk the
            # functions table instead for method-scope resolution
            cls = None
            for fn in fn_by_node.values():
                if (
                    fn.node.lineno <= node.lineno
                    and node.lineno <= (fn.node.end_lineno or fn.node.lineno)
                ):
                    cls = fn.cls
                    break
            if not _is_envgates_accessor(ctx, info, node, cls):
                continue
            name = _name_of(node.args[0], consts) if node.args else None
            if name is None:
                findings.append(
                    Finding(
                        "env-gate-registry", info.rel, node.lineno,
                        "envgates accessor called with a non-literal gate "
                        "name — the registry check needs a literal",
                    )
                )
                continue
            used.add(name)
            if declared is not None and name not in declared:
                findings.append(
                    Finding(
                        "env-gate-registry", info.rel, node.lineno,
                        f"envgates accessor reads undeclared gate {name} — "
                        "add an EnvGate entry to repro.envgates",
                    )
                )

    if declared:
        registry = ctx.file_at(_REGISTRY_REL)
        for name, line in sorted(declared.items()):
            if name not in used:
                findings.append(
                    Finding(
                        "env-gate-registry", registry.rel, line,
                        f"declared gate {name} is never read through an "
                        "envgates accessor — dead registry entry",
                    )
                )
    return findings
