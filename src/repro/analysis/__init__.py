"""Whole-repo static analysis for the repro system.

Ten registered rules over one shared parse: the five PR-3 contract lints
(``parity-tests``, ``no-input-mutation``, ``seeded-rng``,
``span-outside-memo``, ``plan-reference-twins``) and five semantic passes
(``memo-key-soundness``, ``precision-flow``, ``env-gate-registry``,
``obs-naming-contract``, ``purity-propagation``).

Entry points: :func:`run_analysis` (programmatic),
``python -m repro.cli analyze`` (CLI, with baseline enforcement and
JSON/SARIF output).  See ``docs/ANALYSIS.md`` for the rule catalogue and
the suppression/baseline workflow.
"""

from __future__ import annotations

from .core import (  # noqa: F401
    RULES,
    AnalysisContext,
    Finding,
    Rule,
    run_analysis,
    validate_rule_ids,
)

# importing the rule modules populates the registry
from . import contracts  # noqa: E402,F401
from . import envcheck  # noqa: E402,F401
from . import memokey  # noqa: E402,F401
from . import obscheck  # noqa: E402,F401
from . import precision  # noqa: E402,F401
from . import purity  # noqa: E402,F401

from .baseline import (  # noqa: E402,F401
    BaselineDiff,
    diff_baseline,
    load_baseline,
    write_baseline,
)
from .emit import to_json, to_sarif  # noqa: E402,F401

__all__ = [
    "AnalysisContext",
    "BaselineDiff",
    "Finding",
    "RULES",
    "Rule",
    "diff_baseline",
    "load_baseline",
    "run_analysis",
    "to_json",
    "to_sarif",
    "validate_rule_ids",
    "write_baseline",
]
