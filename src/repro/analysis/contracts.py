"""The five PR-3 contract lints, migrated into registry rules.

These started life as standalone AST walks in ``tools/lint_contracts.py``;
that tool is now a thin shim delegating here.  The checks are unchanged in
substance — same patterns, same discounts, same messages — they just run
on the shared :class:`~repro.analysis.core.AnalysisContext` so one parse
of the repo feeds all ten rules.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .core import (
    AnalysisContext,
    Finding,
    decorator_name,
    direct_param_mutations,
    rule,
)

__all__ = [
    "kernel_classes_from_dispatch",
    "plans_aliases",
]

#: legacy numpy global-RNG entry points (nondeterministic unless seeded
#: through hidden module state, which the repo bans outright)
LEGACY_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "standard_normal", "uniform",
}

#: observability span decorators (repro.obs.tracing)
SPAN_DECORATORS = {"traced"}
#: memoisation decorators (repro.perfmodel.memo)
MEMO_DECORATORS = {"memoise", "memoised", "memoised_rng", "memoised_stats"}

_DISPATCH_REL = "src/repro/kernels/dispatch.py"


def kernel_classes_from_dispatch(tree: ast.Module) -> List[str]:
    """Class names appearing as values of SPMM_KERNELS / SDDMM_KERNELS."""

    names: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id in ("SPMM_KERNELS", "SDDMM_KERNELS")
            for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            for v in value.values:
                if isinstance(v, ast.Name):
                    names.append(v.id)
    return sorted(set(names))


@rule("parity-tests", description="every dispatch-registered kernel has a parity test")
def check_parity_tests(ctx: AnalysisContext) -> List[Finding]:
    dispatch = ctx.file_at(_DISPATCH_REL)
    if dispatch is None:
        return []  # nothing is dispatchable in this tree
    classes = kernel_classes_from_dispatch(dispatch.tree)
    if not classes:
        return [
            Finding("parity-tests", dispatch.rel, 1,
                    "no kernel registrations found in dispatch.py")
        ]
    corpus = ctx.tests_corpus
    return [
        Finding(
            "parity-tests", dispatch.rel, 1,
            f"dispatch-registered kernel {cls} is never referenced under "
            "tests/ — add a parity test",
        )
        for cls in classes
        if cls not in corpus
    ]


@rule("no-input-mutation", description="functional kernels never mutate their inputs")
def check_no_input_mutation(ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for info in ctx.files_under("src/repro/kernels"):
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not (node.name.startswith("_execute") or node.name == "run"):
                continue
            args = node.args
            params = {
                a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
            } - {"self"}
            for name, lineno, _kind in direct_param_mutations(node, sorted(params)):
                findings.append(
                    Finding(
                        "no-input-mutation", info.rel, lineno,
                        f"{node.name}() stores into input parameter {name!r}",
                    )
                )
    return findings


@rule("seeded-rng", description="no nondeterminism outside seeded generators")
def check_seeded_rng(ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for info in ctx.files:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            # np.random.<legacy>(...) — hidden global state
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in LEGACY_NP_RANDOM
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr == "random"
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in ("np", "numpy")
            ):
                findings.append(
                    Finding(
                        "seeded-rng", info.rel, node.lineno,
                        f"legacy np.random.{fn.attr}() call — use a seeded "
                        "default_rng passed in explicitly",
                    )
                )
            # default_rng() with no seed — OS-entropy nondeterminism
            is_default_rng = (
                (isinstance(fn, ast.Name) and fn.id == "default_rng")
                or (isinstance(fn, ast.Attribute) and fn.attr == "default_rng")
            )
            if is_default_rng and not node.args and not node.keywords:
                findings.append(
                    Finding(
                        "seeded-rng", info.rel, node.lineno,
                        "default_rng() without a seed — pass an explicit seed",
                    )
                )
    return findings


@rule("span-outside-memo",
      description="observability spans live inside the memo boundary")
def check_span_outside_memo(ctx: AnalysisContext) -> List[Finding]:
    """A span-decorated function must not itself be a memoised builder.

    ``decorator_list[0]`` is the *outermost* decorator.  When a span
    decorator wraps a memo decorator, every call records a span — cache
    hits included — so the timeline shows the lookup, not the build.  The
    span belongs inside the memo boundary (the memo layer already emits
    ``memo.miss.<region>`` spans around cache-miss computes).
    """

    findings: List[Finding] = []
    for info in ctx.files:
        for node in ast.walk(info.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = [decorator_name(d) for d in node.decorator_list]
            span_idx = [i for i, n in enumerate(names) if n in SPAN_DECORATORS]
            memo_idx = [i for i, n in enumerate(names) if n in MEMO_DECORATORS]
            if not span_idx or not memo_idx:
                continue
            if min(span_idx) < max(memo_idx):
                findings.append(
                    Finding(
                        "span-outside-memo", info.rel, node.lineno,
                        f"{node.name}() wraps a memoised builder in a span "
                        "decorator — move the span inside the memo boundary "
                        "(the memo layer already traces cache-miss computes)",
                    )
                )
    return findings


def plans_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the ``repro.plans`` package itself.

    ``from .. import plans as _plans`` and ``import repro.plans as P``
    count; importing a single helper out of a plans submodule does not.
    """

    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "plans" or a.name.endswith(".plans"):
                    if a.asname:
                        aliases.add(a.asname)
                    elif a.name == "plans":
                        aliases.add("plans")
        elif isinstance(node, ast.ImportFrom):
            for a in node.names:
                if a.name == "plans":
                    aliases.add(a.asname or "plans")
    return aliases


@rule("plan-reference-twins",
      description="plan-compiled kernels keep tested interpreted reference twins")
def check_plan_reference_twins(ctx: AnalysisContext) -> List[Finding]:
    """Every plan-compiled kernel function has a tested reference twin.

    A function (module-level or method) in ``src/repro/kernels/`` that
    touches a ``repro.plans`` alias executes through a compiled plan; the
    interpreted walk it replaced must survive as a ``<name>_reference``
    sibling in the same scope, and that twin's name must appear under
    ``tests/`` so the parity is actually exercised.
    """

    findings: List[Finding] = []
    corpus = ctx.tests_corpus
    for info in ctx.files_under("src/repro/kernels"):
        aliases = plans_aliases(info.tree)
        if not aliases:
            continue
        scopes = [info.tree.body] + [
            n.body for n in info.tree.body if isinstance(n, ast.ClassDef)
        ]
        for body in scopes:
            siblings = {n.name for n in body if isinstance(n, ast.FunctionDef)}
            for node in body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                if node.name.endswith("_reference"):
                    continue
                if not any(
                    isinstance(sub, ast.Name) and sub.id in aliases
                    for sub in ast.walk(node)
                ):
                    continue
                twin = f"{node.name}_reference"
                if twin not in siblings:
                    findings.append(
                        Finding(
                            "plan-reference-twins", info.rel, node.lineno,
                            f"{node.name}() executes through a compiled plan "
                            f"but keeps no interpreted {twin}() twin in the "
                            "same scope",
                        )
                    )
                elif twin not in corpus:
                    findings.append(
                        Finding(
                            "plan-reference-twins", info.rel, node.lineno,
                            f"{twin}() is never referenced under tests/ — add "
                            "a plan-vs-reference parity test",
                        )
                    )
    return findings
