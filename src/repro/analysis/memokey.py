"""memo-key-soundness: memoised computes read nothing outside their key.

The memo layer (and, since PR 7, the shared cross-process tier) caches a
compute's result under a key derived *only* from the call arguments.  Any
function reachable from a memoised entry point that reads state not in the
key — ``os.environ``, the wall clock, a rebindable module global, or a
fault-injection site — can produce different bytes for the same key.  In
the in-process tier that is a stale-cache nuisance; in the shared store it
is a correctness bug, because one process publishes bytes every other
process will trust.

Entry points:

* functions carrying a ``@memoised`` / ``@memoised_stats`` /
  ``@memoised_rng`` decorator;
* functions referenced inside the argument list of a ``memoise(...)`` or
  ``cached_plan(...)`` call (the compute lambdas).

The memo/shared-memo/obs/env-gate infrastructure itself is exempt: it sits
on the cache boundary by definition (it reads its own enable flags and
emits spans), and it never contributes bytes to a cached payload.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from .core import (
    AnalysisContext,
    Finding,
    FunctionInfo,
    decorator_name,
    dotted_call_name,
    reachable_from,
    rule,
)

__all__ = ["memoised_entry_points"]

_MEMO_DECORATORS = {"memoised", "memoised_stats", "memoised_rng"}
_MEMO_CALLS = {"memoise", "cached_plan"}

#: the cache/observability boundary itself — reads its own gates and
#: emits spans around computes, but contributes no bytes to cached blobs.
#: repro.faults.injector is exempt for its *own* ``_ACTIVE`` read (that is
#: the injector working as designed); calls INTO ``site()`` from a memoised
#: compute are still flagged at the caller.
_EXEMPT_MODULES = {
    "repro.perfmodel.memo",
    "repro.perfmodel.sharedmemo",
    "repro.obs.tracing",
    "repro.obs.metrics",
    "repro.plans.core",
    "repro.envgates",
    "repro.faults.injector",
}

_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}

_FAULT_SITE_QUAL = "repro.faults.injector:site"


def memoised_entry_points(ctx: AnalysisContext) -> Dict[str, int]:
    """{entry qualname: decl line} for every memoised compute root."""

    roots: Dict[str, int] = {}
    for fn in ctx.functions.values():
        for dec in fn.node.decorator_list:  # type: ignore[attr-defined]
            if decorator_name(dec) in _MEMO_DECORATORS:
                roots[fn.qualname] = fn.line
                break
    # compute callables passed to memoise(...) / cached_plan(...):
    # any call inside the argument subtrees (incl. lambda bodies) that
    # resolves to a repo function is a memoised compute root.
    for fn in ctx.functions.values():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_call_name(node.func).rsplit(".", 1)[-1]
            if name not in _MEMO_CALLS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call):
                        target = ctx.resolve_call(fn.file, sub.func, cls=fn.cls)
                        if target is not None and target in ctx.functions:
                            roots.setdefault(target, ctx.functions[target].line)
    return roots


def _module_globals(ctx: AnalysisContext) -> Dict[str, Set[str]]:
    """{module: names rebound via a ``global`` statement somewhere}."""

    out: Dict[str, Set[str]] = {}
    for info in ctx.files:
        names: Set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Global):
                names.update(node.names)
        if names:
            out[info.module] = names
    return out


def _environ_read(node: ast.Call) -> bool:
    dotted = dotted_call_name(node.func)
    if dotted.endswith("os.getenv") or dotted == "getenv":
        return True
    return dotted.endswith("os.environ.get") or dotted == "environ.get"


def _offending_ops(
    ctx: AnalysisContext, fn: FunctionInfo, mutable_globals: Set[str]
) -> List[Tuple[int, str]]:
    """(line, description) for every key-escaping read inside ``fn``."""

    out: List[Tuple[int, str]] = []
    seen_globals: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            dotted = dotted_call_name(node.func)
            if _environ_read(node):
                out.append((node.lineno, "reads os.environ"))
            elif dotted in _WALL_CLOCK or (
                dotted.rsplit(".", 1)[-1] in {"perf_counter", "perf_counter_ns",
                                              "monotonic", "monotonic_ns"}
            ):
                out.append((node.lineno, f"reads the wall clock via {dotted}()"))
            else:
                target = ctx.resolve_call(fn.file, node.func, cls=fn.cls)
                if target == _FAULT_SITE_QUAL:
                    out.append(
                        (node.lineno,
                         "passes through a fault-injection site (an armed "
                         "campaign would cache the corrupted payload)")
                    )
        elif isinstance(node, ast.Subscript):
            base = dotted_call_name(node.value)
            if base.endswith("os.environ") or base == "environ":
                out.append((node.lineno, "reads os.environ"))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in mutable_globals and node.id not in fn.params:
                if node.id not in seen_globals:
                    seen_globals.add(node.id)
                    out.append(
                        (node.lineno,
                         f"reads rebindable module global {node.id!r}")
                    )
    return out


@rule("memo-key-soundness",
      description="memoised computes read nothing outside their cache key")
def check_memo_key_soundness(ctx: AnalysisContext) -> List[Finding]:
    roots = memoised_entry_points(ctx)
    if not roots:
        return []
    origin = reachable_from(ctx, roots)
    globals_by_module = _module_globals(ctx)
    findings: List[Finding] = []
    for qual, root in sorted(origin.items()):
        fn = ctx.functions.get(qual)
        if fn is None or fn.module in _EXEMPT_MODULES:
            continue
        mutable = globals_by_module.get(fn.module, set())
        # a function may legitimately *rebind* its own module global (it
        # appears in its own `global` stmt) — still a read hazard; keep it.
        for line, what in _offending_ops(ctx, fn, mutable):
            root_name = root.split(":", 1)[1]
            via = "" if qual == root else f" (reached from memoised {root_name}())"
            findings.append(
                Finding(
                    "memo-key-soundness", fn.file.rel, line,
                    f"{fn.name}(){via} {what} — state outside the memo key "
                    "poisons the shared cache",
                )
            )
    return findings
