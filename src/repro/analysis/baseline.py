"""Checked-in findings baseline: new findings fail, grandfathered burn down.

``tools/analysis_baseline.json`` holds the fingerprints of known findings.
A finding whose fingerprint (``rule|path|message`` — line-free, so
unrelated churn does not resurrect it) is in the baseline is reported as
grandfathered and does not fail the run; anything else is new and does.
Baseline entries no longer matched by any finding are *stale* — fixed
findings whose entries should be deleted (``--update-baseline`` rewrites
the file to exactly the current findings).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from .core import Finding

BASELINE_VERSION = 1


@dataclass
class BaselineDiff:
    """Findings split against a baseline: new, grandfathered, stale."""

    new: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)  # fingerprints


def load_baseline(path: Path) -> List[str]:
    """Fingerprints from a baseline file; a missing file is an empty baseline."""

    if not Path(path).is_file():
        return []
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} baseline file")
    out: List[str] = []
    for entry in data.get("findings", []):
        out.append(f"{entry['rule']}|{entry['path']}|{entry['message']}")
    return out


def diff_baseline(findings: List[Finding], fingerprints: List[str]) -> BaselineDiff:
    """Split ``findings`` against baseline ``fingerprints`` (see BaselineDiff)."""

    known = set(fingerprints)
    diff = BaselineDiff()
    seen: set = set()
    for finding in findings:
        fp = finding.fingerprint
        seen.add(fp)
        (diff.grandfathered if fp in known else diff.new).append(finding)
    diff.stale = sorted(known - seen)
    return diff


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Rewrite ``path`` to exactly ``findings`` (sorted, deduplicated)."""

    entries: List[Dict[str, str]] = []
    seen: set = set()
    for finding in sorted(findings, key=lambda f: f.fingerprint):
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        entries.append(
            {"rule": finding.rule, "path": finding.path, "message": finding.message}
        )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
