"""JSON and SARIF 2.1.0 emitters for analysis findings.

The SARIF output is the minimal valid subset GitHub code scanning and the
usual viewers accept: one run, one driver with the rule catalogue, one
result per finding with a physical location.  Grandfathered findings are
emitted with ``baselineState: "unchanged"`` so a viewer can separate the
burn-down set from new findings.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set

from .core import RULES, Finding

_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def to_json(findings: List[Finding], grandfathered: Set[str]) -> str:
    """Findings as a JSON report string (grandfathered flagged per entry)."""

    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "severity": f.severity,
                "message": f.message,
                "grandfathered": f.fingerprint in grandfathered,
            }
            for f in findings
        ]
    }
    return json.dumps(payload, indent=2) + "\n"


def to_sarif(findings: List[Finding], grandfathered: Set[str]) -> str:
    """Findings as a SARIF 2.1.0 report string (see the module docstring)."""

    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    rules = []
    for rid in rule_ids:
        spec = RULES.get(rid)
        rules.append(
            {
                "id": rid,
                "shortDescription": {
                    "text": spec.description if spec else rid,
                },
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL.get(spec.severity if spec else "error",
                                              "error"),
                },
            }
        )
    index: Dict[str, int] = {rid: i for i, rid in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": index[f.rule],
                "level": _SARIF_LEVEL.get(f.severity, "error"),
                "message": {"text": f.message},
                "baselineState": (
                    "unchanged" if f.fingerprint in grandfathered else "new"
                ),
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {"startLine": max(f.line, 1)},
                        }
                    }
                ],
            }
        )
    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2) + "\n"
