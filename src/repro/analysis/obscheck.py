"""obs-naming-contract: emitted span/metric names match the declared schema.

``src/repro/obs/schema.py`` declares every span, counter, gauge and
histogram name as pure literals.  This rule statically collects the first
argument of every emission call —

* spans: ``tracing.span(name, ...)`` context managers and ``@traced(name)``
  decorators,
* counters: ``metrics.counter_add(name, ...)``,
* gauges: ``metrics.gauge_set(name, ...)``,
* histograms: ``metrics.observe(name, ...)``,

— turning f-string holes into ``*`` segments, and checks both directions:
an emission the schema does not declare, and a declared name nothing
emits.  Derived metrics (``metrics.snapshot()``) must reference declared
counters and must themselves appear in the metrics module, so renaming a
counter or a derived key fails analysis instead of silently zeroing a
dashboard.

Non-literal emission names are accepted from one documented convention:
module-level ``*_METRIC``/``*_METRICS`` dict literals whose string values
are collected as if emitted (the pool's status-to-counter table).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import AnalysisContext, FileInfo, Finding, rule

_SCHEMA_REL = "src/repro/obs/schema.py"
#: emission collection skips the obs plumbing itself (span() / counter_add()
#: definitions, the snapshot table renderer) and the schema module
_SKIP_RELS = {
    _SCHEMA_REL,
    "src/repro/obs/tracing.py",
    "src/repro/obs/metrics.py",
}

_EMITTERS = {
    "span": "span",
    "traced": "span",
    "counter_add": "counter",
    "gauge_set": "gauge",
    "observe": "histogram",
}

_SCHEMA_KEYS = {
    "SPANS": "span",
    "COUNTERS": "counter",
    "GAUGES": "gauge",
    "HISTOGRAMS": "histogram",
}


def _load_schema(ctx: AnalysisContext):
    info = ctx.file_at(_SCHEMA_REL)
    if info is None:
        return None
    declared: Dict[str, Dict[str, int]] = {
        "span": {}, "counter": {}, "gauge": {}, "histogram": {}
    }
    derived: Dict[str, List[str]] = {}
    for node in info.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id in _SCHEMA_KEYS:
            try:
                names = ast.literal_eval(node.value)
            except ValueError:
                continue
            kind = _SCHEMA_KEYS[target.id]
            for name in names:
                declared[kind][name] = node.lineno
        elif target.id == "DERIVED":
            try:
                derived = ast.literal_eval(node.value)
            except ValueError:
                continue
    return info, declared, derived


def _pattern_of(node: ast.expr) -> Optional[str]:
    """Literal or f-string emission name as a ``*``-pattern, else None."""

    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _matches(emitted: str, declared: str) -> bool:
    """Segment-wise match; a declared ``*`` segment matches one emitted
    segment (including an emitted ``*`` hole)."""

    es, ds = emitted.split("."), declared.split(".")
    if len(es) != len(ds):
        return False
    for e, d in zip(es, ds):
        if d == "*":
            continue
        if e == "*":
            return False  # dynamic hole where the schema expects a literal
        if e != d:
            return False
    return True


def _collect_emissions(ctx: AnalysisContext) -> List[Tuple[str, str, FileInfo, int]]:
    """(kind, pattern, file, line) for every emission site in scope."""

    out: List[Tuple[str, str, FileInfo, int]] = []
    for info in ctx.files:
        if info.rel in _SKIP_RELS:
            continue
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            kind = _EMITTERS.get(name)
            if kind is None or not node.args:
                continue
            pattern = _pattern_of(node.args[0])
            if pattern is None:
                continue
            out.append((kind, pattern, info, node.lineno))
        # documented convention: module-level *_METRIC(S) dict literals hold
        # counter names fed to counter_add() through a variable
        for node in info.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not (target.id.endswith("_METRIC") or target.id.endswith("_METRICS")):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            for value in node.value.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    out.append(("counter", value.value, info, value.lineno))
    return out


@rule("obs-naming-contract",
      description="every emitted span/counter/gauge/histogram name matches "
                  "the declared obs schema, both directions")
def check_obs_names(ctx: AnalysisContext) -> List[Finding]:
    loaded = _load_schema(ctx)
    if loaded is None:
        return []
    schema_info, declared, derived = loaded
    emissions = _collect_emissions(ctx)
    findings: List[Finding] = []

    matched_decls: Set[Tuple[str, str]] = set()
    for kind, pattern, info, line in emissions:
        hits = [d for d in declared[kind] if _matches(pattern, d)]
        if hits:
            matched_decls.update((kind, d) for d in hits)
        else:
            findings.append(
                Finding(
                    "obs-naming-contract", info.rel, line,
                    f"emitted {kind} name {pattern!r} is not declared in "
                    "obs/schema.py",
                )
            )

    for kind in ("span", "counter", "gauge", "histogram"):
        for name, line in sorted(declared[kind].items()):
            if (kind, name) not in matched_decls:
                findings.append(
                    Finding(
                        "obs-naming-contract", schema_info.rel, line,
                        f"declared {kind} name {name!r} is never emitted "
                        "anywhere under src/repro",
                    )
                )

    # derived metrics: referenced counters must be declared, and the derived
    # key itself must appear in the metrics module that computes it
    metrics_info = ctx.file_at("src/repro/obs/metrics.py")
    metrics_literals: Set[str] = set()
    if metrics_info is not None:
        for node in ast.walk(metrics_info.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                metrics_literals.add(node.value)
    for name, refs in sorted(derived.items()):
        for ref in refs:
            if not any(_matches(ref, d) or _matches(d, ref) or ref == d
                       for d in declared["counter"]):
                findings.append(
                    Finding(
                        "obs-naming-contract", schema_info.rel, 1,
                        f"derived metric {name!r} references counter pattern "
                        f"{ref!r} which is not declared",
                    )
                )
        if metrics_info is not None and name not in metrics_literals:
            findings.append(
                Finding(
                    "obs-naming-contract", schema_info.rel, 1,
                    f"derived metric {name!r} is declared but never computed "
                    "in obs/metrics.py",
                )
            )
    return findings
