"""purity-propagation: interprocedural no-input-mutation for kernel roots.

PR 3's ``no-input-mutation`` lint is per-function: it flags a kernel
``_execute*``/``run`` method that *directly* stores into an input
parameter.  It cannot see a kernel that stays textually pure but hands an
input to a helper that mutates it.  This pass closes that hole with the
classic summary-then-propagate construction:

1. intraprocedural summaries — for every function in ``src/repro``, the
   set of its own parameters it may mutate in place (subscript/attribute
   stores plus the known in-place ndarray methods, with the same
   rebinding discount the direct lint applies);
2. propagation — a call ``g(x, ...)`` that passes a caller parameter as a
   bare name into a position ``g``'s summary marks mutated adds that
   parameter to the caller's summary; iterate to a fixpoint over the call
   graph;
3. roots — ``_execute*``/``run`` functions in ``src/repro/kernels/`` and
   ``execute_*`` functions in ``src/repro/plans/``.

Only *transitive* (call-mediated) mutations are reported here: direct
stores in a kernel root stay the ``no-input-mutation`` rule's finding, so
the two rules never double-report one defect.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .core import (
    AnalysisContext,
    Finding,
    FunctionInfo,
    direct_param_mutations,
    rule,
)


def _summaries(ctx: AnalysisContext) -> Tuple[
    Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, str, int]]
]:
    """Fixpoint mutation summaries for every function.

    Returns ``(mutated, witness)`` where ``mutated[qual]`` is the set of
    ``qual``'s parameters possibly mutated, and ``witness[(qual, param)]``
    records how: ``(callee qual or "", callee param or kind, line)``.
    """

    mutated: Dict[str, Set[str]] = {}
    witness: Dict[Tuple[str, str], Tuple[str, str, int]] = {}

    for qual, fn in ctx.functions.items():
        mutated[qual] = set()
        for name, line, kind in direct_param_mutations(
            fn.node, [p for p in fn.params if p != "self"], include_methods=True
        ):
            mutated[qual].add(name)
            witness.setdefault((qual, name), ("", kind, line))

    changed = True
    while changed:
        changed = False
        for qual, fn in ctx.functions.items():
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = ctx.resolve_call(fn.file, node.func, cls=fn.cls)
                if callee is None or callee not in ctx.functions:
                    continue
                callee_fn = ctx.functions[callee]
                callee_mut = mutated.get(callee, set())
                if not callee_mut:
                    continue
                # positional args (account for the bound self of method calls)
                offset = 0
                if callee_fn.cls is not None and isinstance(node.func, ast.Attribute):
                    if callee_fn.params and callee_fn.params[0] == "self":
                        offset = 1
                for i, arg in enumerate(node.args):
                    if not isinstance(arg, ast.Name) or arg.id not in fn.params:
                        continue
                    idx = i + offset
                    if idx >= len(callee_fn.params):
                        continue
                    callee_param = callee_fn.params[idx]
                    if callee_param in callee_mut and arg.id not in mutated[qual]:
                        mutated[qual].add(arg.id)
                        witness[(qual, arg.id)] = (callee, callee_param, node.lineno)
                        changed = True
                for kw in node.keywords:
                    value = kw.value
                    if kw.arg is None or not isinstance(value, ast.Name):
                        continue
                    if value.id not in fn.params:
                        continue
                    if kw.arg in callee_mut and value.id not in mutated[qual]:
                        mutated[qual].add(value.id)
                        witness[(qual, value.id)] = (callee, kw.arg, node.lineno)
                        changed = True
    return mutated, witness


def _roots(ctx: AnalysisContext) -> List[FunctionInfo]:
    roots: List[FunctionInfo] = []
    for fn in ctx.functions.values():
        if fn.file.rel.startswith("src/repro/kernels/"):
            if fn.name.startswith("_execute") or fn.name == "run":
                roots.append(fn)
        elif fn.file.rel.startswith("src/repro/plans/"):
            if fn.name.startswith("execute_"):
                roots.append(fn)
    return roots


@rule("purity-propagation",
      description="kernel execution roots stay pure through their whole "
                  "call graph, not just their own body")
def check_purity_propagation(ctx: AnalysisContext) -> List[Finding]:
    mutated, witness = _summaries(ctx)
    findings: List[Finding] = []
    for fn in _roots(ctx):
        for param in sorted(mutated.get(fn.qualname, ())):
            via = witness.get((fn.qualname, param))
            if via is None or via[0] == "":
                continue  # direct store — the no-input-mutation rule's finding
            chain: List[str] = []
            current: Optional[Tuple[str, str]] = (via[0], via[1])
            line = via[2]
            while current is not None and len(chain) < 8:
                callee_qual, callee_param = current
                chain.append(callee_qual.split(":", 1)[1])
                nxt = witness.get((callee_qual, callee_param))
                current = (nxt[0], nxt[1]) if nxt and nxt[0] else None
            findings.append(
                Finding(
                    "purity-propagation", fn.file.rel, line,
                    f"{fn.name}() passes input parameter {param!r} to "
                    f"{' -> '.join(c + '()' for c in chain)} which mutates "
                    "it in place — functional kernels must not mutate "
                    "caller-visible inputs",
                )
            )
    return findings
