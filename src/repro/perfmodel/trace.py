"""Trace-driven cache validation.

The kernels' ``bytes_l2_to_l1`` figures are computed analytically (the
inter-CTA reuse model of :mod:`repro.perfmodel.reuse`).  This module
generates the *actual* sector-address streams of the SpMM, SDDMM and
dense GEMM kernels and replays them through the
:class:`~repro.hardware.cache` simulators, so the analytic estimates
can be validated end to end (``tests/test_trace_validation.py``) and
Figures 5/18 can be cross-checked against a real cache simulation
rather than a formula (``repro-experiments --trace``).

Method: CTAs are distributed breadth-first over SMs (CTA ``i`` starts
on SM ``i % num_sms``), so one SM's L1 sees every ``num_sms``-th CTA.
We replay the streams of the CTAs mapped to a sample of SMs,
interleaving the co-resident CTAs' accesses round-robin (they execute
concurrently), and scale the measured per-SM fill traffic back up.
The L1 misses of the sampled SMs additionally propagate — in batch
order — through one shared L2, giving a sampled DRAM-side estimate.

The replay engine is :class:`~repro.hardware.cache.VectorSectorCache`
by default; a whole co-resident window's interleaved accesses are
precomputed as one index order and fed through the cache as a single
batch (batching is semantics-free: the caches process a batch strictly
in order).  :func:`replay_l1_reference` keeps the original
op-at-a-time, scalar-engine walk as the pinned reference;
``benchmarks/bench_trace.py`` asserts the two produce identical
:class:`TraceResult`\\ s and records the speedup.

Address map (documented once, shared by all generators):

* the dense operand(s) start at address 0 (``B`` for SpMM; ``A`` then
  ``B`` for SDDMM and GEMM);
* the sparse payload (CVSE ``values`` then ``col_idx``, or the
  Blocked-ELL ``values``) follows;
* output stores are excluded (L1 missed sectors is a load counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.injector import site as fault_site
from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware import cache as hw_cache
from ..hardware.cache import ENGINES, SectorCache
from ..hardware.config import GPUSpec, default_spec
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from . import memo

__all__ = [
    "TraceResult",
    "octet_spmm_cta_sectors",
    "blocked_ell_cta_sectors",
    "octet_sddmm_cta_sectors",
    "wmma_sddmm_cta_sectors",
    "gemm_cta_sectors",
    "replay_l1",
    "replay_l1_reference",
    "trace_octet_spmm",
    "trace_blocked_ell",
    "trace_octet_sddmm",
    "trace_wmma_sddmm",
    "trace_gemm",
]

_SECTOR = 32


@dataclass
class TraceResult:
    """Outcome of replaying a kernel's access trace through an L1."""

    sampled_ctas: int
    total_ctas: int
    sampled_fill_bytes: int
    sector_accesses: int
    sampled_l2_fill_bytes: int = 0

    @property
    def bytes_l2_to_l1(self) -> float:
        """Device-wide estimate: sampled fills scaled by CTA coverage."""
        if self.sampled_ctas == 0:
            return 0.0
        return self.sampled_fill_bytes * (self.total_ctas / self.sampled_ctas)

    @property
    def bytes_dram_to_l2(self) -> float:
        """Device-wide DRAM-side estimate, same CTA-coverage scaling.

        Rougher than the L1 figure: the real L2 is shared by all SMs,
        the sampled one only sees the sampled SMs' misses.
        """
        if self.sampled_ctas == 0:
            return 0.0
        return self.sampled_l2_fill_bytes * (self.total_ctas / self.sampled_ctas)

    @property
    def l1_missed_sectors(self) -> float:
        """Device-wide missed-sector estimate (the Figure 5 counter)."""
        return self.bytes_l2_to_l1 / _SECTOR

    @property
    def l1_hit_rate(self) -> float:
        if self.sector_accesses == 0:
            return 0.0
        return 1.0 - (self.sampled_fill_bytes / _SECTOR) / self.sector_accesses


def _range_sectors(base_byte: int, nbytes: int) -> np.ndarray:
    first = base_byte // _SECTOR
    last = (base_byte + nbytes - 1) // _SECTOR
    return np.arange(first, last + 1, dtype=np.int64)


def _segment_sectors(starts: np.ndarray, seg_bytes: int) -> np.ndarray:
    """Sector ids of equal-length byte segments, one row per start.

    Handles unaligned starts: each segment covers every sector it
    touches, ragged tails removed, order preserved (segment-major).
    """
    starts = starts.astype(np.int64)
    first = starts // _SECTOR
    last = (starts + seg_bytes - 1) // _SECTOR
    width = int((last - first).max()) + 1 if starts.size else 0
    grid = first[:, None] + np.arange(width, dtype=np.int64)[None, :]
    keep = grid <= last[:, None]
    return grid[keep]


def octet_spmm_cta_sectors(
    a: ColumnVectorSparseMatrix,
    n: int,
    tile_n: int = 64,
    elem_bytes: int = 2,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Yield ``(cta_id, [sector-id arrays])`` for the octet SpMM.

    Per CTA (vector row ``r``, column tile ``j``): the B-row segments of
    its nonzeros (one 128B line per vector, via LDG.128), plus the
    values/indices stream.  ``elem_bytes`` is 2 for the half-precision
    kernels; the Figure 5 single-precision cross-check passes 4.
    """
    eb = elem_bytes
    m, k = a.shape
    n_tiles = -(-n // tile_n)
    b_bytes = k * n * eb
    val_base = b_bytes
    idx_base = val_base + a.col_idx.size * a.vector_length * eb
    cta = 0
    for jt in range(n_tiles):
        col_byte = jt * tile_n * eb
        seg_bytes = min(tile_n, n - jt * tile_n) * eb
        for r in range(a.num_vector_rows):
            lo, hi = a.row_ptr[r], a.row_ptr[r + 1]
            cols = a.col_idx[lo:hi]
            ops: List[np.ndarray] = []
            if cols.size:
                # one contiguous segment per nonzero's B row
                starts = cols.astype(np.int64) * (n * eb) + col_byte
                ops.append(_segment_sectors(starts, seg_bytes))
                # values stream (contiguous for the row slice)
                ops.append(_range_sectors(val_base + lo * a.vector_length * eb,
                                          cols.size * a.vector_length * eb))
                ops.append(_range_sectors(idx_base + lo * 8, cols.size * 8))
            # declared fault-injection site: sector-address generation SDC.
            # Reachable from the memoised trace_octet_spmm() — sanctioned
            # because memoise() bypasses the cache entirely while an
            # injector is armed, so corrupted streams are never cached or
            # published to the shared tier.
            yield cta, fault_site("trace.octet_spmm.ops", ops)  # repro: ignore[memo-key-soundness]
            cta += 1


def blocked_ell_cta_sectors(
    ell: BlockedEllMatrix,
    n: int,
    tile_n: int = 128,
    elem_bytes: int = 2,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Same for the Blocked-ELL kernel (block-row x 128-column tiles)."""
    eb = elem_bytes
    m, k = ell.shape
    b = ell.block_size
    n_tiles = -(-n // tile_n)
    b_bytes = k * n * eb
    val_base = b_bytes
    cta = 0
    for jt in range(n_tiles):
        col_byte = jt * tile_n * eb
        seg_bytes = min(tile_n, n - jt * tile_n) * eb
        for br in range(ell.num_block_rows):
            cols = ell.col_blocks[br]
            cols = cols[cols >= 0]
            ops: List[np.ndarray] = []
            if cols.size:
                # each block selects b consecutive B rows
                rows = (cols.astype(np.int64)[:, None] * b + np.arange(b)[None, :]).ravel()
                starts = rows * (n * eb) + col_byte
                ops.append(_segment_sectors(starts, seg_bytes))
                slot = br * ell.ell_width
                ops.append(_range_sectors(val_base + slot * b * b * eb,
                                          cols.size * b * b * eb))
            yield cta, ops
            cta += 1


def _sddmm_cta_sectors(
    mask: ColumnVectorSparseMatrix,
    k: int,
    tile_n: int,
    elem_bytes: int,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Shared SDDMM stream: per CTA (vector row, 32-column window).

    Loads: the window's nonzero B columns (B stored column-major, so a
    column is one contiguous ``k * eb`` run — §6.4's coalesced LDG.128
    gather), the CTA's V rows of A (row-major), and the window's
    column-index metadata (8 B per nonzero).  Empty windows exit
    immediately (no ops), matching ``analyze_windows``.
    """
    eb = elem_bytes
    m, n_out = mask.shape
    v = mask.vector_length
    a_base = 0
    b_base = m * k * eb
    meta_base = b_base + k * n_out * eb
    n_windows = -(-n_out // tile_n)
    cta = 0
    for w in range(n_windows):
        col_lo, col_hi = w * tile_n, min(n_out, (w + 1) * tile_n)
        for r in range(mask.num_vector_rows):
            lo, hi = mask.row_ptr[r], mask.row_ptr[r + 1]
            cols_all = mask.col_idx[lo:hi]
            w0, w1 = np.searchsorted(cols_all, (col_lo, col_hi))
            cols = cols_all[w0:w1]
            ops: List[np.ndarray] = []
            if cols.size:
                starts = b_base + cols.astype(np.int64) * (k * eb)
                ops.append(_segment_sectors(starts, k * eb))
                ops.append(_range_sectors(a_base + r * v * k * eb, v * k * eb))
                ops.append(_range_sectors(meta_base + (lo + w0) * 8, cols.size * 8))
            yield cta, ops
            cta += 1


def octet_sddmm_cta_sectors(
    mask: ColumnVectorSparseMatrix,
    k: int,
    tile_n: int = 32,
    elem_bytes: int = 2,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Sector stream of the octet SDDMM (§6.3-6.4, TileN = 32).

    Registers-only staging: replay with the full L1 and the deep
    co-resident window (the defaults of :func:`replay_l1`).
    """
    return _sddmm_cta_sectors(mask, k, tile_n, elem_bytes)


def wmma_sddmm_cta_sectors(
    mask: ColumnVectorSparseMatrix,
    k: int,
    tile_n: int = 32,
    elem_bytes: int = 2,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Sector stream of the warp-tiling WMMA SDDMM (§6.2).

    The *global* stream is pattern-identical to the octet kernel's (it
    gathers the same nonzero B columns and A rows; the 4x LHS
    replication happens in registers, the staging in shared memory) —
    the kernels differ in where the bytes land, not which bytes move.
    Replay it with a carveout-reduced ``l1_data_bytes`` and a shallower
    ``coresident`` window to express the shared-memory staging, as the
    analytic model does.
    """
    return _sddmm_cta_sectors(mask, k, tile_n, elem_bytes)


def gemm_cta_sectors(
    m: int,
    k: int,
    n: int,
    tile_m: int = 128,
    tile_n: int = 128,
    elem_bytes: int = 2,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Sector stream of the tiled dense GEMM (the Figure 5 baseline).

    Per CTA (row tile ``it``, column tile ``jt``): the A tile's rows
    (row-major, full K — staged k-step by k-step but each byte loaded
    once per CTA) and the B tile's row segments (row-major K x N).
    """
    eb = elem_bytes
    a_base = 0
    b_base = m * k * eb
    mt = -(-m // tile_m)
    nt = -(-n // tile_n)
    cta = 0
    for jt in range(nt):
        col_byte = jt * tile_n * eb
        seg_bytes = min(tile_n, n - jt * tile_n) * eb
        # B lives after A in the address map; omitting b_base would
        # alias the B stream onto A's range and fake inter-operand reuse
        b_starts = b_base + np.arange(k, dtype=np.int64) * (n * eb) + col_byte
        for it in range(mt):
            row_lo = it * tile_m
            rows = min(tile_m, m - row_lo)
            ops = [
                _range_sectors(a_base + row_lo * k * eb, rows * k * eb),
                _segment_sectors(b_starts, seg_bytes),
            ]
            yield cta, ops
            cta += 1


def _interleave(window: Sequence[Sequence[np.ndarray]]) -> List[np.ndarray]:
    """Round-robin interleave order of a co-resident window's op lists.

    Pass ``r`` takes the ``r``-th op of every resident CTA that still
    has one — the exact order the old ``pop(0)`` walk produced, now
    precomputed by index in O(total ops).
    """
    depth = max((len(ops) for ops in window), default=0)
    return [
        ops[r]
        for r in range(depth)
        for ops in window
        if r < len(ops)
    ]


def replay_l1(
    cta_stream: Iterable[Tuple[int, List[np.ndarray]]],
    spec: Optional[GPUSpec] = None,
    l1_data_bytes: Optional[int] = None,
    coresident: int = 32,
    sample_sms: int = 1,
    engine: str = "vector",
) -> TraceResult:
    """Replay the CTAs mapped to ``sample_sms`` SMs through one L1 each.

    CTA ``i`` is assigned to SM ``i % num_sms`` (breadth-first launch);
    within an SM, the ``coresident`` concurrently-running CTAs'
    per-vector accesses interleave round-robin.  The interleave order
    is precomputed per window and the whole window goes through the
    cache as one batch; each window's L1 misses then propagate through
    a single shared L2.  ``engine`` picks the cache implementation
    ("vector" is bit-identical to "scalar" and ~10-40x faster).
    """
    spec = spec or default_spec()
    l1_bytes = l1_data_bytes if l1_data_bytes is not None else spec.l1_bytes_per_sm
    cache_cls = ENGINES[engine]
    l1s = [cache_cls(l1_bytes, spec.line_bytes, spec.sector_bytes, spec.l1_ways)
           for _ in range(sample_sms)]
    l2 = cache_cls(spec.l2_bytes, spec.line_bytes, spec.sector_bytes, ways=16)
    fills = 0
    l2_fills = 0
    accesses = 0
    sampled = 0
    total = 0
    # per sampled SM: the co-resident window of CTA op-lists
    windows: List[List[List[np.ndarray]]] = [[] for _ in range(sample_sms)]

    def drain(sm: int) -> None:
        nonlocal fills, l2_fills, accesses
        ops = _interleave(windows[sm])
        windows[sm].clear()
        if not ops:
            return
        batch = np.concatenate(ops) if len(ops) > 1 else ops[0]
        obs_metrics.observe("trace.replay.batch_size", batch.size)
        missed = l1s[sm].access_sectors(batch)
        fills += missed.size * _SECTOR
        accesses += batch.size
        if missed.size:
            l2_fills += l2.access_sectors(missed).size * _SECTOR

    with obs_tracing.span("trace.replay", engine=engine,
                          coresident=coresident, sample_sms=sample_sms) as sp:
        for cta_id, ops in cta_stream:
            total += 1
            sm = cta_id % spec.num_sms
            if sm >= sample_sms:
                continue
            sampled += 1
            windows[sm].append(list(ops))
            if len(windows[sm]) >= coresident:
                drain(sm)
        for sm in range(sample_sms):
            drain(sm)
        sp.set(sampled_ctas=sampled, total_ctas=total, sector_accesses=accesses)
    if obs_metrics.enabled():
        obs_metrics.counter_add("trace.replay.runs")
        obs_metrics.counter_add("trace.replay.sector_accesses", accesses)
        for l1 in l1s:
            hw_cache.record_metrics("l1", l1.stats)
        hw_cache.record_metrics("l2", l2.stats)
    return TraceResult(
        sampled_ctas=sampled,
        total_ctas=total,
        sampled_fill_bytes=fills,
        sector_accesses=accesses,
        sampled_l2_fill_bytes=l2_fills,
    )


def replay_l1_reference(
    cta_stream: Iterable[Tuple[int, List[np.ndarray]]],
    spec: Optional[GPUSpec] = None,
    l1_data_bytes: Optional[int] = None,
    coresident: int = 32,
    sample_sms: int = 1,
) -> TraceResult:
    """The pinned reference replay: scalar engine, ``pop(0)`` interleave.

    Keeps the original op-at-a-time round-robin drain verbatim so the
    batched :func:`replay_l1` has an executable specification to be
    compared against (`tests/test_trace_validation.py`,
    ``benchmarks/bench_trace.py``); the two must return equal
    :class:`TraceResult`\\ s on any stream.
    """
    spec = spec or default_spec()
    l1_bytes = l1_data_bytes if l1_data_bytes is not None else spec.l1_bytes_per_sm
    caches = {s: SectorCache(l1_bytes, spec.line_bytes, spec.sector_bytes, spec.l1_ways)
              for s in range(sample_sms)}
    l2 = SectorCache(spec.l2_bytes, spec.line_bytes, spec.sector_bytes, ways=16)
    fills = 0
    l2_fills = 0
    accesses = 0
    sampled = 0
    total = 0
    windows: dict = {s: [] for s in range(sample_sms)}

    def drain(sm: int) -> None:
        nonlocal fills, l2_fills, accesses
        cache = caches[sm]
        window = windows[sm]
        # interleave: round-robin one op from each resident CTA
        while any(window):
            for ops in window:
                if ops:
                    sect = ops.pop(0)
                    missed = cache.access_sectors(sect)
                    fills += missed.size * _SECTOR
                    accesses += sect.size
                    if missed.size:
                        l2_fills += l2.access_sectors(missed).size * _SECTOR
        window.clear()

    with obs_tracing.span("trace.replay_reference", coresident=coresident,
                          sample_sms=sample_sms):
        for cta_id, ops in cta_stream:
            total += 1
            sm = cta_id % spec.num_sms
            if sm >= sample_sms:
                continue
            sampled += 1
            windows[sm].append(list(ops))
            if len(windows[sm]) >= coresident:
                drain(sm)
        for sm in range(sample_sms):
            drain(sm)
    if obs_metrics.enabled():
        for cache in caches.values():
            hw_cache.record_metrics("l1", cache.stats)
        hw_cache.record_metrics("l2", l2.stats)
    return TraceResult(
        sampled_ctas=sampled,
        total_ctas=total,
        sampled_fill_bytes=fills,
        sector_accesses=accesses,
        sampled_l2_fill_bytes=l2_fills,
    )


# --------------------------------------------------------------------- #
# memoised experiment-facing entry points (the ``trace`` memo region)
# --------------------------------------------------------------------- #
@memo.memoised("trace", copy_result=False)
def trace_octet_spmm(
    a: ColumnVectorSparseMatrix,
    n: int,
    tile_n: int = 64,
    elem_bytes: int = 2,
    sample_sms: int = 2,
) -> TraceResult:
    """Replay the octet SpMM stream (results treated as immutable)."""
    return replay_l1(
        octet_spmm_cta_sectors(a, n, tile_n=tile_n, elem_bytes=elem_bytes),
        sample_sms=sample_sms,
    )


@memo.memoised("trace", copy_result=False)
def trace_blocked_ell(
    ell: BlockedEllMatrix,
    n: int,
    sample_sms: int = 2,
) -> TraceResult:
    """Replay the Blocked-ELL stream (shared-staging L1 carveout)."""
    return replay_l1(
        blocked_ell_cta_sectors(ell, n),
        coresident=4,
        l1_data_bytes=32 * 1024,
        sample_sms=sample_sms,
    )


@memo.memoised("trace", copy_result=False)
def trace_octet_sddmm(
    mask: ColumnVectorSparseMatrix,
    k: int,
    sample_sms: int = 2,
) -> TraceResult:
    """Replay the octet SDDMM stream."""
    return replay_l1(octet_sddmm_cta_sectors(mask, k), sample_sms=sample_sms)


@memo.memoised("trace", copy_result=False)
def trace_wmma_sddmm(
    mask: ColumnVectorSparseMatrix,
    k: int,
    sample_sms: int = 2,
) -> TraceResult:
    """Replay the wmma SDDMM stream (the profiler's hit-rate source)."""
    return replay_l1(wmma_sddmm_cta_sectors(mask, k), sample_sms=sample_sms)


@memo.memoised("trace", copy_result=False)
def trace_gemm(
    m: int,
    k: int,
    n: int,
    elem_bytes: int = 2,
    sample_sms: int = 2,
) -> TraceResult:
    """Replay the dense GEMM stream.

    Tile sizes follow the shared-memory budget: the half-precision
    tile is 128x128 (32 KiB of operand halves); single precision fits
    half the elements in the same staging, so the row tile drops to 64
    — the tile-shrink half of Figure 5's superlinear miss reduction.
    """
    tile_m = 128 if elem_bytes <= 2 else 64
    return replay_l1(
        gemm_cta_sectors(m, k, n, tile_m=tile_m, tile_n=128, elem_bytes=elem_bytes),
        sample_sms=sample_sms,
    )
