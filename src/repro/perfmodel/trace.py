"""Trace-driven cache validation.

The kernels' ``bytes_l2_to_l1`` figures are computed analytically (the
inter-CTA reuse model of :mod:`repro.perfmodel.reuse`).  This module
generates the *actual* sector-address streams of the SpMM kernels and
replays them through the :class:`~repro.hardware.cache.SectorCache`
simulator, so the analytic estimates can be validated end to end
(``tests/test_trace_validation.py``) and Figure 18 can be cross-checked
against a real cache simulation rather than a formula.

Method: CTAs are distributed breadth-first over SMs (CTA ``i`` starts
on SM ``i % num_sms``), so one SM's L1 sees every ``num_sms``-th CTA.
We replay the streams of the CTAs mapped to a sample of SMs,
interleaving the co-resident CTAs' accesses round-robin (they execute
concurrently), and scale the measured per-SM fill traffic back up.

Address map (documented once, shared by all generators):

* ``B`` (the dense RHS, row-major K x N halves) starts at address 0;
* the CVSE ``values`` array follows, then ``col_idx``;
* output stores are excluded (L1 missed sectors is a load counter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.cvse import ColumnVectorSparseMatrix
from ..hardware.cache import SectorCache
from ..hardware.config import GPUSpec, default_spec

__all__ = ["TraceResult", "octet_spmm_cta_sectors", "blocked_ell_cta_sectors", "replay_l1"]

_SECTOR = 32


@dataclass
class TraceResult:
    """Outcome of replaying a kernel's access trace through an L1."""

    sampled_ctas: int
    total_ctas: int
    sampled_fill_bytes: int
    sector_accesses: int

    @property
    def bytes_l2_to_l1(self) -> float:
        """Device-wide estimate: sampled fills scaled by CTA coverage."""
        if self.sampled_ctas == 0:
            return 0.0
        return self.sampled_fill_bytes * (self.total_ctas / self.sampled_ctas)

    @property
    def l1_hit_rate(self) -> float:
        if self.sector_accesses == 0:
            return 0.0
        return 1.0 - (self.sampled_fill_bytes / _SECTOR) / self.sector_accesses


def _range_sectors(base_byte: int, nbytes: int) -> np.ndarray:
    first = base_byte // _SECTOR
    last = (base_byte + nbytes - 1) // _SECTOR
    return np.arange(first, last + 1, dtype=np.int64)


def octet_spmm_cta_sectors(
    a: ColumnVectorSparseMatrix,
    n: int,
    tile_n: int = 64,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Yield ``(cta_id, [sector-id arrays])`` for the octet SpMM.

    Per CTA (vector row ``r``, column tile ``j``): the B-row segments of
    its nonzeros (one 128B line per vector, via LDG.128), plus the
    values/indices stream.
    """
    eb = 2
    m, k = a.shape
    n_tiles = -(-n // tile_n)
    b_bytes = k * n * eb
    val_base = b_bytes
    idx_base = val_base + (0 if a.values is None else a.values.nbytes)
    cta = 0
    for jt in range(n_tiles):
        col_byte = jt * tile_n * eb
        seg_bytes = min(tile_n, n - jt * tile_n) * eb
        for r in range(a.num_vector_rows):
            lo, hi = a.row_ptr[r], a.row_ptr[r + 1]
            cols = a.col_idx[lo:hi]
            ops: List[np.ndarray] = []
            if cols.size:
                # one contiguous segment per nonzero's B row
                starts = cols.astype(np.int64) * (n * eb) + col_byte
                sectors = (
                    starts[:, None] // _SECTOR
                    + np.arange(-(-seg_bytes // _SECTOR))[None, :]
                ).ravel()
                ops.append(sectors)
                # values stream (contiguous for the row slice)
                ops.append(_range_sectors(val_base + lo * a.vector_length * eb,
                                          cols.size * a.vector_length * eb))
                ops.append(_range_sectors(idx_base + lo * 8, cols.size * 8))
            yield cta, ops
            cta += 1


def blocked_ell_cta_sectors(
    ell: BlockedEllMatrix,
    n: int,
    tile_n: int = 128,
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Same for the Blocked-ELL kernel (block-row x 128-column tiles)."""
    eb = 2
    m, k = ell.shape
    b = ell.block_size
    n_tiles = -(-n // tile_n)
    b_bytes = k * n * eb
    val_base = b_bytes
    cta = 0
    for jt in range(n_tiles):
        col_byte = jt * tile_n * eb
        seg_bytes = min(tile_n, n - jt * tile_n) * eb
        for br in range(ell.num_block_rows):
            cols = ell.col_blocks[br]
            cols = cols[cols >= 0]
            ops: List[np.ndarray] = []
            if cols.size:
                # each block selects b consecutive B rows
                rows = (cols.astype(np.int64)[:, None] * b + np.arange(b)[None, :]).ravel()
                starts = rows * (n * eb) + col_byte
                sectors = (
                    starts[:, None] // _SECTOR
                    + np.arange(-(-seg_bytes // _SECTOR))[None, :]
                ).ravel()
                ops.append(sectors)
                slot = br * ell.ell_width
                ops.append(_range_sectors(val_base + slot * b * b * eb,
                                          cols.size * b * b * eb))
            yield cta, ops
            cta += 1


def replay_l1(
    cta_stream: Iterator[Tuple[int, List[np.ndarray]]],
    spec: Optional[GPUSpec] = None,
    l1_data_bytes: Optional[int] = None,
    coresident: int = 32,
    sample_sms: int = 1,
) -> TraceResult:
    """Replay the CTAs mapped to ``sample_sms`` SMs through one L1 each.

    CTA ``i`` is assigned to SM ``i % num_sms`` (breadth-first launch);
    within an SM, the ``coresident`` concurrently-running CTAs'
    per-vector accesses interleave round-robin.
    """
    spec = spec or default_spec()
    l1_bytes = l1_data_bytes if l1_data_bytes is not None else spec.l1_bytes_per_sm
    caches = {s: SectorCache(l1_bytes, spec.line_bytes, spec.sector_bytes, spec.l1_ways)
              for s in range(sample_sms)}
    fills = 0
    accesses = 0
    sampled = 0
    total = 0
    # buffer per SM: co-resident window of CTA op-lists
    windows: dict = {s: [] for s in range(sample_sms)}

    def drain(sm: int) -> None:
        nonlocal fills, accesses
        cache = caches[sm]
        window = windows[sm]
        # interleave: round-robin one op from each resident CTA
        while any(window):
            for ops in window:
                if ops:
                    sect = ops.pop(0)
                    missed = cache.access_sectors(sect)
                    fills += missed.size * _SECTOR
                    accesses += sect.size
        window.clear()

    for cta_id, ops in cta_stream:
        total += 1
        sm = cta_id % spec.num_sms
        if sm >= sample_sms:
            continue
        sampled += 1
        windows[sm].append(list(ops))
        if len(windows[sm]) >= coresident:
            drain(sm)
    for sm in range(sample_sms):
        drain(sm)
    return TraceResult(
        sampled_ctas=sampled,
        total_ctas=total,
        sampled_fill_bytes=fills,
        sector_accesses=accesses,
    )
