"""Inter-CTA data-reuse model for the L1 cache.

The paper's small-CTA kernels (32 threads) run with up to 32 CTAs
co-resident per SM; consecutive CTAs process consecutive vector rows of
the same column tile, and at sparsity ``s`` any two rows select the
same dense-operand row with probability ``1 - s``.  The shared L1
therefore serves a large fraction of the RHS re-fetches *across* CTAs
— the reuse that lets the vector-sparse kernels approach the dense
GEMM's cache behaviour (§3.1's Figure 5 contrast), and that the
Blocked-ELL kernel forfeits by running 4 big CTAs whose shared-memory
carveout also shrinks L1 (§3.2).

Model: a *group* of ``g`` co-resident CTAs issues ``requested`` bytes
against operand rows it selects independently with density ``p``.  The
compulsory fraction is::

    ratio(p, g) = (1 - (1 - p)^g) / (g * p)

(the expected distinct/selected ratio of g independent Bernoulli-p row
sets); the capacity effect on top is the same LRU stack approximation
used for L2 (:func:`~repro.perfmodel.events.estimate_dram_bytes`).
"""

from __future__ import annotations


from .events import estimate_dram_bytes

__all__ = ["compulsory_ratio", "coresident_reuse_bytes", "work_imbalance"]


def compulsory_ratio(density: float, group_rows: int) -> float:
    """Expected distinct/requested row ratio across a co-resident group."""
    if not 0.0 < density <= 1.0:
        return 1.0
    g = max(1, group_rows)
    return min(1.0, (1.0 - (1.0 - density) ** g) / (g * density))


def coresident_reuse_bytes(
    requested_bytes: float,
    num_groups: int,
    density: float,
    group_rows: int,
    l1_effective_bytes: float,
) -> float:
    """Bytes that must come from L2 after inter-CTA L1 reuse.

    ``requested_bytes`` — total operand bytes the kernel requests;
    ``num_groups`` — scheduling groups (grid / co-resident CTAs);
    ``density`` — probability a given operand row is selected by one
    CTA's nonzeros; ``group_rows`` — CTAs sharing the L1 at once;
    ``l1_effective_bytes`` — L1 data capacity left after any
    shared-memory carveout.
    """
    if requested_bytes <= 0 or num_groups <= 0:
        return max(0.0, requested_bytes)
    req_g = requested_bytes / num_groups
    unique_g = req_g * compulsory_ratio(density, group_rows)
    fetched_g = estimate_dram_bytes(unique_g, req_g, l1_effective_bytes)
    return num_groups * fetched_g


def work_imbalance(per_cta_work, num_sms: int = 80, dampening: float = 0.25) -> float:
    """Max/mean per-SM work under breadth-first CTA assignment.

    ``dampening`` accounts for the dynamic rebalancing the hardware
    work distributor performs as CTAs retire (a finished SM picks up
    the next CTA immediately, so the static round-robin skew is an
    upper bound): the returned factor is
    ``1 + dampening * (max/mean - 1)``.
    """
    import numpy as np

    w = np.asarray(per_cta_work, dtype=np.float64).ravel()
    if w.size == 0 or w.sum() <= 0:
        return 1.0
    sums = np.bincount(np.arange(w.size) % num_sms, weights=w, minlength=num_sms)
    active = sums[sums > 0]
    skew = float(active.max() / active.mean()) if active.size else 1.0
    return 1.0 + dampening * max(0.0, skew - 1.0)
