"""Shared cross-process memo tier: a file-backed L2 under :mod:`memo`.

The in-process memo regions die with their process, so every ``--jobs``
worker and every separate runner invocation recomputes entries its
siblings already paid for.  This module keeps a second, *shared* tier
on disk so hit rates survive process boundaries: lookups in the blob
regions fall through process-local -> shared, and misses publish the
freshly computed blob to both.

Store layout (one directory, any number of concurrent processes)::

    <dir>/segments/<writer>.seg   append-only value blobs, one writer
                                  per process (never rewritten in place)
    <dir>/index/<writer>.json     that writer's entry catalogue,
                                  republished atomically via
                                  write-tmp-then-rename

* **Single-writer segments** — each process appends only to its own
  segment file, so there is no cross-process write contention and no
  file locking anywhere.
* **Lock-free readers** — a reader lists ``index/``, loads whatever
  catalogues exist, and reads blobs at the recorded offsets.  An index
  is only ever replaced by rename, so a reader sees the old complete
  catalogue or the new complete catalogue, never a torn one.
* **Checksummed entries** — every record carries a BLAKE2b digest of
  its pickled bytes; a read re-hashes before unpickling.  A corrupted
  or truncated segment entry is *detected and dropped, never served* —
  the failure lands in :func:`integrity_counters` and the caller
  recomputes (and republishes) the value.
* **Canonical keys** — entries are addressed by
  :func:`key_digest`: the in-process memo key is normalised
  (numpy scalars to Python scalars, sequences to tuples) and pickled
  with a *pinned* protocol, so the same problem hashes identically in
  every worker regardless of interpreter defaults.

The operand-array regions (``memo.ARRAY_REGIONS`` — ``problem`` /
``format``) never reach this tier: their values are hundreds of MB and
their keys embed RNG state, so sharing them would trade a cheap local
rebuild for massive segment churn.  :func:`memo.trim` and the local
FIFO eviction only touch the in-process stores — shared segments are
reclaimed exclusively by the explicit :func:`compact`.

Control surface: ``REPRO_MEMO_SHARED`` (default **off**; ``1`` enables),
``REPRO_MEMO_SHARED_DIR`` (default ``.repro-memo`` under the working
directory), :func:`set_enabled` / :func:`set_dir` overrides, and
``python -m repro.cli memo`` for inspection/verify/compact.  Outputs
are bit-identical with the tier on or off: the shared tier serves only
pickled blobs of values the local tier would have recomputed.
"""

from __future__ import annotations

import atexit
import io
import json
import os
import pickle
import struct
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import envgates
from ..obs import tracing as _tracing

__all__ = [
    "enabled",
    "set_enabled",
    "store_dir",
    "set_dir",
    "key_digest",
    "lookup",
    "publish",
    "flush",
    "reset",
    "counters",
    "snapshot",
    "delta",
    "integrity_counters",
    "integrity_failures",
    "stats",
    "verify_store",
    "compact",
    "tamper_entry",
    "SHAREABLE_REGIONS",
]

_DEFAULT_DIR = ".repro-memo"

#: pickle protocol pinned for key canonicalisation — the key bytes (and
#: therefore the digest) must not depend on the interpreter's default
_KEY_PROTOCOL = 4

#: regions eligible for the shared tier (the checksummed blob regions;
#: the RNG-keyed operand regions are excluded by design — see module
#: docstring and docs/ROBUSTNESS.md)
SHAREABLE_REGIONS = frozenset({"stats", "latency", "trace", "suite", "plan"})

#: per-record header: magic, key digest (16 raw bytes), value digest
#: (16 raw bytes), value length
_RECORD_MAGIC = b"RMS1"
_HEADER = struct.Struct("<4s16s16sI")

#: publish the index after this many unpublished records (plus on
#: :func:`flush` and at interpreter exit)
_PUBLISH_BATCH = 32

#: minimum seconds between on-miss index rescans (concurrent producers
#: become visible at this granularity; a fresh process always scans)
_REFRESH_S = 0.25

_lock = threading.Lock()
_enabled_override: Optional[bool] = None
_dir_override: Optional[Path] = None


def enabled() -> bool:
    """Whether the shared tier is active (override > env > default off)."""
    if _enabled_override is not None:
        return _enabled_override
    return envgates.flag("REPRO_MEMO_SHARED")


def set_enabled(flag: Optional[bool]) -> None:
    """Force the tier on/off, or defer to ``REPRO_MEMO_SHARED`` (None)."""
    global _enabled_override
    _enabled_override = flag


def store_dir() -> Path:
    """The store directory (override > env > ``.repro-memo``)."""
    if _dir_override is not None:
        return _dir_override
    return Path(envgates.raw("REPRO_MEMO_SHARED_DIR") or _DEFAULT_DIR)


def set_dir(path: Optional[os.PathLike]) -> None:
    """Point the tier at ``path`` (None defers to the env/default).

    Also drops the in-memory view and writer so the next operation
    binds to the new directory.
    """
    global _dir_override
    with _lock:
        _dir_override = Path(path) if path is not None else None
        _teardown_locked()


# --------------------------------------------------------------------- #
# canonical keys
# --------------------------------------------------------------------- #
def _normalise(obj: Any) -> Any:
    """Reduce a memo key to pickle-stable primitives.

    Numpy scalars become Python scalars, sequences become tuples, and
    mappings become sorted tuples; anything else (ndarray payloads,
    live objects) raises :class:`TypeError` — such keys stay local.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, (tuple, list)):
        return tuple(_normalise(x) for x in obj)
    if isinstance(obj, frozenset):
        return ("fs",) + tuple(sorted(map(repr, obj)))
    if isinstance(obj, dict):
        return tuple(sorted((str(k), _normalise(v)) for k, v in obj.items()))
    raise TypeError(f"no canonical shared-memo key for {type(obj).__qualname__}")


def key_digest(region: str, key: Any) -> Optional[bytes]:
    """16-byte canonical digest of ``(region, key)``; ``None`` when the
    key cannot be normalised (the entry then stays process-local)."""
    import hashlib

    try:
        norm = _normalise(key)
    except TypeError:
        return None
    blob = pickle.dumps((region, norm), protocol=_KEY_PROTOCOL)
    return hashlib.blake2b(blob, digest_size=16).digest()


def _blob_digest(blob: bytes) -> bytes:
    import hashlib

    return hashlib.blake2b(blob, digest_size=16).digest()


# --------------------------------------------------------------------- #
# state: per-process writer + read view + counters
# --------------------------------------------------------------------- #
class _Entry:
    __slots__ = ("region", "segment", "offset", "length", "digest")

    def __init__(self, region: str, segment: str, offset: int, length: int,
                 digest: bytes) -> None:
        self.region = region
        self.segment = segment
        self.offset = offset
        self.length = length
        self.digest = digest


class _Writer:
    """This process's single-writer segment + index publisher."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.writer_id = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.segment_name = f"{self.writer_id}.seg"
        self.path = root / "segments" / self.segment_name
        self.path.parent.mkdir(parents=True, exist_ok=True)
        (root / "index").mkdir(parents=True, exist_ok=True)
        self._fh: Optional[io.BufferedWriter] = None
        self._offset = 0
        #: [key_hex, region, offset, length, value_digest_hex] rows, in
        #: publish order (the on-disk index is exactly this list)
        self.entries: List[List[object]] = []
        self._unpublished = 0

    def append(self, region: str, key: bytes, blob: bytes) -> _Entry:
        if self._fh is None:
            self._fh = open(self.path, "ab")
            self._offset = self._fh.tell()
        vdigest = _blob_digest(blob)
        header = _HEADER.pack(_RECORD_MAGIC, key, vdigest, len(blob))
        self._fh.write(header)
        self._fh.write(blob)
        self._fh.flush()
        offset = self._offset + _HEADER.size
        self._offset += _HEADER.size + len(blob)
        self.entries.append(
            [key.hex(), region, offset, len(blob), vdigest.hex()])
        self._unpublished += 1
        if self._unpublished >= _PUBLISH_BATCH:
            self.publish_index()
        return _Entry(region, self.segment_name, offset, len(blob), vdigest)

    def publish_index(self) -> None:
        """Atomically replace this writer's catalogue (tmp + rename)."""
        if not self._unpublished:
            return
        doc = {"writer": self.writer_id, "segment": self.segment_name,
               "entries": self.entries}
        final = self.root / "index" / f"{self.writer_id}.json"
        tmp = final.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc))
        tmp.replace(final)
        self._unpublished = 0

    def close(self) -> None:
        self.publish_index()
        if self._fh is not None:
            self._fh.close()
            self._fh = None


_writer: Optional[_Writer] = None
#: key digest (bytes) -> _Entry, built from the published indexes plus
#: this process's own (possibly unpublished) appends
_view: Dict[bytes, _Entry] = {}
_view_loaded = False
_last_refresh = 0.0
#: region -> [hits, misses, integrity]
_counters: Dict[str, List[int]] = {}
_atexit_registered = False


def _teardown_locked() -> None:
    global _writer, _view_loaded, _last_refresh
    if _writer is not None:
        _writer.close()
        _writer = None
    _view.clear()
    _view_loaded = False
    _last_refresh = 0.0


def reset() -> None:
    """Close the writer, drop the read view and zero every counter.

    In-memory only — the on-disk store is untouched (tests point
    :func:`set_dir` at a fresh directory instead)."""
    with _lock:
        _teardown_locked()
        _counters.clear()


def _counter(region: str) -> List[int]:
    c = _counters.get(region)
    if c is None:
        c = _counters[region] = [0, 0, 0]
    return c


def counters() -> Dict[str, Tuple[int, int]]:
    """``{region: (hits, misses)}`` of shared-tier lookups."""
    with _lock:
        return {r: (c[0], c[1]) for r, c in sorted(_counters.items())}


def snapshot() -> Tuple[int, int]:
    """Aggregate shared ``(hits, misses)`` across all regions."""
    with _lock:
        return (sum(c[0] for c in _counters.values()),
                sum(c[1] for c in _counters.values()))


def delta(since: Tuple[int, int]) -> Tuple[int, int]:
    """Shared ``(hits, misses)`` accrued since a prior :func:`snapshot`."""
    now = snapshot()
    return now[0] - since[0], now[1] - since[1]


def integrity_counters() -> Dict[str, int]:
    """``{region: corrupt entries detected (and never served)}``."""
    with _lock:
        return {r: c[2] for r, c in sorted(_counters.items()) if c[2]}


def integrity_failures() -> int:
    """Total corrupt shared entries detected since :func:`reset`."""
    with _lock:
        return sum(c[2] for c in _counters.values())


# --------------------------------------------------------------------- #
# read view
# --------------------------------------------------------------------- #
def _load_indexes_locked(root: Path) -> None:
    """Rebuild the key -> entry view from every published catalogue.

    Later catalogue rows win on digest collision (a republished entry —
    e.g. after a detected corruption — supersedes the stale one); this
    process's own appends are layered last since they are newest.
    """
    global _view_loaded, _last_refresh
    _view.clear()
    index_dir = root / "index"
    if index_dir.is_dir():
        for path in sorted(index_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
                segment = doc["segment"]
                for key_hex, region, offset, length, vdigest_hex in doc["entries"]:
                    _view[bytes.fromhex(key_hex)] = _Entry(
                        region, segment, int(offset), int(length),
                        bytes.fromhex(vdigest_hex))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # unreadable catalogue: skip, never crash a reader
    if _writer is not None:
        for key_hex, region, offset, length, vdigest_hex in _writer.entries:
            _view[bytes.fromhex(key_hex)] = _Entry(
                region, _writer.segment_name, int(offset), int(length),
                bytes.fromhex(vdigest_hex))
    _view_loaded = True
    _last_refresh = time.monotonic()


def _read_blob(root: Path, entry: _Entry) -> Optional[bytes]:
    """Read and verify one record's bytes; ``None`` on any mismatch."""
    try:
        with open(root / "segments" / entry.segment, "rb") as fh:
            fh.seek(entry.offset)
            blob = fh.read(entry.length)
    except OSError:
        return None
    if len(blob) != entry.length or _blob_digest(blob) != entry.digest:
        return None
    return blob


# --------------------------------------------------------------------- #
# the lookup / publish surface (called by memo.memoise)
# --------------------------------------------------------------------- #
def lookup(region: str, key: bytes) -> Optional[bytes]:
    """Fetch the verified blob for ``key``, or ``None`` on miss.

    Counts a shared hit/miss per call; a checksum mismatch counts as an
    integrity failure *and* a miss (the caller recomputes — a corrupt
    entry is never served) and evicts the bad entry from the view so a
    republished value can take its place.
    """
    if region not in SHAREABLE_REGIONS:
        return None
    root = store_dir()
    with _lock:
        if not _view_loaded:
            _load_indexes_locked(root)
        entry = _view.get(key)
        if entry is None and time.monotonic() - _last_refresh > _REFRESH_S:
            _load_indexes_locked(root)
            entry = _view.get(key)
        c = _counter(region)
        if entry is None or entry.region != region:
            c[1] += 1
            return None
    if _tracing.enabled():
        with _tracing.span(f"memo.shared.read.{region}", bytes=entry.length):
            blob = _read_blob(root, entry)
    else:
        blob = _read_blob(root, entry)
    with _lock:
        c = _counter(region)
        if blob is None:
            c[2] += 1  # corrupt/truncated: detected, never served
            c[1] += 1
            _view.pop(key, None)
            return None
        c[0] += 1
    return blob


def publish(region: str, key: bytes, blob: bytes) -> bool:
    """Append one pickled value to this process's segment.

    Returns ``False`` (and writes nothing) for non-shareable regions or
    when the tier is unreachable; I/O errors never propagate into the
    compute path.
    """
    if region not in SHAREABLE_REGIONS:
        return False
    with _lock:
        global _writer, _atexit_registered
        try:
            if _writer is None:
                _writer = _Writer(store_dir())
                if not _atexit_registered:
                    atexit.register(flush)
                    _atexit_registered = True
            if _tracing.enabled():
                with _tracing.span(f"memo.shared.publish.{region}",
                                   bytes=len(blob)):
                    entry = _writer.append(region, key, blob)
            else:
                entry = _writer.append(region, key, blob)
            _view[key] = entry
            return True
        except OSError:
            return False


def flush() -> None:
    """Publish any unpublished index rows (cheap no-op otherwise).

    The runner calls this as each experiment finishes and the pool
    calls it after each worker task, so sibling processes see fresh
    entries without waiting for the batch threshold or process exit.
    """
    with _lock:
        if _writer is not None:
            try:
                _writer.publish_index()
            except OSError:
                pass


# --------------------------------------------------------------------- #
# maintenance: stats / verify / compact / tamper
# --------------------------------------------------------------------- #
def stats() -> Dict[str, Any]:
    """Store-wide inventory for ``cli memo``: per-region entry counts
    and bytes (live entries only), segment/writer counts and the bytes
    segments hold on disk (dead entries included until :func:`compact`)."""
    root = store_dir()
    with _lock:
        _load_indexes_locked(root)  # fresh inventory, not the cached view
        regions: Dict[str, Dict[str, int]] = {}
        for entry in _view.values():
            row = regions.setdefault(entry.region, {"entries": 0, "bytes": 0})
            row["entries"] += 1
            row["bytes"] += entry.length
    seg_dir = root / "segments"
    segments = sorted(seg_dir.glob("*.seg")) if seg_dir.is_dir() else []
    index_dir = root / "index"
    writers = len(list(index_dir.glob("*.json"))) if index_dir.is_dir() else 0
    return {
        "dir": str(root),
        "regions": {r: regions[r] for r in sorted(regions)},
        "live_entries": len(_view),
        "live_bytes": sum(e.length for e in _view.values()),
        "segments": len(segments),
        "segment_bytes": sum(p.stat().st_size for p in segments),
        "writers": writers,
    }


def verify_store() -> Tuple[int, int]:
    """Re-read and re-hash every live entry; ``(ok, corrupt)`` counts."""
    root = store_dir()
    with _lock:
        _load_indexes_locked(root)
        entries = list(_view.items())
    ok = corrupt = 0
    for _key, entry in entries:
        if _read_blob(root, entry) is None:
            corrupt += 1
        else:
            ok += 1
    return ok, corrupt


def compact() -> Dict[str, int]:
    """Rewrite every live, checksum-valid entry into this process's
    fresh segment and delete the superseded segment/index files.

    This is the *only* reclamation path for shared segments —
    :func:`memo.trim` and the local FIFO eviction never touch them.
    Offline maintenance: run it while no sweep is writing the store
    (``python -m repro.cli memo --compact``).
    """
    root = store_dir()
    with _lock:
        _teardown_locked()
        _load_indexes_locked(root)
        live = list(_view.items())
    old_segments = {e.segment for _k, e in live}
    kept = dropped = 0
    for key, entry in live:
        blob = _read_blob(root, entry)
        if blob is None:
            dropped += 1  # corrupt on disk: compaction discards it
            continue
        publish(entry.region, key, blob)
        kept += 1
    flush()
    with _lock:
        own = _writer.segment_name if _writer is not None else None
        own_index = _writer.writer_id if _writer is not None else None
    removed = 0
    for seg in old_segments:
        if seg == own:
            continue
        try:
            (root / "segments" / seg).unlink(missing_ok=True)
            removed += 1
        except OSError:
            pass
    index_dir = root / "index"
    if index_dir.is_dir():
        for path in index_dir.glob("*.json"):
            if own_index is not None and path.stem == own_index:
                continue
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
    # rebuild the view from what survived
    with _lock:
        _load_indexes_locked(root)
    return {"kept": kept, "dropped_corrupt": dropped,
            "removed_segments": removed}


def tamper_entry(region: str, index: int = 0, flip_byte: int = 0) -> bool:
    """Corrupt one stored blob *on disk*, leaving its digest stale.

    Fault-injection/test hook (the shared-tier analog of
    :func:`memo.tamper_entry`): flips every bit of one byte of the
    ``index``-th live entry of ``region`` inside its segment file.
    Returns ``False`` when the region has no such entry.
    """
    root = store_dir()
    flush()
    with _lock:
        _load_indexes_locked(root)
        candidates = [e for e in _view.values() if e.region == region]
    if index >= len(candidates):
        return False
    entry = candidates[index]
    path = root / "segments" / entry.segment
    try:
        with open(path, "r+b") as fh:
            pos = entry.offset + (flip_byte % entry.length)
            fh.seek(pos)
            byte = fh.read(1)
            if not byte:
                return False
            fh.seek(pos)
            fh.write(bytes([byte[0] ^ 0xFF]))
    except OSError:
        return False
    return True
