"""Performance model: kernel statistics -> stalls -> latency -> profiles."""

from .events import GlobalTraffic, KernelStats, estimate_dram_bytes, scale_batch
from .pipeline import StallProfile, compute_stalls
from .latency import LatencyEstimate, LatencyModel
from .profiler import ProfileReport, format_table, guidelines_table, profile_kernel

__all__ = [
    "GlobalTraffic",
    "scale_batch",
    "KernelStats",
    "estimate_dram_bytes",
    "StallProfile",
    "compute_stalls",
    "LatencyEstimate",
    "LatencyModel",
    "ProfileReport",
    "format_table",
    "guidelines_table",
    "profile_kernel",
]
