"""Kernel-level statistics: the contract between kernels and the model.

Every kernel in :mod:`repro.kernels` produces a :class:`KernelStats`
describing what it *would* execute on the simulated device:

* warp-level instruction mix (:class:`~repro.hardware.instructions.InstructionMix`);
* global-memory traffic at request/sector/transaction granularity and
  the estimated inter-level byte flows (L2->L1, DRAM->L2);
* shared-memory traffic;
* launch shape and per-CTA resources (for occupancy);
* static program size (for the L0 i-cache model);
* useful floating-point work (for roofline sanity checks).

The latency model (:mod:`repro.perfmodel.latency`) consumes only this
object, so analytic and trace-driven kernels are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..hardware.config import GPUSpec, default_spec
from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.shared_memory import SharedMemoryStats
from ..hardware.thread_hierarchy import LaunchConfig

__all__ = ["GlobalTraffic", "KernelStats", "estimate_dram_bytes"]


def estimate_dram_bytes(unique_bytes: float, stream_bytes: float, l2_capacity: float) -> float:
    """DRAM traffic estimate given the unique footprint and the L2 stream.

    If the unique footprint fits in (most of) L2, only compulsory
    misses reach DRAM.  Beyond that, re-references hit with probability
    proportional to the resident fraction (a standard LRU stack
    approximation, adequate for the streaming kernels modelled here).

    The result never exceeds ``stream_bytes``: DRAM traffic flows
    through L2, so a kernel whose L1 reuse already shrank the L2 stream
    below the matrices' total size cannot pull more than that stream
    from DRAM.
    """
    if stream_bytes < unique_bytes:
        unique_bytes = stream_bytes
    resident = 0.8 * l2_capacity
    if unique_bytes <= resident or unique_bytes <= 0:
        return unique_bytes
    hit_prob = resident / unique_bytes
    return unique_bytes + (stream_bytes - unique_bytes) * (1.0 - hit_prob)


@dataclass
class GlobalTraffic:
    """Global-memory traffic of one kernel launch (device-wide)."""

    load_requests: float = 0.0      # warp-level LDG instructions
    store_requests: float = 0.0
    load_sectors: float = 0.0       # 32B sectors requested at L1
    store_sectors: float = 0.0
    bytes_requested: float = 0.0    # useful bytes the lanes asked for
    bytes_l2_to_l1: float = 0.0     # Figure 18's metric
    bytes_dram_to_l2: float = 0.0
    local_bytes: float = 0.0        # register-spill traffic (DRAM-backed)

    @property
    def requests(self) -> float:
        return self.load_requests + self.store_requests

    @property
    def sectors(self) -> float:
        return self.load_sectors + self.store_sectors

    @property
    def sectors_per_request(self) -> float:
        """Tables 2/3 "Sectors/Req" (higher = wider coalesced accesses)."""
        return self.sectors / self.requests if self.requests else 0.0

    @property
    def l1_missed_sectors(self) -> float:
        """Figure 5's "L1$ Missed Sectors" (a *load*-side counter in
        Nsight: store/writeback traffic is excluded)."""
        return max(0.0, self.bytes_l2_to_l1 - self.store_sectors * 32.0) / 32.0

    def merge(self, other: "GlobalTraffic") -> None:
        self.load_requests += other.load_requests
        self.store_requests += other.store_requests
        self.load_sectors += other.load_sectors
        self.store_sectors += other.store_sectors
        self.bytes_requested += other.bytes_requested
        self.bytes_l2_to_l1 += other.bytes_l2_to_l1
        self.bytes_dram_to_l2 += other.bytes_dram_to_l2
        self.local_bytes += other.local_bytes


@dataclass
class KernelStats:
    """Everything the latency model needs to know about one launch."""

    name: str
    launch: LaunchConfig
    resources: KernelResources
    instructions: InstructionMix = field(default_factory=InstructionMix)
    global_mem: GlobalTraffic = field(default_factory=GlobalTraffic)
    shared_mem: SharedMemoryStats = field(default_factory=SharedMemoryStats)
    program: ICacheModel = field(default_factory=lambda: ICacheModel(sass_lines=256))
    flops: float = 0.0              # useful FLOPs (2 x MACs)
    #: average ILP of the dependence chains feeding each math pipe;
    #: the octet kernels' load-all-then-compute trick (§5.4) raises this.
    ilp: float = 2.0
    #: how correlated the warps' stalls are (0 = independent, hidden by
    #: interleaving other warps; 1 = all warps stall together, e.g. on
    #: either side of a __syncthreads, and nothing hides them — the
    #: §3.2 Blocked-ELL pathology).
    stall_correlation: float = 0.2
    #: max-over-SMs / mean per-SM work under breadth-first CTA
    #: assignment — DLMC's heavy-tailed rows leave some SMs with the
    #: long tail (1.0 = perfectly balanced).
    work_imbalance: float = 1.0
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def warp_instructions(self) -> float:
        return self.instructions.total

    def instructions_per_warp(self) -> float:
        w = self.launch.total_warps
        return self.instructions.total / w if w else 0.0


def scale_batch(stats: KernelStats, copies: int) -> KernelStats:
    """Stats for a *batched* launch of ``copies`` identical problems.

    Attention layers run their per-head-per-sample kernels as one
    batched launch (grid grows by ``copies``); one launch overhead is
    paid and small grids fill the machine — which is why the dense
    baseline's skinny per-head GEMMs regain efficiency at batch time.
    """
    if copies <= 1:
        return stats
    from ..hardware.thread_hierarchy import LaunchConfig  # local: avoid cycle

    gm = GlobalTraffic(
        load_requests=stats.global_mem.load_requests * copies,
        store_requests=stats.global_mem.store_requests * copies,
        load_sectors=stats.global_mem.load_sectors * copies,
        store_sectors=stats.global_mem.store_sectors * copies,
        bytes_requested=stats.global_mem.bytes_requested * copies,
        bytes_l2_to_l1=stats.global_mem.bytes_l2_to_l1 * copies,
        bytes_dram_to_l2=stats.global_mem.bytes_dram_to_l2 * copies,
        local_bytes=stats.global_mem.local_bytes * copies,
    )
    shared = SharedMemoryStats(
        load_requests=stats.shared_mem.load_requests * copies,
        store_requests=stats.shared_mem.store_requests * copies,
        load_wavefronts=stats.shared_mem.load_wavefronts * copies,
        store_wavefronts=stats.shared_mem.store_wavefronts * copies,
        bytes_loaded=stats.shared_mem.bytes_loaded * copies,
        bytes_stored=stats.shared_mem.bytes_stored * copies,
    )
    return KernelStats(
        name=f"{stats.name} xB{copies}",
        launch=LaunchConfig(
            grid_x=stats.launch.grid_x,
            grid_y=stats.launch.grid_y * copies,
            cta_size=stats.launch.cta_size,
        ),
        resources=stats.resources,
        instructions=stats.instructions.scaled(copies),
        global_mem=gm,
        shared_mem=shared,
        program=stats.program,
        flops=stats.flops * copies,
        ilp=stats.ilp,
        stall_correlation=stats.stall_correlation,
        work_imbalance=stats.work_imbalance,
        notes=dict(stats.notes),
    )
