"""Kernel-level statistics: the contract between kernels and the model.

Every kernel in :mod:`repro.kernels` produces a :class:`KernelStats`
describing what it *would* execute on the simulated device:

* warp-level instruction mix (:class:`~repro.hardware.instructions.InstructionMix`);
* global-memory traffic at request/sector/transaction granularity and
  the estimated inter-level byte flows (L2->L1, DRAM->L2);
* shared-memory traffic;
* launch shape and per-CTA resources (for occupancy);
* static program size (for the L0 i-cache model);
* useful floating-point work (for roofline sanity checks).

The latency model (:mod:`repro.perfmodel.latency`) consumes only this
object, so analytic and trace-driven kernels are interchangeable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, List

from ..hardware.icache import ICacheModel
from ..hardware.instructions import InstructionMix
from ..hardware.register_file import KernelResources
from ..hardware.shared_memory import SharedMemoryStats
from ..hardware.thread_hierarchy import LaunchConfig

__all__ = ["GlobalTraffic", "KernelStats", "estimate_dram_bytes", "MAX_SECTORS_PER_REQUEST"]

#: Hard coalescer bound: one warp-level request (32 lanes, up to 16 B
#: per lane) can touch at most 32 distinct 32 B sectors.  The paper's
#: "Sectors/Req" tables (2/3) report 16 for the ideal LDG.128 pattern;
#: anything above 32 is physically impossible on the modelled device.
MAX_SECTORS_PER_REQUEST = 32.0

#: relative slack for float-accounted invariants
_REL_TOL = 1e-9


def estimate_dram_bytes(unique_bytes: float, stream_bytes: float, l2_capacity: float) -> float:
    """DRAM traffic estimate given the unique footprint and the L2 stream.

    If the unique footprint fits in (most of) L2, only compulsory
    misses reach DRAM.  Beyond that, re-references hit with probability
    proportional to the resident fraction (a standard LRU stack
    approximation, adequate for the streaming kernels modelled here).

    The result never exceeds ``stream_bytes``: DRAM traffic flows
    through L2, so a kernel whose L1 reuse already shrank the L2 stream
    below the matrices' total size cannot pull more than that stream
    from DRAM.
    """
    if stream_bytes < unique_bytes:
        unique_bytes = stream_bytes
    resident = 0.8 * l2_capacity
    if unique_bytes <= resident or unique_bytes <= 0:
        return unique_bytes
    hit_prob = resident / unique_bytes
    return unique_bytes + (stream_bytes - unique_bytes) * (1.0 - hit_prob)


@dataclass
class GlobalTraffic:
    """Global-memory traffic of one kernel launch (device-wide)."""

    load_requests: float = 0.0      # warp-level LDG instructions
    store_requests: float = 0.0
    load_sectors: float = 0.0       # 32B sectors requested at L1
    store_sectors: float = 0.0
    bytes_requested: float = 0.0    # useful bytes the lanes asked for
    bytes_l2_to_l1: float = 0.0     # Figure 18's metric
    bytes_dram_to_l2: float = 0.0
    local_bytes: float = 0.0        # register-spill traffic (DRAM-backed)

    def __post_init__(self) -> None:
        problems = self.violations()
        if problems:
            raise ValueError("inconsistent GlobalTraffic: " + "; ".join(problems))

    def violations(self) -> List[str]:
        """Contract violations of the current field values.

        Kernels build their traffic incrementally, so ``__post_init__``
        only sees the construction-time values; :meth:`violations` is
        re-run by :class:`KernelStats` (and by the sanitizer's
        statcheck) once the final numbers are in place.
        """
        out: List[str] = []
        for f in fields(self):
            v = getattr(self, f.name)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                out.append(f"{f.name} must be finite and non-negative, got {v!r}")
        if out:
            return out
        cap = MAX_SECTORS_PER_REQUEST
        if self.load_sectors > self.load_requests * cap * (1.0 + _REL_TOL):
            out.append(
                f"load_sectors ({self.load_sectors:g}) exceed {cap:g} sectors per "
                f"warp-level load request ({self.load_requests:g} requests)"
            )
        if self.store_sectors > self.store_requests * cap * (1.0 + _REL_TOL):
            out.append(
                f"store_sectors ({self.store_sectors:g}) exceed {cap:g} sectors per "
                f"warp-level store request ({self.store_requests:g} requests)"
            )
        return out

    @property
    def requests(self) -> float:
        return self.load_requests + self.store_requests

    @property
    def sectors(self) -> float:
        return self.load_sectors + self.store_sectors

    @property
    def sectors_per_request(self) -> float:
        """Tables 2/3 "Sectors/Req" (higher = wider coalesced accesses)."""
        return self.sectors / self.requests if self.requests else 0.0

    @property
    def l1_missed_sectors(self) -> float:
        """Figure 5's "L1$ Missed Sectors" (a *load*-side counter in
        Nsight: store/writeback traffic is excluded)."""
        return max(0.0, self.bytes_l2_to_l1 - self.store_sectors * 32.0) / 32.0

    def merge(self, other: "GlobalTraffic") -> None:
        self.load_requests += other.load_requests
        self.store_requests += other.store_requests
        self.load_sectors += other.load_sectors
        self.store_sectors += other.store_sectors
        self.bytes_requested += other.bytes_requested
        self.bytes_l2_to_l1 += other.bytes_l2_to_l1
        self.bytes_dram_to_l2 += other.bytes_dram_to_l2
        self.local_bytes += other.local_bytes


@dataclass
class KernelStats:
    """Everything the latency model needs to know about one launch."""

    name: str
    launch: LaunchConfig
    resources: KernelResources
    instructions: InstructionMix = field(default_factory=InstructionMix)
    global_mem: GlobalTraffic = field(default_factory=GlobalTraffic)
    shared_mem: SharedMemoryStats = field(default_factory=SharedMemoryStats)
    program: ICacheModel = field(default_factory=lambda: ICacheModel(sass_lines=256))
    flops: float = 0.0              # useful FLOPs (2 x MACs)
    #: average ILP of the dependence chains feeding each math pipe;
    #: the octet kernels' load-all-then-compute trick (§5.4) raises this.
    ilp: float = 2.0
    #: how correlated the warps' stalls are (0 = independent, hidden by
    #: interleaving other warps; 1 = all warps stall together, e.g. on
    #: either side of a __syncthreads, and nothing hides them — the
    #: §3.2 Blocked-ELL pathology).
    stall_correlation: float = 0.2
    #: max-over-SMs / mean per-SM work under breadth-first CTA
    #: assignment — DLMC's heavy-tailed rows leave some SMs with the
    #: long tail (1.0 = perfectly balanced).
    work_imbalance: float = 1.0
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        problems = self.violations()
        if problems:
            raise ValueError(f"inconsistent KernelStats {self.name!r}: " + "; ".join(problems))

    def violations(self) -> List[str]:
        """Static contract violations (construction-time and final).

        ``launch`` and ``resources`` enforce their own invariants in
        their ``__post_init__``; this covers the fields owned here plus
        the embedded traffic objects, which kernels keep mutating after
        construction (re-run by the sanitizer's statcheck on the final
        values).
        """
        out: List[str] = []
        if not math.isfinite(self.flops) or self.flops < 0:
            out.append(f"flops must be finite and non-negative, got {self.flops!r}")
        if not math.isfinite(self.ilp) or self.ilp < 1.0:
            out.append(f"ilp must be >= 1 (at least the issued chain itself), got {self.ilp!r}")
        if not 0.0 <= self.stall_correlation <= 1.0:
            out.append(f"stall_correlation must be in [0, 1], got {self.stall_correlation!r}")
        if not math.isfinite(self.work_imbalance) or self.work_imbalance < 1.0 - 1e-9:
            out.append(
                "work_imbalance is max-over-SMs / mean and cannot drop below 1, "
                f"got {self.work_imbalance!r}"
            )
        for cls, n in self.instructions.counts.items():
            if not math.isfinite(n) or n < 0:
                out.append(f"instruction count {cls.value} must be finite and non-negative, got {n!r}")
        sm = self.shared_mem
        for name in ("load_requests", "store_requests", "load_wavefronts",
                     "store_wavefronts", "bytes_loaded", "bytes_stored"):
            v = getattr(sm, name)
            if not math.isfinite(v) or v < 0:
                out.append(f"shared_mem.{name} must be finite and non-negative, got {v!r}")
        out.extend(self.global_mem.violations())
        return out

    @property
    def warp_instructions(self) -> float:
        return self.instructions.total

    def instructions_per_warp(self) -> float:
        w = self.launch.total_warps
        return self.instructions.total / w if w else 0.0


def scale_batch(stats: KernelStats, copies: int) -> KernelStats:
    """Stats for a *batched* launch of ``copies`` identical problems.

    Attention layers run their per-head-per-sample kernels as one
    batched launch (grid grows by ``copies``); one launch overhead is
    paid and small grids fill the machine — which is why the dense
    baseline's skinny per-head GEMMs regain efficiency at batch time.
    """
    if copies <= 1:
        return stats
    from ..hardware.thread_hierarchy import LaunchConfig  # local: avoid cycle

    gm = GlobalTraffic(
        load_requests=stats.global_mem.load_requests * copies,
        store_requests=stats.global_mem.store_requests * copies,
        load_sectors=stats.global_mem.load_sectors * copies,
        store_sectors=stats.global_mem.store_sectors * copies,
        bytes_requested=stats.global_mem.bytes_requested * copies,
        bytes_l2_to_l1=stats.global_mem.bytes_l2_to_l1 * copies,
        bytes_dram_to_l2=stats.global_mem.bytes_dram_to_l2 * copies,
        local_bytes=stats.global_mem.local_bytes * copies,
    )
    shared = SharedMemoryStats(
        load_requests=stats.shared_mem.load_requests * copies,
        store_requests=stats.shared_mem.store_requests * copies,
        load_wavefronts=stats.shared_mem.load_wavefronts * copies,
        store_wavefronts=stats.shared_mem.store_wavefronts * copies,
        bytes_loaded=stats.shared_mem.bytes_loaded * copies,
        bytes_stored=stats.shared_mem.bytes_stored * copies,
    )
    return KernelStats(
        name=f"{stats.name} xB{copies}",
        launch=LaunchConfig(
            grid_x=stats.launch.grid_x,
            grid_y=stats.launch.grid_y * copies,
            cta_size=stats.launch.cta_size,
        ),
        resources=stats.resources,
        instructions=stats.instructions.scaled(copies),
        global_mem=gm,
        shared_mem=shared,
        program=stats.program,
        flops=stats.flops * copies,
        ilp=stats.ilp,
        stall_correlation=stats.stall_correlation,
        work_imbalance=stats.work_imbalance,
        notes=dict(stats.notes),
    )
