"""Interval-style latency model: KernelStats -> estimated runtime.

The estimate is the maximum of the classic bounds, per SM, over however
many occupancy-limited waves the grid needs:

* **issue** — warp instructions / (4 schedulers x fetch efficiency);
* **pipe throughput** — per-pipe warp instructions / pipe rate
  (tensor, fp32/fp16 FMA, ALU, LSU, SFU, shuffle);
* **shared memory** — wavefronts / (1 per cycle);
* **L2 / DRAM bandwidth** — inter-level bytes / per-SM byte rate;
* **latency** — per-warp critical path (issued instructions + visible
  stalls) times the number of warp batches a scheduler must run
  serially; this is where low occupancy or a tiny grid (guideline II)
  hurts.

A fixed launch overhead is added; it is what makes very sparse, tiny
kernels stop scaling (visible at the 0.98-sparsity end of Figs 17/19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..hardware.config import GPUSpec, default_spec
from ..hardware.register_file import Occupancy, compute_occupancy
from . import memo
from .events import KernelStats
from .pipeline import StallProfile, compute_stalls

__all__ = ["LatencyEstimate", "LatencyModel"]


@dataclass
class LatencyEstimate:
    """Resolved timing for one kernel launch."""

    name: str
    time_us: float
    cycles_per_sm: float
    bounds: Dict[str, float]           # per-bound cycles (per SM)
    limiter: str
    occupancy: Occupancy
    stalls: StallProfile
    stall_fractions: Dict[str, float]

    @property
    def time_ms(self) -> float:
        return self.time_us / 1e3

    def speedup_over(self, other: "LatencyEstimate") -> float:
        return other.time_us / self.time_us


class LatencyModel:
    """Maps :class:`KernelStats` to runtime on a :class:`GPUSpec`.

    ``efficiency`` scales the final throughput to account for effects
    outside the model (DVFS, partition camping, instruction replays);
    per-kernel calibration constants live with the kernels, not here.
    """

    #: fraction of the second-highest bound charged on top of the limiter
    OVERLAP_SLACK = 0.15

    def __init__(self, spec: GPUSpec | None = None, efficiency: float = 1.0) -> None:
        self.spec = spec or default_spec()
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self.efficiency = efficiency

    # ------------------------------------------------------------------ #
    def estimate(self, stats: KernelStats) -> LatencyEstimate:
        """Resolve ``stats`` to a timing, memoised on the full stats
        fingerprint plus (spec, efficiency, overlap slack) — any field
        the model reads is part of the key."""
        if not memo.enabled():
            return self._estimate_uncached(stats)
        key = (
            "LatencyModel.estimate",
            memo.signature(self.spec),
            float(self.efficiency),
            float(self.OVERLAP_SLACK),
            memo.stats_signature(stats),
        )
        return memo.memoise("latency", key, lambda: self._estimate_uncached(stats))

    def _estimate_uncached(self, stats: KernelStats) -> LatencyEstimate:
        spec = self.spec
        occ = compute_occupancy(stats.resources, spec)
        stalls = compute_stalls(stats, spec)

        n_ctas = stats.launch.num_ctas
        # grids smaller than the SM count leave SMs idle (the dense
        # baseline at skinny N, guideline II): per-SM work divides by
        # the number of *active* SMs, while device-wide bandwidth
        # bounds keep the full chip in the denominator.
        active_sms = max(1, min(spec.num_sms, n_ctas))
        ctas_per_sm = n_ctas / active_sms
        warps_per_cta = stats.launch.warps_per_cta
        warps_per_sm_total = ctas_per_sm * warps_per_cta
        mix = stats.instructions
        total_instr = mix.total
        instr_per_sm = total_instr / active_sms

        bounds: Dict[str, float] = {}

        # ---- issue bound ----------------------------------------------------
        # the scheduler only issues on un-stalled slots: fetch starvation
        # plus whatever per-warp stalls the resident warps cannot hide
        # (correlation-aware) dilute the 4-per-cycle issue rate.
        issued_frac = stalls.issued_fraction(occ.warps_per_scheduler)
        bounds["issue"] = instr_per_sm / (spec.issue_rate * max(1e-6, issued_frac))

        # ---- pipe bounds -----------------------------------------------------
        pipes = mix.by_pipe()
        rate = {
            "tensor": spec.tensor_hmma_rate,
            "fma32": spec.fma_fp32_rate,
            "fma16": spec.fma_fp16_rate,
            "alu": spec.alu_int_rate,
            "lsu": spec.lsu_rate,
            "shuffle": spec.shuffle_rate,
            "sfu": spec.sfu_rate,
            "misc": spec.issue_rate,
        }
        # fma16/fma32/alu share the FMA datapath on Volta: bound the sum too
        fma_family = pipes.get("fma16", 0.0) + pipes.get("fma32", 0.0) + pipes.get("alu", 0.0)
        for pipe, count in pipes.items():
            bounds[f"pipe:{pipe}"] = count / active_sms / rate[pipe]
        bounds["pipe:fma-family"] = fma_family / active_sms / spec.fma_fp32_rate

        # ---- shared memory bound ---------------------------------------------
        waves = stats.shared_mem.wavefronts
        bounds["shared"] = waves / active_sms  # 1 wavefront / cycle / SM

        # ---- interconnect bounds ----------------------------------------------
        gm = stats.global_mem
        l2_bytes = gm.bytes_l2_to_l1 + gm.local_bytes
        dram_bytes = gm.bytes_dram_to_l2 + gm.local_bytes
        # L1<->core: sectors move at l1_bytes_per_cycle per SM
        bounds["l1"] = (gm.sectors * spec.sector_bytes) / active_sms / spec.l1_bytes_per_cycle
        bounds["l2"] = l2_bytes / spec.num_sms / spec.l2_bytes_per_cycle_per_sm
        bounds["dram"] = dram_bytes / spec.num_sms / spec.dram_bytes_per_cycle_per_sm

        # ---- latency bound -----------------------------------------------------
        # a grid smaller than one wave still pays one full per-warp
        # critical path per serial batch of resident warps.
        warps_per_sched_resident = occ.warps_per_scheduler
        i_w = stalls.per_warp_instructions
        visible = sum(stalls.visible(warps_per_sched_resident).values())
        per_warp_cycles = (i_w + visible) / max(
            1e-6, 1.0 - stalls.no_instruction_fraction
        )
        batches = max(1.0, warps_per_sm_total / max(1.0, occ.warps_per_sm))
        bounds["latency"] = per_warp_cycles * batches

        # efficiency scales what the model idealises (compute pipes,
        # issue); the bandwidth figures are measured-achievable already.
        memory_bounds = {"l1", "l2", "dram", "shared"}
        scaled = {
            key: b / (1.0 if key in memory_bounds else self.efficiency)
            for key, b in bounds.items()
        }
        ordered = sorted(scaled.values(), reverse=True)
        # bounds never overlap perfectly: charge a slice of the runner-up
        # (this is what makes near-bound effects — extra shuffles, a
        # register-pressure occupancy dip — visible in the total, as
        # they are on hardware).
        cycles = ordered[0] + (self.OVERLAP_SLACK * ordered[1] if len(ordered) > 1 else 0.0)
        # the device finishes with its most-loaded SM: heavy-tailed row
        # distributions (DLMC) stretch the tail past the mean
        cycles *= max(1.0, stats.work_imbalance)
        limiter = max(scaled, key=scaled.get)

        time_us = cycles / (spec.clock_ghz * 1e3) + spec.launch_overhead_us

        return LatencyEstimate(
            name=stats.name,
            time_us=time_us,
            cycles_per_sm=cycles,
            bounds=bounds,
            limiter=limiter,
            occupancy=occ,
            stalls=stalls,
            stall_fractions=stalls.fractions(warps_per_sched_resident),
        )
