"""Nsight-style profile reports for the paper's tables.

Tables 1-3 report, per kernel: the stall-reason percentages, the grid
size ("# Thread Block"), and "Sectors/Req"; Figure 5 reports L1 missed
sectors, max compute-pipe utilisation and executed math instructions.
This module renders those views from a :class:`LatencyEstimate` +
:class:`KernelStats` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .events import KernelStats
from .latency import LatencyEstimate, LatencyModel

__all__ = ["ProfileReport", "profile_kernel", "guidelines_table", "format_table",
           "fmt_counter"]


@dataclass
class ProfileReport:
    """One kernel's profile in the vocabulary of the paper's tables.

    Counters a kernel genuinely lacks are ``None`` (rendered ``n/a``),
    distinct from a measured zero: ``sectors_per_request`` when the
    kernel issues no global-memory requests, and
    ``shared_to_global_load_ratio`` when it never touches shared
    memory (e.g. the FPU kernels) or issues no global loads (the
    ratio's denominator).
    """

    name: str
    time_us: float
    no_instruction_pct: float
    wait_pct: float
    short_scoreboard_pct: float
    long_scoreboard_pct: float
    thread_blocks: int
    sectors_per_request: Optional[float]
    l1_missed_sectors: float
    bytes_l2_to_l1: float
    math_instructions: float
    shared_to_global_load_ratio: Optional[float]
    pipe_utilization: Dict[str, float]
    limiter: str
    occupancy: float
    registers_per_thread: int

    @property
    def max_compute_pipe(self) -> str:
        compute = {k: v for k, v in self.pipe_utilization.items() if k in ("tensor", "fma32", "fma16", "alu")}
        return max(compute, key=compute.get) if compute else "-"

    @property
    def max_compute_pipe_utilization(self) -> float:
        compute = [v for k, v in self.pipe_utilization.items() if k in ("tensor", "fma32", "fma16", "alu")]
        return max(compute) if compute else 0.0


def profile_kernel(
    stats: KernelStats,
    model: LatencyModel | None = None,
) -> ProfileReport:
    """Render one kernel's stats as a Table-1/2/3-style profile."""
    model = model or LatencyModel()
    est = model.estimate(stats)
    fr = est.stall_fractions
    cycles = max(1e-9, est.cycles_per_sm)
    pipe_util = {}
    for key, b in est.bounds.items():
        if key.startswith("pipe:") and not key.endswith("family"):
            pipe_util[key.split(":", 1)[1]] = min(1.0, b / cycles)
    has_requests = stats.global_mem.requests > 0
    has_shared = stats.instructions.shared_load_requests > 0
    has_global_loads = stats.instructions.global_load_requests > 0
    return ProfileReport(
        name=stats.name,
        time_us=est.time_us,
        no_instruction_pct=100.0 * fr.get("no_instruction", 0.0),
        wait_pct=100.0 * fr.get("wait", 0.0),
        short_scoreboard_pct=100.0 * fr.get("short_scoreboard", 0.0),
        long_scoreboard_pct=100.0 * fr.get("long_scoreboard", 0.0),
        thread_blocks=stats.launch.num_ctas,
        sectors_per_request=(stats.global_mem.sectors_per_request
                             if has_requests else None),
        l1_missed_sectors=stats.global_mem.l1_missed_sectors,
        bytes_l2_to_l1=stats.global_mem.bytes_l2_to_l1,
        math_instructions=stats.instructions.math_instructions,
        shared_to_global_load_ratio=(
            stats.instructions.shared_to_global_load_ratio
            if has_shared and has_global_loads else None),
        pipe_utilization=pipe_util,
        limiter=est.limiter,
        occupancy=est.occupancy.occupancy_fraction,
        registers_per_thread=stats.resources.registers_per_thread,
    )


def fmt_counter(value: Optional[float], spec: str = ".2f") -> str:
    """Render a profile counter; ``None`` (counter not applicable to
    this kernel) becomes ``n/a`` rather than a misleading ``0.0``."""
    return "n/a" if value is None else format(value, spec)


def guidelines_table(reports: Sequence[ProfileReport]) -> List[Dict[str, object]]:
    """Rows of the Table 2/3 layout: the five guidelines per kernel."""
    rows = []
    for r in reports:
        rows.append(
            {
                "Kernel": r.name,
                "No Instruction": f"{r.no_instruction_pct:.1f}%",
                "# Thread Block": r.thread_blocks,
                "Wait": f"{r.wait_pct:.1f}%",
                "Short Scoreboard": f"{r.short_scoreboard_pct:.1f}%",
                "Sectors/Req": fmt_counter(r.sectors_per_request),
            }
        )
    return rows


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Plain-text table renderer used by the experiment scripts."""
    if not rows:
        return "(empty)"
    cols = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    lines = [" | ".join(str(c).ljust(widths[c]) for c in cols)]
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append(" | ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols))
    return "\n".join(lines)
