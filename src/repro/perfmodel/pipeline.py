"""Warp-scheduler stall model.

Reproduces the Nsight-style stall taxonomy the paper profiles
(Table 1: "No Instruction", "Wait", "Short Scoreboard"; plus the
long-scoreboard and barrier components that the latency model needs):

* **No Instruction** — instruction-fetch starvation; driven by the L0
  i-cache model and the kernel's static program size (§3.2).  Fetch
  starvation hits every warp of the sub-core at once (they share the
  L0), so multithreading cannot hide it.
* **Wait** — fixed-latency execution dependencies; dominated by the
  IMAD/IADD3 addressing chains of the FPU kernels (§3.2, §7.2.2).
* **Short Scoreboard** — waits on shared-memory returns; the
  Blocked-ELL kernel's barrier-separated shared-memory staging shows up
  here (§3.2).
* **Long Scoreboard** — waits on global-memory returns.
* **Barrier** — ``__syncthreads`` rendezvous.

Per-warp stall cycles come from the instruction mix and device
latencies.  How much is *visible* at the scheduler depends on two
things: how many warps each scheduler interleaves (occupancy), and how
*correlated* the warps' stalls are (``KernelStats.stall_correlation``)
— barrier-synchronised kernels stall in lockstep and hide nothing,
which is precisely why the Blocked-ELL kernel runs far below its
roofline (§3.2) while the barrier-free octet kernels do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hardware.config import GPUSpec, default_spec
from ..hardware.icache import icache_stall_fraction
from ..hardware.instructions import InstrClass
from .events import KernelStats

__all__ = ["StallProfile", "compute_stalls"]


@dataclass
class StallProfile:
    """Per-source stall cycles (per average warp) and derived fractions."""

    wait: float
    short_scoreboard: float
    long_scoreboard: float
    barrier: float
    no_instruction_fraction: float  # scheduler-level fetch starvation
    per_warp_instructions: float
    stall_correlation: float

    @property
    def per_warp_stall_cycles(self) -> float:
        return self.wait + self.short_scoreboard + self.long_scoreboard + self.barrier

    def visible(self, warps_per_scheduler: float) -> Dict[str, float]:
        """Stall cycles *not hidden* by interleaving other warps.

        Independent stalls shrink as 1/w with ``w`` warps per
        scheduler; correlated stalls (lockstep barriers) do not shrink.
        """
        w = max(1.0, warps_per_scheduler)
        c = min(1.0, max(0.0, self.stall_correlation))
        shrink = c + (1.0 - c) / w
        return {
            "wait": self.wait * shrink,
            "short_scoreboard": self.short_scoreboard * shrink,
            "long_scoreboard": self.long_scoreboard * shrink,
            "barrier": self.barrier * shrink,
        }

    def issued_fraction(self, warps_per_scheduler: float) -> float:
        """Fraction of scheduler slots that issue an instruction.

        Slot accounting: per warp, ``issued + visible stalls`` busy
        slots, further diluted by fetch starvation which steals a fixed
        share of *all* slots.
        """
        vis = sum(self.visible(warps_per_scheduler).values())
        issued = self.per_warp_instructions
        if issued <= 0:
            return 1.0
        return (issued / (issued + vis)) * (1.0 - self.no_instruction_fraction)

    def fractions(self, warps_per_scheduler: float) -> Dict[str, float]:
        """Share of scheduler slot time per stall reason (Tables 1-3)."""
        vis = self.visible(warps_per_scheduler)
        issued = self.per_warp_instructions
        stall_sum = sum(vis.values())
        ni = self.no_instruction_fraction
        busy = issued + stall_sum
        if busy <= 0:  # empty launch: nothing issues, nothing stalls
            return {k: 0.0 for k in vis} | {"no_instruction": 0.0, "issued": 0.0}
        total = busy / max(1e-9, (1.0 - ni))
        out = {k: v / total for k, v in vis.items()}
        out["no_instruction"] = ni
        out["issued"] = issued / total
        return out


def _memory_latency(stats: KernelStats, spec: GPUSpec) -> float:
    """Average load-to-use latency of a global load, by hit level."""
    req = max(1.0, stats.global_mem.bytes_requested)
    to_l1 = min(1.0, stats.global_mem.bytes_l2_to_l1 / req)
    to_l2 = min(to_l1, stats.global_mem.bytes_dram_to_l2 / req)
    l1_frac = 1.0 - to_l1
    l2_frac = to_l1 - to_l2
    return l1_frac * spec.lat_l1 + l2_frac * spec.lat_l2 + to_l2 * spec.lat_dram


def compute_stalls(stats: KernelStats, spec: GPUSpec | None = None) -> StallProfile:
    """Per-warp stall cycles by Nsight reason for one kernel launch."""
    spec = spec or default_spec()
    mix = stats.instructions
    warps = max(1, stats.launch.total_warps)
    i_w = mix.total / warps
    ilp = max(1.0, stats.ilp)

    # --- Wait: fixed-latency dependency chains -----------------------------
    # integer addressing + dependent FMA chains; ILP divides the exposed
    # latency (independent chains overlap).
    frac_fixed = mix.integer_fraction
    math_total = mix.math_instructions / max(1.0, mix.total)
    dep_math = 0.25 * math_total  # back-to-back dependent share of math
    wait = i_w * (frac_fixed + dep_math) * (spec.lat_alu - 1.0) / ilp

    # --- Short Scoreboard: shared-memory returns ---------------------------
    lds_w = mix[InstrClass.LDS] / warps
    short_sb = lds_w * spec.lat_shared / (ilp * 2.0)

    # --- Long Scoreboard: global returns ------------------------------------
    ldg_w = mix.global_load_requests / warps
    mem_lat = _memory_latency(stats, spec)
    # loads issued in batches overlap each other: expose one latency per
    # dependent batch of `ilp` loads.
    long_sb = ldg_w * mem_lat / (ilp * 4.0)
    # register spills hit local memory with DRAM latency, never batched
    if stats.global_mem.local_bytes > 0:
        ldl_w = (mix[InstrClass.LDL] + mix[InstrClass.STL]) / warps
        long_sb += ldl_w * spec.lat_dram / ilp

    # --- Barrier -------------------------------------------------------------
    bar_w = (mix[InstrClass.BAR] + mix[InstrClass.MEMBAR]) / warps
    barrier = bar_w * spec.lat_barrier

    ni = icache_stall_fraction(stats.program, spec)

    return StallProfile(
        wait=wait,
        short_scoreboard=short_sb,
        long_scoreboard=long_sb,
        barrier=barrier,
        no_instruction_fraction=ni,
        per_warp_instructions=i_w,
        stall_correlation=stats.stall_correlation,
    )
